/**
 * @file
 * Shared scaffolding for the per-table bench binaries: each binary
 * prints its paper table once (paper value next to measured value),
 * then times the experiment under google-benchmark with a bounded
 * iteration count (the experiments run whole simulations, so a
 * handful of iterations is plenty for stable numbers).
 *
 * MIPS82_BENCH_MAIN evaluates the experiment twice: once for the
 * printed table and again inside the registered benchmark. The
 * experiments run through pipeline::sharedSession(), so the print
 * pass warms the artifact cache and the benchmark iterations reuse
 * the compiled/reorganized/simulated artifacts instead of rebuilding
 * the whole tool chain per iteration — the timed loop measures the
 * table computation itself, not a redundant second compile.
 */
#pragma once

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>

/** Print the rendered table followed by a blank line. */
inline void
printTable(const std::string &table)
{
    std::fputs(table.c_str(), stdout);
    std::fputs("\n", stdout);
}

/** Standard main: print the table, then run the benchmarks. */
#define MIPS82_BENCH_MAIN(print_expr)                                  \
    int main(int argc, char **argv)                                    \
    {                                                                  \
        printTable(print_expr);                                        \
        benchmark::Initialize(&argc, argv);                            \
        if (benchmark::ReportUnrecognizedArguments(argc, argv))        \
            return 1;                                                  \
        benchmark::RunSpecifiedBenchmarks();                           \
        return 0;                                                      \
    }
