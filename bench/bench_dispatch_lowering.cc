/**
 * @file
 * Regenerates the dispatch-lowering tradeoff table printed below
 * (branch chain vs jump table) and times the experiment.
 */
#include "bench_common.h"
#include "core/experiments.h"

using namespace mips::tradeoff;

static void
BM_DispatchStudy(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runDispatchStudy());
}
BENCHMARK(BM_DispatchStudy)->Unit(benchmark::kMillisecond)->Iterations(3);

MIPS82_BENCH_MAIN(runDispatchStudy().table)
