/**
 * @file
 * Figures 1-3: the generated code sequences for the paper's running
 * example `Found := (Rec = Key) OR (I = 13)` under all four styles,
 * with static and average dynamic instruction counts.
 */
#include "bench_common.h"
#include "core/experiments.h"

using namespace mips::tradeoff;

static void
BM_Figures1to3(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFigures1to3());
}
BENCHMARK(BM_Figures1to3)->Unit(benchmark::kMicrosecond)->Iterations(50);

MIPS82_BENCH_MAIN(runFigures1to3())
