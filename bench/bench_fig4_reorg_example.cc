/**
 * @file
 * Figure 4: a code fragment through the reorganizer — legal code,
 * the pure no-op lowering, and the reorganized/packed/delay-filled
 * result.
 */
#include "bench_common.h"
#include "core/experiments.h"

using namespace mips::tradeoff;

static void
BM_Figure4(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFigure4());
}
BENCHMARK(BM_Figure4)->Unit(benchmark::kMicrosecond)->Iterations(50);

MIPS82_BENCH_MAIN(runFigure4())
