/**
 * @file
 * Section 3.1's free-memory-cycle study: the fraction of data-memory
 * bandwidth left idle by executing programs (the paper measured close
 * to 40% wasted; the status pin exposes these cycles for DMA, I/O,
 * and cache write-backs).
 */
#include "bench_common.h"
#include "core/experiments.h"

using namespace mips::tradeoff;

static void
BM_FreeCycles(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runFreeCycles());
}
BENCHMARK(BM_FreeCycles)->Unit(benchmark::kMillisecond)->Iterations(3);

MIPS82_BENCH_MAIN(runFreeCycles().table)
