/**
 * @file
 * Component throughput benchmarks: these time the infrastructure
 * itself (simulator cycles/second, reorganizer blocks/second,
 * assembler and compiler throughput) rather than reproducing a paper
 * table. Useful for tracking regressions in the tooling.
 */
#include <benchmark/benchmark.h>

#include "asm/assembler.h"
#include "plc/driver.h"
#include "reorg/reorganizer.h"
#include "sim/machine.h"
#include "workload/corpus.h"

namespace {

using mips::assembler::Program;

/** A busy loop for raw simulator speed. */
Program
busyLoop()
{
    return mips::assembler::assembleOrDie(
        "  ldi #100000, r1\n"
        "loop: sub r1, #1, r1\n"
        "  st r1, @500\n"
        "  bgt r1, #0, loop\n"
        "  nop\n"
        "  halt\n");
}

void
BM_PipelineSimulator(benchmark::State &state)
{
    Program prog = busyLoop();
    uint64_t cycles = 0;
    for (auto _ : state) {
        mips::sim::Machine machine;
        machine.load(prog);
        machine.cpu().run(10'000'000);
        cycles += machine.cpu().stats().cycles;
    }
    state.counters["cycles/s"] = benchmark::Counter(
        static_cast<double>(cycles), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PipelineSimulator)->Unit(benchmark::kMillisecond);

void
BM_FunctionalSimulator(benchmark::State &state)
{
    Program prog = busyLoop();
    uint64_t instructions = 0;
    for (auto _ : state) {
        mips::sim::FunctionalRun run = mips::sim::runFunctional(prog);
        instructions += run.cpu->instructions();
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FunctionalSimulator)->Unit(benchmark::kMillisecond);

void
BM_Assembler(benchmark::State &state)
{
    // Assemble the compiler-generated Puzzle source each iteration.
    auto exe = mips::plc::buildExecutable(
        mips::workload::puzzle0Program().source);
    std::string text = exe.value().asm_text;
    for (auto _ : state) {
        auto prog = mips::assembler::assemble(text);
        benchmark::DoNotOptimize(prog.ok());
    }
    state.counters["lines"] = static_cast<double>(
        std::count(text.begin(), text.end(), '\n'));
}
BENCHMARK(BM_Assembler)->Unit(benchmark::kMillisecond);

void
BM_Reorganizer(benchmark::State &state)
{
    auto compiled = mips::plc::compile(
        mips::workload::puzzle0Program().source);
    const mips::assembler::Unit &unit = compiled.value().unit;
    for (auto _ : state) {
        auto result = mips::reorg::reorganize(unit);
        benchmark::DoNotOptimize(result.stats.output_words);
    }
    state.counters["words"] =
        static_cast<double>(unit.items.size());
}
BENCHMARK(BM_Reorganizer)->Unit(benchmark::kMillisecond);

void
BM_CompilerEndToEnd(benchmark::State &state)
{
    const char *source = mips::workload::puzzle0Program().source;
    for (auto _ : state) {
        auto exe = mips::plc::buildExecutable(source);
        benchmark::DoNotOptimize(exe.ok());
    }
}
BENCHMARK(BM_CompilerEndToEnd)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
