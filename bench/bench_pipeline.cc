/**
 * @file
 * Pipeline-session throughput suite: times the full corpus tool chain
 * (compile → reorganize → hazard-verify → translation-validate →
 * simulate → cost-model → value-range) through `pipeline::runAll` and
 * writes the results to a
 * machine-readable JSON file (default `BENCH_pipeline.json` in the
 * working directory, override with `--json=PATH`):
 *
 *   - serial cold:  fresh Session, 1 job — every stage computes
 *   - cached:       same Session again — every stage hits the cache
 *   - scaling:      fresh Session per point, jobs ∈ {1, 2, 4, 8} —
 *                   BatchRunner fans the corpus across worker threads;
 *                   each point is the best of three runs so one
 *                   scheduler hiccup does not poison the curve
 *
 * The report (schema 4) records the host's core count
 * (`host_cores`), the full scaling curve, and the headline
 * `parallel_speedup` (the jobs = 8 point). scripts/check.sh validates
 * the structure and applies a core-count-aware floor to
 * `parallel_speedup`: a multi-core host must reach 1.0 (the sharded
 * cache + work-stealing runner clear it with room to spare), while a
 * single-core host — which cannot express parallelism at all and pays
 * pure scheduling overhead for trying — only has to stay above a
 * collapse tripwire.
 *
 * The serial/cached/parallel configurations are registered as
 * google-benchmark cases (`BM_CorpusChain/{serial_cold,cached,
 * parallel8}`) for interactive measurement, and the per-stage
 * hit/miss/wall-time counters from the cold run are printed as a
 * `PipelineStats` table.
 */
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "obs/catalog.h"
#include "pipeline/session.h"
#include "support/logging.h"
#include "workload/corpus.h"

namespace {

namespace pl = mips::pipeline;

const std::vector<mips::workload::CorpusProgram> &
benchCorpus()
{
    static const std::vector<mips::workload::CorpusProgram> kCorpus =
        [] {
            std::vector<mips::workload::CorpusProgram> programs =
                mips::workload::corpus();
            programs.push_back(mips::workload::fibonacciProgram());
            programs.push_back(mips::workload::puzzle0Program());
            programs.push_back(mips::workload::puzzle1Program());
            return programs;
        }();
    return kCorpus;
}

pl::ChainSpec
fullChain()
{
    pl::ChainSpec spec;
    spec.reorganize = true;
    spec.hazard_verify = true;
    spec.translation_validate = true;
    spec.simulate = true;
    spec.cost_model = true;
    spec.value_range = true;
    return spec;
}

/** Run the whole corpus through the full chain; panic on any failure
 *  (the corpus is expected to verify clean — this is a benchmark, not
 *  a test). Returns wall time in milliseconds. */
double
runChain(pl::Session &session, unsigned jobs)
{
    using clock = std::chrono::steady_clock;
    auto start = clock::now();
    std::vector<pl::ChainResult> results = pl::runAll(
        session, benchCorpus(), fullChain(), pl::StageOptions{}, jobs);
    double ms =
        std::chrono::duration<double, std::milli>(clock::now() - start)
            .count();
    for (const pl::ChainResult &r : results) {
        if (!r.ok())
            mips::support::panic("bench_pipeline: %s: %s",
                                 r.name.c_str(), r.error.c_str());
        if (!r.verify->report.clean())
            mips::support::panic(
                "bench_pipeline: %s: verification not clean",
                r.name.c_str());
    }
    return ms;
}

/** Best of `reps` cold runs (fresh Session each) at `jobs` workers. */
double
bestColdMs(int reps, unsigned jobs)
{
    double best = 0.0;
    for (int r = 0; r < reps; ++r) {
        pl::Session session;
        double ms = runChain(session, jobs);
        if (r == 0 || ms < best)
            best = ms;
    }
    return best;
}

/** One point of the jobs-scaling sweep. */
struct SweepPoint
{
    unsigned jobs;
    double ms;
};

// --- google-benchmark cases ------------------------------------------

void
BM_CorpusChainSerialCold(benchmark::State &state)
{
    for (auto _ : state) {
        pl::Session session;
        benchmark::DoNotOptimize(runChain(session, 1));
    }
}
BENCHMARK(BM_CorpusChainSerialCold)
    ->Name("BM_CorpusChain/serial_cold")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void
BM_CorpusChainCached(benchmark::State &state)
{
    pl::Session session;
    runChain(session, 1); // warm the cache outside the timed loop
    for (auto _ : state)
        benchmark::DoNotOptimize(runChain(session, 1));
}
BENCHMARK(BM_CorpusChainCached)
    ->Name("BM_CorpusChain/cached")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

void
BM_CorpusChainParallel8(benchmark::State &state)
{
    for (auto _ : state) {
        pl::Session session;
        benchmark::DoNotOptimize(runChain(session, 8));
    }
}
BENCHMARK(BM_CorpusChainParallel8)
    ->Name("BM_CorpusChain/parallel8")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// --- JSON report ------------------------------------------------------

void
writeJson(const std::string &path, double serial_ms, double cached_ms,
          const std::vector<SweepPoint> &scaling,
          const pl::PipelineStats &st)
{
    const SweepPoint &top = scaling.back();
    double parallel_ms = top.ms;
    unsigned jobs = top.jobs;
    unsigned host_cores = std::thread::hardware_concurrency();
    if (host_cores == 0)
        host_cores = 1;
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        mips::support::panic("bench_pipeline: cannot write %s",
                             path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": 4,\n");
    std::fprintf(f, "  \"benchmark\": \"bench_pipeline\",\n");
    std::fprintf(f, "  \"metric\": \"full corpus tool-chain wall time "
                    "(compile+reorg+verify+tv+simulate+cost+range)\",\n");
    std::fprintf(f, "  \"programs\": %zu,\n", benchCorpus().size());
    std::fprintf(f, "  \"host_cores\": %u,\n", host_cores);
    std::fprintf(f, "  \"jobs\": %u,\n", jobs);
    std::fprintf(f, "  \"serial_ms\": %.3f,\n", serial_ms);
    std::fprintf(f, "  \"cached_ms\": %.3f,\n", cached_ms);
    std::fprintf(f, "  \"parallel_ms\": %.3f,\n", parallel_ms);
    std::fprintf(f, "  \"cache_speedup\": %.3f,\n",
                 cached_ms > 0.0 ? serial_ms / cached_ms : 0.0);
    std::fprintf(f, "  \"parallel_speedup\": %.3f,\n",
                 parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    std::fprintf(f, "  \"scaling\": [\n");
    for (size_t i = 0; i < scaling.size(); ++i) {
        const SweepPoint &p = scaling[i];
        std::fprintf(f,
                     "    {\"jobs\": %u, \"ms\": %.3f, "
                     "\"speedup\": %.3f}%s\n",
                     p.jobs, p.ms,
                     p.ms > 0.0 ? serial_ms / p.ms : 0.0,
                     i + 1 < scaling.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    std::fprintf(f, "  \"stages\": [\n");
    for (size_t s = 0; s < pl::kStageCount; ++s) {
        const pl::StageCounters &c = st.stage[s];
        std::fprintf(f,
                     "    {\"stage\": \"%s\", \"hits\": %llu, "
                     "\"misses\": %llu, \"waits\": %llu, "
                     "\"miss_ms\": %.3f}%s\n",
                     pl::stageName(static_cast<pl::Stage>(s)),
                     static_cast<unsigned long long>(c.hits),
                     static_cast<unsigned long long>(c.misses),
                     static_cast<unsigned long long>(c.wait_blocks),
                     c.miss_ms, s + 1 < pl::kStageCount ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // The cost-model stage is new in schema 3; surface its counters
    // at top level so report consumers need not scan the stage array.
    const pl::StageCounters &cost =
        st.stage[static_cast<size_t>(pl::Stage::COST_MODEL)];
    std::fprintf(f,
                 "  \"cost_stage\": {\"hits\": %llu, \"misses\": %llu, "
                 "\"miss_ms\": %.3f},\n",
                 static_cast<unsigned long long>(cost.hits),
                 static_cast<unsigned long long>(cost.misses),
                 cost.miss_ms);
    // Embed the process-wide metrics snapshot (docs/METRICS.md), so a
    // stored BENCH_pipeline.json carries the full counter state of the
    // run it measured. Register the whole catalog first so the metric
    // set is identical from run to run.
    mips::obs::registerBuiltinMetrics();
    std::string metrics =
        mips::obs::Registry::instance().snapshot().jsonMetricsArray(2);
    std::fprintf(f, "  \"metrics\": %s\n", metrics.c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("corpus chain (%u cores): serial %.1f ms, cached "
                "%.1f ms (%.1fx), parallel(%u) %.1f ms (%.2fx)\n",
                host_cores, serial_ms, cached_ms,
                cached_ms > 0.0 ? serial_ms / cached_ms : 0.0, jobs,
                parallel_ms,
                parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    for (const SweepPoint &p : scaling)
        std::printf("  jobs=%u: %.1f ms (%.2fx)\n", p.jobs, p.ms,
                    p.ms > 0.0 ? serial_ms / p.ms : 0.0);
    std::printf("-> %s\n", path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our own --json=PATH flag before google-benchmark parses.
    std::string json_path = "BENCH_pipeline.json";
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    // Serial cold run, with per-stage counters from a fresh session.
    // Also warms the process (code pages, allocator arenas) so the
    // sweep below compares steady-state runs.
    pl::Session cold;
    runChain(cold, 1);
    std::fputs(cold.stats().table().c_str(), stdout);
    std::fputs("\n", stdout);

    // Same session again: every stage should hit the cache.
    double cached_ms = runChain(cold, 1);
    for (int r = 0; r < 2; ++r)
        cached_ms = std::min(cached_ms, runChain(cold, 1));

    // Jobs-scaling sweep: fresh session per run, best of three per
    // point. jobs = 1 doubles as the serial baseline.
    const unsigned kSweepJobs[] = {1, 2, 4, 8};
    std::vector<SweepPoint> scaling;
    for (unsigned jobs : kSweepJobs)
        scaling.push_back({jobs, bestColdMs(3, jobs)});
    double serial_ms = scaling.front().ms;

    writeJson(json_path, serial_ms, cached_ms, scaling, cold.stats());

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
