/**
 * @file
 * Pipeline-session throughput suite: times the full corpus tool chain
 * (compile → reorganize → hazard-verify → translation-validate →
 * simulate) through `pipeline::runAll` in three configurations and
 * writes the results to a machine-readable JSON file (default
 * `BENCH_pipeline.json` in the working directory, override with
 * `--json=PATH`):
 *
 *   - serial cold:  fresh Session, 1 job — every stage computes
 *   - cached:       same Session again — every stage hits the cache
 *   - parallel:     fresh Session, 8 jobs — BatchRunner fans the
 *                   corpus across worker threads
 *
 * The speedup ratios (`cache_speedup`, `parallel_speedup`) are
 * recorded but not gated here: parallel scaling depends on host core
 * count (a single-core CI box can't show it), so scripts/check.sh
 * validates the report's structure, not a threshold.
 *
 * The same configurations are registered as google-benchmark cases
 * (`BM_CorpusChain/{serial_cold,cached,parallel8}`) for interactive
 * measurement, and the per-stage hit/miss/wall-time counters from the
 * cold run are printed as a `PipelineStats` table.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "obs/catalog.h"
#include "pipeline/session.h"
#include "support/logging.h"
#include "workload/corpus.h"

namespace {

namespace pl = mips::pipeline;

const std::vector<mips::workload::CorpusProgram> &
benchCorpus()
{
    static const std::vector<mips::workload::CorpusProgram> kCorpus =
        [] {
            std::vector<mips::workload::CorpusProgram> programs =
                mips::workload::corpus();
            programs.push_back(mips::workload::fibonacciProgram());
            programs.push_back(mips::workload::puzzle0Program());
            programs.push_back(mips::workload::puzzle1Program());
            return programs;
        }();
    return kCorpus;
}

pl::ChainSpec
fullChain()
{
    pl::ChainSpec spec;
    spec.reorganize = true;
    spec.hazard_verify = true;
    spec.translation_validate = true;
    spec.simulate = true;
    return spec;
}

/** Run the whole corpus through the full chain; panic on any failure
 *  (the corpus is expected to verify clean — this is a benchmark, not
 *  a test). Returns wall time in milliseconds. */
double
runChain(pl::Session &session, unsigned jobs)
{
    using clock = std::chrono::steady_clock;
    auto start = clock::now();
    std::vector<pl::ChainResult> results = pl::runAll(
        session, benchCorpus(), fullChain(), pl::StageOptions{}, jobs);
    double ms =
        std::chrono::duration<double, std::milli>(clock::now() - start)
            .count();
    for (const pl::ChainResult &r : results) {
        if (!r.ok())
            mips::support::panic("bench_pipeline: %s: %s",
                                 r.name.c_str(), r.error.c_str());
        if (!r.verify->report.clean())
            mips::support::panic(
                "bench_pipeline: %s: verification not clean",
                r.name.c_str());
    }
    return ms;
}

// --- google-benchmark cases ------------------------------------------

void
BM_CorpusChainSerialCold(benchmark::State &state)
{
    for (auto _ : state) {
        pl::Session session;
        benchmark::DoNotOptimize(runChain(session, 1));
    }
}
BENCHMARK(BM_CorpusChainSerialCold)
    ->Name("BM_CorpusChain/serial_cold")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

void
BM_CorpusChainCached(benchmark::State &state)
{
    pl::Session session;
    runChain(session, 1); // warm the cache outside the timed loop
    for (auto _ : state)
        benchmark::DoNotOptimize(runChain(session, 1));
}
BENCHMARK(BM_CorpusChainCached)
    ->Name("BM_CorpusChain/cached")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(5);

void
BM_CorpusChainParallel8(benchmark::State &state)
{
    for (auto _ : state) {
        pl::Session session;
        benchmark::DoNotOptimize(runChain(session, 8));
    }
}
BENCHMARK(BM_CorpusChainParallel8)
    ->Name("BM_CorpusChain/parallel8")
    ->Unit(benchmark::kMillisecond)
    ->Iterations(2);

// --- JSON report ------------------------------------------------------

void
writeJson(const std::string &path, double serial_ms, double cached_ms,
          double parallel_ms, unsigned jobs, const pl::PipelineStats &st)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        mips::support::panic("bench_pipeline: cannot write %s",
                             path.c_str());
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": 1,\n");
    std::fprintf(f, "  \"benchmark\": \"bench_pipeline\",\n");
    std::fprintf(f, "  \"metric\": \"full corpus tool-chain wall time "
                    "(compile+reorg+verify+tv+simulate)\",\n");
    std::fprintf(f, "  \"programs\": %zu,\n", benchCorpus().size());
    std::fprintf(f, "  \"jobs\": %u,\n", jobs);
    std::fprintf(f, "  \"serial_ms\": %.3f,\n", serial_ms);
    std::fprintf(f, "  \"cached_ms\": %.3f,\n", cached_ms);
    std::fprintf(f, "  \"parallel_ms\": %.3f,\n", parallel_ms);
    std::fprintf(f, "  \"cache_speedup\": %.3f,\n",
                 cached_ms > 0.0 ? serial_ms / cached_ms : 0.0);
    std::fprintf(f, "  \"parallel_speedup\": %.3f,\n",
                 parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0);
    std::fprintf(f, "  \"stages\": [\n");
    for (size_t s = 0; s < pl::kStageCount; ++s) {
        const pl::StageCounters &c = st.stage[s];
        std::fprintf(f,
                     "    {\"stage\": \"%s\", \"hits\": %llu, "
                     "\"misses\": %llu, \"waits\": %llu, "
                     "\"miss_ms\": %.3f}%s\n",
                     pl::stageName(static_cast<pl::Stage>(s)),
                     static_cast<unsigned long long>(c.hits),
                     static_cast<unsigned long long>(c.misses),
                     static_cast<unsigned long long>(c.wait_blocks),
                     c.miss_ms, s + 1 < pl::kStageCount ? "," : "");
    }
    std::fprintf(f, "  ],\n");
    // Embed the process-wide metrics snapshot (docs/METRICS.md), so a
    // stored BENCH_pipeline.json carries the full counter state of the
    // run it measured. Register the whole catalog first so the metric
    // set is identical from run to run.
    mips::obs::registerBuiltinMetrics();
    std::string metrics =
        mips::obs::Registry::instance().snapshot().jsonMetricsArray(2);
    std::fprintf(f, "  \"metrics\": %s\n", metrics.c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("corpus chain: serial %.1f ms, cached %.1f ms "
                "(%.1fx), parallel(%u) %.1f ms (%.2fx) -> %s\n",
                serial_ms, cached_ms,
                cached_ms > 0.0 ? serial_ms / cached_ms : 0.0, jobs,
                parallel_ms,
                parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0,
                path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our own --json=PATH flag before google-benchmark parses.
    std::string json_path = "BENCH_pipeline.json";
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    const unsigned kJobs = 8;

    // Serial cold run, with per-stage counters from a fresh session.
    pl::Session cold;
    double serial_ms = runChain(cold, 1);
    std::fputs(cold.stats().table().c_str(), stdout);
    std::fputs("\n", stdout);

    // Same session again: every stage should hit the cache.
    double cached_ms = runChain(cold, 1);

    // Fresh session, fanned across worker threads.
    pl::Session parallel;
    double parallel_ms = runChain(parallel, kJobs);

    writeJson(json_path, serial_ms, cached_ms, parallel_ms, kJobs,
              cold.stats());

    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
