/**
 * @file
 * Table 10: total load/store cost on the word-addressed MIPS versus
 * a byte-addressed MIPS, with the byte-addressing penalty swept over
 * the paper's overhead range (plus the zero-overhead crossover).
 */
#include "bench_common.h"
#include "core/experiments.h"

using namespace mips::tradeoff;

static void
BM_Table10(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runTable10(0.15));
}
BENCHMARK(BM_Table10)->Unit(benchmark::kMillisecond)->Iterations(3);

int
main(int argc, char **argv)
{
    printTable(runTable10(0.15).table);
    printTable(runTable10(0.20).table);
    std::puts("Crossover check: with zero hardware overhead, byte "
              "addressing wins:");
    printTable(runTable10(0.0).table);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
