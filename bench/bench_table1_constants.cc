/**
 * @file
 * Regenerates the paper table printed below and times the experiment.
 */
#include "bench_common.h"
#include "core/experiments.h"

using namespace mips::tradeoff;

static void
BM_Table1(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runTable1());
}
BENCHMARK(BM_Table1)->Unit(benchmark::kMillisecond)->Iterations(3);

MIPS82_BENCH_MAIN(runTable1().table)
