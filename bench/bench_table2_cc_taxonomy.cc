/**
 * @file
 * Table 2: the condition-code taxonomy (qualitative matrix).
 */
#include "bench_common.h"
#include "core/experiments.h"

using namespace mips::tradeoff;

static void
BM_Table2(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runTable2());
}
BENCHMARK(BM_Table2)->Iterations(100);

MIPS82_BENCH_MAIN(runTable2())
