/**
 * @file
 * Table 5: compare/register/branch operations per boolean operator
 * under the four architectural styles.
 */
#include "bench_common.h"
#include "core/experiments.h"

using namespace mips::tradeoff;

static void
BM_Table5(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runTable5());
}
BENCHMARK(BM_Table5)->Unit(benchmark::kMillisecond)->Iterations(10);

MIPS82_BENCH_MAIN(runTable5().table)
