/**
 * @file
 * Table 6: weighted cost of boolean-expression evaluation under the
 * measured expression mix and under the paper's published mix.
 */
#include "bench_common.h"
#include "core/experiments.h"

using namespace mips::tradeoff;

static void
BM_Table6(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runTable6());
}
BENCHMARK(BM_Table6)->Unit(benchmark::kMillisecond)->Iterations(3);

int
main(int argc, char **argv)
{
    printTable(runTable6(false).table);
    std::puts("With the paper's published mix "
              "(1.66 ops/expr, 80.9% jumps):");
    printTable(runTable6(true).table);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
