/**
 * @file
 * Table 9: cycle cost of byte and word operations, swept over the
 * paper's 15-20% byte-addressing hardware-overhead estimate.
 */
#include "bench_common.h"
#include "core/experiments.h"

using namespace mips::tradeoff;

static void
BM_Table9(benchmark::State &state)
{
    for (auto _ : state)
        benchmark::DoNotOptimize(runTable9(0.15));
}
BENCHMARK(BM_Table9)->Unit(benchmark::kMicrosecond)->Iterations(50);

int
main(int argc, char **argv)
{
    printTable(runTable9(0.15).table);
    printTable(runTable9(0.20).table);
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
