/**
 * @file
 * Simulated-instruction throughput suite for the pipeline simulator's
 * host fast path (predecoded instruction cache + mapping micro-TLB).
 *
 * Two things happen here:
 *
 *  1. main() runs every workload once with the fast path enabled and
 *     once with it disabled (the reference decode/translate-every-cycle
 *     path), times both with a steady clock, and writes the results —
 *     per program and aggregated, with the speedup ratio — to a
 *     machine-readable JSON file (default `BENCH_throughput.json` in
 *     the working directory, override with `--json=PATH`).
 *
 *  2. The same workloads are registered as google-benchmark cases
 *     (`BM_SimThroughput/<name>/{fast,slow}`) so the usual benchmark
 *     flags (`--benchmark_filter`, `--benchmark_min_time`, ...) work
 *     for interactive measurement.
 *
 * The workloads are the corpus loops the rest of the repo measures —
 * the raw busy loop, recursive Fibonacci, and both Puzzle variants
 * (Table 11's benchmark programs), compiled through the full PLC
 * pipeline — plus a dense block-copy kernel covering the memory
 * path. Every program runs both directly on physical addresses and as
 * a `*_mapped` variant under address translation, so the micro-TLB is
 * on the measured path, not just the predecode cache. A Machine is
 * constructed once per case and re-loaded per run so the numbers
 * measure stepping, not 4 MB memory construction.
 */
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "asm/assembler.h"
#include "obs/catalog.h"
#include "plc/driver.h"
#include "sim/machine.h"
#include "sim/obspub.h"
#include "support/logging.h"
#include "workload/corpus.h"

namespace {

using mips::assembler::Program;

/** One measured workload: a linked program ready to load. `mapped`
 *  runs it under address translation (identity page map over all of
 *  physical memory), exercising the micro-TLB on every fetch and data
 *  reference; unmapped runs exercise only the predecode cache. */
struct Workload
{
    std::string name;
    Program program;
    bool mapped = false;
};

/** The raw-simulator busy loop used by BM_PipelineSimulator. */
Program
busyLoop()
{
    return mips::assembler::assembleOrDie(
        "  ldi #100000, r1\n"
        "loop: sub r1, #1, r1\n"
        "  st r1, @500\n"
        "  bgt r1, #0, loop\n"
        "  nop\n"
        "  halt\n");
}

/** Dense load/store kernel: copy a 100K-word block (the corpus's
 *  compiled programs are call/branch heavy; this covers the
 *  memory-reference path, 2 data references per 5 instructions). The
 *  `sub` fills the load's delay slot, so the store reads the loaded
 *  value one instruction later at the already-decremented index. */
Program
copyLoop()
{
    return mips::assembler::assembleOrDie(
        "  ldi #100000, r1\n"
        "  ldi #200000, r2\n"
        "  ldi #400000, r3\n"
        "loop: ld (r2+r1), r4\n"
        "  sub r1, #1, r1\n"
        "  st r4, (r3+r1)\n"
        "  bgt r1, #0, loop\n"
        "  nop\n"
        "  halt\n");
}

Program
compiled(const char *source)
{
    auto exe = mips::plc::buildExecutable(source);
    if (!exe.ok())
        mips::support::panic("bench_throughput: compile failed: %s",
                             exe.error().str().c_str());
    return exe.value().program;
}

const std::vector<Workload> &
workloads()
{
    static const std::vector<Workload> kWorkloads = [] {
        std::vector<std::pair<std::string, Program>> base;
        base.emplace_back("busy_loop", busyLoop());
        base.emplace_back("copy_loop", copyLoop());
        base.emplace_back(
            "fibonacci",
            compiled(mips::workload::fibonacciProgram().source));
        base.emplace_back(
            "puzzle0", compiled(mips::workload::puzzle0Program().source));
        base.emplace_back(
            "puzzle1", compiled(mips::workload::puzzle1Program().source));
        // Every program runs twice: directly on physical addresses, and
        // under address translation (`_mapped`), so both halves of the
        // fast path — predecode cache and micro-TLB — are measured over
        // the whole corpus.
        std::vector<Workload> w;
        for (const auto &[name, program] : base)
            w.push_back({name, program, false});
        for (const auto &[name, program] : base)
            w.push_back({name + "_mapped", program, true});
        return w;
    }();
    return kWorkloads;
}

/** Configure + load one workload, ready to run. Setup sits outside
 *  the timed window: the metric is stepping throughput, not program
 *  load time. */
void
prepare(mips::sim::Machine &machine, const Workload &w, bool fast_path)
{
    machine.cpu().enableFastPath(fast_path);
    machine.load(w.program);
    if (w.mapped) {
        // Identity-map all of physical memory (seg_bits 0: the fold is
        // the identity for low addresses) and turn translation on, so
        // every fetch and data reference goes through the mapping unit
        // — micro-TLB hits on the fast path, a hash-map probe per
        // reference on the baseline.
        mips::sim::MappingUnit &mu = machine.mapping();
        if (mu.pageCount() == 0) {
            mu.configure(0, 0);
            uint32_t frames =
                machine.memory().size() >> mips::sim::kPageBits;
            for (uint32_t frame = 0; frame < frames; ++frame)
                mu.installPage(frame << mips::sim::kPageBits, frame);
        }
        machine.cpu().surprise().map_enable = true;
    }
    machine.cpu().clearStats(); // reset() preserves stats; count one run
}

/** Run a prepared workload; returns instructions issued (== cycles). */
uint64_t
runPrepared(mips::sim::Machine &machine, const Workload &w)
{
    mips::sim::StopReason reason = machine.cpu().run(100'000'000);
    if (reason != mips::sim::StopReason::HALT)
        mips::support::panic("bench_throughput: %s did not halt",
                             w.name.c_str());
    return machine.cpu().stats().cycles;
}

uint64_t
runOnce(mips::sim::Machine &machine, const Workload &w, bool fast_path)
{
    prepare(machine, w, fast_path);
    return runPrepared(machine, w);
}

// --- google-benchmark cases ------------------------------------------

void
BM_SimThroughput(benchmark::State &state, const Workload &w,
                 bool fast_path)
{
    mips::sim::Machine machine;
    uint64_t instructions = 0;
    for (auto _ : state)
        instructions += runOnce(machine, w, fast_path);
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}

void
registerBenchmarks()
{
    for (const Workload &w : workloads()) {
        benchmark::RegisterBenchmark(
            ("BM_SimThroughput/" + w.name + "/fast").c_str(),
            [&w](benchmark::State &s) { BM_SimThroughput(s, w, true); })
            ->Unit(benchmark::kMillisecond);
        benchmark::RegisterBenchmark(
            ("BM_SimThroughput/" + w.name + "/slow").c_str(),
            [&w](benchmark::State &s) { BM_SimThroughput(s, w, false); })
            ->Unit(benchmark::kMillisecond);
    }
}

// --- JSON report ------------------------------------------------------

/** One timed configuration of one workload. */
struct Timing
{
    int runs = 0;
    uint64_t instructions = 0; ///< total over all runs
    double seconds = 0.0;

    double
    ips() const
    {
        return seconds > 0.0
                   ? static_cast<double>(instructions) / seconds : 0.0;
    }
};

struct Row
{
    std::string name;
    Timing fast;
    Timing slow;
};

/** One timed run of one configuration, accumulated into `t`. Only the
 *  stepping is inside the clock; load/reset/map setup is not. */
void
timeOnce(mips::sim::Machine &machine, const Workload &w, bool fast_path,
         Timing &t)
{
    using clock = std::chrono::steady_clock;
    prepare(machine, w, fast_path);
    auto start = clock::now();
    t.instructions += runPrepared(machine, w);
    t.seconds +=
        std::chrono::duration<double>(clock::now() - start).count();
    ++t.runs;
}

/**
 * Measure `w` in both configurations. Fast and slow runs alternate
 * pairwise — rather than timing one whole configuration and then the
 * other — so host load changes hit both sides of the ratio equally;
 * the measurement keeps going until both sides have at least
 * `min_runs` runs and `min_seconds` of accumulated wall time.
 */
Row
measureRow(mips::sim::Machine &machine, const Workload &w, int min_runs,
           double min_seconds)
{
    Row row;
    row.name = w.name;
    runOnce(machine, w, true);  // warm up (page in, fill caches)
    runOnce(machine, w, false);
    while (row.fast.runs < min_runs || row.fast.seconds < min_seconds ||
           row.slow.seconds < min_seconds) {
        timeOnce(machine, w, true, row.fast);
        timeOnce(machine, w, false, row.slow);
    }
    return row;
}

void
writeJson(const std::string &path, const std::vector<Row> &rows)
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        mips::support::panic("bench_throughput: cannot write %s",
                             path.c_str());
    uint64_t fast_instr = 0, slow_instr = 0;
    double fast_sec = 0.0, slow_sec = 0.0;
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"schema\": 1,\n");
    std::fprintf(f, "  \"benchmark\": \"bench_throughput\",\n");
    std::fprintf(f, "  \"metric\": \"simulated instructions per second "
                    "(pipeline simulator)\",\n");
    std::fprintf(f, "  \"programs\": [\n");
    for (size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        fast_instr += r.fast.instructions;
        fast_sec += r.fast.seconds;
        slow_instr += r.slow.instructions;
        slow_sec += r.slow.seconds;
        std::fprintf(
            f,
            "    {\"name\": \"%s\",\n"
            "     \"fastpath\": {\"runs\": %d, \"instructions\": %llu, "
            "\"seconds\": %.6f, \"instructions_per_second\": %.0f},\n"
            "     \"baseline\": {\"runs\": %d, \"instructions\": %llu, "
            "\"seconds\": %.6f, \"instructions_per_second\": %.0f},\n"
            "     \"speedup\": %.3f}%s\n",
            r.name.c_str(), r.fast.runs,
            static_cast<unsigned long long>(r.fast.instructions),
            r.fast.seconds, r.fast.ips(), r.slow.runs,
            static_cast<unsigned long long>(r.slow.instructions),
            r.slow.seconds, r.slow.ips(),
            r.slow.ips() > 0.0 ? r.fast.ips() / r.slow.ips() : 0.0,
            i + 1 < rows.size() ? "," : "");
    }
    double fast_ips =
        fast_sec > 0.0 ? static_cast<double>(fast_instr) / fast_sec : 0.0;
    double slow_ips =
        slow_sec > 0.0 ? static_cast<double>(slow_instr) / slow_sec : 0.0;
    std::fprintf(f, "  ],\n");
    std::fprintf(
        f,
        "  \"aggregate\": {\"fastpath_instructions_per_second\": %.0f,\n"
        "                \"baseline_instructions_per_second\": %.0f,\n"
        "                \"speedup\": %.3f},\n",
        fast_ips, slow_ips, slow_ips > 0.0 ? fast_ips / slow_ips : 0.0);
    // Embed the process-wide metrics snapshot (docs/METRICS.md) — the
    // sim.* counters for the measured machine are published by main()
    // before this runs. Register the whole catalog first so the metric
    // set is identical from run to run.
    mips::obs::registerBuiltinMetrics();
    std::string metrics =
        mips::obs::Registry::instance().snapshot().jsonMetricsArray(2);
    std::fprintf(f, "  \"metrics\": %s\n", metrics.c_str());
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("aggregate: fastpath %.1fM instr/s, baseline %.1fM "
                "instr/s, speedup %.2fx -> %s\n",
                fast_ips / 1e6, slow_ips / 1e6,
                slow_ips > 0.0 ? fast_ips / slow_ips : 0.0, path.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    // Strip our own --json=PATH flag before google-benchmark parses.
    std::string json_path = "BENCH_throughput.json";
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "--json=", 7) == 0)
            json_path = argv[i] + 7;
        else
            argv[out++] = argv[i];
    }
    argc = out;

    std::vector<Row> rows;
    {
        mips::sim::Machine machine;
        for (const Workload &w : workloads()) {
            Row row = measureRow(machine, w, 3, 0.3);
            std::printf("%-16s fast %8.1fM instr/s   slow %8.1fM "
                        "instr/s   speedup %.2fx\n",
                        w.name.c_str(), row.fast.ips() / 1e6,
                        row.slow.ips() / 1e6,
                        row.slow.ips() > 0.0
                            ? row.fast.ips() / row.slow.ips() : 0.0);
            rows.push_back(row);
        }
        // Fold the measured machine's counters into the sim.* metrics
        // once, after all timed runs. prepare() clears CpuStats per
        // run, so the published cycle counters describe the final run;
        // the decode-cache/TLB totals span the whole measurement.
        mips::sim::publishMetrics(machine);
    }
    writeJson(json_path, rows);

    registerBenchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
