# Empty dependencies file for bench_fig1to3_boolean_sequences.
# This may be replaced when dependencies are built.
