# Empty dependencies file for bench_fig4_reorg_example.
# This may be replaced when dependencies are built.
