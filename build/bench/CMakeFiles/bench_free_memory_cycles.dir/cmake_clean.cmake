file(REMOVE_RECURSE
  "CMakeFiles/bench_free_memory_cycles.dir/bench_free_memory_cycles.cc.o"
  "CMakeFiles/bench_free_memory_cycles.dir/bench_free_memory_cycles.cc.o.d"
  "bench_free_memory_cycles"
  "bench_free_memory_cycles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_free_memory_cycles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
