# Empty compiler generated dependencies file for bench_free_memory_cycles.
# This may be replaced when dependencies are built.
