file(REMOVE_RECURSE
  "CMakeFiles/bench_table10_addressing_penalty.dir/bench_table10_addressing_penalty.cc.o"
  "CMakeFiles/bench_table10_addressing_penalty.dir/bench_table10_addressing_penalty.cc.o.d"
  "bench_table10_addressing_penalty"
  "bench_table10_addressing_penalty.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table10_addressing_penalty.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
