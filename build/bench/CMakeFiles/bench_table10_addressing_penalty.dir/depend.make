# Empty dependencies file for bench_table10_addressing_penalty.
# This may be replaced when dependencies are built.
