file(REMOVE_RECURSE
  "CMakeFiles/bench_table11_postpass.dir/bench_table11_postpass.cc.o"
  "CMakeFiles/bench_table11_postpass.dir/bench_table11_postpass.cc.o.d"
  "bench_table11_postpass"
  "bench_table11_postpass.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table11_postpass.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
