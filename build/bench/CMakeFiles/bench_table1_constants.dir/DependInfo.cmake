
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_table1_constants.cc" "bench/CMakeFiles/bench_table1_constants.dir/bench_table1_constants.cc.o" "gcc" "bench/CMakeFiles/bench_table1_constants.dir/bench_table1_constants.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/mips_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/mips_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/plc/CMakeFiles/mips_plc.dir/DependInfo.cmake"
  "/root/repo/build/src/ccm/CMakeFiles/mips_ccm.dir/DependInfo.cmake"
  "/root/repo/build/src/reorg/CMakeFiles/mips_reorg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mips_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/mips_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mips_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mips_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
