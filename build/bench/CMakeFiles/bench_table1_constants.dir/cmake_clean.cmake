file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_constants.dir/bench_table1_constants.cc.o"
  "CMakeFiles/bench_table1_constants.dir/bench_table1_constants.cc.o.d"
  "bench_table1_constants"
  "bench_table1_constants.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_constants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
