# Empty compiler generated dependencies file for bench_table2_cc_taxonomy.
# This may be replaced when dependencies are built.
