file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_boolexpr_shape.dir/bench_table4_boolexpr_shape.cc.o"
  "CMakeFiles/bench_table4_boolexpr_shape.dir/bench_table4_boolexpr_shape.cc.o.d"
  "bench_table4_boolexpr_shape"
  "bench_table4_boolexpr_shape.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_boolexpr_shape.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
