# Empty dependencies file for bench_table4_boolexpr_shape.
# This may be replaced when dependencies are built.
