file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_ops_per_operator.dir/bench_table5_ops_per_operator.cc.o"
  "CMakeFiles/bench_table5_ops_per_operator.dir/bench_table5_ops_per_operator.cc.o.d"
  "bench_table5_ops_per_operator"
  "bench_table5_ops_per_operator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_ops_per_operator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
