# Empty compiler generated dependencies file for bench_table5_ops_per_operator.
# This may be replaced when dependencies are built.
