# Empty dependencies file for bench_table6_boolexpr_cost.
# This may be replaced when dependencies are built.
