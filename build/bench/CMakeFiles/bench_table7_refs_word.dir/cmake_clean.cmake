file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_refs_word.dir/bench_table7_refs_word.cc.o"
  "CMakeFiles/bench_table7_refs_word.dir/bench_table7_refs_word.cc.o.d"
  "bench_table7_refs_word"
  "bench_table7_refs_word.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_refs_word.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
