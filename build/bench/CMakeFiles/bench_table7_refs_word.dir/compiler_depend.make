# Empty compiler generated dependencies file for bench_table7_refs_word.
# This may be replaced when dependencies are built.
