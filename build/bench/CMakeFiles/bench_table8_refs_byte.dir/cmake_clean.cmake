file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_refs_byte.dir/bench_table8_refs_byte.cc.o"
  "CMakeFiles/bench_table8_refs_byte.dir/bench_table8_refs_byte.cc.o.d"
  "bench_table8_refs_byte"
  "bench_table8_refs_byte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_refs_byte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
