# Empty compiler generated dependencies file for bench_table8_refs_byte.
# This may be replaced when dependencies are built.
