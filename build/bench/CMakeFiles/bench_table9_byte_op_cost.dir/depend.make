# Empty dependencies file for bench_table9_byte_op_cost.
# This may be replaced when dependencies are built.
