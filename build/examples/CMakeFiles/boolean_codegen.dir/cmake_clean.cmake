file(REMOVE_RECURSE
  "CMakeFiles/boolean_codegen.dir/boolean_codegen.cc.o"
  "CMakeFiles/boolean_codegen.dir/boolean_codegen.cc.o.d"
  "boolean_codegen"
  "boolean_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/boolean_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
