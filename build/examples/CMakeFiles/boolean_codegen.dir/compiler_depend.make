# Empty compiler generated dependencies file for boolean_codegen.
# This may be replaced when dependencies are built.
