
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/os_kernel.cc" "examples/CMakeFiles/os_kernel.dir/os_kernel.cc.o" "gcc" "examples/CMakeFiles/os_kernel.dir/os_kernel.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/reorg/CMakeFiles/mips_reorg.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mips_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/mips_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mips_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mips_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
