file(REMOVE_RECURSE
  "CMakeFiles/os_kernel.dir/os_kernel.cc.o"
  "CMakeFiles/os_kernel.dir/os_kernel.cc.o.d"
  "os_kernel"
  "os_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/os_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
