# Empty compiler generated dependencies file for os_kernel.
# This may be replaced when dependencies are built.
