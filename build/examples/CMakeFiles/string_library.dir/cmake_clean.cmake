file(REMOVE_RECURSE
  "CMakeFiles/string_library.dir/string_library.cc.o"
  "CMakeFiles/string_library.dir/string_library.cc.o.d"
  "string_library"
  "string_library.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/string_library.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
