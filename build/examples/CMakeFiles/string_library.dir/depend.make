# Empty dependencies file for string_library.
# This may be replaced when dependencies are built.
