# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_compiler_pipeline "/root/repo/build/examples/compiler_pipeline")
set_tests_properties(example_compiler_pipeline PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_string_library "/root/repo/build/examples/string_library")
set_tests_properties(example_string_library PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_os_kernel "/root/repo/build/examples/os_kernel")
set_tests_properties(example_os_kernel PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_boolean_codegen "/root/repo/build/examples/boolean_codegen")
set_tests_properties(example_boolean_codegen PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
