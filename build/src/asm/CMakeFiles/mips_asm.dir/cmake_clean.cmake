file(REMOVE_RECURSE
  "CMakeFiles/mips_asm.dir/assembler.cc.o"
  "CMakeFiles/mips_asm.dir/assembler.cc.o.d"
  "CMakeFiles/mips_asm.dir/unit.cc.o"
  "CMakeFiles/mips_asm.dir/unit.cc.o.d"
  "libmips_asm.a"
  "libmips_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
