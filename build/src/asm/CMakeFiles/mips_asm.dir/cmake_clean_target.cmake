file(REMOVE_RECURSE
  "libmips_asm.a"
)
