# Empty dependencies file for mips_asm.
# This may be replaced when dependencies are built.
