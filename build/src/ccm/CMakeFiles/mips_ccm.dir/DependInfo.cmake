
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ccm/boolexpr.cc" "src/ccm/CMakeFiles/mips_ccm.dir/boolexpr.cc.o" "gcc" "src/ccm/CMakeFiles/mips_ccm.dir/boolexpr.cc.o.d"
  "/root/repo/src/ccm/codegen.cc" "src/ccm/CMakeFiles/mips_ccm.dir/codegen.cc.o" "gcc" "src/ccm/CMakeFiles/mips_ccm.dir/codegen.cc.o.d"
  "/root/repo/src/ccm/cost.cc" "src/ccm/CMakeFiles/mips_ccm.dir/cost.cc.o" "gcc" "src/ccm/CMakeFiles/mips_ccm.dir/cost.cc.o.d"
  "/root/repo/src/ccm/taxonomy.cc" "src/ccm/CMakeFiles/mips_ccm.dir/taxonomy.cc.o" "gcc" "src/ccm/CMakeFiles/mips_ccm.dir/taxonomy.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/isa/CMakeFiles/mips_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mips_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
