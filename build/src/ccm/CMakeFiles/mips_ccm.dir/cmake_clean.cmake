file(REMOVE_RECURSE
  "CMakeFiles/mips_ccm.dir/boolexpr.cc.o"
  "CMakeFiles/mips_ccm.dir/boolexpr.cc.o.d"
  "CMakeFiles/mips_ccm.dir/codegen.cc.o"
  "CMakeFiles/mips_ccm.dir/codegen.cc.o.d"
  "CMakeFiles/mips_ccm.dir/cost.cc.o"
  "CMakeFiles/mips_ccm.dir/cost.cc.o.d"
  "CMakeFiles/mips_ccm.dir/taxonomy.cc.o"
  "CMakeFiles/mips_ccm.dir/taxonomy.cc.o.d"
  "libmips_ccm.a"
  "libmips_ccm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_ccm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
