file(REMOVE_RECURSE
  "libmips_ccm.a"
)
