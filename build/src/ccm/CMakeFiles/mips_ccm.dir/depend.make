# Empty dependencies file for mips_ccm.
# This may be replaced when dependencies are built.
