file(REMOVE_RECURSE
  "CMakeFiles/mips_core.dir/experiments.cc.o"
  "CMakeFiles/mips_core.dir/experiments.cc.o.d"
  "libmips_core.a"
  "libmips_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
