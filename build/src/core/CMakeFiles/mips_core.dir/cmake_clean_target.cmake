file(REMOVE_RECURSE
  "libmips_core.a"
)
