# Empty compiler generated dependencies file for mips_core.
# This may be replaced when dependencies are built.
