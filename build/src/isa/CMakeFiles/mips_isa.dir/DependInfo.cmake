
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/isa/alu.cc" "src/isa/CMakeFiles/mips_isa.dir/alu.cc.o" "gcc" "src/isa/CMakeFiles/mips_isa.dir/alu.cc.o.d"
  "/root/repo/src/isa/cond.cc" "src/isa/CMakeFiles/mips_isa.dir/cond.cc.o" "gcc" "src/isa/CMakeFiles/mips_isa.dir/cond.cc.o.d"
  "/root/repo/src/isa/disasm.cc" "src/isa/CMakeFiles/mips_isa.dir/disasm.cc.o" "gcc" "src/isa/CMakeFiles/mips_isa.dir/disasm.cc.o.d"
  "/root/repo/src/isa/encoding.cc" "src/isa/CMakeFiles/mips_isa.dir/encoding.cc.o" "gcc" "src/isa/CMakeFiles/mips_isa.dir/encoding.cc.o.d"
  "/root/repo/src/isa/instruction.cc" "src/isa/CMakeFiles/mips_isa.dir/instruction.cc.o" "gcc" "src/isa/CMakeFiles/mips_isa.dir/instruction.cc.o.d"
  "/root/repo/src/isa/mem.cc" "src/isa/CMakeFiles/mips_isa.dir/mem.cc.o" "gcc" "src/isa/CMakeFiles/mips_isa.dir/mem.cc.o.d"
  "/root/repo/src/isa/registers.cc" "src/isa/CMakeFiles/mips_isa.dir/registers.cc.o" "gcc" "src/isa/CMakeFiles/mips_isa.dir/registers.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/mips_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
