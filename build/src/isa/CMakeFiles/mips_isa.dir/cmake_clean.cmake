file(REMOVE_RECURSE
  "CMakeFiles/mips_isa.dir/alu.cc.o"
  "CMakeFiles/mips_isa.dir/alu.cc.o.d"
  "CMakeFiles/mips_isa.dir/cond.cc.o"
  "CMakeFiles/mips_isa.dir/cond.cc.o.d"
  "CMakeFiles/mips_isa.dir/disasm.cc.o"
  "CMakeFiles/mips_isa.dir/disasm.cc.o.d"
  "CMakeFiles/mips_isa.dir/encoding.cc.o"
  "CMakeFiles/mips_isa.dir/encoding.cc.o.d"
  "CMakeFiles/mips_isa.dir/instruction.cc.o"
  "CMakeFiles/mips_isa.dir/instruction.cc.o.d"
  "CMakeFiles/mips_isa.dir/mem.cc.o"
  "CMakeFiles/mips_isa.dir/mem.cc.o.d"
  "CMakeFiles/mips_isa.dir/registers.cc.o"
  "CMakeFiles/mips_isa.dir/registers.cc.o.d"
  "libmips_isa.a"
  "libmips_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
