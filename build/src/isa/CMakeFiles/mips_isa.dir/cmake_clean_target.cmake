file(REMOVE_RECURSE
  "libmips_isa.a"
)
