# Empty dependencies file for mips_isa.
# This may be replaced when dependencies are built.
