
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plc/codegen.cc" "src/plc/CMakeFiles/mips_plc.dir/codegen.cc.o" "gcc" "src/plc/CMakeFiles/mips_plc.dir/codegen.cc.o.d"
  "/root/repo/src/plc/driver.cc" "src/plc/CMakeFiles/mips_plc.dir/driver.cc.o" "gcc" "src/plc/CMakeFiles/mips_plc.dir/driver.cc.o.d"
  "/root/repo/src/plc/lexer.cc" "src/plc/CMakeFiles/mips_plc.dir/lexer.cc.o" "gcc" "src/plc/CMakeFiles/mips_plc.dir/lexer.cc.o.d"
  "/root/repo/src/plc/optimize.cc" "src/plc/CMakeFiles/mips_plc.dir/optimize.cc.o" "gcc" "src/plc/CMakeFiles/mips_plc.dir/optimize.cc.o.d"
  "/root/repo/src/plc/parser.cc" "src/plc/CMakeFiles/mips_plc.dir/parser.cc.o" "gcc" "src/plc/CMakeFiles/mips_plc.dir/parser.cc.o.d"
  "/root/repo/src/plc/sema.cc" "src/plc/CMakeFiles/mips_plc.dir/sema.cc.o" "gcc" "src/plc/CMakeFiles/mips_plc.dir/sema.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/mips_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/mips_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/reorg/CMakeFiles/mips_reorg.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/mips_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
