file(REMOVE_RECURSE
  "CMakeFiles/mips_plc.dir/codegen.cc.o"
  "CMakeFiles/mips_plc.dir/codegen.cc.o.d"
  "CMakeFiles/mips_plc.dir/driver.cc.o"
  "CMakeFiles/mips_plc.dir/driver.cc.o.d"
  "CMakeFiles/mips_plc.dir/lexer.cc.o"
  "CMakeFiles/mips_plc.dir/lexer.cc.o.d"
  "CMakeFiles/mips_plc.dir/optimize.cc.o"
  "CMakeFiles/mips_plc.dir/optimize.cc.o.d"
  "CMakeFiles/mips_plc.dir/parser.cc.o"
  "CMakeFiles/mips_plc.dir/parser.cc.o.d"
  "CMakeFiles/mips_plc.dir/sema.cc.o"
  "CMakeFiles/mips_plc.dir/sema.cc.o.d"
  "libmips_plc.a"
  "libmips_plc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_plc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
