file(REMOVE_RECURSE
  "libmips_plc.a"
)
