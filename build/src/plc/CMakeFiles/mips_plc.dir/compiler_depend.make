# Empty compiler generated dependencies file for mips_plc.
# This may be replaced when dependencies are built.
