# CMake generated Testfile for 
# Source directory: /root/repo/src/plc
# Build directory: /root/repo/build/src/plc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
