file(REMOVE_RECURSE
  "CMakeFiles/mips_reorg.dir/dag.cc.o"
  "CMakeFiles/mips_reorg.dir/dag.cc.o.d"
  "CMakeFiles/mips_reorg.dir/reorganizer.cc.o"
  "CMakeFiles/mips_reorg.dir/reorganizer.cc.o.d"
  "libmips_reorg.a"
  "libmips_reorg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_reorg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
