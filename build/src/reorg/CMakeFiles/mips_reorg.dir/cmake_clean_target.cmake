file(REMOVE_RECURSE
  "libmips_reorg.a"
)
