# Empty compiler generated dependencies file for mips_reorg.
# This may be replaced when dependencies are built.
