file(REMOVE_RECURSE
  "CMakeFiles/mips_sim.dir/cpu.cc.o"
  "CMakeFiles/mips_sim.dir/cpu.cc.o.d"
  "CMakeFiles/mips_sim.dir/functional.cc.o"
  "CMakeFiles/mips_sim.dir/functional.cc.o.d"
  "CMakeFiles/mips_sim.dir/machine.cc.o"
  "CMakeFiles/mips_sim.dir/machine.cc.o.d"
  "CMakeFiles/mips_sim.dir/mapping.cc.o"
  "CMakeFiles/mips_sim.dir/mapping.cc.o.d"
  "CMakeFiles/mips_sim.dir/memory.cc.o"
  "CMakeFiles/mips_sim.dir/memory.cc.o.d"
  "CMakeFiles/mips_sim.dir/surprise.cc.o"
  "CMakeFiles/mips_sim.dir/surprise.cc.o.d"
  "libmips_sim.a"
  "libmips_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
