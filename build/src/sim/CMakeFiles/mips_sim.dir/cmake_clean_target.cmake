file(REMOVE_RECURSE
  "libmips_sim.a"
)
