# Empty dependencies file for mips_sim.
# This may be replaced when dependencies are built.
