file(REMOVE_RECURSE
  "CMakeFiles/mips_support.dir/logging.cc.o"
  "CMakeFiles/mips_support.dir/logging.cc.o.d"
  "CMakeFiles/mips_support.dir/stats.cc.o"
  "CMakeFiles/mips_support.dir/stats.cc.o.d"
  "CMakeFiles/mips_support.dir/strings.cc.o"
  "CMakeFiles/mips_support.dir/strings.cc.o.d"
  "CMakeFiles/mips_support.dir/table.cc.o"
  "CMakeFiles/mips_support.dir/table.cc.o.d"
  "libmips_support.a"
  "libmips_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
