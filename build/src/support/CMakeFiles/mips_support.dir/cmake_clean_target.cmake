file(REMOVE_RECURSE
  "libmips_support.a"
)
