# Empty dependencies file for mips_support.
# This may be replaced when dependencies are built.
