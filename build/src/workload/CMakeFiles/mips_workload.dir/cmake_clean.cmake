file(REMOVE_RECURSE
  "CMakeFiles/mips_workload.dir/analyzers.cc.o"
  "CMakeFiles/mips_workload.dir/analyzers.cc.o.d"
  "CMakeFiles/mips_workload.dir/corpus.cc.o"
  "CMakeFiles/mips_workload.dir/corpus.cc.o.d"
  "libmips_workload.a"
  "libmips_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mips_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
