file(REMOVE_RECURSE
  "libmips_workload.a"
)
