# Empty dependencies file for mips_workload.
# This may be replaced when dependencies are built.
