file(REMOVE_RECURSE
  "CMakeFiles/ccm_test.dir/ccm_test.cc.o"
  "CMakeFiles/ccm_test.dir/ccm_test.cc.o.d"
  "ccm_test"
  "ccm_test.pdb"
  "ccm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ccm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
