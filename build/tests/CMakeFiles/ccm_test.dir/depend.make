# Empty dependencies file for ccm_test.
# This may be replaced when dependencies are built.
