file(REMOVE_RECURSE
  "CMakeFiles/plc_test.dir/plc_test.cc.o"
  "CMakeFiles/plc_test.dir/plc_test.cc.o.d"
  "plc_test"
  "plc_test.pdb"
  "plc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
