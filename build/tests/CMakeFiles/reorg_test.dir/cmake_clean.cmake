file(REMOVE_RECURSE
  "CMakeFiles/reorg_test.dir/reorg_test.cc.o"
  "CMakeFiles/reorg_test.dir/reorg_test.cc.o.d"
  "reorg_test"
  "reorg_test.pdb"
  "reorg_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reorg_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
