/**
 * @file
 * The condition-code study, interactively: generates code for boolean
 * expressions under all four architectural styles (Figures 1-3) and
 * prints static and expected dynamic instruction counts, ending with
 * the Table 6 cost comparison.
 */
#include <cstdio>

#include "ccm/cost.h"

namespace {

void
show(const mips::ccm::BoolExpr &expr)
{
    using namespace mips::ccm;
    std::printf("expression: %s\n\n", exprToString(expr).c_str());
    for (Style style : {Style::SET_CONDITIONALLY, Style::CC_COND_SET,
                        Style::CC_BRANCH_FULL,
                        Style::CC_BRANCH_EARLY_OUT}) {
        for (Context ctx : {Context::STORE, Context::JUMP}) {
            CcProgram prog = generate(expr, style, ctx);
            ClassCounts dyn = expectedDynamicCounts(prog, expr);
            std::printf("--- %s, %s context ---\n",
                        styleName(style).c_str(),
                        ctx == Context::STORE ? "store" : "jump");
            std::fputs(prog.listing().c_str(), stdout);
            std::printf("    static %d, avg executed %.2f "
                        "(%.2f compares, %.2f register, %.2f "
                        "branches)\n\n",
                        prog.staticCount(), dyn.total(), dyn.compare,
                        dyn.reg, dyn.branch);
        }
    }
}

} // namespace

int
main()
{
    using namespace mips::ccm;

    std::puts("=== the paper's example: "
              "Found := (Rec = Key) OR (I = 13) ===\n");
    show(*paperExample());

    std::puts("=== a compound expression: "
              "NOT ((a < 10) AND ((b = 1) OR (c > 0))) ===\n");
    BoolExprPtr compound = makeNot(makeAnd(
        makeLeafConst("a", mips::isa::Cond::LT, 10),
        makeOr(makeLeafConst("b", mips::isa::Cond::EQ, 1),
               makeLeafConst("c", mips::isa::Cond::GT, 0))));
    show(*compound);

    std::puts("=== Table 6 costs under the paper's mix ===");
    for (Style style : {Style::SET_CONDITIONALLY, Style::CC_COND_SET,
                        Style::CC_BRANCH_FULL,
                        Style::CC_BRANCH_EARLY_OUT}) {
        Table6Entry entry = table6Entry(style);
        std::printf("%-36s store %5.1f  jump %5.1f  total %5.1f\n",
                    styleName(style).c_str(), entry.store_cost,
                    entry.jump_cost, entry.total_cost);
    }
    return 0;
}
