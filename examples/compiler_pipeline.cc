/**
 * @file
 * The full tool chain on a Pascal-like program: compile, peephole,
 * reorganize, link, execute — with the intermediate artifacts printed
 * so the hardware/software division of labour is visible.
 */
#include <cstdio>

#include "plc/driver.h"
#include "sim/machine.h"

int
main()
{
    const char *source =
        "program primes;\n"
        "const limit = 50;\n"
        "var sieve: array [2..50] of boolean;\n"
        "    i, j, count: integer;\n"
        "begin\n"
        "  for i := 2 to limit do sieve[i] := true;\n"
        "  i := 2;\n"
        "  while i * i <= limit do begin\n"
        "    if sieve[i] then begin\n"
        "      j := i * i;\n"
        "      while j <= limit do begin\n"
        "        sieve[j] := false;\n"
        "        j := j + i;\n"
        "      end;\n"
        "    end;\n"
        "    i := i + 1;\n"
        "  end;\n"
        "  count := 0;\n"
        "  for i := 2 to limit do\n"
        "    if sieve[i] then count := count + 1;\n"
        "  writeint(count);\n"
        "end.\n";

    auto exe = mips::plc::buildExecutable(source);
    if (!exe.ok()) {
        std::fprintf(stderr, "compile error: %s\n",
                     exe.error().str().c_str());
        return 1;
    }

    std::printf("=== source (sieve of Eratosthenes) ===\n%s\n", source);
    std::printf("=== first 24 lines of generated legal code ===\n");
    int shown = 0;
    for (size_t i = 0;
         i < exe.value().asm_text.size() && shown < 24; ++i) {
        std::putchar(exe.value().asm_text[i]);
        if (exe.value().asm_text[i] == '\n')
            ++shown;
    }

    std::printf("\n=== build statistics ===\n");
    std::printf("redundant loads eliminated: %zu\n",
                exe.value().peephole.loads_eliminated);
    const mips::reorg::ReorgStats &rs = exe.value().reorg_stats;
    std::printf("reorganizer: %zu -> %zu words, %zu no-ops, "
                "%zu packed, %zu/%zu/%zu slots (move/dup/hoist)\n",
                rs.input_words, rs.output_words, rs.noops_inserted,
                rs.packed_words, rs.slots_filled_move,
                rs.slots_filled_dup, rs.slots_filled_hoist);

    mips::sim::Machine machine;
    machine.load(exe.value().program);
    if (machine.cpu().run() != mips::sim::StopReason::HALT) {
        std::fprintf(stderr, "run failed: %s\n",
                     machine.cpu().errorMessage().c_str());
        return 1;
    }
    std::printf("\n=== execution ===\n");
    std::printf("console output: %s (primes below 50: expect 15)\n",
                machine.memory().consoleOutput().c_str());
    std::printf("cycles: %llu, loads: %llu, stores: %llu, "
                "branches taken: %llu\n",
                static_cast<unsigned long long>(
                    machine.cpu().stats().cycles),
                static_cast<unsigned long long>(
                    machine.cpu().stats().loads),
                static_cast<unsigned long long>(
                    machine.cpu().stats().stores),
                static_cast<unsigned long long>(
                    machine.cpu().stats().branches_taken));
    return machine.memory().consoleOutput() == "15" ? 0 : 1;
}
