/**
 * @file
 * The observability layer, interactively: runs the corpus tool chain
 * through a pipeline Session twice with tracing enabled, then walks
 * the metrics snapshot (cache hits vs misses, simulator counters,
 * verifier outcomes) and exports the spans as a Chrome-trace JSON
 * file (load it in chrome://tracing or ui.perfetto.dev).
 *
 * Self-verifying: exits non-zero if the registry invariants don't
 * hold — per stage lookups == hits + misses, the second (warm) pass
 * all hits, every verification clean, and the trace non-empty.
 */
#include <cstdio>
#include <cstdlib>

#include "obs/catalog.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "pipeline/session.h"
#include "workload/corpus.h"

namespace {

namespace obs = mips::obs;
namespace pl = mips::pipeline;

void
require(bool ok, const char *what)
{
    if (!ok) {
        std::fprintf(stderr, "observability: FAILED: %s\n", what);
        std::exit(1);
    }
}

size_t
runCorpusOnce(pl::Session &session)
{
    std::vector<mips::workload::CorpusProgram> programs =
        mips::workload::corpus();
    programs.push_back(mips::workload::fibonacciProgram());
    pl::ChainSpec spec;
    spec.hazard_verify = true;
    spec.simulate = true;
    std::vector<pl::ChainResult> results =
        pl::runAll(session, programs, spec, pl::StageOptions{}, 4);
    for (const pl::ChainResult &r : results) {
        require(r.ok(), "corpus chain failed");
        require(r.verify->report.clean(), "corpus unit not clean");
    }
    return results.size();
}

} // namespace

int
main()
{
    // 1. Switch the span tracer on. Instrumentation is always present
    //    on the pipeline paths; enabling just arms the clock + ring.
    obs::Tracer &tracer = obs::Tracer::instance();
    tracer.enable(true);

    // 2. Cold pass: every stage computes. Warm pass: every stage hits
    //    the session cache.
    pl::Session session;
    size_t programs = runCorpusOnce(session);
    std::printf("cold pass: %zu corpus chains verified and "
                "simulated\n", programs);
    runCorpusOnce(session);
    std::printf("warm pass: same session, all artifacts cached\n\n");

    // 3. Read the registry. A Snapshot is a point-in-time merged view
    //    of every metric, sorted by name.
    obs::registerBuiltinMetrics();
    obs::Snapshot snap = obs::Registry::instance().snapshot();

    std::printf("%-34s %10s %10s %10s\n", "stage", "lookups", "hits",
                "misses");
    for (size_t s = 0; s < obs::kPipelineStageCount; ++s) {
        const char *stage = obs::pipelineStageName(s);
        char name[64];
        std::snprintf(name, sizeof name, "pipeline.%s.lookups", stage);
        uint64_t lookups = snap.counter(name);
        std::snprintf(name, sizeof name, "pipeline.%s.hits", stage);
        uint64_t hits = snap.counter(name);
        std::snprintf(name, sizeof name, "pipeline.%s.misses", stage);
        uint64_t misses = snap.counter(name);
        if (lookups == 0)
            continue; // stage not on this chain (parse/assemble/tv)
        std::printf("%-34s %10llu %10llu %10llu\n", stage,
                    static_cast<unsigned long long>(lookups),
                    static_cast<unsigned long long>(hits),
                    static_cast<unsigned long long>(misses));
        require(lookups == hits + misses,
                "lookups == hits + misses per stage");
        require(hits >= misses,
                "warm pass should have made every stage hit");
    }

    std::printf("\nsimulator:  %llu instructions over %llu runs, "
                "%llu free data cycles\n",
                static_cast<unsigned long long>(
                    snap.counter("sim.instructions")),
                static_cast<unsigned long long>(
                    snap.counter("sim.runs")),
                static_cast<unsigned long long>(
                    snap.counter("sim.free_data_cycles")));
    std::printf("verifier:   %llu units, %llu clean\n",
                static_cast<unsigned long long>(
                    snap.counter("verify.units")),
                static_cast<unsigned long long>(
                    snap.counter("verify.clean_units")));
    require(snap.counter("sim.instructions") > 0,
            "simulate stage published instructions");
    require(snap.counter("verify.units") ==
                snap.counter("verify.clean_units"),
            "every corpus verification clean");

    // The histogram of stage-computation latency: bucket counts are
    // cumulative-free (per bucket), last entry is the overflow.
    const obs::Sample *hist = snap.find("pipeline.stage_miss_ms");
    require(hist != nullptr, "pipeline.stage_miss_ms registered");
    require(hist->hist_count > 0, "stage latencies observed");
    std::printf("stage-miss latency: %llu observations, "
                "%.1f ms total\n\n",
                static_cast<unsigned long long>(hist->hist_count),
                hist->hist_sum);

    // 4. Export the spans. Each computed stage recorded one span with
    //    its chain span as parent; the warm pass recorded chains with
    //    no children (nothing computed).
    std::vector<obs::SpanRecord> spans = tracer.spans();
    require(!spans.empty(), "tracer collected spans");
    size_t roots = 0;
    for (const obs::SpanRecord &span : spans)
        roots += span.parent == 0;
    std::printf("tracer: %zu spans (%zu roots), dropped %llu\n",
                spans.size(), roots,
                static_cast<unsigned long long>(tracer.dropped()));
    require(roots > 0 && roots < spans.size(),
            "both root and nested spans present");

    const char *trace_path = "observability_trace.json";
    require(tracer.writeChromeTrace(trace_path), "trace written");
    std::printf("wrote %s — load it in chrome://tracing\n", trace_path);

    std::printf("\nobservability: all registry invariants hold\n");
    return 0;
}
