/**
 * @file
 * A miniature operating system on the Section 3 machinery: the
 * surprise-register dispatch ROM at address zero, demand paging
 * through the bus-programmed off-chip map, the on-chip segmentation
 * unit (PID insertion), two privilege levels, and monitor calls.
 *
 * The kernel boots in supervisor mode, installs the user program's
 * code page, configures segmentation for PID 1, and drops to user
 * mode with RFE. The user program touches three data pages (each
 * touch demand-faults; the kernel allocates a frame and installs it
 * on the fly) and prints through a putchar monitor call, because user
 * code cannot reach the console device directly.
 */
#include <cstdio>

#include "asm/assembler.h"
#include "reorg/reorganizer.h"
#include "sim/machine.h"

namespace {

mips::assembler::Program
buildImage(const char *source)
{
    auto unit = mips::assembler::parse(source);
    if (!unit.ok()) {
        std::fprintf(stderr, "parse error: %s\n",
                     unit.error().str().c_str());
        std::exit(1);
    }
    auto reorganized = mips::reorg::reorganize(unit.value());
    return mips::assembler::link(reorganized.unit).take();
}

/** Exception dispatch ROM at physical 0 (never paged, Section 3.3). */
const char *const kRom = R"(
        st r1, @0x300           ; save the registers we use
        st r2, @0x301
        st r3, @0x302
        mfs sr, r1
        srl r1, #12, r2
        and r2, #15, r2         ; exception cause field
        beq r2, #5, pf          ; PAGE_FAULT
        beq r2, #3, svc         ; TRAP (monitor call)
        halt                    ; anything else: panic

; -- demand pager: allocate the next frame, program the bus map -------
pf:     mfs fault, r1           ; faulting system virtual address
        srl r1, #10, r1
        sll r1, #10, r1         ; page base
        ld @0x310, r2           ; next free frame number
        add r2, #1, r3
        st r3, @0x310
        li #0xff005, r3         ; MAP_SVA
        st r1, (r3)
        li #0xff006, r3         ; MAP_INSTALL
        st r2, (r3)
        ld @0x312, r1           ; fault counter (for the demo)
        add r1, #1, r1
        st r1, @0x312
        bra out

; -- monitor calls: trap #1 = putchar(r10), trap #2 = exit ------------
svc:    srl r1, #12, r2         ; trap code sits at bits [27:16]
        srl r2, #4, r2          ; (shift amounts are 4-bit fields)
        and r2, #15, r2
        beq r2, #2, exit
        li #0xff000, r3         ; console (supervisor only)
        st r10, (r3)
        bra out
exit:   halt

out:    ld @0x302, r3
        ld @0x301, r2
        ld @0x300, r1
        rfe
)";

/** Kernel boot code (physical 0x800). */
const char *const kBoot = R"(
.org 0x800
        movi #32, r1            ; frame allocator starts at frame 32
        st r1, @0x310
        movi #0, r1
        st r1, @0x312           ; page-fault counter
        movi #32, r2            ; sva of user page 0 = pid 1 << 20
        sll r2, #15, r2         ; (32 << 15 = 0x100000)
        li #0xff005, r3
        st r2, (r3)
        movi #16, r2            ; user code preloaded in frame 16
        li #0xff006, r3
        st r2, (r3)
        movi #4, r2             ; segmentation: 4 masked bits,
        mts r2, segbits
        movi #1, r2             ; process id 1
        mts r2, segpid
        movi #0, r2             ; resume stream: user vaddr 0, 1, 2
        mts r2, ra0
        movi #1, r2
        mts r2, ra1
        movi #2, r2
        mts r2, ra2
        movi #0x81, r2          ; SR: supervisor now; previous bits =
        mts r2, sr              ; user mode with mapping enabled
        rfe                     ; drop to user space
)";

/** The user program (virtual address 0, demand-paged data). */
const char *const kUser = R"(
        movi #0, r3             ; page index
        li #0x2000, r2          ; data pointer (unmapped until touched)
        li #0x400, r5           ; one page of words
uloop:  st r3, (r2)             ; first touch faults the page in
        ld (r2), r4
        movi #'a', r10
        add r10, r4, r10        ; 'a' + value read back
        trap #1                 ; putchar
        add r2, r5, r2
        add r3, #1, r3
        blt r3, #3, uloop
        trap #2                 ; exit
)";

} // namespace

int
main()
{
    mips::sim::Machine machine;

    mips::assembler::Program rom = buildImage(kRom);
    mips::assembler::Program boot = buildImage(kBoot);
    mips::assembler::Program user = buildImage(kUser);
    machine.memory().loadImage(rom.origin, rom.image);
    machine.memory().loadImage(boot.origin, boot.image);
    machine.memory().loadImage(0x4000, user.image); // frame 16

    machine.cpu().reset(0x800);
    mips::sim::StopReason reason = machine.cpu().run(1'000'000);
    if (reason != mips::sim::StopReason::HALT) {
        std::fprintf(stderr, "kernel panic: %s\n",
                     machine.cpu().errorMessage().c_str());
        return 1;
    }

    uint32_t faults = machine.memory().peek(0x312);
    std::printf("user program printed:   %s\n",
                machine.memory().consoleOutput().c_str());
    std::printf("demand page faults:     %u (kernel counter)\n",
                faults);
    std::printf("mapping-unit faults:    %llu of %llu translations\n",
                static_cast<unsigned long long>(
                    machine.mapping().faults()),
                static_cast<unsigned long long>(
                    machine.mapping().translations()));
    std::printf("resident page entries:  %zu\n",
                machine.mapping().pageCount());
    std::printf("exceptions taken:       %llu\n",
                static_cast<unsigned long long>(
                    machine.cpu().stats().exceptions));

    bool ok = machine.memory().consoleOutput() == "abc" && faults == 3;
    std::printf("%s\n", ok ? "OK: three pages demand-faulted, "
                             "user output correct"
                           : "MISMATCH");
    return ok ? 0 : 1;
}
