/**
 * @file
 * Quickstart: assemble a small program as *legal code*, run it on the
 * interlocked reference machine, then reorganize it for the real
 * (interlock-free) pipeline and run it there — the library's central
 * workflow in ~60 lines.
 */
#include <cstdio>

#include "asm/assembler.h"
#include "reorg/reorganizer.h"
#include "sim/machine.h"

int
main()
{
    // Legal code: written for a machine with interlocks. Note the
    // load-use and branch sequences carry no no-ops and no delay
    // slots — the reorganizer supplies pipeline correctness.
    const char *source =
        "; sum of squares 1..10, plus a byte extracted from a word\n"
        "        movi #0, r1          ; sum\n"
        "        movi #1, r2          ; i\n"
        "loop:   mov r2, r10\n"
        "        mov r2, r11\n"
        "        movi #0, r3\n"
        "mul:    beq r11, #0, done\n"
        "        bevn r11, #0, skip\n"
        "        add r3, r10, r3\n"
        "skip:   sll r10, #1, r10\n"
        "        srl r11, #1, r11\n"
        "        bra mul\n"
        "done:   add r1, r3, r1\n"
        "        add r2, #1, r2\n"
        "        ble r2, #10, loop\n"
        "        st r1, @500\n"
        "        ld @500, r4          ; reload (load-use hazard!)\n"
        "        xc r0, r4, r5        ; low byte of the sum\n"
        "        halt\n";

    auto unit = mips::assembler::parse(source);
    if (!unit.ok()) {
        std::fprintf(stderr, "parse error: %s\n",
                     unit.error().str().c_str());
        return 1;
    }

    // 1. The interlocked reference machine runs legal code directly.
    auto legal = mips::assembler::link(unit.value());
    mips::sim::FunctionalRun reference =
        mips::sim::runFunctional(legal.value());
    std::printf("reference machine:  sum = %u (in %llu instructions)\n",
                reference.cpu->reg(1),
                static_cast<unsigned long long>(
                    reference.cpu->instructions()));

    // 2. The reorganizer schedules for the pipeline: no interlocks in
    // hardware, so hazards are covered by code motion and no-ops.
    mips::reorg::ReorgResult reorganized =
        mips::reorg::reorganize(unit.value());
    std::printf("reorganizer:        %zu -> %zu words "
                "(%zu no-ops, %zu packed, %zu slots filled)\n",
                reorganized.stats.input_words,
                reorganized.stats.output_words,
                reorganized.stats.noops_inserted,
                reorganized.stats.packed_words,
                reorganized.stats.slots_filled_move +
                    reorganized.stats.slots_filled_dup +
                    reorganized.stats.slots_filled_hoist);

    mips::sim::Machine machine;
    machine.load(mips::assembler::link(reorganized.unit).value());
    if (machine.cpu().run() != mips::sim::StopReason::HALT) {
        std::fprintf(stderr, "pipeline error: %s\n",
                     machine.cpu().errorMessage().c_str());
        return 1;
    }
    const mips::sim::CpuStats &stats = machine.cpu().stats();
    std::printf("pipeline machine:   sum = %u, low byte = %u\n",
                machine.cpu().reg(1), machine.cpu().reg(5));
    std::printf("                    %llu cycles, %.1f%% of data "
                "bandwidth free\n",
                static_cast<unsigned long long>(stats.cycles),
                stats.freeBandwidth() * 100.0);

    bool ok = machine.cpu().reg(1) == reference.cpu->reg(1) &&
              machine.cpu().reg(1) == 385;
    std::printf("%s\n", ok ? "OK: both machines agree (385)"
                           : "MISMATCH");
    return ok ? 0 : 1;
}
