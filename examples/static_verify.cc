/**
 * @file
 * Static verification: the pipeline has no interlock hardware, so a
 * scheduling mistake silently computes a wrong answer. mipsverify
 * checks the software-interlock contract *before* anything runs.
 *
 * This example hand-schedules a unit with two classic mistakes (a
 * load-use read in the delay slot, a branch in another branch's delay
 * slot), shows the diagnostics, then reorganizes the legal version and
 * shows that the output verifies clean — the same oracle the test
 * suite applies to every reorganized unit.
 */
#include <cstdio>

#include "asm/assembler.h"
#include "reorg/reorganizer.h"
#include "verify/verify.h"

int
main()
{
    // Hand-"scheduled" for the pipeline — wrongly. The ld/add pair is
    // a stale-value read; the bra sits in the beq's delay slot, which
    // is architecturally undefined when both are taken.
    const char *broken =
        "        li #500, r13\n"
        "        ld 0(r13), r2\n"
        "        add r2, #1, r3      ; reads r2 one cycle too early\n"
        "loop:   beq r3, #0, out\n"
        "        bra loop            ; transfer in a delay slot\n"
        "        st r3, 1(r13)\n"
        "out:    halt\n";

    auto unit = mips::assembler::parse(broken);
    if (!unit.ok()) {
        std::fprintf(stderr, "parse error: %s\n",
                     unit.error().str().c_str());
        return 1;
    }

    mips::verify::VerifyReport report =
        mips::verify::verifyUnit(unit.value());
    std::printf("hand-scheduled unit:\n%s",
                mips::verify::reportText(report, unit.value(),
                                         "broken.s")
                    .c_str());
    std::printf("=> %zu error(s), %zu warning(s)\n\n", report.errors,
                report.warnings);

    bool caught_load = report.countOf(mips::verify::Code::HZ001) == 1;
    bool caught_slot = report.countOf(mips::verify::Code::HZ002) == 1;

    // The supported path: write *legal* code and let the reorganizer
    // schedule it; verifyReorganization also checks that .noreorder
    // regions survived verbatim.
    mips::reorg::ReorgResult reorganized =
        mips::reorg::reorganize(unit.value());
    mips::verify::VerifyReport clean = mips::verify::verifyReorganization(
        unit.value(), reorganized.unit);
    std::printf("reorganized unit: %zu error(s) — %s\n", clean.errors,
                clean.clean() ? "contract satisfied" : "BROKEN");

    bool ok = caught_load && caught_slot && clean.clean();
    std::printf("%s\n", ok ? "OK: verifier caught both hazards"
                           : "MISMATCH");
    return ok ? 0 : 1;
}
