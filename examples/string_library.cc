/**
 * @file
 * Byte processing on a word-addressed machine (Section 4.1): a small
 * string library — strlen, strupper, strcopy — written with byte
 * pointers (word address * 4 + byte offset), the base-shifted
 * addressing mode, and the insert/extract-byte instructions, exactly
 * the support the paper argues makes word addressing viable.
 */
#include <cstdio>

#include "asm/assembler.h"
#include "reorg/reorganizer.h"
#include "sim/machine.h"

int
main()
{
    const char *source = R"(
; ---- main -----------------------------------------------------------
        la src, r1
        sll r1, #2, r1          ; word address -> byte pointer
        call strupper, r15
        la src, r1
        sll r1, #2, r1
        la dst, r2
        sll r2, #2, r2
        call strcopy, r15
        la dst, r2              ; print the copy
        sll r2, #2, r2
        li #0xff000, r7         ; console
print:  ld (r0+r2>>2), r4
        xc r2, r4, r5
        beq r5, #0, fin
        st r5, (r7)
        add r2, #1, r2
        bra print
fin:    la src, r1
        sll r1, #2, r1
        call strlen, r15        ; r2 = length
        halt

; ---- strlen: r1 = byte ptr -> r2 = length ----------------------------
strlen: movi #0, r2
len1:   add r1, r2, r3
        ld (r0+r3>>2), r4
        xc r3, r4, r4
        beq r4, #0, len2
        add r2, #1, r2
        bra len1
len2:   jmp (r15)

; ---- strupper: uppercase a..z in place, r1 = byte ptr ----------------
strupper:
up1:    ld (r0+r1>>2), r4
        xc r1, r4, r5
        beq r5, #0, up3
        movi #97, r6            ; 'a'
        blt r5, r6, up2
        movi #122, r6           ; 'z'
        bgt r5, r6, up2
        movi #32, r6
        sub r5, r6, r5
        mtlo r1
        ic r5, r4
        st r4, (r0+r1>>2)
up2:    add r1, #1, r1
        bra up1
up3:    jmp (r15)

; ---- strcopy: r1 = src byte ptr, r2 = dst byte ptr -------------------
strcopy:
cp1:    ld (r0+r1>>2), r4
        xc r1, r4, r5
        ld (r0+r2>>2), r6       ; read-modify-write of the dst word
        mtlo r2
        ic r5, r6
        st r6, (r0+r2>>2)
        beq r5, #0, cp2
        add r1, #1, r1
        add r2, #1, r2
        bra cp1
cp2:    jmp (r15)

src:    .asciiw "hello, word-addressed world!"
dst:    .space 10
)";

    auto unit = mips::assembler::parse(source);
    if (!unit.ok()) {
        std::fprintf(stderr, "parse error: %s\n",
                     unit.error().str().c_str());
        return 1;
    }
    mips::reorg::ReorgResult reorganized =
        mips::reorg::reorganize(unit.value());

    mips::sim::Machine machine;
    machine.load(mips::assembler::link(reorganized.unit).value());
    if (machine.cpu().run() != mips::sim::StopReason::HALT) {
        std::fprintf(stderr, "run failed: %s\n",
                     machine.cpu().errorMessage().c_str());
        return 1;
    }

    std::printf("uppercased copy: %s\n",
                machine.memory().consoleOutput().c_str());
    std::printf("strlen:          %u\n", machine.cpu().reg(2));
    std::printf("byte loads+stores executed: %llu loads, %llu stores "
                "over %llu cycles\n",
                static_cast<unsigned long long>(
                    machine.cpu().stats().loads),
                static_cast<unsigned long long>(
                    machine.cpu().stats().stores),
                static_cast<unsigned long long>(
                    machine.cpu().stats().cycles));

    bool ok = machine.memory().consoleOutput() ==
                  "HELLO, WORD-ADDRESSED WORLD!" &&
              machine.cpu().reg(2) == 28;
    std::printf("%s\n", ok ? "OK" : "MISMATCH");
    return ok ? 0 : 1;
}
