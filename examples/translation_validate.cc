/**
 * @file
 * Translation validation: the hazard verifier proves a reorganized
 * unit is a *well-formed pipeline program*; it cannot prove it still
 * computes what the legal input computed. The translation validator
 * closes that gap by symbolic execution — the legal unit under
 * sequential semantics, the reorganized unit under pipeline semantics
 * (load delays, packed pieces, delay slots) — and proves both sides
 * leave identical architectural state for *all* register values.
 *
 * This example reorganizes a hazardful legal unit and proves the
 * output equivalent, then tampers with one immediate in the output.
 * The tampered unit still passes the hazard verifier (it is a
 * perfectly scheduled wrong program) but the validator reports a
 * TV001 register divergence, printing the two symbolic expressions
 * that disagree.
 */
#include <cstdio>

#include "asm/assembler.h"
#include "reorg/reorganizer.h"
#include "verify/tv.h"
#include "verify/verify.h"

int
main()
{
    // Legal (sequential-semantics) code, full of load-use and
    // store/load dependences the reorganizer must schedule around.
    const char *legal =
        "        li #500, r13\n"
        "        movi #41, r1\n"
        "        st r1, 0(r13)\n"
        "        ld 0(r13), r2\n"
        "        add r2, #1, r3\n"
        "        st r3, 1(r13)\n"
        "        ld 1(r13), r4\n"
        "        add r4, r2, r5\n"
        "        st r5, 2(r13)\n"
        "        halt\n";

    auto unit = mips::assembler::parse(legal);
    if (!unit.ok()) {
        std::fprintf(stderr, "parse error: %s\n",
                     unit.error().str().c_str());
        return 1;
    }

    mips::reorg::ReorgResult reorganized =
        mips::reorg::reorganize(unit.value());

    // Prove, not test: sequential(input) == pipeline(output) for all
    // initial register and memory states.
    mips::verify::VerifyReport proof = mips::verify::validateTranslation(
        unit.value(), reorganized.unit, reorganized.hints);
    std::printf("reorganized unit: %zu error(s), %zu unproven — %s\n",
                proof.errors, proof.notes,
                proof.clean() && proof.notes == 0 ? "EQUIVALENT, proven"
                                                  : "NOT proven");
    bool proved = proof.clean() && proof.notes == 0;

    // Now miscompile it by hand: 41 becomes 40. No hazard is
    // introduced — only the hazard-invisible kind of bug.
    mips::assembler::Unit tampered = reorganized.unit;
    for (auto &item : tampered.items) {
        if (!item.is_data && item.inst.alu &&
            item.inst.alu->op == mips::isa::AluOp::MOVI8) {
            item.inst.alu->imm8 ^= 1;
            break;
        }
    }

    mips::verify::VerifyReport hazards =
        mips::verify::verifyReorganization(unit.value(), tampered);
    std::printf("tampered unit, hazard verifier: %zu error(s) "
                "(well-formed pipeline code — but wrong)\n",
                hazards.errors);

    mips::verify::VerifyReport caught = mips::verify::validateTranslation(
        unit.value(), tampered, reorganized.hints);
    std::printf("tampered unit, translation validator:\n%s",
                mips::verify::reportText(caught, tampered, "tampered.s")
                    .c_str());

    bool ok = proved && hazards.clean() &&
              caught.countOf(mips::verify::Code::TV001) >= 1;
    std::printf("%s\n",
                ok ? "OK: equivalence proven, miscompile caught"
                   : "MISMATCH");
    return ok ? 0 : 1;
}
