#!/usr/bin/env bash
# Tier-1 verification: build, run the full test suite, statically
# verify the whole workload corpus with mipsverify (including the
# value-range/memory-safety pass and its simulator-as-oracle fault
# corpus under tests/data/range/), check the observability surface
# (--stats=json self-consistency and a loadable --trace-out file),
# then run the simulator throughput benchmark and sanity-check its
# JSON report (schema 1, embedded metrics snapshot).
#
# Usage:
#   scripts/check.sh [build-dir]               full check (default ./build)
#   scripts/check.sh --bench-only [build-dir]  benchmark + JSON check only
#   scripts/check.sh sanitize [build-dir]      ASan+UBSan build + ctest
#                                              (default ./build-sanitize)
#   scripts/check.sh tsan [build-dir]          ThreadSanitizer build; runs
#                                              the pipeline-session tests
#                                              and a parallel mipsverify
#                                              corpus pass (default
#                                              ./build-tsan)
#   scripts/check.sh tv [build-dir]            translation-validation gate
#                                              only (corpus must prove
#                                              equivalent under the full
#                                              reorganizer and under each
#                                              single-stage toggle)
#   scripts/check.sh lint [build-dir]          clang-tidy (.clang-tidy
#                                              config) over the verify and
#                                              pipeline layers + ctest;
#                                              skips the tidy step with a
#                                              notice when clang-tidy is
#                                              not installed
#   scripts/check.sh nightly [build-dir]       the full default check, then
#                                              a 500-program differential
#                                              fuzz sweep on all cores and
#                                              a ThreadSanitizer fuzz pass
#                                              (--jobs 0) in ./build-tsan
#                                              (see docs/FUZZING.md)
#
# The --bench-only mode is what the `check_bench_json` CTest target
# runs: the full mode invokes ctest itself and must not recurse.
#
# The throughput benchmark step validates that the report parses and
# carries both the fast-path and baseline aggregate numbers; it does
# not enforce a speedup threshold, since CI machines vary (see the
# committed BENCH_throughput.json for reference numbers). The pipeline
# benchmark additionally floor-gates the jobs=8 parallel speedup with
# a core-count-aware threshold (>= 1.0 on multi-core hosts, a 0.5
# collapse tripwire on single-core ones).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)

# Translation-validation gate: every corpus program must *prove*
# equivalent (--strict turns any TV090 "not proven" note into a
# failure), with every reorganizer stage enabled and with each stage
# disabled one at a time.
run_tv_gate() {
    local build_dir=$1
    local config
    for config in "" "--no-reorder" "--no-pack" "--no-fill-delay" \
        "--no-jump-tables"; do
        # shellcheck disable=SC2086  # word-splitting is intended
        "$build_dir/src/verify/mipsverify" --tv --strict --quiet \
            $config --corpus
        echo "check.sh: tv gate clean (${config:-full reorganizer})"
    done
}

# Differential-fuzz smoke gate (docs/FUZZING.md): a pinned-seed batch
# must come back with zero mismatches and zero front-end errors, two
# same-seed runs must be byte-identical (the seed-reproducibility
# contract), and every checked-in counterexample under
# tests/data/fuzz-regressions/ must still replay clean — a replay
# failure means a real bug with the shape of a previously-found one.
run_fuzz_gate() {
    local build_dir=$1
    local mv=$build_dir/src/verify/mipsverify
    "$mv" --fuzz 25 --seed 1982 --quiet
    "$mv" --fuzz 25 --seed 1982 > "$build_dir/fuzz-a.out"
    "$mv" --fuzz 25 --seed 1982 > "$build_dir/fuzz-b.out"
    cmp "$build_dir/fuzz-a.out" "$build_dir/fuzz-b.out"
    echo "check.sh: fuzz smoke clean (25 programs, byte-identical)"
    local repro repro_n=0
    for repro in "$repo_root"/tests/data/fuzz-regressions/fuzz-repro-*; do
        if ! "$mv" --fuzz-file "$repro" --quiet; then
            echo "check.sh: FUZZ REGRESSION: $repro no longer replays" \
                "clean — a previously-found counterexample shape has" \
                "resurfaced (docs/FUZZING.md)" >&2
            exit 1
        fi
        repro_n=$((repro_n + 1))
    done
    echo "check.sh: fuzz regressions replay clean ($repro_n reproducers)"
}

if [ "${1:-}" = "nightly" ]; then
    shift
    build_dir=${1:-"$repo_root/build"}
    # The nightly sweep is the default check first — no point fuzzing
    # at scale on a build that fails tier 1.
    "$repo_root/scripts/check.sh" "$build_dir"
    "$build_dir/src/verify/mipsverify" --fuzz 500 --seed 1982 \
        --jobs 0 --quiet --stats=json > "$build_dir/fuzz-nightly.json"
    echo "check.sh: nightly fuzz sweep clean (500 programs)"
    tsan_dir=$repo_root/build-tsan
    cmake -S "$repo_root" -B "$tsan_dir" -DMIPS82_TSAN=ON
    cmake --build "$tsan_dir" -j "$(nproc)" --target mipsverify
    "$tsan_dir/src/verify/mipsverify" --fuzz 100 --seed 1982 \
        --jobs 0 --quiet
    echo "check.sh: nightly tsan fuzz pass clean (100 programs)"
    echo "check.sh: nightly green"
    exit 0
fi

if [ "${1:-}" = "tv" ]; then
    shift
    build_dir=${1:-"$repo_root/build"}
    if [ ! -f "$build_dir/CMakeCache.txt" ]; then
        cmake -S "$repo_root" -B "$build_dir"
    fi
    cmake --build "$build_dir" -j "$(nproc)" --target mipsverify
    run_tv_gate "$build_dir"
    echo "check.sh: tv green"
    exit 0
fi

if [ "${1:-}" = "lint" ]; then
    shift
    build_dir=${1:-"$repo_root/build"}
    if [ ! -f "$build_dir/CMakeCache.txt" ]; then
        cmake -S "$repo_root" -B "$build_dir"
    fi
    cmake --build "$build_dir" -j "$(nproc)"
    if command -v clang-tidy > /dev/null 2>&1; then
        if [ ! -f "$build_dir/compile_commands.json" ]; then
            echo "check.sh: lint: no compile_commands.json in" \
                "$build_dir (re-run cmake)" >&2
            exit 1
        fi
        # The static-analysis layers own the strictest bar; the tidy
        # config (.clang-tidy) promotes every enabled check to error.
        clang-tidy -p "$build_dir" --quiet \
            "$repo_root"/src/verify/*.cc "$repo_root"/src/pipeline/*.cc
        echo "check.sh: lint: clang-tidy clean"
    else
        echo "check.sh: lint: clang-tidy not installed; skipping the" \
            "tidy step (build + tests still gate)"
    fi
    ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure \
        -E '^check_bench_json$'
    echo "check.sh: lint green"
    exit 0
fi

if [ "${1:-}" = "tsan" ]; then
    shift
    build_dir=${1:-"$repo_root/build-tsan"}
    cmake -S "$repo_root" -B "$build_dir" -DMIPS82_TSAN=ON
    cmake --build "$build_dir" -j "$(nproc)" \
        --target pipeline_test obs_test mipsverify
    "$build_dir/tests/pipeline_test"
    "$build_dir/tests/obs_test"
    "$build_dir/src/verify/mipsverify" --jobs 8 --corpus --quiet \
        --stats=json > /dev/null
    # --jobs 0 = auto-detect worker count (docs/CLI.md): same corpus
    # pass (including the dispatch-heavy jump-table programs) through
    # whatever hardware_concurrency() reports.
    "$build_dir/src/verify/mipsverify" --jobs 0 --corpus --quiet \
        --stats=json > /dev/null
    echo "check.sh: tsan green"
    exit 0
fi

if [ "${1:-}" = "sanitize" ]; then
    shift
    build_dir=${1:-"$repo_root/build-sanitize"}
    cmake -S "$repo_root" -B "$build_dir" -DMIPS82_SANITIZE=ON
    cmake --build "$build_dir" -j "$(nproc)"
    ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure \
        -E '^check_bench_json$' # bench timing is meaningless under ASan
    echo "check.sh: sanitize green"
    exit 0
fi

bench_only=0
if [ "${1:-}" = "--bench-only" ]; then
    bench_only=1
    shift
fi
build_dir=${1:-"$repo_root/build"}

if [ "$bench_only" -eq 0 ]; then
    if [ ! -f "$build_dir/CMakeCache.txt" ]; then
        cmake -S "$repo_root" -B "$build_dir"
    fi
    cmake --build "$build_dir" -j "$(nproc)"
    ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure \
        -E '^check_bench_json$' # the bench check runs below either way

    # Static-analysis hygiene: the default check runs the same tidy
    # pass as `check.sh lint` whenever clang-tidy is on PATH (the
    # .clang-tidy config promotes every enabled check to error).
    if command -v clang-tidy > /dev/null 2>&1; then
        clang-tidy -p "$build_dir" --quiet \
            "$repo_root"/src/verify/*.cc "$repo_root"/src/pipeline/*.cc
        echo "check.sh: clang-tidy clean"
    else
        echo "check.sh: clang-tidy not installed; skipping the tidy step"
    fi

    # Static verification gate: every reorganized corpus program must
    # satisfy the software-interlock contract (exit 1 on any error-
    # severity diagnostic).
    "$build_dir/src/verify/mipsverify" --corpus

    # Determinism gate: parallel verification must emit byte-identical
    # output to a serial run, in text and JSON mode (--no-time drops
    # the wall-clock fields, which legitimately vary).
    mv=$build_dir/src/verify/mipsverify
    for mode in "" "--json"; do
        # shellcheck disable=SC2086  # word-splitting is intended
        "$mv" --corpus --no-time --jobs 1 $mode \
            > "$build_dir/verify-serial.out"
        # shellcheck disable=SC2086
        "$mv" --corpus --no-time --jobs 8 $mode \
            > "$build_dir/verify-parallel.out"
        cmp "$build_dir/verify-serial.out" \
            "$build_dir/verify-parallel.out"
        echo "check.sh: --jobs 8 output identical (${mode:-text})"
    done

    # Translation-validation gate: the corpus must also *prove*
    # equivalent, under the full reorganizer and each stage toggle.
    run_tv_gate "$build_dir"

    # Experiment-table determinism gate: the dispatch tradeoff study
    # (chain vs jump-table CASE lowering) must render byte-identically
    # across runs — cycle counts come from the simulator, not wall
    # clocks, so any drift is a real nondeterminism bug.
    "$build_dir/bench/bench_dispatch_lowering" --benchmark_filter='^$' \
        > "$build_dir/dispatch-table-a.out"
    "$build_dir/bench/bench_dispatch_lowering" --benchmark_filter='^$' \
        > "$build_dir/dispatch-table-b.out"
    cmp "$build_dir/dispatch-table-a.out" \
        "$build_dir/dispatch-table-b.out"
    grep -q "jump table" "$build_dir/dispatch-table-a.out"
    echo "check.sh: dispatch experiment table byte-stable"

    # Diagnostics-JSON gate: machine output must parse as a stream of
    # schema-1 documents whose summary blocks agree with the
    # severity counters.
    "$mv" --corpus --json --no-time --quiet \
        > "$build_dir/verify-corpus.json"
    python3 - "$build_dir/verify-corpus.json" <<'EOF'
import json, sys
raw = open(sys.argv[1]).read()
dec, i, docs = json.JSONDecoder(), 0, []
while i < len(raw):
    while i < len(raw) and raw[i].isspace():
        i += 1
    if i >= len(raw):
        break
    doc, i = dec.raw_decode(raw, i)
    docs.append(doc)
if not docs:
    sys.exit("mipsverify --json: no documents emitted")
for doc in docs:
    if doc.get("schema") != 1:
        sys.exit(f"{doc.get('unit')}: diagnostics schema is not 1")
    if sum(doc["summary"].values()) != len(doc["diagnostics"]):
        sys.exit(f"{doc['unit']}: summary counts disagree with the "
                 "diagnostics array")
    by_code = {}
    for d in doc["diagnostics"]:
        by_code[d["code"]] = by_code.get(d["code"], 0) + 1
    if by_code != doc["summary"]:
        sys.exit(f"{doc['unit']}: per-code summary mismatch")
print(f"diagnostics-json gate: {len(docs)} schema-1 documents, "
      f"summaries consistent")
EOF

    # Cost-model parity gate: the static cycle-cost model must agree
    # exactly with the simulator's dynamic per-word issue counts for
    # every straight-line block of every reorganized corpus program.
    "$mv" --corpus --cost=json --quiet --no-time \
        > "$build_dir/cost-corpus.json"
    python3 - "$build_dir/cost-corpus.json" <<'EOF'
import json, sys
raw = open(sys.argv[1]).read()
dec, i, docs = json.JSONDecoder(), 0, []
while i < len(raw):
    while i < len(raw) and raw[i].isspace():
        i += 1
    if i >= len(raw):
        break
    doc, i = dec.raw_decode(raw, i)
    docs.append(doc)
if not docs:
    sys.exit("mipsverify --cost=json: no documents emitted")
checked = exact = 0
for doc in docs:
    parity = doc.get("parity")
    if parity is None:
        sys.exit(f"{doc.get('unit')}: cost report carries no parity "
                 "sweep")
    if parity["violations"] != 0:
        sys.exit(f"{doc['unit']}: {parity['violations']} cost parity "
                 f"violation(s): {parity.get('notes')}")
    checked += parity["checked"]
    exact += parity["exact"]
print(f"cost parity gate: {len(docs)} programs, {checked} blocks "
      f"checked, {exact} exact")
EOF

    # Value-range gate (1): the clean corpus must carry zero MUST
    # memory-safety findings (the --range exit status already enforces
    # this; the JSON pass below re-checks it structurally).
    "$mv" --corpus --range=json --quiet --no-time \
        > "$build_dir/range-corpus.json"
    python3 - "$build_dir/range-corpus.json" <<'EOF'
import json, sys
raw = open(sys.argv[1]).read()
dec, i, docs = json.JSONDecoder(), 0, []
while i < len(raw):
    while i < len(raw) and raw[i].isspace():
        i += 1
    if i >= len(raw):
        break
    doc, i = dec.raw_decode(raw, i)
    docs.append(doc)
if not docs:
    sys.exit("mipsverify --range=json: no documents emitted")
may = 0
for doc in docs:
    if doc.get("schema") != 1:
        sys.exit(f"{doc.get('unit')}: range schema is not 1")
    if doc["must_findings"] != 0:
        sys.exit(f"{doc['unit']}: clean corpus has "
                 f"{doc['must_findings']} MUST memory-safety "
                 "finding(s)")
    if doc["reachable_items"] <= 0:
        sys.exit(f"{doc['unit']}: range analysis reached no items")
    may += doc["may_findings"]
print(f"value-range gate: {len(docs)} programs, 0 must findings, "
      f"{may} may finding(s)")
EOF

    # Value-range gate (2): simulator as oracle over the fault corpus.
    # Every dynamically observed fault/overflow event must be covered
    # by a MUST or MAY finding at (or reachable from) its pc; mapped
    # instruction-fetch page faults are exempt (no resident pages).
    oracle_n=0
    for prog in "$repo_root"/tests/data/range/*.s; do
        "$mv" --range-oracle --quiet --no-time "$prog" > /dev/null
        oracle_n=$((oracle_n + 1))
    done
    echo "check.sh: range-oracle gate clean ($oracle_n programs)"

    # Differential-fuzz smoke gate + regression replay (docs/FUZZING.md).
    run_fuzz_gate "$build_dir"

    # Observability gate: a parallel corpus run with --stats=json must
    # emit a parseable, self-consistent registry snapshot (per stage,
    # lookups == hits + misses), and --trace-out must produce a
    # Chrome-trace document with span events.
    "$mv" --corpus --jobs 8 --quiet --stats=json \
        --trace-out "$build_dir/trace.json" > "$build_dir/stats.json"
    python3 - "$build_dir/stats.json" "$build_dir/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    stats = json.load(f)
if stats["schema"] != 1:
    sys.exit("mipsverify --stats=json: unexpected schema")
metrics = {m["name"]: m for m in stats["metrics"]}
stages = ("parse", "compile", "assemble", "reorganize", "hazard-verify",
          "translation-validate", "simulate", "cost", "range")
for stage in stages:
    lookups = metrics[f"pipeline.{stage}.lookups"]["value"]
    hits = metrics[f"pipeline.{stage}.hits"]["value"]
    misses = metrics[f"pipeline.{stage}.misses"]["value"]
    if lookups != hits + misses:
        sys.exit(f"pipeline.{stage}: lookups {lookups} != "
                 f"hits {hits} + misses {misses}")
if metrics["verify.units"]["value"] <= 0:
    sys.exit("mipsverify --stats=json: no verify.units recorded")
if metrics["verify.unit_ms"]["count"] <= 0:
    sys.exit("mipsverify --stats=json: verify.unit_ms histogram is "
             "dead (no per-unit verify timings observed)")
if metrics["batch.queue_depth"]["value"] != 0:
    sys.exit("mipsverify --stats=json: batch.queue_depth did not "
             "return to 0 after the run")
with open(sys.argv[2]) as f:
    trace = json.load(f)
if not trace["traceEvents"]:
    sys.exit("mipsverify --trace-out: no span events recorded")
print(f"stats/trace gate: {len(metrics)} metrics consistent, "
      f"{len(trace['traceEvents'])} span events")
EOF
fi

json=$build_dir/BENCH_throughput.json
"$build_dir/bench/bench_throughput" --json="$json" \
    --benchmark_min_time=0.1 > /dev/null

python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
agg = report["aggregate"]
fast = agg["fastpath_instructions_per_second"]
slow = agg["baseline_instructions_per_second"]
if report.get("schema") != 1:
    sys.exit("bench_throughput report missing schema 1")
if not report["programs"]:
    sys.exit("bench_throughput reported no programs")
if fast <= 0 or slow <= 0:
    sys.exit("bench_throughput reported non-positive throughput")
metrics = {m["name"]: m for m in report["metrics"]}
if metrics["sim.instructions"]["value"] <= 0:
    sys.exit("bench_throughput snapshot recorded no sim.instructions")
print(f"bench_throughput: fastpath {fast/1e6:.1f}M instr/s, "
      f"baseline {slow/1e6:.1f}M instr/s, speedup {agg['speedup']:.2f}x")
EOF

# Pipeline-session benchmark: corpus chains serial vs cached plus a
# jobs ∈ {1,2,4,8} scaling sweep. Structure is validated, and the
# jobs = 8 speedup is floor-gated with a core-count-aware threshold:
# a multi-core host must not be slower than serial (>= 1.0); a
# single-core host cannot express parallelism and only has to clear a
# collapse tripwire (>= 0.5 — pure scheduling overhead costs ~20%,
# a lock convoy or thundering herd costs far more).
pjson=$build_dir/BENCH_pipeline.json
"$build_dir/bench/bench_pipeline" --json="$pjson" \
    --benchmark_filter='^$' > /dev/null

python3 - "$pjson" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
if report.get("schema") != 4:
    sys.exit("bench_pipeline report missing schema 4")
for key in ("serial_ms", "cached_ms", "parallel_ms"):
    if report[key] <= 0:
        sys.exit(f"bench_pipeline reported non-positive {key}")
if report["programs"] <= 0:
    sys.exit("bench_pipeline reported no programs")
cores = report["host_cores"]
if cores < 1:
    sys.exit("bench_pipeline reported no host_cores")
scaling = report["scaling"]
if [p["jobs"] for p in scaling] != [1, 2, 4, 8]:
    sys.exit("bench_pipeline scaling sweep is not jobs [1, 2, 4, 8]")
for p in scaling:
    if p["ms"] <= 0 or p["speedup"] <= 0:
        sys.exit(f"bench_pipeline scaling point {p} is non-positive")
if abs(scaling[0]["speedup"] - 1.0) > 1e-6:
    sys.exit("bench_pipeline scaling jobs=1 point is not the serial "
             "baseline (speedup != 1.0)")
if scaling[-1]["ms"] != report["parallel_ms"]:
    sys.exit("bench_pipeline parallel_ms disagrees with the jobs=8 "
             "scaling point")
floor = 1.0 if cores >= 2 else 0.5
if report["parallel_speedup"] < floor:
    sys.exit(f"bench_pipeline parallel_speedup "
             f"{report['parallel_speedup']:.3f} below the "
             f"{floor:.1f} floor for a {cores}-core host")
metrics = {m["name"]: m for m in report["metrics"]}
if metrics["pipeline.compile.lookups"]["value"] <= 0:
    sys.exit("bench_pipeline snapshot recorded no pipeline lookups")
if metrics["verify.unit_ms"]["count"] <= 0:
    sys.exit("bench_pipeline snapshot has a dead verify.unit_ms "
             "histogram")
if metrics["batch.queue_depth"]["value"] != 0:
    sys.exit("bench_pipeline left batch.queue_depth non-zero")
if len(report["stages"]) != 9:
    sys.exit("bench_pipeline reported wrong stage count")
misses = sum(s["misses"] for s in report["stages"])
if misses <= 0:
    sys.exit("bench_pipeline cold run recorded no cache misses")
cost = report["cost_stage"]
if cost["misses"] <= 0:
    sys.exit("bench_pipeline cold run recorded no cost-stage misses")
if metrics["verify.cost.reports"]["value"] <= 0:
    sys.exit("bench_pipeline snapshot recorded no cost reports")
by_stage = {s["stage"]: s for s in report["stages"]}
if by_stage["range"]["misses"] <= 0:
    sys.exit("bench_pipeline cold run recorded no range-stage misses")
if metrics["verify.range.reports"]["value"] <= 0:
    sys.exit("bench_pipeline snapshot recorded no range reports")
curve = ", ".join(f"{p['jobs']}j={p['speedup']:.2f}x" for p in scaling)
print(f"bench_pipeline ({cores} cores): serial "
      f"{report['serial_ms']:.1f} ms, cached {report['cached_ms']:.1f} "
      f"ms ({report['cache_speedup']:.1f}x), scaling [{curve}]")
EOF

echo "check.sh: all green"
