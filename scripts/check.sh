#!/usr/bin/env bash
# Tier-1 verification: build, run the full test suite, statically
# verify the whole workload corpus with mipsverify, check the
# observability surface (--stats=json self-consistency and a loadable
# --trace-out file), then run the simulator throughput benchmark and
# sanity-check its JSON report (schema 1, embedded metrics snapshot).
#
# Usage:
#   scripts/check.sh [build-dir]               full check (default ./build)
#   scripts/check.sh --bench-only [build-dir]  benchmark + JSON check only
#   scripts/check.sh sanitize [build-dir]      ASan+UBSan build + ctest
#                                              (default ./build-sanitize)
#   scripts/check.sh tsan [build-dir]          ThreadSanitizer build; runs
#                                              the pipeline-session tests
#                                              and a parallel mipsverify
#                                              corpus pass (default
#                                              ./build-tsan)
#   scripts/check.sh tv [build-dir]            translation-validation gate
#                                              only (corpus must prove
#                                              equivalent under the full
#                                              reorganizer and under each
#                                              single-stage toggle)
#
# The --bench-only mode is what the `check_bench_json` CTest target
# runs: the full mode invokes ctest itself and must not recurse.
#
# The benchmark step validates that the report parses and carries both
# the fast-path and baseline aggregate numbers; it does not enforce a
# speedup threshold, since CI machines vary (see the committed
# BENCH_throughput.json for reference numbers).
set -euo pipefail

repo_root=$(cd "$(dirname "$0")/.." && pwd)

# Translation-validation gate: every corpus program must *prove*
# equivalent (--strict turns any TV090 "not proven" note into a
# failure), with every reorganizer stage enabled and with each stage
# disabled one at a time.
run_tv_gate() {
    local build_dir=$1
    local config
    for config in "" "--no-reorder" "--no-pack" "--no-fill-delay"; do
        # shellcheck disable=SC2086  # word-splitting is intended
        "$build_dir/src/verify/mipsverify" --tv --strict --quiet \
            $config --corpus
        echo "check.sh: tv gate clean (${config:-full reorganizer})"
    done
}

if [ "${1:-}" = "tv" ]; then
    shift
    build_dir=${1:-"$repo_root/build"}
    if [ ! -f "$build_dir/CMakeCache.txt" ]; then
        cmake -S "$repo_root" -B "$build_dir"
    fi
    cmake --build "$build_dir" -j "$(nproc)" --target mipsverify
    run_tv_gate "$build_dir"
    echo "check.sh: tv green"
    exit 0
fi

if [ "${1:-}" = "tsan" ]; then
    shift
    build_dir=${1:-"$repo_root/build-tsan"}
    cmake -S "$repo_root" -B "$build_dir" -DMIPS82_TSAN=ON
    cmake --build "$build_dir" -j "$(nproc)" \
        --target pipeline_test obs_test mipsverify
    "$build_dir/tests/pipeline_test"
    "$build_dir/tests/obs_test"
    "$build_dir/src/verify/mipsverify" --jobs 8 --corpus --quiet \
        --stats=json > /dev/null
    echo "check.sh: tsan green"
    exit 0
fi

if [ "${1:-}" = "sanitize" ]; then
    shift
    build_dir=${1:-"$repo_root/build-sanitize"}
    cmake -S "$repo_root" -B "$build_dir" -DMIPS82_SANITIZE=ON
    cmake --build "$build_dir" -j "$(nproc)"
    ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure \
        -E '^check_bench_json$' # bench timing is meaningless under ASan
    echo "check.sh: sanitize green"
    exit 0
fi

bench_only=0
if [ "${1:-}" = "--bench-only" ]; then
    bench_only=1
    shift
fi
build_dir=${1:-"$repo_root/build"}

if [ "$bench_only" -eq 0 ]; then
    if [ ! -f "$build_dir/CMakeCache.txt" ]; then
        cmake -S "$repo_root" -B "$build_dir"
    fi
    cmake --build "$build_dir" -j "$(nproc)"
    ctest --test-dir "$build_dir" -j "$(nproc)" --output-on-failure \
        -E '^check_bench_json$' # the bench check runs below either way

    # Static verification gate: every reorganized corpus program must
    # satisfy the software-interlock contract (exit 1 on any error-
    # severity diagnostic).
    "$build_dir/src/verify/mipsverify" --corpus

    # Determinism gate: parallel verification must emit byte-identical
    # output to a serial run, in text and JSON mode (--no-time drops
    # the wall-clock fields, which legitimately vary).
    mv=$build_dir/src/verify/mipsverify
    for mode in "" "--json"; do
        # shellcheck disable=SC2086  # word-splitting is intended
        "$mv" --corpus --no-time --jobs 1 $mode \
            > "$build_dir/verify-serial.out"
        # shellcheck disable=SC2086
        "$mv" --corpus --no-time --jobs 8 $mode \
            > "$build_dir/verify-parallel.out"
        cmp "$build_dir/verify-serial.out" \
            "$build_dir/verify-parallel.out"
        echo "check.sh: --jobs 8 output identical (${mode:-text})"
    done

    # Translation-validation gate: the corpus must also *prove*
    # equivalent, under the full reorganizer and each stage toggle.
    run_tv_gate "$build_dir"

    # Observability gate: a parallel corpus run with --stats=json must
    # emit a parseable, self-consistent registry snapshot (per stage,
    # lookups == hits + misses), and --trace-out must produce a
    # Chrome-trace document with span events.
    "$mv" --corpus --jobs 8 --quiet --stats=json \
        --trace-out "$build_dir/trace.json" > "$build_dir/stats.json"
    python3 - "$build_dir/stats.json" "$build_dir/trace.json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    stats = json.load(f)
if stats["schema"] != 1:
    sys.exit("mipsverify --stats=json: unexpected schema")
metrics = {m["name"]: m for m in stats["metrics"]}
stages = ("parse", "compile", "assemble", "reorganize", "hazard-verify",
          "translation-validate", "simulate")
for stage in stages:
    lookups = metrics[f"pipeline.{stage}.lookups"]["value"]
    hits = metrics[f"pipeline.{stage}.hits"]["value"]
    misses = metrics[f"pipeline.{stage}.misses"]["value"]
    if lookups != hits + misses:
        sys.exit(f"pipeline.{stage}: lookups {lookups} != "
                 f"hits {hits} + misses {misses}")
if metrics["verify.units"]["value"] <= 0:
    sys.exit("mipsverify --stats=json: no verify.units recorded")
with open(sys.argv[2]) as f:
    trace = json.load(f)
if not trace["traceEvents"]:
    sys.exit("mipsverify --trace-out: no span events recorded")
print(f"stats/trace gate: {len(metrics)} metrics consistent, "
      f"{len(trace['traceEvents'])} span events")
EOF
fi

json=$build_dir/BENCH_throughput.json
"$build_dir/bench/bench_throughput" --json="$json" \
    --benchmark_min_time=0.1 > /dev/null

python3 - "$json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
agg = report["aggregate"]
fast = agg["fastpath_instructions_per_second"]
slow = agg["baseline_instructions_per_second"]
if report.get("schema") != 1:
    sys.exit("bench_throughput report missing schema 1")
if not report["programs"]:
    sys.exit("bench_throughput reported no programs")
if fast <= 0 or slow <= 0:
    sys.exit("bench_throughput reported non-positive throughput")
metrics = {m["name"]: m for m in report["metrics"]}
if metrics["sim.instructions"]["value"] <= 0:
    sys.exit("bench_throughput snapshot recorded no sim.instructions")
print(f"bench_throughput: fastpath {fast/1e6:.1f}M instr/s, "
      f"baseline {slow/1e6:.1f}M instr/s, speedup {agg['speedup']:.2f}x")
EOF

# Pipeline-session benchmark: corpus chains serial vs cached vs
# parallel. Structure is validated; the speedups are recorded, not
# gated (parallel scaling depends on host core count).
pjson=$build_dir/BENCH_pipeline.json
"$build_dir/bench/bench_pipeline" --json="$pjson" \
    --benchmark_filter='^$' > /dev/null

python3 - "$pjson" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    report = json.load(f)
if report.get("schema") != 1:
    sys.exit("bench_pipeline report missing schema 1")
for key in ("serial_ms", "cached_ms", "parallel_ms"):
    if report[key] <= 0:
        sys.exit(f"bench_pipeline reported non-positive {key}")
if report["programs"] <= 0:
    sys.exit("bench_pipeline reported no programs")
metrics = {m["name"]: m for m in report["metrics"]}
if metrics["pipeline.compile.lookups"]["value"] <= 0:
    sys.exit("bench_pipeline snapshot recorded no pipeline lookups")
if len(report["stages"]) != 7:
    sys.exit("bench_pipeline reported wrong stage count")
misses = sum(s["misses"] for s in report["stages"])
if misses <= 0:
    sys.exit("bench_pipeline cold run recorded no cache misses")
print(f"bench_pipeline: serial {report['serial_ms']:.1f} ms, "
      f"cached {report['cached_ms']:.1f} ms "
      f"({report['cache_speedup']:.1f}x), "
      f"parallel({report['jobs']}) {report['parallel_ms']:.1f} ms "
      f"({report['parallel_speedup']:.2f}x)")
EOF

echo "check.sh: all green"
