#!/usr/bin/env bash
# Docs-drift gate for the CLI surface: every flag `mipsverify --help`
# advertises must appear in a docs/CLI.md flag table, and every flag
# documented there must still exist in the help text — in both
# directions, by exact name.
#
# Usage: scripts/check_cli_docs.sh <mipsverify-binary> [CLI.md]
#
# Advertised flags are every `--name` token in the usage text
# (decorations like `[=json]` and operands like `FILE` fall away).
# Documented flags are the `--name` tokens in the *first column* of
# the CLI.md tables:
#
#   | `--jobs N` / `--jobs=N` | verify corpus units on N threads ... |
#
# Prose mentions of flags deliberately don't count — a flag must have
# its own table row to be "documented". The `check_cli_docs` ctest
# gate runs this after every build, same as check_metrics_docs.
set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: $0 <mipsverify-binary> [CLI.md]" >&2
    exit 2
fi
mipsverify=$1
docs=${2:-"$(cd "$(dirname "$0")/.." && pwd)/docs/CLI.md"}

if [ ! -x "$mipsverify" ]; then
    echo "check_cli_docs: $mipsverify is not executable" >&2
    exit 2
fi
if [ ! -f "$docs" ]; then
    echo "check_cli_docs: $docs not found" >&2
    exit 2
fi

advertised=$("$mipsverify" --help | grep -o -- '--[a-z][a-z-]*' |
    sort -u)
documented=$(sed -n 's/^| *\([^|]*\)|.*/\1/p' "$docs" |
    grep -o -- '--[a-z][a-z-]*' | sort -u)

status=0

undocumented=$(comm -23 <(echo "$advertised") <(echo "$documented"))
if [ -n "$undocumented" ]; then
    echo "check_cli_docs: in --help but not in $docs flag tables:" >&2
    echo "$undocumented" | sed 's/^/  /' >&2
    status=1
fi

stale=$(comm -13 <(echo "$advertised") <(echo "$documented"))
if [ -n "$stale" ]; then
    echo "check_cli_docs: documented in $docs but not in --help:" >&2
    echo "$stale" | sed 's/^/  /' >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    count=$(echo "$advertised" | wc -l)
    echo "check_cli_docs: $count flags documented, no drift"
fi
exit $status
