#!/usr/bin/env bash
# Docs-drift gate for the metrics catalog: every metric the process
# registers must be documented in docs/METRICS.md, and every metric
# documented there must still exist in the code — in both directions,
# by exact name.
#
# Usage: scripts/check_metrics_docs.sh <mipsverify-binary> [METRICS.md]
#
# Registered names come from `mipsverify --list-metrics` (which calls
# obs::registerBuiltinMetrics() first, so the dump covers the whole
# catalog, not just metrics some run happened to touch). Documented
# names are the backticked first column of the METRICS.md tables:
#
#   | `pipeline.compile.hits` | counter | count | ... |
#
# The `check_metrics_docs` ctest gate runs this after every build.
set -euo pipefail

if [ $# -lt 1 ]; then
    echo "usage: $0 <mipsverify-binary> [METRICS.md]" >&2
    exit 2
fi
mipsverify=$1
docs=${2:-"$(cd "$(dirname "$0")/.." && pwd)/docs/METRICS.md"}

if [ ! -x "$mipsverify" ]; then
    echo "check_metrics_docs: $mipsverify is not executable" >&2
    exit 2
fi
if [ ! -f "$docs" ]; then
    echo "check_metrics_docs: $docs not found" >&2
    exit 2
fi

registered=$("$mipsverify" --list-metrics | sort)
documented=$(sed -n 's/^| `\([^`]*\)`.*/\1/p' "$docs" | sort)

status=0

undocumented=$(comm -23 <(echo "$registered") <(echo "$documented"))
if [ -n "$undocumented" ]; then
    echo "check_metrics_docs: registered but not in $docs:" >&2
    echo "$undocumented" | sed 's/^/  /' >&2
    status=1
fi

stale=$(comm -13 <(echo "$registered") <(echo "$documented"))
if [ -n "$stale" ]; then
    echo "check_metrics_docs: documented in $docs but not registered:" >&2
    echo "$stale" | sed 's/^/  /' >&2
    status=1
fi

if [ "$status" -eq 0 ]; then
    count=$(echo "$registered" | wc -l)
    echo "check_metrics_docs: $count metrics documented, no drift"
fi
exit $status
