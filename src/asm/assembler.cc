#include "asm/assembler.h"

#include <cctype>
#include <cstdlib>
#include <optional>

#include "support/bits.h"
#include "support/logging.h"
#include "support/strings.h"

namespace mips::assembler {

using isa::AluOp;
using isa::AluPiece;
using isa::BranchPiece;
using isa::Cond;
using isa::Instruction;
using isa::JumpKind;
using isa::JumpPiece;
using isa::MemMode;
using isa::MemPiece;
using isa::Reg;
using isa::SpecialOp;
using isa::SpecialPiece;
using isa::SpecialReg;
using isa::Src2;
using support::Error;
using support::Result;
using support::trim;

namespace {

/** Parser for one source; accumulates items into a Unit. */
class Parser
{
  public:
    explicit Parser(std::string_view source) : source_(source) {}

    Result<Unit> run();

  private:
    // --- Line-level parsing -------------------------------------------
    Result<bool> parseLine(std::string_view line);
    Result<bool> parseDirective(std::string_view body);
    Result<Instruction> parseInstruction(std::string_view text);
    Result<Instruction> parsePiece(std::string_view text,
                                   std::string *target);

    // Individual statement families; `ops` holds comma-split operands.
    Result<Instruction> parseAluLike(const std::string &mnemonic,
                                     const std::vector<std::string> &ops);
    Result<Instruction> parseMem(const std::string &mnemonic,
                                 const std::vector<std::string> &ops,
                                 std::string *target);
    Result<Instruction> parseBranch(const std::string &mnemonic,
                                    const std::vector<std::string> &ops,
                                    std::string *target);
    Result<Instruction> parseJump(const std::string &mnemonic,
                                  const std::vector<std::string> &ops,
                                  std::string *target);

    // --- Operand parsing ----------------------------------------------
    std::optional<Reg> parseReg(std::string_view text) const;
    std::optional<int64_t> parseNumber(std::string_view text) const;
    std::optional<int64_t> parseImmediate(std::string_view text) const;
    Result<Src2> parseSrc2(std::string_view text) const;
    Result<MemPiece> parseMemOperand(std::string_view text,
                                     bool is_store, Reg data) const;

    Error err(const std::string &message) const;
    void addItem(Item item);

    std::string_view source_;
    Unit unit_;
    std::vector<std::string> pending_labels_;
    std::string pending_target_;
    bool no_reorder_ = false;
    int line_no_ = 0;
};

Error
Parser::err(const std::string &message) const
{
    return Error{message, line_no_, 0};
}

void
Parser::addItem(Item item)
{
    item.labels = pending_labels_;
    pending_labels_.clear();
    item.no_reorder = no_reorder_;
    item.source_line = line_no_;
    unit_.items.push_back(std::move(item));
}

std::optional<Reg>
Parser::parseReg(std::string_view text) const
{
    text = trim(text);
    if (text.size() < 2 || text.size() > 3 || text[0] != 'r')
        return std::nullopt;
    int value = 0;
    for (size_t i = 1; i < text.size(); ++i) {
        if (!std::isdigit(static_cast<unsigned char>(text[i])))
            return std::nullopt;
        value = value * 10 + (text[i] - '0');
    }
    if (!isa::isValidReg(value))
        return std::nullopt;
    return static_cast<Reg>(value);
}

std::optional<int64_t>
Parser::parseNumber(std::string_view text) const
{
    text = trim(text);
    if (text.empty())
        return std::nullopt;
    // Character literal.
    if (text.size() == 3 && text.front() == '\'' && text.back() == '\'')
        return static_cast<int64_t>(static_cast<unsigned char>(text[1]));
    std::string s(text);
    char *end = nullptr;
    long long v = std::strtoll(s.c_str(), &end, 0);
    if (end != s.c_str() + s.size())
        return std::nullopt;
    return v;
}

std::optional<int64_t>
Parser::parseImmediate(std::string_view text) const
{
    text = trim(text);
    if (text.empty() || text[0] != '#')
        return std::nullopt;
    return parseNumber(text.substr(1));
}

Result<Src2>
Parser::parseSrc2(std::string_view text) const
{
    if (auto reg = parseReg(text))
        return Src2::fromReg(*reg);
    if (auto imm = parseImmediate(text)) {
        if (*imm < 0 || *imm > 15) {
            return err("inline constant out of range 0..15 "
                       "(use reverse operators for negatives, "
                       "movi/ldi for larger values)");
        }
        return Src2::fromImm(static_cast<uint8_t>(*imm));
    }
    return err("bad operand '" + std::string(text) +
               "' (expected register or #constant)");
}

Result<MemPiece>
Parser::parseMemOperand(std::string_view text, bool is_store,
                        Reg data) const
{
    text = trim(text);
    MemPiece m;
    m.is_store = is_store;
    m.rd = data;

    if (!text.empty() && text[0] == '@') {
        // Absolute: @addr
        auto addr = parseNumber(text.substr(1));
        if (!addr)
            return err("bad absolute address");
        m.mode = MemMode::ABSOLUTE;
        m.imm = static_cast<int32_t>(*addr);
        return m;
    }

    size_t open = text.find('(');
    if (open == std::string_view::npos || text.back() != ')')
        return err("bad memory operand '" + std::string(text) + "'");
    std::string_view disp_text = trim(text.substr(0, open));
    std::string_view inner =
        trim(text.substr(open + 1, text.size() - open - 2));

    size_t plus = inner.find('+');
    if (plus != std::string_view::npos) {
        // (base+index) or (base+index>>shift)
        if (!disp_text.empty())
            return err("displacement not allowed with (base+index)");
        auto base = parseReg(inner.substr(0, plus));
        if (!base)
            return err("bad base register");
        std::string_view rest = trim(inner.substr(plus + 1));
        size_t shift_pos = rest.find(">>");
        if (shift_pos == std::string_view::npos) {
            auto index = parseReg(rest);
            if (!index)
                return err("bad index register");
            m.mode = MemMode::BASE_INDEX;
            m.base = *base;
            m.index = *index;
        } else {
            auto index = parseReg(rest.substr(0, shift_pos));
            auto shift = parseNumber(rest.substr(shift_pos + 2));
            if (!index || !shift || *shift < 0 || *shift > 7)
                return err("bad base-shifted operand");
            m.mode = MemMode::BASE_SHIFT;
            m.base = *base;
            m.index = *index;
            m.shift = static_cast<uint8_t>(*shift);
        }
        return m;
    }

    // disp(base); empty displacement means 0.
    auto base = parseReg(inner);
    if (!base)
        return err("bad base register '" + std::string(inner) + "'");
    int64_t disp = 0;
    if (!disp_text.empty()) {
        auto d = parseNumber(disp_text);
        if (!d)
            return err("bad displacement '" + std::string(disp_text) + "'");
        disp = *d;
    }
    m.mode = MemMode::DISP;
    m.base = *base;
    m.imm = static_cast<int32_t>(disp);
    return m;
}

Result<Instruction>
Parser::parseAluLike(const std::string &mnemonic,
                     const std::vector<std::string> &ops)
{
    AluPiece a;

    // set<cond>
    if (support::startsWith(mnemonic, "set") && mnemonic.size() > 3) {
        Cond cond;
        if (!isa::parseCond(mnemonic.substr(3), &cond))
            return err("unknown comparison '" + mnemonic.substr(3) + "'");
        if (ops.size() != 3)
            return err("set<cond> needs 3 operands: rs, src2, rd");
        auto rs = parseReg(ops[0]);
        auto src2 = parseSrc2(ops[1]);
        auto rd = parseReg(ops[2]);
        if (!rs || !src2.ok() || !rd)
            return err("bad set<cond> operands");
        a.op = AluOp::SET;
        a.cond = cond;
        a.rs = *rs;
        a.src2 = src2.value();
        a.rd = *rd;
        return Instruction::makeAlu(a);
    }

    if (mnemonic == "movi") {
        if (ops.size() != 2)
            return err("movi needs 2 operands: #imm8, rd");
        auto imm = parseImmediate(ops[0]);
        auto rd = parseReg(ops[1]);
        if (!imm || !rd)
            return err("bad movi operands");
        if (*imm < 0 || *imm > 255)
            return err("movi constant out of range 0..255");
        a.op = AluOp::MOVI8;
        a.imm8 = static_cast<uint8_t>(*imm);
        a.rd = *rd;
        return Instruction::makeAlu(a);
    }

    if (mnemonic == "li") {
        // Pseudo: pick the cheapest encoding.
        if (ops.size() != 2)
            return err("li needs 2 operands: #imm, rd");
        auto imm = parseImmediate(ops[0]);
        auto rd = parseReg(ops[1]);
        if (!imm || !rd)
            return err("bad li operands");
        if (*imm >= 0 && *imm <= 255) {
            a.op = AluOp::MOVI8;
            a.imm8 = static_cast<uint8_t>(*imm);
            a.rd = *rd;
            return Instruction::makeAlu(a);
        }
        if (support::fitsSigned(*imm, isa::kLongImmBits)) {
            MemPiece m;
            m.mode = MemMode::LONG_IMM;
            m.rd = *rd;
            m.imm = static_cast<int32_t>(*imm);
            return Instruction::makeMem(m);
        }
        return err("li constant exceeds 21 bits; use a .word pool");
    }

    if (mnemonic == "mov") {
        if (ops.size() != 2)
            return err("mov needs 2 operands: rs, rd");
        auto rs = parseReg(ops[0]);
        auto rd = parseReg(ops[1]);
        if (!rs || !rd)
            return err("bad mov operands");
        a.op = AluOp::ADD;
        a.rs = *rs;
        a.src2 = Src2::fromImm(0);
        a.rd = *rd;
        return Instruction::makeAlu(a);
    }

    if (mnemonic == "not") {
        if (ops.size() != 2)
            return err("not needs 2 operands: rs, rd");
        auto rs = parseReg(ops[0]);
        auto rd = parseReg(ops[1]);
        if (!rs || !rd)
            return err("bad not operands");
        a.op = AluOp::NOT;
        a.rs = *rs;
        a.rd = *rd;
        return Instruction::makeAlu(a);
    }

    if (mnemonic == "mtlo" || mnemonic == "mflo") {
        if (ops.size() != 1)
            return err(mnemonic + " needs 1 operand");
        auto r = parseReg(ops[0]);
        if (!r)
            return err("bad register");
        a.op = mnemonic == "mtlo" ? AluOp::MTLO : AluOp::MFLO;
        (mnemonic == "mtlo" ? a.rs : a.rd) = *r;
        return Instruction::makeAlu(a);
    }

    if (mnemonic == "ic" || mnemonic == "mstep" || mnemonic == "dstep") {
        if (ops.size() != 2)
            return err(mnemonic + " needs 2 operands: rs, rd");
        auto rs = parseReg(ops[0]);
        auto rd = parseReg(ops[1]);
        if (!rs || !rd)
            return err("bad operands");
        a.op = mnemonic == "ic" ? AluOp::IC
             : mnemonic == "mstep" ? AluOp::MSTEP : AluOp::DSTEP;
        a.rs = *rs;
        a.rd = *rd;
        return Instruction::makeAlu(a);
    }

    // Three-operand ALU ops.
    static const std::pair<const char *, AluOp> kThreeOps[] = {
        {"add", AluOp::ADD}, {"sub", AluOp::SUB}, {"rsub", AluOp::RSUB},
        {"and", AluOp::AND}, {"or", AluOp::OR}, {"xor", AluOp::XOR},
        {"sll", AluOp::SLL}, {"srl", AluOp::SRL}, {"sra", AluOp::SRA},
        {"xc", AluOp::XC},
    };
    for (const auto &[name, op] : kThreeOps) {
        if (mnemonic != name)
            continue;
        if (ops.size() != 3)
            return err(mnemonic + " needs 3 operands: rs, src2, rd");
        auto rs = parseReg(ops[0]);
        auto src2 = parseSrc2(ops[1]);
        auto rd = parseReg(ops[2]);
        if (!rs || !src2.ok() || !rd) {
            return src2.ok() ? err("bad " + mnemonic + " operands")
                             : src2.error();
        }
        a.op = op;
        a.rs = *rs;
        a.src2 = src2.value();
        a.rd = *rd;
        return Instruction::makeAlu(a);
    }

    return err("unknown mnemonic '" + mnemonic + "'");
}

Result<Instruction>
Parser::parseMem(const std::string &mnemonic,
                 const std::vector<std::string> &ops,
                 std::string *target)
{
    if (mnemonic == "ldi") {
        if (ops.size() != 2)
            return err("ldi needs 2 operands: #imm, rd");
        auto imm = parseImmediate(ops[0]);
        auto rd = parseReg(ops[1]);
        if (!imm || !rd)
            return err("bad ldi operands");
        MemPiece m;
        m.mode = MemMode::LONG_IMM;
        m.rd = *rd;
        m.imm = static_cast<int32_t>(*imm);
        std::string verr = isa::memValidate(m);
        if (!verr.empty())
            return err(verr);
        return Instruction::makeMem(m);
    }

    bool is_store = mnemonic == "st";
    if (ops.size() != 2)
        return err(mnemonic + " needs 2 operands");

    // ld addr, rd  /  st rd, addr
    const std::string &addr_text = is_store ? ops[1] : ops[0];
    const std::string &data_text = is_store ? ops[0] : ops[1];
    auto data = parseReg(data_text);
    if (!data)
        return err("bad data register '" + data_text + "'");

    // Symbolic absolute: "@label" resolves at link time.
    std::string_view addr_view = trim(addr_text);
    if (addr_view.size() > 1 && addr_view[0] == '@' &&
        !parseNumber(addr_view.substr(1))) {
        MemPiece m;
        m.mode = MemMode::ABSOLUTE;
        m.is_store = is_store;
        m.rd = *data;
        m.imm = 0;
        *target = std::string(addr_view.substr(1));
        return Instruction::makeMem(m);
    }

    auto mem = parseMemOperand(addr_text, is_store, *data);
    if (!mem.ok())
        return mem.error();
    std::string verr = isa::memValidate(mem.value());
    if (!verr.empty())
        return err(verr);
    return Instruction::makeMem(mem.value());
}

Result<Instruction>
Parser::parseBranch(const std::string &mnemonic,
                    const std::vector<std::string> &ops,
                    std::string *target)
{
    BranchPiece b;
    const std::string *target_text = nullptr;

    if (mnemonic == "bra") {
        if (ops.size() != 1)
            return err("bra needs 1 operand: target");
        b.cond = Cond::ALWAYS;
        target_text = &ops[0];
    } else {
        Cond cond;
        if (!isa::parseCond(mnemonic.substr(1), &cond))
            return err("unknown branch '" + mnemonic + "'");
        b.cond = cond;
        if (cond == Cond::ALWAYS || cond == Cond::NEVER) {
            if (ops.size() != 1)
                return err(mnemonic + " needs 1 operand: target");
            target_text = &ops[0];
        } else {
            if (ops.size() != 3)
                return err(mnemonic +
                           " needs 3 operands: rs, src2, target");
            auto rs = parseReg(ops[0]);
            auto src2 = parseSrc2(ops[1]);
            if (!rs || !src2.ok())
                return err("bad branch operands");
            b.rs = *rs;
            b.src2 = src2.value();
            target_text = &ops[2];
        }
    }

    if (auto num = parseNumber(*target_text)) {
        // Absolute numeric target: caller resolves relative offset at
        // link time via the synthetic label path; store directly.
        b.offset = 0;
        Instruction inst = Instruction::makeBranch(b);
        // Encode the absolute target as a synthetic label "@N" so the
        // linker computes the relative offset from the final address.
        *target = support::strprintf("@abs:%lld",
                                     static_cast<long long>(*num));
        return inst;
    }
    *target = *target_text;
    return Instruction::makeBranch(b);
}

Result<Instruction>
Parser::parseJump(const std::string &mnemonic,
                  const std::vector<std::string> &ops,
                  std::string *target)
{
    JumpPiece j;
    bool is_call = mnemonic == "call";
    if (mnemonic == "jtab") {
        // jtab (base+index)[, table_label] — PC = mem[base + index].
        // The label names the table's first .word entry; it is not
        // encoded (the base register already holds the address) but
        // travels as item metadata for the verifier's successor sets.
        if (ops.empty() || ops.size() > 2)
            return err("jtab needs (base+index) and an optional "
                       "table label");
        std::string_view tv = trim(ops[0]);
        if (tv.size() < 2 || tv.front() != '(' || tv.back() != ')')
            return err("bad jtab operand '" + ops[0] + "'");
        std::string_view inner = trim(tv.substr(1, tv.size() - 2));
        size_t plus = inner.find('+');
        if (plus == std::string_view::npos)
            return err("jtab needs a (base+index) operand");
        auto base = parseReg(inner.substr(0, plus));
        auto index = parseReg(inner.substr(plus + 1));
        if (!base || !index)
            return err("bad jtab registers");
        j.kind = JumpKind::TABLE;
        j.target_reg = *base;
        j.index = *index;
        if (ops.size() == 2)
            *target = ops[1];
        return Instruction::makeJump(j);
    }
    if (is_call) {
        if (ops.size() != 2)
            return err("call needs 2 operands: target, link");
        auto link = parseReg(ops[1]);
        if (!link)
            return err("bad link register");
        j.link = *link;
    } else if (ops.size() != 1) {
        return err("jmp needs 1 operand");
    }

    const std::string &t = ops[0];
    std::string_view tv = trim(t);
    if (!tv.empty() && tv.front() == '(' && tv.back() == ')') {
        auto reg = parseReg(tv.substr(1, tv.size() - 2));
        if (!reg)
            return err("bad indirect jump register");
        j.kind = is_call ? JumpKind::CALL_INDIRECT : JumpKind::INDIRECT;
        j.target_reg = *reg;
        return Instruction::makeJump(j);
    }

    j.kind = is_call ? JumpKind::CALL_DIRECT : JumpKind::DIRECT;
    if (auto num = parseNumber(tv)) {
        j.target_addr = static_cast<uint32_t>(*num);
    } else {
        *target = std::string(tv);
    }
    return Instruction::makeJump(j);
}

Result<Instruction>
Parser::parsePiece(std::string_view text, std::string *target)
{
    text = trim(text);
    size_t sp = text.find_first_of(" \t");
    std::string mnemonic = support::toLower(
        sp == std::string_view::npos ? text : text.substr(0, sp));
    std::string_view rest =
        sp == std::string_view::npos ? "" : trim(text.substr(sp));

    std::vector<std::string> ops;
    if (!rest.empty()) {
        for (std::string_view piece : support::split(rest, ','))
            ops.emplace_back(trim(piece));
    }

    if (mnemonic == "nop")
        return Instruction::makeNop();
    if (mnemonic == "halt")
        return Instruction::makeHalt();
    if (mnemonic == "rfe") {
        SpecialPiece p;
        p.op = SpecialOp::RFE;
        return Instruction::makeSpecial(p);
    }
    if (mnemonic == "trap") {
        if (ops.size() != 1)
            return err("trap needs 1 operand: #code");
        auto code = parseImmediate(ops[0]);
        if (!code || *code < 0 || *code >= 4096)
            return err("bad trap code");
        return Instruction::makeTrap(static_cast<uint16_t>(*code));
    }
    if (mnemonic == "mfs" || mnemonic == "mts") {
        if (ops.size() != 2)
            return err(mnemonic + " needs 2 operands");
        SpecialPiece p;
        p.op = mnemonic == "mfs" ? SpecialOp::MFS : SpecialOp::MTS;
        const std::string &sreg_text = mnemonic == "mfs" ? ops[0] : ops[1];
        const std::string &reg_text = mnemonic == "mfs" ? ops[1] : ops[0];
        auto reg = parseReg(reg_text);
        if (!reg)
            return err("bad register");
        p.reg = *reg;
        bool found = false;
        for (int i = 0; i < isa::kNumSpecialRegs; ++i) {
            auto sr = static_cast<SpecialReg>(i);
            if (isa::specialRegName(sr) == support::toLower(sreg_text)) {
                p.sreg = sr;
                found = true;
                break;
            }
        }
        if (!found)
            return err("unknown special register '" + sreg_text + "'");
        return Instruction::makeSpecial(p);
    }

    if (mnemonic == "la") {
        // Load address: a long immediate whose value is a label.
        if (ops.size() != 2)
            return err("la needs 2 operands: label, rd");
        auto rd = parseReg(ops[1]);
        if (!rd)
            return err("bad la destination register");
        MemPiece m;
        m.mode = MemMode::LONG_IMM;
        m.rd = *rd;
        if (auto num = parseNumber(ops[0]))
            m.imm = static_cast<int32_t>(*num);
        else
            *target = ops[0];
        return Instruction::makeMem(m);
    }
    if (mnemonic == "ld" || mnemonic == "st" || mnemonic == "ldi")
        return parseMem(mnemonic, ops, target);
    if (mnemonic == "bra" ||
        (mnemonic.size() > 1 && mnemonic[0] == 'b' &&
         mnemonic != "and")) {
        Cond c;
        if (mnemonic == "bra" || isa::parseCond(mnemonic.substr(1), &c))
            return parseBranch(mnemonic, ops, target);
    }
    if (mnemonic == "jmp" || mnemonic == "call" || mnemonic == "jtab")
        return parseJump(mnemonic, ops, target);

    return parseAluLike(mnemonic, ops);
}

Result<Instruction>
Parser::parseInstruction(std::string_view text)
{
    // Packed source form: "alu | mem" (either order).
    size_t bar = text.find('|');
    std::string target;
    if (bar == std::string_view::npos) {
        auto inst = parsePiece(text, &target);
        if (!inst.ok())
            return inst;
        Instruction result = inst.value();
        if (!target.empty()) {
            // Communicated via member below (addItem attaches it).
            pending_target_ = target;
        }
        return result;
    }

    auto first = parsePiece(text.substr(0, bar), &target);
    if (!first.ok())
        return first;
    if (!target.empty())
        return err("branches cannot be packed");
    auto second = parsePiece(text.substr(bar + 1), &target);
    if (!second.ok())
        return second;
    if (!target.empty())
        return err("branches cannot be packed");

    Instruction a = first.value(), b = second.value();
    const Instruction &alu_word = a.alu ? a : b;
    const Instruction &mem_word = a.alu ? b : a;
    if (!alu_word.alu || !mem_word.mem)
        return err("a packed word needs one ALU and one memory piece");
    Instruction packed =
        Instruction::makePacked(*alu_word.alu, *mem_word.mem);
    std::string verr = isa::validate(packed);
    if (!verr.empty())
        return err(verr);
    return packed;
}

Result<bool>
Parser::parseDirective(std::string_view body)
{
    auto tokens = support::splitWhitespace(body);
    std::string name = support::toLower(tokens[0]);

    if (name == ".org") {
        if (tokens.size() != 2)
            return err(".org needs an address");
        auto addr = parseNumber(tokens[1]);
        if (!addr || *addr < 0)
            return err("bad .org address");
        if (!unit_.items.empty())
            return err(".org must precede all instructions");
        unit_.origin = static_cast<uint32_t>(*addr);
        return true;
    }
    if (name == ".word") {
        if (tokens.size() != 2)
            return err(".word needs a value");
        Item item;
        item.is_data = true;
        if (auto value = parseNumber(tokens[1])) {
            item.data_value = static_cast<uint32_t>(*value);
        } else {
            // Symbolic entry: the label's address becomes the word at
            // link time (jump-table entries are built from these).
            item.target = std::string(tokens[1]);
        }
        addItem(std::move(item));
        return true;
    }
    if (name == ".space") {
        if (tokens.size() != 2)
            return err(".space needs a count");
        auto count = parseNumber(tokens[1]);
        if (!count || *count < 0 || *count > (1 << 20))
            return err("bad .space count");
        for (int64_t i = 0; i < *count; ++i) {
            Item item;
            item.is_data = true;
            addItem(std::move(item));
        }
        return true;
    }
    if (name == ".asciiw") {
        size_t q1 = body.find('"');
        size_t q2 = body.rfind('"');
        if (q1 == std::string_view::npos || q2 <= q1)
            return err(".asciiw needs a quoted string");
        std::string_view text = body.substr(q1 + 1, q2 - q1 - 1);
        // Pack four characters per word, low byte first; always
        // emit the terminating zero byte.
        uint32_t word = 0;
        int nbytes = 0;
        for (size_t i = 0; i <= text.size(); ++i) {
            uint8_t c = i < text.size()
                ? static_cast<uint8_t>(text[i]) : 0;
            word |= static_cast<uint32_t>(c) << (8 * nbytes);
            if (++nbytes == 4 || i == text.size()) {
                Item item;
                item.is_data = true;
                item.data_value = word;
                addItem(std::move(item));
                word = 0;
                nbytes = 0;
            }
        }
        return true;
    }
    if (name == ".noreorder") {
        no_reorder_ = true;
        return true;
    }
    if (name == ".reorder") {
        no_reorder_ = false;
        return true;
    }
    return err("unknown directive '" + name + "'");
}

Result<bool>
Parser::parseLine(std::string_view line)
{
    // Strip comment.
    size_t semi = line.find(';');
    if (semi != std::string_view::npos)
        line = line.substr(0, semi);
    line = trim(line);
    if (line.empty())
        return true;

    // Leading labels: IDENT ':' (possibly several).
    while (true) {
        size_t colon = line.find(':');
        if (colon == std::string_view::npos)
            break;
        std::string_view head = trim(line.substr(0, colon));
        bool is_ident = !head.empty();
        for (char c : head) {
            if (!std::isalnum(static_cast<unsigned char>(c)) &&
                c != '_' && c != '$' && c != '.') {
                is_ident = false;
                break;
            }
        }
        if (!is_ident)
            break;
        pending_labels_.emplace_back(head);
        line = trim(line.substr(colon + 1));
        if (line.empty())
            return true;
    }

    if (line[0] == '.')
        return parseDirective(line);

    auto inst = parseInstruction(line);
    if (!inst.ok())
        return inst.error();
    Item item;
    item.inst = inst.value();
    item.target = std::move(pending_target_);
    pending_target_.clear();
    addItem(std::move(item));
    return true;
}

Result<Unit>
Parser::run()
{
    for (std::string_view raw : support::split(source_, '\n')) {
        ++line_no_;
        auto ok = parseLine(raw);
        if (!ok.ok())
            return ok.error();
    }
    unit_.trailing_labels = pending_labels_;

    // Synthesize labels for absolute numeric branch targets ("@abs:N").
    // They resolve to fixed addresses regardless of code motion.
    // We implement them by pre-seeding the link()-visible label space:
    // link() cannot know them, so rewrite into offsets now.
    uint32_t addr = unit_.origin;
    for (Item &item : unit_.items) {
        if (support::startsWith(item.target, "@abs:")) {
            long long target = std::strtoll(item.target.c_str() + 5,
                                            nullptr, 10);
            if (item.inst.branch) {
                item.inst.branch->offset =
                    static_cast<int32_t>(target -
                                         (static_cast<int64_t>(addr) + 1));
            }
            item.target.clear();
        }
        ++addr;
    }
    return unit_;
}

} // namespace

Result<Unit>
parse(std::string_view source)
{
    Parser parser(source);
    return parser.run();
}

Result<Program>
assemble(std::string_view source)
{
    auto unit = parse(source);
    if (!unit.ok())
        return unit.error();
    return link(unit.value());
}

Program
assembleOrDie(std::string_view source)
{
    auto prog = assemble(source);
    if (!prog.ok())
        support::panic("assembly failed: %s", prog.error().str().c_str());
    return prog.take();
}

} // namespace mips::assembler
