/**
 * @file
 * Two-pass textual assembler for the MIPS-82 ISA.
 *
 * Syntax (sources first, destination last, matching the paper's
 * examples like "sub #1, r0, r2" and "ld 2(sp), r0"):
 *
 *   label:  add r1, #3, r2        ; r2 = r1 + 3
 *           rsub r1, #1, r2       ; r2 = 1 - r1 (reverse operator)
 *           movi #200, r3         ; 8-bit move immediate
 *           seteq r1, r2, r4      ; set conditionally
 *           ld 2(r13), r5         ; displacement load
 *           st r5, (r1+r2>>2)     ; base-shifted store (packed bytes)
 *           ldi #70000, r6        ; 21-bit long immediate
 *           xc r0, r5, r5         ; extract byte (ptr, word, dest)
 *           mtlo r0 | ic r3, r5   ; byte insert via LO selector
 *           beq r1, #0, done      ; compare-and-branch (16 conds)
 *           bra loop              ; unconditional branch
 *           jmp (r15)             ; indirect jump (2 delay slots)
 *           call fib, r15         ; direct call, link in r15
 *           trap #9               ; monitor call
 *           halt
 *
 * Two pieces joined with " | " share one packed word (validated
 * against the packed format). Pseudo-instructions: "mov rs, rd" and
 * "li #imm, rd" (which picks movi/ldi).
 *
 * Directives: .org N, .word N, .space N, .asciiw "text" (packs four
 * 8-bit characters per 32-bit word, zero terminated), .noreorder /
 * .reorder (fence the reorganizer out, as the paper's front end does
 * for sequences it schedules itself).
 *
 * Comments run from ';' to end of line.
 */
#pragma once

#include <string_view>

#include "asm/unit.h"

namespace mips::assembler {

/** Parse assembly text into a Unit (symbolic targets unresolved). */
support::Result<Unit> parse(std::string_view source);

/** parse() followed by link(). */
support::Result<Program> assemble(std::string_view source);

/** assemble() that panics with the error message on failure. */
Program assembleOrDie(std::string_view source);

} // namespace mips::assembler
