#include "asm/unit.h"

#include "isa/disasm.h"
#include "support/bits.h"
#include "support/logging.h"

namespace mips::assembler {

uint32_t
Program::symbol(const std::string &name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        support::panic("Program::symbol: undefined symbol '%s'",
                       name.c_str());
    return it->second;
}

support::Result<Program>
link(const Unit &unit)
{
    Program prog;
    prog.origin = unit.origin;

    // Pass 1: assign addresses to labels.
    uint32_t addr = unit.origin;
    for (const Item &item : unit.items) {
        for (const std::string &label : item.labels) {
            if (prog.symbols.count(label)) {
                return support::makeError(
                    "duplicate label '" + label + "'", item.source_line);
            }
            prog.symbols[label] = addr;
        }
        ++addr;
    }
    for (const std::string &label : unit.trailing_labels) {
        if (prog.symbols.count(label)) {
            return support::makeError("duplicate label '" + label + "'");
        }
        prog.symbols[label] = addr;
    }

    // Pass 2: resolve targets and encode.
    addr = unit.origin;
    for (const Item &item : unit.items) {
        if (item.is_data) {
            uint32_t value = item.data_value;
            if (!item.target.empty()) {
                // Jump-table entry: relocate the label's address into
                // the data word.
                auto it = prog.symbols.find(item.target);
                if (it == prog.symbols.end()) {
                    return support::makeError(
                        "undefined label '" + item.target + "'",
                        item.source_line);
                }
                value = it->second;
            }
            prog.words.push_back(isa::Instruction::makeNop());
            prog.image.push_back(value);
            ++addr;
            continue;
        }

        isa::Instruction inst = item.inst;
        if (!item.target.empty()) {
            auto it = prog.symbols.find(item.target);
            if (it == prog.symbols.end()) {
                return support::makeError(
                    "undefined label '" + item.target + "'",
                    item.source_line);
            }
            uint32_t target = it->second;
            if (inst.branch) {
                int64_t offset = static_cast<int64_t>(target) -
                                 (static_cast<int64_t>(addr) + 1);
                if (!support::fitsSigned(offset, isa::kBranchOffsetBits)) {
                    return support::makeError(
                        "branch to '" + item.target + "' out of range",
                        item.source_line);
                }
                inst.branch->offset = static_cast<int32_t>(offset);
            } else if (inst.jump) {
                inst.jump->target_addr = target;
            } else if (inst.mem &&
                       (inst.mem->mode == isa::MemMode::ABSOLUTE ||
                        inst.mem->mode == isa::MemMode::LONG_IMM)) {
                // Absolute reference or load-address: the label's
                // address becomes the immediate.
                inst.mem->imm = static_cast<int32_t>(target);
            } else {
                return support::makeError(
                    "label operand on a non-transfer instruction",
                    item.source_line);
            }
        }

        std::string err = isa::validate(inst);
        if (!err.empty())
            return support::makeError(err, item.source_line);

        prog.words.push_back(inst);
        prog.image.push_back(isa::encode(inst));
        ++addr;
    }

    // Re-decode data words so `words` matches `image` where possible
    // (data that happens to decode as an instruction is fine; data that
    // does not remains a no-op placeholder).
    for (size_t i = 0; i < prog.image.size(); ++i) {
        auto decoded = isa::decode(prog.image[i]);
        if (decoded.ok())
            prog.words[i] = decoded.value();
    }

    return prog;
}

std::string
listUnit(const Unit &unit)
{
    std::string out;
    uint32_t addr = unit.origin;
    for (const Item &item : unit.items) {
        for (const std::string &label : item.labels)
            out += label + ":\n";
        if (item.is_data) {
            if (!item.target.empty())
                out += "    .word " + item.target + "\n";
            else
                out += support::strprintf("    .word %u\n",
                                          item.data_value);
        } else if (!item.target.empty()) {
            // Print with the symbolic target in place of the number.
            std::string text;
            if (item.inst.jump &&
                isa::jumpIsCall(item.inst.jump->kind)) {
                text = support::strprintf(
                    "call %s, %s", item.target.c_str(),
                    isa::regName(item.inst.jump->link).c_str());
            } else if (item.inst.jump &&
                       isa::jumpIsTable(item.inst.jump->kind)) {
                text = isa::disasm(item.inst, addr) + ", " + item.target;
            } else if (item.inst.mem) {
                const isa::MemPiece &mp = *item.inst.mem;
                if (mp.is_store) {
                    text = support::strprintf(
                        "st %s, @%s", isa::regName(mp.rd).c_str(),
                        item.target.c_str());
                } else {
                    text = support::strprintf(
                        "ld @%s, %s", item.target.c_str(),
                        isa::regName(mp.rd).c_str());
                }
            } else {
                text = isa::disasm(item.inst, addr);
                size_t pos = text.find_last_of(' ');
                text = text.substr(0, pos + 1) + item.target;
            }
            out += "    " + text + "\n";
        } else {
            out += "    " + isa::disasm(item.inst, addr) + "\n";
        }
        ++addr;
    }
    for (const std::string &label : unit.trailing_labels)
        out += label + ":\n";
    return out;
}

} // namespace mips::assembler
