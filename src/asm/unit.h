/**
 * @file
 * The assembler's intermediate representation.
 *
 * Instructions are held with *symbolic* control-transfer targets so a
 * post-pass (the reorganizer of src/reorg) can reorder, pack, and
 * insert/delete words before branch offsets are resolved. link()
 * resolves labels and produces the final word image.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "isa/encoding.h"
#include "isa/instruction.h"
#include "support/result.h"

namespace mips::assembler {

/** One instruction (or data word) plus its assembly-time metadata. */
struct Item
{
    isa::Instruction inst;

    /**
     * Label this branch/jump targets; empty when the numeric target
     * encoded in `inst` is already absolute. Resolved by link().
     */
    std::string target;

    /** Labels defined at this item's address. */
    std::vector<std::string> labels;

    /**
     * Set inside .noreorder regions: the front end has already handled
     * delay slots and hazards here; the reorganizer must not touch it
     * (the paper: "it emits a pseudo-op which tells the reorganizer
     * that this sequence is not to be touched").
     */
    bool no_reorder = false;

    /** True for .word/.space data (never an instruction). */
    bool is_data = false;

    /** Raw value for data items. */
    uint32_t data_value = 0;

    /** 1-based source line, 0 when synthesized. */
    int source_line = 0;

    /**
     * Data-reference annotation for memory pieces, set by the compiler
     * and consumed by the reference-pattern experiments (Tables 7/8):
     * the logical size of the object accessed (8 or 32 bits; 0 when
     * not annotated) and whether it is character data.
     */
    uint8_t ref_size = 0;
    bool ref_is_char = false;
};

/** A translation unit: items at consecutive word addresses. */
struct Unit
{
    uint32_t origin = 0;
    std::vector<Item> items;

    /** Labels defined at end-of-unit (after the last item). */
    std::vector<std::string> trailing_labels;
};

/** A linked program: encoded words plus the resolved symbol table. */
struct Program
{
    uint32_t origin = 0;
    std::vector<isa::Instruction> words;
    std::vector<uint32_t> image; ///< encoded form of `words`
    std::map<std::string, uint32_t> symbols;

    /** Address of a required symbol; panics if absent. */
    uint32_t symbol(const std::string &name) const;

    /** Number of instruction words (the whole image). */
    size_t size() const { return words.size(); }
};

/**
 * Resolve labels and encode. Fails on undefined/duplicate labels and
 * on branch offsets that do not fit their field.
 */
support::Result<Program> link(const Unit &unit);

/** Render a unit as assembly text (labels, one item per line). */
std::string listUnit(const Unit &unit);

} // namespace mips::assembler
