#include "ccm/boolexpr.h"

#include "support/logging.h"

namespace mips::ccm {

int
BoolExpr::operatorCount() const
{
    switch (kind) {
      case Kind::LEAF:
        return 0;
      case Kind::NOT:
        return 1 + lhs->operatorCount();
      default:
        return 1 + lhs->operatorCount() + rhs->operatorCount();
    }
}

int
BoolExpr::leafCount() const
{
    switch (kind) {
      case Kind::LEAF:
        return 1;
      case Kind::NOT:
        return lhs->leafCount();
      default:
        return lhs->leafCount() + rhs->leafCount();
    }
}

void
BoolExpr::collectLeaves(std::vector<const Leaf *> *out) const
{
    switch (kind) {
      case Kind::LEAF:
        out->push_back(&leaf);
        break;
      case Kind::NOT:
        lhs->collectLeaves(out);
        break;
      default:
        lhs->collectLeaves(out);
        rhs->collectLeaves(out);
        break;
    }
}

bool
BoolExpr::eval(const std::map<std::string, int32_t> &env) const
{
    auto lookup = [&env](const std::string &name) {
        auto it = env.find(name);
        if (it == env.end())
            support::panic("BoolExpr::eval: unbound variable '%s'",
                           name.c_str());
        return it->second;
    };
    switch (kind) {
      case Kind::LEAF: {
        int32_t a = lookup(leaf.var);
        int32_t b = leaf.rhs_is_const ? leaf.rhs_const
                                      : lookup(leaf.rhs_var);
        return isa::evalCond(leaf.rel, static_cast<uint32_t>(a),
                             static_cast<uint32_t>(b));
      }
      case Kind::AND:
        return lhs->eval(env) && rhs->eval(env);
      case Kind::OR:
        return lhs->eval(env) || rhs->eval(env);
      case Kind::NOT:
        return !lhs->eval(env);
    }
    support::panic("BoolExpr::eval: bad kind");
}

BoolExprPtr
makeLeaf(std::string var, isa::Cond rel, std::string rhs)
{
    auto e = std::make_unique<BoolExpr>();
    e->kind = BoolExpr::Kind::LEAF;
    e->leaf.var = std::move(var);
    e->leaf.rel = rel;
    e->leaf.rhs_var = std::move(rhs);
    return e;
}

BoolExprPtr
makeLeafConst(std::string var, isa::Cond rel, int32_t rhs)
{
    auto e = std::make_unique<BoolExpr>();
    e->kind = BoolExpr::Kind::LEAF;
    e->leaf.var = std::move(var);
    e->leaf.rel = rel;
    e->leaf.rhs_is_const = true;
    e->leaf.rhs_const = rhs;
    return e;
}

BoolExprPtr
makeAnd(BoolExprPtr l, BoolExprPtr r)
{
    auto e = std::make_unique<BoolExpr>();
    e->kind = BoolExpr::Kind::AND;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
}

BoolExprPtr
makeOr(BoolExprPtr l, BoolExprPtr r)
{
    auto e = std::make_unique<BoolExpr>();
    e->kind = BoolExpr::Kind::OR;
    e->lhs = std::move(l);
    e->rhs = std::move(r);
    return e;
}

BoolExprPtr
makeNot(BoolExprPtr e)
{
    auto n = std::make_unique<BoolExpr>();
    n->kind = BoolExpr::Kind::NOT;
    n->lhs = std::move(e);
    return n;
}

BoolExprPtr
clone(const BoolExpr &e)
{
    auto out = std::make_unique<BoolExpr>();
    out->kind = e.kind;
    out->leaf = e.leaf;
    if (e.lhs)
        out->lhs = clone(*e.lhs);
    if (e.rhs)
        out->rhs = clone(*e.rhs);
    return out;
}

BoolExprPtr
paperExample()
{
    return makeOr(makeLeaf("Rec", isa::Cond::EQ, "Key"),
                  makeLeafConst("I", isa::Cond::EQ, 13));
}

BoolExprPtr
orChain(int operators)
{
    if (operators < 0)
        support::panic("orChain: negative operator count");
    BoolExprPtr e = makeLeafConst("v0", isa::Cond::EQ, 10);
    for (int i = 1; i <= operators; ++i) {
        e = makeOr(std::move(e),
                   makeLeafConst(support::strprintf("v%d", i),
                                 isa::Cond::EQ, 10 + i));
    }
    return e;
}

std::string
exprToString(const BoolExpr &e)
{
    switch (e.kind) {
      case BoolExpr::Kind::LEAF: {
        std::string rhs = e.leaf.rhs_is_const
            ? support::strprintf("%d", e.leaf.rhs_const)
            : e.leaf.rhs_var;
        return "(" + e.leaf.var + " " +
               isa::condName(e.leaf.rel) + " " + rhs + ")";
      }
      case BoolExpr::Kind::AND:
        return exprToString(*e.lhs) + " AND " + exprToString(*e.rhs);
      case BoolExpr::Kind::OR:
        return exprToString(*e.lhs) + " OR " + exprToString(*e.rhs);
      case BoolExpr::Kind::NOT:
        return "NOT " + exprToString(*e.lhs);
    }
    support::panic("exprToString: bad kind");
}

} // namespace mips::ccm
