/**
 * @file
 * Boolean-expression ASTs for the condition-code study (Section 2.3).
 *
 * The paper's running example is
 *     Found := (Rec = Key) OR (I = 13);
 * Expressions here are trees of AND/OR/NOT over *leaf comparisons* of
 * integer variables. The code generators in codegen.h lower the same
 * tree under four architectural styles; the executor computes dynamic
 * instruction counts by enumerating leaf outcomes.
 */
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "isa/cond.h"

namespace mips::ccm {

/** A leaf comparison: variable REL (variable | constant). */
struct Leaf
{
    std::string var;
    isa::Cond rel = isa::Cond::EQ;
    bool rhs_is_const = false;
    std::string rhs_var;
    int32_t rhs_const = 0;
};

/** Expression tree node. */
struct BoolExpr
{
    enum class Kind { LEAF, AND, OR, NOT };

    Kind kind = Kind::LEAF;
    Leaf leaf;                      ///< LEAF
    std::unique_ptr<BoolExpr> lhs;  ///< AND/OR/NOT
    std::unique_ptr<BoolExpr> rhs;  ///< AND/OR

    /** Number of boolean operators (AND/OR/NOT) in the tree. */
    int operatorCount() const;

    /** Number of leaf comparisons. */
    int leafCount() const;

    /** Collect pointers to the leaves, left to right. */
    void collectLeaves(std::vector<const Leaf *> *out) const;

    /** Evaluate under a variable environment. */
    bool eval(const std::map<std::string, int32_t> &env) const;
};

using BoolExprPtr = std::unique_ptr<BoolExpr>;

/** Builders. */
BoolExprPtr makeLeaf(std::string var, isa::Cond rel, std::string rhs);
BoolExprPtr makeLeafConst(std::string var, isa::Cond rel, int32_t rhs);
BoolExprPtr makeAnd(BoolExprPtr l, BoolExprPtr r);
BoolExprPtr makeOr(BoolExprPtr l, BoolExprPtr r);
BoolExprPtr makeNot(BoolExprPtr e);

/** Deep copy. */
BoolExprPtr clone(const BoolExpr &e);

/** The paper's example: (Rec = Key) OR (I = 13). */
BoolExprPtr paperExample();

/**
 * A canonical OR-chain with `operators` operators (operators+1 leaves),
 * each leaf comparing a distinct variable with a distinct constant so
 * that leaf outcomes are independent.
 */
BoolExprPtr orChain(int operators);

/** Render as source text, e.g. "(Rec = Key) OR (I = 13)". */
std::string exprToString(const BoolExpr &e);

} // namespace mips::ccm
