#include "ccm/codegen.h"

#include <algorithm>

#include "support/logging.h"

namespace mips::ccm {

using isa::Cond;
using support::strprintf;

std::string
styleName(Style style)
{
    switch (style) {
      case Style::SET_CONDITIONALLY:   return "Set conditionally/no CC";
      case Style::CC_COND_SET:         return "CC/conditional set";
      case Style::CC_BRANCH_FULL:      return "CC with only branch";
      case Style::CC_BRANCH_EARLY_OUT: return "CC with only branch "
                                              "(early-out)";
    }
    support::panic("styleName: bad style");
}

namespace {

std::string
leafStr(const Leaf &leaf)
{
    std::string rhs = leaf.rhs_is_const
        ? strprintf("#%d", leaf.rhs_const) : leaf.rhs_var;
    return leaf.var + ", " + rhs;
}

std::string
regStr(int r)
{
    return strprintf("r%d", r);
}

} // namespace

std::string
CcInst::str() const
{
    switch (op) {
      case Op::LOAD_CONST:
        return strprintf("str #%d, %s", constant, regStr(rd).c_str());
      case Op::MOVE:
        return strprintf("mov %s, %s", regStr(rs).c_str(),
                         regStr(rd).c_str());
      case Op::ALU:
        if (rt < 0) {
            return strprintf("xor %s, #1, %s",
                             regStr(rs).c_str(), regStr(rd).c_str());
        }
        return strprintf("%s %s, %s, %s",
                         alu == '|' ? "or" : alu == '&' ? "and" : "xor",
                         regStr(rs).c_str(), regStr(rt).c_str(),
                         regStr(rd).c_str());
      case Op::STORE_VAR:
        return strprintf("str %s, %s", regStr(rs).c_str(), var.c_str());
      case Op::COMPARE:
        return "cmp " + leafStr(cmp);
      case Op::TEST:
        return strprintf("tst %s", regStr(rs).c_str());
      case Op::SET_COND:
        return strprintf("s%s %s", isa::condName(rel).c_str(),
                         regStr(rd).c_str());
      case Op::SET_FULL:
        return strprintf("set%s %s, %s", isa::condName(rel).c_str(),
                         leafStr(cmp).c_str(), regStr(rd).c_str());
      case Op::BRANCH_CC:
        return strprintf("b%s L%d", isa::condName(rel).c_str(), label);
      case Op::CMP_BRANCH:
        if (rs >= 0) {
            return strprintf("b%s %s, #0, L%d",
                             isa::condName(rel).c_str(),
                             regStr(rs).c_str(), label);
        }
        return strprintf("b%s %s, L%d", isa::condName(rel).c_str(),
                         leafStr(cmp).c_str(), label);
      case Op::BRANCH_ALWAYS:
        return strprintf("bra L%d", label);
      case Op::LABEL:
        return strprintf("L%d:", label);
    }
    support::panic("CcInst::str: bad op");
}

int
CcProgram::staticCount() const
{
    int n = 0;
    for (const CcInst &inst : insts)
        if (inst.op != CcInst::Op::LABEL)
            ++n;
    return n;
}

int
CcProgram::staticCount(CcClass cls) const
{
    int n = 0;
    for (const CcInst &inst : insts)
        if (inst.op != CcInst::Op::LABEL && inst.cls == cls)
            ++n;
    return n;
}

std::string
CcProgram::listing() const
{
    std::string out;
    for (const CcInst &inst : insts) {
        if (inst.op == CcInst::Op::LABEL)
            out += inst.str() + "\n";
        else
            out += "    " + inst.str() + "\n";
    }
    return out;
}

namespace {

/** Shared emission machinery for the four generators. */
class Gen
{
  public:
    explicit Gen(Style style, Context context)
    {
        prog_.style = style;
        prog_.context = context;
    }

    CcProgram
    take()
    {
        return std::move(prog_);
    }

    int freshReg() { return next_reg_++; }
    int freshLabel() { return next_label_++; }

    CcInst &
    emit(CcInst::Op op, CcClass cls)
    {
        CcInst inst;
        inst.op = op;
        inst.cls = cls;
        prog_.insts.push_back(inst);
        return prog_.insts.back();
    }

    void
    emitLabel(int id)
    {
        CcInst &inst = emit(CcInst::Op::LABEL, CcClass::REGISTER);
        inst.label = id;
    }

    void
    emitLoadConst(int rd, int32_t value)
    {
        CcInst &inst = emit(CcInst::Op::LOAD_CONST, CcClass::REGISTER);
        inst.rd = rd;
        inst.constant = value;
    }

    void
    emitCompare(const Leaf &leaf)
    {
        CcInst &inst = emit(CcInst::Op::COMPARE, CcClass::COMPARE);
        inst.cmp = leaf;
    }

    void
    emitBranchCc(Cond rel, int label)
    {
        CcInst &inst = emit(CcInst::Op::BRANCH_CC, CcClass::BRANCH);
        inst.rel = rel;
        inst.label = label;
    }

    void
    emitAlu(char op, int rs, int rt, int rd)
    {
        CcInst &inst = emit(CcInst::Op::ALU, CcClass::REGISTER);
        inst.alu = op;
        inst.rs = rs;
        inst.rt = rt;
        inst.rd = rd;
    }

    // ----- SET_CONDITIONALLY -------------------------------------------

    int
    genMipsValue(const BoolExpr &e)
    {
        switch (e.kind) {
          case BoolExpr::Kind::LEAF: {
            int rd = freshReg();
            CcInst &inst = emit(CcInst::Op::SET_FULL, CcClass::COMPARE);
            inst.cmp = e.leaf;
            inst.rel = e.leaf.rel;
            inst.rd = rd;
            return rd;
          }
          case BoolExpr::Kind::AND:
          case BoolExpr::Kind::OR: {
            int a = genMipsValue(*e.lhs);
            int b = genMipsValue(*e.rhs);
            int rd = freshReg();
            emitAlu(e.kind == BoolExpr::Kind::AND ? '&' : '|', a, b, rd);
            return rd;
          }
          case BoolExpr::Kind::NOT: {
            int a = genMipsValue(*e.lhs);
            int rd = freshReg();
            emitAlu('^', a, -1, rd); // xor with the constant 1
            return rd;
          }
        }
        support::panic("genMipsValue: bad kind");
    }

    // ----- CC_COND_SET ---------------------------------------------------

    int
    genCondSetValue(const BoolExpr &e)
    {
        switch (e.kind) {
          case BoolExpr::Kind::LEAF: {
            emitCompare(e.leaf);
            int rd = freshReg();
            CcInst &inst = emit(CcInst::Op::SET_COND,
                                CcClass::REGISTER);
            inst.rel = e.leaf.rel;
            inst.rd = rd;
            return rd;
          }
          case BoolExpr::Kind::AND:
          case BoolExpr::Kind::OR: {
            int a = genCondSetValue(*e.lhs);
            int b = genCondSetValue(*e.rhs);
            int rd = freshReg();
            emitAlu(e.kind == BoolExpr::Kind::AND ? '&' : '|', a, b, rd);
            return rd;
          }
          case BoolExpr::Kind::NOT: {
            int a = genCondSetValue(*e.lhs);
            int rd = freshReg();
            emitAlu('^', a, -1, rd);
            return rd;
          }
        }
        support::panic("genCondSetValue: bad kind");
    }

    // ----- CC_BRANCH_FULL -------------------------------------------------

    /**
     * Full evaluation on a branch-only CC machine. OR/AND chains of
     * leaves flatten into a shared accumulator (Figure 1's shape);
     * mixed trees recurse and combine with ALU ops.
     */
    int
    genFullValue(const BoolExpr &e)
    {
        // Chain flattening.
        if (e.kind == BoolExpr::Kind::OR ||
            e.kind == BoolExpr::Kind::AND) {
            std::vector<const BoolExpr *> chain;
            if (flattenChain(e, e.kind, &chain)) {
                bool is_or = e.kind == BoolExpr::Kind::OR;
                int rd = freshReg();
                emitLoadConst(rd, is_or ? 0 : 1);
                for (const BoolExpr *leaf_expr : chain) {
                    const Leaf &leaf = leaf_expr->leaf;
                    emitCompare(leaf);
                    int skip = freshLabel();
                    // OR: skip the set-to-1 when the leaf is false;
                    // AND: skip the set-to-0 when the leaf is true.
                    emitBranchCc(is_or ? isa::negateCond(leaf.rel)
                                       : leaf.rel, skip);
                    emitLoadConst(rd, is_or ? 1 : 0);
                    emitLabel(skip);
                }
                return rd;
            }
        }

        switch (e.kind) {
          case BoolExpr::Kind::LEAF: {
            int rd = freshReg();
            emitLoadConst(rd, 0);
            emitCompare(e.leaf);
            int skip = freshLabel();
            emitBranchCc(isa::negateCond(e.leaf.rel), skip);
            emitLoadConst(rd, 1);
            emitLabel(skip);
            return rd;
          }
          case BoolExpr::Kind::AND:
          case BoolExpr::Kind::OR: {
            int a = genFullValue(*e.lhs);
            int b = genFullValue(*e.rhs);
            int rd = freshReg();
            emitAlu(e.kind == BoolExpr::Kind::AND ? '&' : '|', a, b, rd);
            return rd;
          }
          case BoolExpr::Kind::NOT: {
            int a = genFullValue(*e.lhs);
            int rd = freshReg();
            emitAlu('^', a, -1, rd);
            return rd;
          }
        }
        support::panic("genFullValue: bad kind");
    }

    static bool
    flattenChain(const BoolExpr &e, BoolExpr::Kind kind,
                 std::vector<const BoolExpr *> *out)
    {
        if (e.kind == BoolExpr::Kind::LEAF) {
            out->push_back(&e);
            return true;
        }
        if (e.kind != kind)
            return false;
        return flattenChain(*e.lhs, kind, out) &&
               flattenChain(*e.rhs, kind, out);
    }

    // ----- CC_BRANCH_EARLY_OUT ---------------------------------------------

    /**
     * Short-circuit control generation: branch to `ltrue` when the
     * expression is true, fall through when false (the caller places
     * the false continuation right after).
     */
    void
    genBranchTrue(const BoolExpr &e, int ltrue)
    {
        switch (e.kind) {
          case BoolExpr::Kind::LEAF:
            emitCompare(e.leaf);
            emitBranchCc(e.leaf.rel, ltrue);
            return;
          case BoolExpr::Kind::OR:
            genBranchTrue(*e.lhs, ltrue);
            genBranchTrue(*e.rhs, ltrue);
            return;
          case BoolExpr::Kind::AND: {
            int lfalse = freshLabel();
            genBranchFalse(*e.lhs, lfalse);
            genBranchTrue(*e.rhs, ltrue);
            emitLabel(lfalse);
            return;
          }
          case BoolExpr::Kind::NOT:
            genBranchFalse(*e.lhs, ltrue);
            return;
        }
        support::panic("genBranchTrue: bad kind");
    }

    /** Branch to `lfalse` when the expression is false. */
    void
    genBranchFalse(const BoolExpr &e, int lfalse)
    {
        switch (e.kind) {
          case BoolExpr::Kind::LEAF:
            emitCompare(e.leaf);
            emitBranchCc(isa::negateCond(e.leaf.rel), lfalse);
            return;
          case BoolExpr::Kind::AND:
            genBranchFalse(*e.lhs, lfalse);
            genBranchFalse(*e.rhs, lfalse);
            return;
          case BoolExpr::Kind::OR: {
            int ltrue = freshLabel();
            genBranchTrue(*e.lhs, ltrue);
            genBranchFalse(*e.rhs, lfalse);
            emitLabel(ltrue);
            return;
          }
          case BoolExpr::Kind::NOT:
            genBranchTrue(*e.lhs, lfalse);
            return;
        }
        support::panic("genBranchFalse: bad kind");
    }

    CcProgram prog_;
    int next_reg_ = 1;
    int next_label_ = 0;
};

} // namespace

CcProgram
generate(const BoolExpr &expr, Style style, Context context)
{
    Gen gen(style, context);

    auto endStore = [&gen](int value_reg) {
        CcInst &inst = gen.emit(CcInst::Op::STORE_VAR,
                                CcClass::REGISTER);
        inst.rs = value_reg;
        inst.var = "Found";
    };

    switch (style) {
      case Style::SET_CONDITIONALLY: {
        if (context == Context::JUMP &&
            expr.kind == BoolExpr::Kind::LEAF) {
            // A single compare-and-branch does the whole job.
            int target = gen.freshLabel();
            CcInst &inst = gen.emit(CcInst::Op::CMP_BRANCH,
                                    CcClass::BRANCH);
            inst.cmp = expr.leaf;
            inst.rel = expr.leaf.rel;
            CcProgram prog = gen.take();
            prog.jump_target = target;
            // Fix the label reference.
            prog.insts.back().label = target;
            return prog;
        }
        int value = gen.genMipsValue(expr);
        if (context == Context::STORE) {
            endStore(value);
            return gen.take();
        }
        int target = gen.freshLabel();
        CcInst &inst = gen.emit(CcInst::Op::CMP_BRANCH, CcClass::BRANCH);
        inst.rs = value;
        inst.rel = Cond::NE;
        inst.label = target;
        CcProgram prog = gen.take();
        prog.jump_target = target;
        return prog;
      }

      case Style::CC_COND_SET: {
        if (context == Context::JUMP &&
            expr.kind == BoolExpr::Kind::LEAF) {
            gen.emitCompare(expr.leaf);
            int target = gen.freshLabel();
            gen.emitBranchCc(expr.leaf.rel, target);
            CcProgram prog = gen.take();
            prog.jump_target = target;
            return prog;
        }
        int value = gen.genCondSetValue(expr);
        if (context == Context::STORE) {
            endStore(value);
            return gen.take();
        }
        CcInst &tst = gen.emit(CcInst::Op::TEST, CcClass::COMPARE);
        tst.rs = value;
        int target = gen.freshLabel();
        gen.emitBranchCc(Cond::NE, target);
        CcProgram prog = gen.take();
        prog.jump_target = target;
        return prog;
      }

      case Style::CC_BRANCH_FULL: {
        int value = gen.genFullValue(expr);
        if (context == Context::STORE) {
            endStore(value);
            return gen.take();
        }
        CcInst &tst = gen.emit(CcInst::Op::TEST, CcClass::COMPARE);
        tst.rs = value;
        int target = gen.freshLabel();
        gen.emitBranchCc(Cond::NE, target);
        CcProgram prog = gen.take();
        prog.jump_target = target;
        return prog;
      }

      case Style::CC_BRANCH_EARLY_OUT: {
        if (context == Context::JUMP) {
            int target = gen.freshLabel();
            gen.genBranchTrue(expr, target);
            CcProgram prog = gen.take();
            prog.jump_target = target;
            return prog;
        }
        // Figure 1's early-out store shape: default true, fall to a
        // false-store when any early-out path fails.
        int rd = gen.freshReg();
        gen.emitLoadConst(rd, 1);
        int done = gen.freshLabel();
        gen.genBranchTrue(expr, done);
        gen.emitLoadConst(rd, 0);
        gen.emitLabel(done);
        endStore(rd);
        return gen.take();
      }
    }
    support::panic("generate: bad style");
}

ClassCounts
staticCounts(const CcProgram &prog)
{
    ClassCounts counts;
    for (const CcInst &inst : prog.insts) {
        if (inst.op == CcInst::Op::LABEL)
            continue;
        switch (inst.cls) {
          case CcClass::COMPARE: counts.compare += 1; break;
          case CcClass::REGISTER: counts.reg += 1; break;
          case CcClass::BRANCH: counts.branch += 1; break;
        }
    }
    return counts;
}

ClassCounts
execute(const CcProgram &prog, const std::map<std::string, int32_t> &env,
        bool *result)
{
    std::map<int, int32_t> regs;
    int32_t cc_a = 0, cc_b = 0;
    int32_t stored = 0;
    bool jumped_to_target = false;

    auto leafOperands = [&env](const Leaf &leaf, int32_t *a, int32_t *b) {
        auto it = env.find(leaf.var);
        if (it == env.end())
            support::panic("execute: unbound variable '%s'",
                           leaf.var.c_str());
        *a = it->second;
        if (leaf.rhs_is_const) {
            *b = leaf.rhs_const;
        } else {
            auto jt = env.find(leaf.rhs_var);
            if (jt == env.end())
                support::panic("execute: unbound variable '%s'",
                               leaf.rhs_var.c_str());
            *b = jt->second;
        }
    };

    // Label positions.
    std::map<int, size_t> labels;
    for (size_t i = 0; i < prog.insts.size(); ++i)
        if (prog.insts[i].op == CcInst::Op::LABEL)
            labels[prog.insts[i].label] = i;

    ClassCounts counts;
    size_t pc = 0;
    size_t safety = 0;
    while (pc < prog.insts.size()) {
        if (++safety > 100000)
            support::panic("execute: runaway CC program");
        const CcInst &inst = prog.insts[pc];
        ++pc;
        if (inst.op == CcInst::Op::LABEL)
            continue;
        switch (inst.cls) {
          case CcClass::COMPARE: counts.compare += 1; break;
          case CcClass::REGISTER: counts.reg += 1; break;
          case CcClass::BRANCH: counts.branch += 1; break;
        }

        auto jumpTo = [&](int label) {
            if (label == prog.jump_target) {
                jumped_to_target = true;
                pc = prog.insts.size();
                return;
            }
            auto it = labels.find(label);
            if (it == labels.end())
                support::panic("execute: unknown label L%d", label);
            pc = it->second;
        };

        switch (inst.op) {
          case CcInst::Op::LOAD_CONST:
            regs[inst.rd] = inst.constant;
            break;
          case CcInst::Op::MOVE:
            regs[inst.rd] = regs[inst.rs];
            break;
          case CcInst::Op::ALU: {
            int32_t a = regs[inst.rs];
            int32_t b = inst.rt < 0 ? 1 : regs[inst.rt];
            regs[inst.rd] = inst.alu == '&' ? (a & b)
                          : inst.alu == '|' ? (a | b) : (a ^ b);
            break;
          }
          case CcInst::Op::STORE_VAR:
            stored = regs[inst.rs];
            break;
          case CcInst::Op::COMPARE:
            leafOperands(inst.cmp, &cc_a, &cc_b);
            break;
          case CcInst::Op::TEST:
            cc_a = regs[inst.rs];
            cc_b = 0;
            break;
          case CcInst::Op::SET_COND:
            regs[inst.rd] = isa::evalCond(inst.rel,
                                          static_cast<uint32_t>(cc_a),
                                          static_cast<uint32_t>(cc_b))
                ? 1 : 0;
            break;
          case CcInst::Op::SET_FULL: {
            int32_t a, b;
            leafOperands(inst.cmp, &a, &b);
            regs[inst.rd] = isa::evalCond(inst.rel,
                                          static_cast<uint32_t>(a),
                                          static_cast<uint32_t>(b))
                ? 1 : 0;
            break;
          }
          case CcInst::Op::BRANCH_CC:
            if (isa::evalCond(inst.rel, static_cast<uint32_t>(cc_a),
                              static_cast<uint32_t>(cc_b))) {
                jumpTo(inst.label);
            }
            break;
          case CcInst::Op::CMP_BRANCH: {
            int32_t a, b;
            if (inst.rs >= 0) {
                a = regs[inst.rs];
                b = 0;
            } else {
                leafOperands(inst.cmp, &a, &b);
            }
            if (isa::evalCond(inst.rel, static_cast<uint32_t>(a),
                              static_cast<uint32_t>(b))) {
                jumpTo(inst.label);
            }
            break;
          }
          case CcInst::Op::BRANCH_ALWAYS:
            jumpTo(inst.label);
            break;
          case CcInst::Op::LABEL:
            break;
        }
    }

    if (result) {
        *result = prog.context == Context::JUMP ? jumped_to_target
                                                : stored != 0;
    }
    return counts;
}

namespace {

/** Pick a value for a leaf's variable forcing the desired outcome. */
int32_t
chooseValue(Cond rel, int32_t rhs, bool desired)
{
    const int32_t candidates[] = {
        rhs, rhs + 1, rhs - 1, 0, 1, -1, 2,
        static_cast<int32_t>(0x80000000), 0x7fffffff,
    };
    for (int32_t v : candidates) {
        if (isa::evalCond(rel, static_cast<uint32_t>(v),
                          static_cast<uint32_t>(rhs)) == desired) {
            return v;
        }
    }
    support::panic("chooseValue: no value forces %s to %d",
                   isa::condName(rel).c_str(), desired);
}

} // namespace

ClassCounts
expectedDynamicCounts(const CcProgram &prog, const BoolExpr &expr)
{
    std::vector<const Leaf *> leaves;
    expr.collectLeaves(&leaves);
    size_t n = leaves.size();
    if (n > 16)
        support::panic("expectedDynamicCounts: too many leaves (%zu)", n);

    ClassCounts sum;
    uint32_t combos = 1u << n;
    for (uint32_t mask = 0; mask < combos; ++mask) {
        std::map<std::string, int32_t> env;
        for (size_t i = 0; i < n; ++i) {
            const Leaf &leaf = *leaves[i];
            int32_t rhs = leaf.rhs_const;
            if (!leaf.rhs_is_const) {
                rhs = 5;
                env[leaf.rhs_var] = rhs;
            }
            bool desired = (mask >> i) & 1;
            env[leaf.var] = chooseValue(leaf.rel, rhs, desired);
        }
        bool result = false;
        ClassCounts counts = execute(prog, env, &result);
        // Sanity: the generated code must agree with eval().
        if (result != expr.eval(env))
            support::panic("expectedDynamicCounts: generator bug for "
                           "style %d", static_cast<int>(prog.style));
        sum.compare += counts.compare;
        sum.reg += counts.reg;
        sum.branch += counts.branch;
    }
    sum.compare /= combos;
    sum.reg /= combos;
    sum.branch /= combos;
    return sum;
}

} // namespace mips::ccm
