/**
 * @file
 * Boolean-expression code generation under the paper's four
 * architectural styles (Section 2.3.2, Tables 5/6, Figures 1-3):
 *
 *  - SET_CONDITIONALLY: MIPS. No condition codes; a set-conditionally
 *    instruction with the full 16-comparison repertoire materialises
 *    leaf values, ALU ops combine them. No branches.
 *  - CC_COND_SET: a condition-code machine with conditional-set
 *    (M68000's Scc): cmp sets the codes, Scc reads them.
 *  - CC_BRANCH_FULL: condition codes reachable only through branches
 *    (VAX-style), full evaluation of every operand.
 *  - CC_BRANCH_EARLY_OUT: same machine, short-circuit evaluation.
 *
 * Generated code is a small abstract instruction list with a class
 * per instruction (compare / register / branch) matching the paper's
 * Table 5 columns, plus an executor that yields expected dynamic
 * counts by enumerating independent leaf outcomes.
 */
#pragma once

#include <string>
#include <vector>

#include "ccm/boolexpr.h"

namespace mips::ccm {

/** The four architectural styles of Table 5. */
enum class Style
{
    SET_CONDITIONALLY,   ///< MIPS: no CC, set-conditionally
    CC_COND_SET,         ///< CC + conditional set (M68000)
    CC_BRANCH_FULL,      ///< CC + branch only, full evaluation
    CC_BRANCH_EARLY_OUT, ///< CC + branch only, early-out
};

/** Paper-facing style name. */
std::string styleName(Style style);

/** What the expression's value feeds (Table 4's two destinations). */
enum class Context
{
    STORE, ///< assigned to a variable
    JUMP,  ///< controls a conditional branch
};

/** Instruction classes counted in Table 5. */
enum class CcClass
{
    COMPARE,
    REGISTER,
    BRANCH,
};

/** One abstract instruction. */
struct CcInst
{
    enum class Op
    {
        LOAD_CONST, ///< rd := const                      (REGISTER)
        MOVE,       ///< rd := rs                         (REGISTER)
        ALU,        ///< rd := rs <alu> rt  (or/and/xor)  (REGISTER)
        STORE_VAR,  ///< var := rs                        (REGISTER)
        COMPARE,    ///< cmp a, b: set CC                 (COMPARE)
        TEST,       ///< cmp rs, 0: set CC from register  (COMPARE)
        SET_COND,   ///< rd := CC satisfies rel           (REGISTER)
        SET_FULL,   ///< rd := (a rel b), MIPS style      (COMPARE)
        BRANCH_CC,  ///< branch to label if CC rel        (BRANCH)
        CMP_BRANCH, ///< MIPS compare-and-branch          (BRANCH)
        BRANCH_ALWAYS, ///< unconditional                 (BRANCH)
        LABEL,      ///< no instruction; branch target
    };

    Op op = Op::LABEL;
    CcClass cls = CcClass::REGISTER;
    isa::Cond rel = isa::Cond::ALWAYS;
    int rd = -1, rs = -1, rt = -1; ///< abstract registers
    Leaf cmp;                      ///< COMPARE/SET_FULL/CMP_BRANCH
    int32_t constant = 0;          ///< LOAD_CONST
    int label = -1;                ///< branch target / LABEL id
    std::string var;               ///< STORE_VAR destination
    char alu = '|';                ///< ALU: '|', '&', '^'

    /** Assembly-flavoured rendering for the figure benches. */
    std::string str() const;
};

/** A generated sequence plus its entry metadata. */
struct CcProgram
{
    Style style = Style::SET_CONDITIONALLY;
    Context context = Context::STORE;
    std::vector<CcInst> insts;

    /** Label id used for the JUMP context's taken destination. */
    int jump_target = -1;

    /** Static instruction count (labels excluded). */
    int staticCount() const;

    /** Static count of one class. */
    int staticCount(CcClass cls) const;

    /** Listing for the figure benches. */
    std::string listing() const;
};

/** Per-class counts (used for both static and dynamic tallies). */
struct ClassCounts
{
    double compare = 0;
    double reg = 0;
    double branch = 0;

    double total() const { return compare + reg + branch; }

    /** Weighted cost with the paper's Table 6 timing assumptions. */
    double
    cost(double reg_time = 1, double cmp_time = 2,
         double branch_time = 4) const
    {
        return compare * cmp_time + reg * reg_time +
               branch * branch_time;
    }
};

/**
 * Generate code for `expr` in `context` under `style`. The STORE
 * context ends with a store to "Found"; the JUMP context ends with
 * (or consists of) branches to a target label.
 */
CcProgram generate(const BoolExpr &expr, Style style, Context context);

/** Static per-class counts of a program. */
ClassCounts staticCounts(const CcProgram &prog);

/**
 * Expected dynamic per-class counts, averaging over all 2^n
 * assignments of independent leaf outcomes (leaves must use distinct
 * variables, as orChain() and paperExample() arrange).
 */
ClassCounts expectedDynamicCounts(const CcProgram &prog,
                                  const BoolExpr &expr);

/**
 * Execute with a concrete environment; returns per-class executed
 * counts and (via out-params) the expression value the generated code
 * computed — used to verify generator correctness against eval().
 */
ClassCounts execute(const CcProgram &prog,
                    const std::map<std::string, int32_t> &env,
                    bool *result);

} // namespace mips::ccm
