#include "ccm/cost.h"

#include "support/logging.h"

namespace mips::ccm {

double
expressionCost(Style style, Context context, double mean_operators,
               const CostWeights &weights, bool dynamic)
{
    // Cost of an n-operator OR-chain, n = 1 and n = 3: the relation is
    // linear in n for chain expressions, so two points determine it.
    auto costAt = [&](int n) {
        BoolExprPtr expr = orChain(n);
        CcProgram prog = generate(*expr, style, context);
        ClassCounts counts = dynamic
            ? expectedDynamicCounts(prog, *expr) : staticCounts(prog);
        return counts.cost(weights.reg_time, weights.cmp_time,
                           weights.branch_time);
    };
    double c1 = costAt(1);
    double c3 = costAt(3);
    double slope = (c3 - c1) / 2.0;
    double base = c1 - slope;
    return base + slope * mean_operators;
}

Table6Entry
table6Entry(Style style, const ExprMix &mix, const CostWeights &weights,
            bool dynamic)
{
    Table6Entry entry;
    entry.store_cost = expressionCost(style, Context::STORE,
                                      mix.mean_operators, weights,
                                      dynamic);
    entry.jump_cost = expressionCost(style, Context::JUMP,
                                     mix.mean_operators, weights,
                                     dynamic);
    entry.total_cost = mix.frac_store * entry.store_cost +
                       mix.frac_jump * entry.jump_cost;
    return entry;
}

} // namespace mips::ccm
