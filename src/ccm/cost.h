/**
 * @file
 * Cost synthesis for Table 6: "the effectiveness for conditional set
 * assuming that register operations take time 1, compares take time 2,
 * and branches take time 4", weighted by the boolean-expression mix of
 * Table 4 (mean operators per expression; fraction ending in jumps vs
 * stores).
 */
#pragma once

#include "ccm/codegen.h"

namespace mips::ccm {

/** The paper's timing weights. */
struct CostWeights
{
    double reg_time = 1;
    double cmp_time = 2;
    double branch_time = 4;
};

/** The boolean-expression workload mix (Table 4's columns). */
struct ExprMix
{
    double mean_operators = 1.66;
    double frac_jump = 0.809;
    double frac_store = 0.191;
};

/**
 * Cost of evaluating an expression with `mean_operators` boolean
 * operators under `style` in `context`. Computed by generating
 * canonical OR-chains with 1 and 3 operators, fitting the (exactly
 * linear) cost-per-operator relation, and evaluating it at the mean.
 *
 * With `dynamic` false (the default, matching the paper's Table 6
 * methodology) static instruction counts are weighted; with it true,
 * expected executed counts over all leaf outcomes are weighted, which
 * flatters early-out evaluation exactly as Section 2.3.2 discusses.
 */
double expressionCost(Style style, Context context, double mean_operators,
                      const CostWeights &weights = CostWeights{},
                      bool dynamic = false);

/** One Table 6 row group: store context, jump context, and the mix. */
struct Table6Entry
{
    double store_cost = 0;
    double jump_cost = 0;
    double total_cost = 0; ///< mix-weighted
};

/** Compute the full Table 6 entry for a style. */
Table6Entry table6Entry(Style style, const ExprMix &mix = ExprMix{},
                        const CostWeights &weights = CostWeights{},
                        bool dynamic = false);

} // namespace mips::ccm
