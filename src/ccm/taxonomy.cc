#include "ccm/taxonomy.h"

#include "support/table.h"

namespace mips::ccm {

const std::vector<MachineCc> &
ccTaxonomy()
{
    // Table 2 of the paper: the M68000 sets codes on operations and
    // offers a conditional set; the VAX sets them on moves as well and
    // reaches them through branches; the 360 sets them on operations
    // with branch access; the PDP-10 and MIPS have no condition codes
    // (the PDP-10 uses compare-and-skip, MIPS compare-and-branch).
    static const std::vector<MachineCc> machines = {
        {"M68000", true, false, true, true, true},
        {"VAX", true, true, true, false, true},
        {"360", true, false, true, false, true},
        {"PDP-10", false, false, false, false, false},
        {"MIPS", false, false, false, false, false},
    };
    return machines;
}

std::string
taxonomyTable()
{
    support::TextTable t("Table 2: Condition code operations");
    t.setHeader({"Machine", "Has CC", "Set on moves", "Set on ops",
                 "Conditional set", "Branch access"});
    auto yn = [](bool b) { return std::string(b ? "yes" : "no"); };
    for (const MachineCc &m : ccTaxonomy()) {
        t.addRow({m.name, yn(m.has_cc), yn(m.set_on_moves),
                  yn(m.set_on_operations), yn(m.conditional_set),
                  yn(m.branch_access)});
    }
    return t.render();
}

} // namespace mips::ccm
