/**
 * @file
 * The condition-code taxonomy of Table 2: which contemporary machines
 * have condition codes, what sets them, and how they are consumed.
 */
#pragma once

#include <string>
#include <vector>

namespace mips::ccm {

/** One machine's condition-code feature set. */
struct MachineCc
{
    std::string name;
    bool has_cc = false;
    bool set_on_moves = false;      ///< moves update the codes
    bool set_on_operations = false; ///< ALU operations update the codes
    bool conditional_set = false;   ///< Scc-style access
    bool branch_access = false;     ///< Bcc-style access
};

/** The machines of Table 2 (MIPS included as the no-CC row). */
const std::vector<MachineCc> &ccTaxonomy();

/** Render the Table 2 matrix. */
std::string taxonomyTable();

} // namespace mips::ccm
