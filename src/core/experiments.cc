#include "core/experiments.h"

#include "asm/assembler.h"
#include "ccm/taxonomy.h"
#include "pipeline/session.h"
#include "support/logging.h"
#include "support/table.h"
#include "workload/corpus.h"

namespace mips::tradeoff {

using support::strprintf;
using support::TextTable;

namespace {

// Every corpus chain below goes through the shared pipeline session:
// drivers that touch the same program (e.g. Tables 3 and 11, or a
// bench binary printing a table and then benchmarking it) share one
// compile/simulate artifact instead of re-running the chain.

pipeline::StageOptions
layoutOptions(plc::Layout layout)
{
    pipeline::StageOptions options;
    options.compile.layout = layout;
    return options;
}

/** Paper cost assumption: memory instructions 4 cycles, ALU 1. */
double
sequenceCost(std::string_view asm_text)
{
    auto assembled = pipeline::sharedSession().assemble(asm_text);
    if (!assembled.ok())
        support::panic("sequence fragment: %s",
                       assembled.error().str().c_str());
    double cost = 0;
    for (const assembler::Item &item : assembled.value()->unit.items) {
        if (item.is_data || item.inst.isNop())
            continue;
        cost += item.inst.referencesMemory() ? 4.0 : 1.0;
    }
    return cost;
}

/** Parse + analyze a corpus program through the session cache. */
const plc::ProgramAst &
parseOrDie(const workload::CorpusProgram &program, plc::Layout layout)
{
    auto parsed =
        pipeline::sharedSession().parse(program.source, layout);
    if (!parsed.ok()) {
        support::panic("parsing %s failed: %s", program.name,
                       parsed.error().str().c_str());
    }
    return parsed.value()->ast;
}

/** Run one program with reference profiling through the session. */
pipeline::SimRef
profileOrDie(const char *name, const char *source, plc::Layout layout)
{
    pipeline::StageOptions options = layoutOptions(layout);
    options.sim.profile = true;
    auto result = pipeline::sharedSession().simulate(source, options);
    if (!result.ok()) {
        support::panic("profiling %s failed: %s", name,
                       result.error().str().c_str());
    }
    if (result.value()->stop != sim::StopReason::HALT) {
        support::panic("profiling %s: program did not halt: %s", name,
                       result.value()->error.c_str());
    }
    return result.value();
}

/** Profile the whole corpus and merge (cached per program). */
workload::ProfileResult
profileCorpusOrDie(plc::Layout layout)
{
    workload::ProfileResult merged;
    for (const workload::CorpusProgram &program : workload::corpus()) {
        pipeline::SimRef run =
            profileOrDie(program.name, program.source, layout);
        merged.refs.merge(run->refs);
        merged.cycles += run->cycles;
        merged.free_data_cycles += run->free_data_cycles;
    }
    return merged;
}

} // namespace

// --------------------------------------------------------------- Table 1

double
Table1Result::coveredByImm4() const
{
    return dist.dist.fraction("0") + dist.dist.fraction("1") +
           dist.dist.fraction("2") + dist.dist.fraction("3-15");
}

double
Table1Result::coveredByImm8() const
{
    return coveredByImm4() + dist.dist.fraction("16-255");
}

Table1Result
runTable1()
{
    Table1Result result;
    for (const workload::CorpusProgram &program : workload::corpus()) {
        workload::collectConstants(
            parseOrDie(program, plc::Layout::WORD_ALLOCATED),
            &result.dist);
    }

    static const std::pair<const char *, double> kPaper[] = {
        {"0", 0.248}, {"1", 0.190}, {"2", 0.041},
        {"3-15", 0.208}, {"16-255", 0.268}, {">255", 0.045},
    };
    TextTable t("Table 1: Constant distribution in programs");
    t.setHeader({"Absolute value", "Paper", "Measured"});
    for (const auto &[bucket, paper] : kPaper) {
        t.addRow({bucket, TextTable::pct(paper),
                  TextTable::pct(result.dist.dist.fraction(bucket))});
    }
    t.addSeparator();
    t.addRow({"covered by 4-bit constant", "~70%",
              TextTable::pct(result.coveredByImm4())});
    t.addRow({"covered by 8-bit immediate", "~95%",
              TextTable::pct(result.coveredByImm8())});
    result.table = t.render();
    return result;
}

// --------------------------------------------------------------- Table 2

std::string
runTable2()
{
    return ccm::taxonomyTable();
}

// --------------------------------------------------------------- Table 3

Table3Result
runTable3()
{
    Table3Result result;
    for (const workload::CorpusProgram &program : workload::corpus()) {
        auto compiled =
            pipeline::sharedSession().compile(program.source);
        if (!compiled.ok()) {
            support::panic("compiling %s failed: %s", program.name,
                           compiled.error().str().c_str());
        }
        // The paper measures the code generator's output, before the
        // peephole pass (CompileArtifact::unit).
        workload::collectCcSavings(compiled.value()->unit,
                                   &result.savings);
    }

    TextTable t("Table 3: Use of condition codes");
    t.setHeader({"Quantity", "Paper", "Measured"});
    t.addRow({"Compares without condition codes", "2324",
              strprintf("%llu", static_cast<unsigned long long>(
                  result.savings.compares))});
    t.addRow({"Saved, CC set by operators only", "1.1%",
              TextTable::pct(result.savings.fracSavedByOps())});
    t.addRow({"Saved, CC set by operators and moves", "2.1%",
              TextTable::pct(result.savings.fracSavedWithMoves())});
    t.addRow({"Moves used only to set CC", "706",
              strprintf("%llu", static_cast<unsigned long long>(
                  result.savings.moves_for_cc))});
    result.table = t.render();
    return result;
}

// --------------------------------------------------------------- Table 4

Table4Result
runTable4()
{
    Table4Result result;
    for (const workload::CorpusProgram &program : workload::corpus()) {
        workload::collectBoolExprs(
            parseOrDie(program, plc::Layout::WORD_ALLOCATED),
            &result.shape);
    }

    TextTable t("Table 4: Boolean expressions");
    t.setHeader({"Quantity", "Paper", "Measured"});
    t.addRow({"Average operators/boolean expression", "1.66",
              TextTable::num(result.shape.meanOperators())});
    t.addRow({"Boolean expressions ending in jumps", "80.9%",
              TextTable::pct(result.shape.fracJump())});
    t.addRow({"Boolean expressions ending in stores", "19.1%",
              TextTable::pct(1.0 - result.shape.fracJump())});
    result.table = t.render();
    return result;
}

// --------------------------------------------------------------- Table 5

Table5Result
runTable5()
{
    Table5Result result;

    static const std::pair<ccm::Style, const char *> kStyles[] = {
        {ccm::Style::SET_CONDITIONALLY, "2/1/0"},
        {ccm::Style::CC_COND_SET, "2/3/0"},
        {ccm::Style::CC_BRANCH_FULL, "2/2/2"},
        {ccm::Style::CC_BRANCH_EARLY_OUT, "2/0/2 (dyn 2/0/1.5)"},
    };

    TextTable t("Table 5: Compare/Register/Branch instructions per "
                "boolean operator");
    t.setHeader({"Architectural support", "Paper", "Measured static",
                 "Measured dynamic"});
    for (const auto &[style, paper] : kStyles) {
        // Counts for a one-operator expression, excluding the final
        // result store (the paper charges the ending separately).
        ccm::BoolExprPtr e1 = ccm::orChain(1);
        ccm::Context ctx = style == ccm::Style::CC_BRANCH_EARLY_OUT
            ? ccm::Context::JUMP : ccm::Context::STORE;
        ccm::CcProgram p1 = ccm::generate(*e1, style, ctx);
        ccm::ClassCounts s1 = ccm::staticCounts(p1);
        ccm::ClassCounts d1 = ccm::expectedDynamicCounts(p1, *e1);
        if (ctx == ccm::Context::STORE) {
            s1.reg -= 1; // the trailing store of the result
            d1.reg -= 1;
        }

        Table5Row row;
        row.style = ccm::styleName(style);
        row.static_counts = s1;
        row.dynamic_counts = d1;
        t.addRow({row.style, paper,
                  strprintf("%.0f/%.0f/%.0f", row.static_counts.compare,
                            row.static_counts.reg,
                            row.static_counts.branch),
                  strprintf("%.2f/%.2f/%.2f",
                            row.dynamic_counts.compare,
                            row.dynamic_counts.reg,
                            row.dynamic_counts.branch)});
        result.rows.push_back(row);
    }
    result.table = t.render();
    return result;
}

// --------------------------------------------------------------- Table 6

Table6Result
runTable6(bool use_paper_mix)
{
    Table6Result result;
    if (use_paper_mix) {
        result.mix = ccm::ExprMix{};
    } else {
        Table4Result table4 = runTable4();
        result.mix.mean_operators = table4.shape.meanOperators();
        result.mix.frac_jump = table4.shape.fracJump();
        result.mix.frac_store = 1.0 - result.mix.frac_jump;
    }

    static const std::tuple<ccm::Style, const char *, const char *>
        kStyles[] = {
        {ccm::Style::SET_CONDITIONALLY, "Set conditionally/no CC",
         "9.3 / 13.3 / 12.5"},
        {ccm::Style::CC_COND_SET, "CC/conditional set",
         "14.9 / 18.9 / 18.0"},
        {ccm::Style::CC_BRANCH_FULL, "CC with only branch (full)",
         "27.9 / 26.9 / 26.9"},
        {ccm::Style::CC_BRANCH_EARLY_OUT,
         "CC with only branch (early-out)", "20.5 / 19.5 / 19.7"},
    };

    TextTable t(strprintf("Table 6: Cost of evaluating boolean "
                          "expressions (mix: %.2f ops/expr, %.0f%% "
                          "jumps)", result.mix.mean_operators,
                          result.mix.frac_jump * 100));
    t.setHeader({"Support", "Paper store/jump/total",
                 "Store", "Jump", "Total"});
    double full_total = 0, condset_total = 0, setcond_total = 0;
    for (const auto &[style, name, paper] : kStyles) {
        Table6Row row;
        row.style = name;
        row.entry = ccm::table6Entry(style, result.mix);
        t.addRow({name, paper, TextTable::num(row.entry.store_cost, 1),
                  TextTable::num(row.entry.jump_cost, 1),
                  TextTable::num(row.entry.total_cost, 1)});
        if (style == ccm::Style::CC_BRANCH_FULL)
            full_total = row.entry.total_cost;
        if (style == ccm::Style::CC_COND_SET)
            condset_total = row.entry.total_cost;
        if (style == ccm::Style::SET_CONDITIONALLY)
            setcond_total = row.entry.total_cost;
        result.rows.push_back(row);
    }
    result.improvement_cond_set = 1.0 - condset_total / full_total;
    result.improvement_set_cond = 1.0 - setcond_total / full_total;
    t.addSeparator();
    t.addRow({"Improvement, conditional set vs CC", "33.0%",
              TextTable::pct(result.improvement_cond_set)});
    t.addRow({"Improvement, set conditionally vs CC", "53.5%",
              TextTable::pct(result.improvement_set_cond)});
    result.table = t.render();
    return result;
}

// -------------------------------------------------------- Tables 7 & 8

namespace {

RefPatternResult
runRefPattern(plc::Layout layout, const char *title,
              const double paper[4])
{
    workload::ProfileResult profile = profileCorpusOrDie(layout);

    RefPatternResult result;
    result.refs = profile.refs;
    result.free_bandwidth = profile.freeBandwidth();

    const workload::RefPattern &r = result.refs;
    double total = static_cast<double>(r.total());
    auto pct = [&](uint64_t n) {
        return TextTable::pct(static_cast<double>(n) / total);
    };

    TextTable t(title);
    t.setHeader({"Reference class", "Paper", "Measured"});
    t.addRow({"8-bit loads", TextTable::pct(paper[0]), pct(r.loads8)});
    t.addRow({"32-bit loads", TextTable::pct(paper[1]),
              pct(r.loads32)});
    t.addRow({"8-bit stores", TextTable::pct(paper[2]),
              pct(r.stores8)});
    t.addRow({"32-bit stores", TextTable::pct(paper[3]),
              pct(r.stores32)});
    t.addSeparator();
    t.addRow({"all loads", "71.2%",
              pct(r.loads8 + r.loads32)});
    t.addRow({"all stores", "28.7%",
              pct(r.stores8 + r.stores32)});
    double char_total = static_cast<double>(r.charTotal());
    if (char_total > 0) {
        t.addRow({"character loads of all char refs", "66.7%",
                  TextTable::pct(
                      static_cast<double>(r.char_loads8 +
                                          r.char_loads32) /
                      char_total)});
    }
    result.table = t.render();
    return result;
}

} // namespace

RefPatternResult
runTable7()
{
    static const double paper[4] = {0.026, 0.686, 0.026, 0.262};
    return runRefPattern(plc::Layout::WORD_ALLOCATED,
                         "Table 7: Data reference patterns in "
                         "word-allocated programs", paper);
}

RefPatternResult
runTable8()
{
    static const double paper[4] = {0.066, 0.646, 0.059, 0.229};
    return runRefPattern(plc::Layout::BYTE_ALLOCATED,
                         "Table 8: Data reference patterns in "
                         "byte-allocated programs", paper);
}

// --------------------------------------------------------------- Table 9

Table9Result
runTable9(double overhead)
{
    Table9Result result;
    result.overhead = overhead;

    // The MIPS sequences are the paper's own (Section 4.1), measured
    // from real assembled code. The byte-addressed machine performs
    // each logical operation as a single reference but pays `overhead`
    // on the fetch path of *every* operand reference.
    struct Spec
    {
        const char *name;
        const char *mips_seq;     ///< word-addressed MIPS code
        double byte_machine_cost; ///< single reference
        const char *paper;        ///< paper's byte/overhead/MIPS cells
    };
    static const Spec kSpecs[] = {
        {"load from packed array",
         "ld (r1+r2>>2), r3\nxc r2, r3, r3\n", 4, "4 / 4.6 / 6"},
        {"store into packed array",
         "ld (r1+r2>>2), r4\nmtlo r2\nic r3, r4\nst r4, (r1+r2>>2)\n",
         4, "4 / 4.6 / 8-12"},
        {"load byte via pointer",
         "ld (r0+r2>>2), r3\nxc r2, r3, r3\n", 4, "6 / 6.9 / 8"},
        {"store byte via pointer",
         "ld (r0+r2>>2), r4\nmtlo r2\nic r3, r4\nst r4, (r0+r2>>2)\n",
         4, "6 / 6.9 / 10-18"},
        {"load word", "ld 2(r1), r3\n", 4, "4 / 4.6 / 4"},
        {"store word", "st r3, 2(r1)\n", 4, "4 / 4.6 / 4"},
    };

    TextTable t(strprintf("Table 9: Cost of byte operations "
                          "(overhead %.0f%%)", overhead * 100));
    t.setHeader({"Operation", "Paper byte/ovh/MIPS", "Byte machine",
                 "Byte + overhead", "MIPS (word)"});
    for (const Spec &spec : kSpecs) {
        Table9Row row;
        row.operation = spec.name;
        row.cost_byte_machine = spec.byte_machine_cost;
        row.cost_byte_overhead = spec.byte_machine_cost *
                                 (1.0 + overhead);
        row.cost_mips = sequenceCost(spec.mips_seq);
        t.addRow({spec.name, spec.paper,
                  TextTable::num(row.cost_byte_machine, 1),
                  TextTable::num(row.cost_byte_overhead, 1),
                  TextTable::num(row.cost_mips, 1)});
        result.rows.push_back(row);
    }
    result.table = t.render();
    return result;
}

// -------------------------------------------------------------- Table 10

Table10Result
runTable10(double overhead)
{
    Table10Result result;
    result.overhead = overhead;
    Table9Result table9 = runTable9(overhead);

    auto costOf = [&table9](const std::string &name) {
        for (const Table9Row &row : table9.rows)
            if (row.operation == name)
                return row;
        support::panic("Table 9 row '%s' missing", name.c_str());
    };
    Table9Row byte_load = costOf("load from packed array");
    Table9Row byte_store = costOf("store into packed array");
    Table9Row word_load = costOf("load word");
    Table9Row word_store = costOf("store word");

    plc::Layout layouts[2] = {plc::Layout::WORD_ALLOCATED,
                              plc::Layout::BYTE_ALLOCATED};
    const char *names[2] = {"word-allocated", "byte-allocated"};

    TextTable t(strprintf("Table 10: Cost of byte- vs word-addressed "
                          "architectures (overhead %.0f%%)",
                          overhead * 100));
    t.setHeader({"Layout", "Word-addr MIPS cost/ref",
                 "Byte-addr MIPS cost/ref", "Byte penalty",
                 "Paper penalty"});
    const char *paper_penalty[2] = {"9 - 11.8%", "7.7 - 14.6%"};
    for (int i = 0; i < 2; ++i) {
        workload::ProfileResult profile = profileCorpusOrDie(layouts[i]);
        const workload::RefPattern &r = profile.refs;
        double total = static_cast<double>(r.total());

        double word_cost =
            (static_cast<double>(r.loads8) * byte_load.cost_mips +
             static_cast<double>(r.stores8) * byte_store.cost_mips +
             static_cast<double>(r.loads32) * word_load.cost_mips +
             static_cast<double>(r.stores32) * word_store.cost_mips) /
            total;
        // On the byte-addressed machine every logical reference is a
        // single access paying the overhead.
        double byte_cost =
            (static_cast<double>(r.loads8 + r.stores8) *
                 byte_load.cost_byte_overhead +
             static_cast<double>(r.loads32) *
                 word_load.cost_byte_overhead +
             static_cast<double>(r.stores32) *
                 word_store.cost_byte_overhead) /
            total;

        result.word_machine_cost[i] = word_cost;
        result.byte_machine_cost[i] = byte_cost;
        result.penalty[i] = (byte_cost - word_cost) / word_cost;
        t.addRow({names[i], TextTable::num(word_cost, 3),
                  TextTable::num(byte_cost, 3),
                  TextTable::pct(result.penalty[i]),
                  paper_penalty[i]});
    }
    result.table = t.render();
    return result;
}

// -------------------------------------------------------------- Table 11

Table11Result
runTable11()
{
    Table11Result result;

    const workload::CorpusProgram *programs[] = {
        &workload::fibonacciProgram(),
        &workload::puzzle0Program(),
        &workload::puzzle1Program(),
    };

    TextTable t("Table 11: Cumulative improvements with postpass "
                "optimization (static instruction counts)");
    t.setHeader({"Optimization", "Fibonacci", "Puzzle 0", "Puzzle 1"});

    for (const workload::CorpusProgram *program : programs) {
        Table11Program entry;
        entry.name = program->name;

        pipeline::StageOptions none;
        none.reorg.reorder = false;
        none.reorg.pack = false;
        none.reorg.fill_delay = false;
        pipeline::StageOptions reorder = none;
        reorder.reorg.reorder = true;
        pipeline::StageOptions pack = reorder;
        pack.reorg.pack = true;
        pipeline::StageOptions full = pack;
        full.reorg.fill_delay = true;

        // The four configurations share one compile artifact; only
        // the reorganize stage re-runs per toggle.
        auto countStage = [&](const pipeline::StageOptions &opts) {
            auto exe = pipeline::sharedSession().reorganize(
                program->source, opts);
            if (!exe.ok())
                support::panic("building %s failed: %s", program->name,
                               exe.error().str().c_str());
            size_t instructions = 0;
            for (const auto &item : exe.value()->final_unit.items)
                if (!item.is_data)
                    ++instructions;
            return instructions;
        };

        entry.none = countStage(none);
        entry.reorganized = countStage(reorder);
        entry.packed = countStage(pack);
        entry.branch_delay = countStage(full);

        // Correctness: the fully optimized program must still run.
        auto run =
            pipeline::sharedSession().simulate(program->source, full);
        if (!run.ok())
            support::panic("running %s failed: %s", program->name,
                           run.error().str().c_str());
        if (run.value()->stop != sim::StopReason::HALT) {
            support::panic("optimized %s failed to run: %s",
                           program->name, run.value()->error.c_str());
        }
        entry.output = run.value()->console;
        result.programs.push_back(std::move(entry));
    }

    auto row = [&](const char *label, auto member) {
        std::vector<std::string> cells{label};
        for (const Table11Program &p : result.programs)
            cells.push_back(strprintf("%zu", member(p)));
        t.addRow(cells);
    };
    row("None (no-ops inserted)",
        [](const Table11Program &p) { return p.none; });
    row("Reorganization",
        [](const Table11Program &p) { return p.reorganized; });
    row("Packing",
        [](const Table11Program &p) { return p.packed; });
    row("Branch delay",
        [](const Table11Program &p) { return p.branch_delay; });
    t.addSeparator();
    std::vector<std::string> improvement{"Total improvement"};
    for (const Table11Program &p : result.programs)
        improvement.push_back(TextTable::pct(p.totalImprovement()));
    t.addRow(improvement);
    std::vector<std::string> paper{"(paper)", "20.6%", "24.8%", "35.1%"};
    t.addRow(paper);
    result.table = t.render();
    return result;
}

// ------------------------------------------------------- Figures 1-3

std::string
runFigures1to3()
{
    ccm::BoolExprPtr expr = ccm::paperExample();
    std::string out;
    out += "Boolean expression: Found := " + ccm::exprToString(*expr) +
           "\n\n";

    struct Fig
    {
        const char *title;
        ccm::Style style;
    };
    static const Fig kFigs[] = {
        {"Figure 1a: full evaluation (CC, branch access only)",
         ccm::Style::CC_BRANCH_FULL},
        {"Figure 1b: early-out evaluation (CC, branch access only)",
         ccm::Style::CC_BRANCH_EARLY_OUT},
        {"Figure 2: conditional set based on CC",
         ccm::Style::CC_COND_SET},
        {"Figure 3: MIPS set conditionally",
         ccm::Style::SET_CONDITIONALLY},
    };
    for (const Fig &fig : kFigs) {
        ccm::CcProgram prog = ccm::generate(*expr, fig.style,
                                            ccm::Context::STORE);
        ccm::ClassCounts dynamic = ccm::expectedDynamicCounts(prog,
                                                              *expr);
        out += std::string(fig.title) + "\n";
        out += prog.listing();
        out += strprintf("  %d static instructions, %d branches, "
                         "average %.2f executed\n\n",
                         prog.staticCount(),
                         prog.staticCount(ccm::CcClass::BRANCH),
                         dynamic.total());
    }
    return out;
}

// ---------------------------------------------------------- Figure 4

std::string
runFigure4()
{
    // The paper's Figure 4 fragment, expressed as legal code.
    const char *fragment =
        "    ld 2(r13), r1\n"
        "    ble r1, #1, l11\n"
        "    sub r1, #1, r2\n"
        "    st r2, 2(r13)\n"
        "    ld 3(r13), r5\n"
        "    add r5, r1, r5\n"
        "    add r4, #1, r4\n"
        "    bra l3\n"
        "l11:\n"
        "    movi #0, r2\n"
        "l3:\n"
        "    st r4, 5(r13)\n"
        "    halt\n";
    auto parsed = pipeline::sharedSession().assemble(fragment);
    if (!parsed.ok())
        support::panic("figure 4 fragment: %s",
                       parsed.error().str().c_str());
    const assembler::Unit &unit = parsed.value()->unit;

    std::string out = "Figure 4: reorganization, packing, and branch "
                      "delay\n\nLegal code:\n";
    out += assembler::listUnit(unit);

    reorg::ReorgOptions none;
    none.reorder = false;
    none.pack = false;
    none.fill_delay = false;
    reorg::ReorgResult noops = reorg::reorganize(unit, none);
    out += strprintf("\nWith no-ops (%zu words):\n",
                     noops.unit.items.size());
    out += assembler::listUnit(noops.unit);

    reorg::ReorgResult full = reorg::reorganize(unit);
    out += strprintf("\nReorganized (%zu words, %zu packed, "
                     "%zu slots filled):\n",
                     full.unit.items.size(), full.stats.packed_words,
                     full.stats.slots_filled_move +
                         full.stats.slots_filled_dup +
                         full.stats.slots_filled_hoist);
    out += assembler::listUnit(full.unit);
    return out;
}

// ------------------------------------------------- Dispatch tradeoff

namespace {

/** Measure one source under both CASE lowerings. */
DispatchMeasurement
measureDispatch(const std::string &name, const char *source)
{
    DispatchMeasurement m;
    m.name = name;
    for (bool tables : {false, true}) {
        pipeline::StageOptions options;
        options.compile.jump_tables = tables;

        auto exe = pipeline::sharedSession().reorganize(source, options);
        if (!exe.ok())
            support::panic("building %s failed: %s", name.c_str(),
                           exe.error().str().c_str());
        size_t words = exe.value()->final_unit.items.size();

        auto run = pipeline::sharedSession().simulate(source, options);
        if (!run.ok())
            support::panic("running %s failed: %s", name.c_str(),
                           run.error().str().c_str());
        if (run.value()->stop != sim::StopReason::HALT) {
            support::panic("dispatch program %s did not halt: %s",
                           name.c_str(), run.value()->error.c_str());
        }
        if (tables) {
            m.table_words = words;
            m.table_cycles = run.value()->cycles;
        } else {
            m.chain_words = words;
            m.chain_cycles = run.value()->cycles;
        }
        if (m.output.empty()) {
            m.output = run.value()->console;
        } else if (m.output != run.value()->console) {
            support::panic("%s: CASE lowerings disagree: '%s' vs '%s'",
                           name.c_str(), m.output.c_str(),
                           run.value()->console.c_str());
        }
    }
    return m;
}

/** A hot loop dispatching over a dense CASE of `arms` labels. */
std::string
densityProgram(int arms)
{
    std::string src = strprintf(
        "program dispatch%d;\n"
        "var i, k, s: integer;\n"
        "begin\n"
        "  s := 0;\n"
        "  for i := 0 to 199 do begin\n"
        "    k := i mod %d;\n"
        "    case k of\n",
        arms, arms);
    for (int a = 0; a < arms; ++a) {
        src += strprintf("      %d: s := s + %d%s\n", a, a + 1,
                         a + 1 < arms ? ";" : "");
    }
    src += "    end;\n"
           "  end;\n"
           "  writeint(s);\n"
           "end.\n";
    return src;
}

} // namespace

DispatchResult
runDispatchStudy()
{
    DispatchResult result;
    for (const workload::CorpusProgram &program :
         workload::dispatchCorpus()) {
        result.programs.push_back(
            measureDispatch(program.name, program.source));
    }

    static const int kArms[] = {2, 4, 8, 16, 32};
    for (int arms : kArms) {
        std::string source = densityProgram(arms);
        result.density.push_back(measureDispatch(
            strprintf("case/%d", arms), source.c_str()));
    }

    TextTable t("Dispatch tradeoff: branch chain vs jump table "
                "(CASE lowering)");
    t.setHeader({"Program", "Words chain", "Words table",
                 "Cycles chain", "Cycles table", "Table speedup"});
    auto addRows = [&](const std::vector<DispatchMeasurement> &ms) {
        for (const DispatchMeasurement &m : ms) {
            t.addRow({m.name, strprintf("%zu", m.chain_words),
                      strprintf("%zu", m.table_words),
                      strprintf("%llu", static_cast<unsigned long long>(
                                            m.chain_cycles)),
                      strprintf("%llu", static_cast<unsigned long long>(
                                            m.table_cycles)),
                      TextTable::pct(m.tableSpeedup())});
        }
    };
    addRows(result.programs);
    t.addSeparator();
    addRows(result.density);
    result.table = t.render();
    return result;
}

// ------------------------------------------------------ Free cycles

FreeCyclesResult
runFreeCycles()
{
    FreeCyclesResult result;

    result.corpus_free =
        profileCorpusOrDie(plc::Layout::WORD_ALLOCATED).freeBandwidth();

    workload::ProfileResult merged;
    for (const workload::CorpusProgram *program :
         {&workload::fibonacciProgram(), &workload::puzzle0Program(),
          &workload::puzzle1Program()}) {
        pipeline::SimRef p = profileOrDie(
            program->name, program->source, plc::Layout::WORD_ALLOCATED);
        merged.cycles += p->cycles;
        merged.free_data_cycles += p->free_data_cycles;
    }
    result.benchmark_free = merged.freeBandwidth();

    TextTable t("Free memory cycles (Section 3.1)");
    t.setHeader({"Workload", "Paper", "Measured free data bandwidth"});
    t.addRow({"analysis corpus", "~40%",
              TextTable::pct(result.corpus_free)});
    t.addRow({"fib + puzzle benchmarks", "~40%",
              TextTable::pct(result.benchmark_free)});
    result.table = t.render();
    return result;
}

} // namespace mips::tradeoff
