/**
 * @file
 * The public experiment API: one driver per paper table/figure.
 *
 * Each driver runs the relevant substrates (corpus, compiler,
 * reorganizer, simulators, condition-code baseline) and returns both
 * the raw numbers and a rendered paper-style table that places our
 * measurement next to the paper's published value. The bench binaries
 * under bench/ are thin wrappers over these drivers; tests assert the
 * qualitative shape (who wins, roughly by how much, where crossovers
 * fall).
 */
#pragma once

#include <array>
#include <string>
#include <vector>

#include "ccm/cost.h"
#include "plc/sema.h"
#include "reorg/reorganizer.h"
#include "workload/analyzers.h"

namespace mips::tradeoff {

// ------------------------------------------------------------- Table 1

struct Table1Result
{
    workload::ConstantDist dist;
    std::string table;

    /** Fraction of constants expressible as a 4-bit inline constant. */
    double coveredByImm4() const;
    /** Fraction covered by the 8-bit move immediate. */
    double coveredByImm8() const;
};

Table1Result runTable1();

// ------------------------------------------------------------- Table 2

/** The condition-code taxonomy (qualitative). */
std::string runTable2();

// ------------------------------------------------------------- Table 3

struct Table3Result
{
    workload::CcSavings savings;
    std::string table;
};

Table3Result runTable3();

// ------------------------------------------------------------- Table 4

struct Table4Result
{
    workload::BoolExprShape shape;
    std::string table;
};

Table4Result runTable4();

// ------------------------------------------------------------- Table 5

struct Table5Row
{
    std::string style;
    ccm::ClassCounts static_counts;  ///< per boolean operator
    ccm::ClassCounts dynamic_counts; ///< per boolean operator
};

struct Table5Result
{
    std::vector<Table5Row> rows;
    std::string table;
};

Table5Result runTable5();

// ------------------------------------------------------------- Table 6

struct Table6Row
{
    std::string style;
    ccm::Table6Entry entry;
};

struct Table6Result
{
    ccm::ExprMix mix; ///< measured from the corpus (Table 4)
    std::vector<Table6Row> rows;
    double improvement_cond_set = 0;  ///< vs branch-only full
    double improvement_set_cond = 0;  ///< vs branch-only full
    std::string table;
};

Table6Result runTable6(bool use_paper_mix = false);

// ------------------------------------------------------- Tables 7 and 8

struct RefPatternResult
{
    workload::RefPattern refs;
    double free_bandwidth = 0;
    std::string table;
};

RefPatternResult runTable7(); ///< word-allocated corpus
RefPatternResult runTable8(); ///< byte-allocated corpus

// ------------------------------------------------------------- Table 9

/** Cycle cost of one logical operation under three machine models. */
struct Table9Row
{
    std::string operation;
    double cost_byte_machine = 0;   ///< byte-addressed, no overhead
    double cost_byte_overhead = 0;  ///< with the fetch-path overhead
    double cost_mips = 0;           ///< word-addressed MIPS sequences
};

struct Table9Result
{
    double overhead = 0;            ///< critical-path overhead factor
    std::vector<Table9Row> rows;
    std::string table;
};

/**
 * Measure the paper's Table 9 operations. MIPS costs come from
 * assembling the actual instruction sequences and weighting memory
 * instructions at 4 cycles and ALU instructions at 1 (the paper's
 * assumption that "the cost of an instruction is equal to the number
 * of clock cycles needed to execute that instruction"); the
 * byte-addressed machine pays `overhead` (15-20%, Section 4.1) on
 * every reference.
 */
Table9Result runTable9(double overhead = 0.15);

// ------------------------------------------------------------ Table 10

struct Table10Result
{
    double overhead = 0;
    /** Mean cost per logical reference on each machine, per layout. */
    double word_machine_cost[2] = {0, 0}; ///< [word-alloc, byte-alloc]
    double byte_machine_cost[2] = {0, 0};
    /** Byte-addressing penalty per layout (positive: word wins). */
    double penalty[2] = {0, 0};
    std::string table;
};

Table10Result runTable10(double overhead = 0.15);

// ------------------------------------------------------------ Table 11

struct Table11Program
{
    std::string name;
    size_t none = 0;        ///< no-ops inserted only
    size_t reorganized = 0; ///< + scheduling
    size_t packed = 0;      ///< + piece packing
    size_t branch_delay = 0;///< + delay-slot filling
    std::string output;     ///< console output (correctness check)

    double
    totalImprovement() const
    {
        return none ? 1.0 - static_cast<double>(branch_delay) /
                            static_cast<double>(none) : 0.0;
    }
};

struct Table11Result
{
    std::vector<Table11Program> programs;
    std::string table;
};

Table11Result runTable11();

// ------------------------------------------------------- Figures 1-3

/** Rendered code sequences with static/dynamic counts. */
std::string runFigures1to3();

// ---------------------------------------------------------- Figure 4

/** The reorganization example: legal code vs no-ops vs reorganized. */
std::string runFigure4();

// ----------------------------------------------- Dispatch tradeoff

/** One program measured under both CASE lowerings. */
struct DispatchMeasurement
{
    std::string name;
    size_t chain_words = 0;    ///< static unit words, branch chain
    size_t table_words = 0;    ///< static unit words, jump table
    uint64_t chain_cycles = 0; ///< pipeline cycles, branch chain
    uint64_t table_cycles = 0; ///< pipeline cycles, jump table
    std::string output;        ///< console output (identical either way)

    /** Cycle improvement of the table lowering (negative: chain wins). */
    double
    tableSpeedup() const
    {
        return chain_cycles
                   ? 1.0 - static_cast<double>(table_cycles) /
                               static_cast<double>(chain_cycles)
                   : 0.0;
    }
};

struct DispatchResult
{
    /** The dispatch-heavy corpus programs. */
    std::vector<DispatchMeasurement> programs;
    /** Synthetic sweep: a dense CASE of N arms in a hot loop. */
    std::vector<DispatchMeasurement> density;
    std::string table;
};

/**
 * The jump-table tradeoff study, in the paper's hardware/software
 * style: the indirect-jump ISA extension buys smaller, flatter
 * dispatch at the price of a table fetch and two delay slots. Static
 * words and dynamic pipeline cycles are measured per program under
 * both lowerings, plus a synthetic arm-count sweep locating the
 * chain-vs-table crossover.
 */
DispatchResult runDispatchStudy();

// ------------------------------------------- Free memory cycles (§3.1)

struct FreeCyclesResult
{
    double corpus_free = 0;    ///< corpus programs
    double benchmark_free = 0; ///< fib + puzzles
    std::string table;
};

FreeCyclesResult runFreeCycles();

} // namespace mips::tradeoff
