#include "fuzz/differ.h"

#include "asm/assembler.h"
#include "obs/catalog.h"
#include "sim/machine.h"
#include "support/logging.h"
#include "verify/cfg.h"
#include "verify/costmodel.h"
#include "verify/interproc.h"
#include "verify/memsafety.h"
#include "verify/tv.h"
#include "verify/verify.h"

namespace mips::fuzz {

using support::strprintf;

namespace {

/** Mirror of the generator's result-block contract (generator.cc):
 *  assembly chunks store into [kResultBase, kResultBase+kResultWords)
 *  and the differ compares the whole block across configurations. */
constexpr uint32_t kResultBase = 0x20000;
constexpr uint32_t kResultWords = 128;

/** Record the first failure; later layers for this program are not
 *  consulted (the minimizer wants one stable predicate, not a list). */
void
fail(DiffResult *result, const std::string &tag, const char *layer,
     const std::string &detail)
{
    result->ok = false;
    result->failure =
        strprintf("%s: %s: %s", tag.c_str(), layer, detail.c_str());
    obs::fuzzChainMetrics().oracle_failures->add();
}

void
frontEnd(DiffResult *result, const char *stage,
         const std::string &detail)
{
    result->ok = false;
    result->front_end_error = true;
    result->failure = strprintf("front-end: %s: %s", stage,
                                detail.c_str());
}

/** Printable prefix of a console string for failure messages. */
std::string
consolePreview(const std::string &s)
{
    std::string out = s.substr(0, 32);
    for (char &c : out)
        if (c == '\n')
            c = ' ';
    if (s.size() > 32)
        out += "...";
    return out;
}

/** ERROR-severity findings in a diagnostic list. */
size_t
errorCount(const std::vector<verify::Diagnostic> &diags)
{
    size_t n = 0;
    for (const verify::Diagnostic &d : diags)
        if (d.severity == verify::Severity::ERROR)
            ++n;
    return n;
}

std::vector<FuzzConfig>
withBugs(std::vector<FuzzConfig> matrix, const reorg::ReorgBugs &bugs)
{
    for (FuzzConfig &config : matrix)
        config.reorg.bugs = bugs;
    return matrix;
}

// ------------------------------------------------------ Pascal path

DiffResult
runPascalDifferential(pipeline::Session &session,
                      const GeneratedProgram &program,
                      const DiffOptions &options)
{
    DiffResult result;
    result.name = program.name;
    const std::string source = program.render();

    pipeline::ChainSpec spec = pipeline::fuzzOracleChain();
    spec.cost_model = options.cost_parity;
    spec.value_range = options.value_range;

    std::string expected;
    bool have_expected = false;

    for (const FuzzConfig &config :
         withBugs(pascalMatrix(), options.bugs)) {
        obs::fuzzChainMetrics().chains->add();

        pipeline::StageOptions o;
        o.compile.layout = config.layout;
        o.compile.jump_tables = config.jump_tables;
        o.reorg = config.reorg;
        o.sim.max_cycles = options.max_cycles;
        o.sim.profile = spec.cost_model;

        // The front end must accept its own generator's output; a
        // parse/sema failure is a generator defect, not a finding.
        auto compile = session.compile(source, o);
        if (!compile.ok()) {
            frontEnd(&result, "compile", compile.error().str());
            return result;
        }

        // CC baseline: this config's *legal* code on the interlocked
        // functional machine defines the expected observable output.
        auto legal = assembler::link(compile.value()->legal_unit);
        if (!legal.ok()) {
            frontEnd(&result, "link-legal", legal.error().str());
            return result;
        }
        sim::FunctionalRun base =
            sim::runFunctional(legal.value(), options.max_cycles);
        if (base.reason != sim::StopReason::HALT) {
            fail(&result, config.tag, "cc-baseline",
                 "functional machine did not halt");
            return result;
        }
        const std::string &base_console =
            base.memory->consoleOutput();
        if (!have_expected) {
            expected = base_console;
            have_expected = true;
        } else if (base_console != expected) {
            // Layout and lowering must not change semantics.
            fail(&result, config.tag, "cc-baseline",
                 strprintf("output diverged across configs "
                           "(\"%s\" vs \"%s\")",
                           consolePreview(expected).c_str(),
                           consolePreview(base_console).c_str()));
            return result;
        }

        if (spec.hazard_verify) {
            auto v = session.hazardVerify(source, o);
            if (!v.ok()) {
                fail(&result, config.tag, "hazard-verify",
                     v.error().str());
                return result;
            }
            if (!v.value()->report.clean()) {
                fail(&result, config.tag, "hazard-verify",
                     strprintf("%zu error(s)",
                               v.value()->report.errors));
                return result;
            }
        }

        if (spec.translation_validate) {
            auto tv = session.translationValidate(source, o);
            if (!tv.ok()) {
                fail(&result, config.tag, "translation-validate",
                     tv.error().str());
                return result;
            }
            // Strict: a TV090 "not proven" note fails the fuzzer —
            // the generator must only emit provable shapes.
            if (tv.value()->report.errors != 0 ||
                tv.value()->report.notes != 0) {
                fail(&result, config.tag, "translation-validate",
                     strprintf("%zu error(s), %zu note(s)",
                               tv.value()->report.errors,
                               tv.value()->report.notes));
                return result;
            }
        }

        if (spec.value_range) {
            auto range = session.valueRange(source, o);
            if (!range.ok()) {
                fail(&result, config.tag, "value-range",
                     range.error().str());
                return result;
            }
            if (size_t n = errorCount(range.value()->diags)) {
                fail(&result, config.tag, "value-range",
                     strprintf("%zu MUST finding(s)", n));
                return result;
            }
        }

        auto sim = session.simulate(source, o);
        if (!sim.ok()) {
            fail(&result, config.tag, "simulate", sim.error().str());
            return result;
        }
        if (sim.value()->stop != sim::StopReason::HALT) {
            fail(&result, config.tag, "simulate",
                 sim.value()->error.empty()
                     ? std::string("pipeline machine did not halt")
                     : sim.value()->error);
            return result;
        }
        if (sim.value()->console != expected) {
            fail(&result, config.tag, "console",
                 strprintf("pipeline \"%s\" vs baseline \"%s\"",
                           consolePreview(sim.value()->console).c_str(),
                           consolePreview(expected).c_str()));
            return result;
        }

        if (spec.cost_model) {
            auto cost = session.costModel(source, o);
            if (!cost.ok()) {
                fail(&result, config.tag, "cost-model",
                     cost.error().str());
                return result;
            }
            verify::CostParity parity = verify::checkCostParity(
                cost.value()->report, sim.value()->exec_counts,
                options.cost_tolerance);
            if (parity.violations != 0) {
                fail(&result, config.tag, "cost-parity",
                     strprintf("%zu violation(s)", parity.violations));
                return result;
            }
        }

        ++result.configs;
    }
    return result;
}

// ---------------------------------------------------- Assembly path

DiffResult
runAsmDifferential(pipeline::Session &session,
                   const GeneratedProgram &program,
                   const DiffOptions &options)
{
    DiffResult result;
    result.name = program.name;
    const std::string source = program.render();

    auto assembled = session.assemble(source);
    if (!assembled.ok()) {
        frontEnd(&result, "assemble", assembled.error().str());
        return result;
    }
    const assembler::Unit &input = assembled.value()->unit;

    // CC baseline: the legal input on the functional machine.
    auto legal = assembler::link(input);
    if (!legal.ok()) {
        frontEnd(&result, "link-legal", legal.error().str());
        return result;
    }
    sim::FunctionalRun base =
        sim::runFunctional(legal.value(), options.max_cycles);
    if (base.reason != sim::StopReason::HALT) {
        fail(&result, "legal", "cc-baseline",
             "functional machine did not halt");
        return result;
    }

    for (const FuzzConfig &config :
         withBugs(asmMatrix(), options.bugs)) {
        obs::fuzzChainMetrics().chains->add();

        reorg::ReorgResult rr = reorg::reorganize(input, config.reorg);

        verify::VerifyReport vrep =
            verify::verifyReorganization(input, rr.unit,
                                         verify::VerifyOptions{});
        if (!vrep.clean()) {
            fail(&result, config.tag, "hazard-verify",
                 strprintf("%zu error(s)", vrep.errors));
            return result;
        }

        verify::TvOptions tvopts;
        tvopts.alias = config.reorg.alias;
        verify::VerifyReport tvrep = verify::validateTranslation(
            input, rr.unit, rr.hints, tvopts);
        if (tvrep.errors != 0 || tvrep.notes != 0) {
            fail(&result, config.tag, "translation-validate",
                 strprintf("%zu error(s), %zu note(s)", tvrep.errors,
                           tvrep.notes));
            return result;
        }

        if (options.value_range) {
            verify::DiagnosticEngine diags(&rr.unit);
            verify::Cfg cfg = verify::buildCfg(rr.unit, &diags);
            verify::CallGraph graph = verify::buildCallGraph(cfg);
            verify::checkMemorySafety(cfg, graph,
                                      verify::RangeCheckOptions{},
                                      program.name, &diags);
            if (size_t n = errorCount(diags.diagnostics())) {
                fail(&result, config.tag, "value-range",
                     strprintf("%zu MUST finding(s)", n));
                return result;
            }
        }

        auto linked = assembler::link(rr.unit);
        if (!linked.ok()) {
            fail(&result, config.tag, "link", linked.error().str());
            return result;
        }
        sim::Machine machine;
        machine.load(linked.value());
        sim::StopReason stop = machine.cpu().run(options.max_cycles);
        if (stop != sim::StopReason::HALT) {
            fail(&result, config.tag, "simulate",
                 stop == sim::StopReason::SIM_ERROR
                     ? machine.cpu().errorMessage()
                     : std::string("pipeline machine did not halt"));
            return result;
        }

        if (machine.memory().consoleOutput() !=
            base.memory->consoleOutput()) {
            fail(&result, config.tag, "console",
                 strprintf("pipeline \"%s\" vs baseline \"%s\"",
                           consolePreview(
                               machine.memory().consoleOutput())
                               .c_str(),
                           consolePreview(
                               base.memory->consoleOutput())
                               .c_str()));
            return result;
        }
        for (uint32_t w = 0; w < kResultWords; ++w) {
            uint32_t got = machine.memory().peek(kResultBase + w);
            uint32_t want = base.memory->peek(kResultBase + w);
            if (got != want) {
                fail(&result, config.tag, "result-block",
                     strprintf("word %u: pipeline 0x%08x vs baseline "
                               "0x%08x",
                               w, got, want));
                return result;
            }
        }

        ++result.configs;
    }
    return result;
}

} // namespace

std::vector<FuzzConfig>
pascalMatrix()
{
    std::vector<FuzzConfig> matrix;
    auto add = [&matrix](const char *tag, plc::Layout layout,
                         bool jump_tables, bool reorder, bool pack,
                         bool fill_delay) {
        FuzzConfig config;
        config.tag = tag;
        config.layout = layout;
        config.jump_tables = jump_tables;
        config.reorg.reorder = reorder;
        config.reorg.pack = pack;
        config.reorg.fill_delay = fill_delay;
        matrix.push_back(std::move(config));
    };
    add("word+jt", plc::Layout::WORD_ALLOCATED, true, true, true, true);
    add("word+jt-reorder", plc::Layout::WORD_ALLOCATED, true, false,
        true, true);
    add("word+jt-pack", plc::Layout::WORD_ALLOCATED, true, true, false,
        true);
    add("word+jt-fill", plc::Layout::WORD_ALLOCATED, true, true, true,
        false);
    add("word-jt", plc::Layout::WORD_ALLOCATED, false, true, true,
        true);
    add("byte+jt", plc::Layout::BYTE_ALLOCATED, true, true, true, true);
    return matrix;
}

std::vector<FuzzConfig>
asmMatrix()
{
    std::vector<FuzzConfig> matrix;
    auto add = [&matrix](const char *tag, bool reorder, bool pack,
                         bool fill_delay) {
        FuzzConfig config;
        config.tag = tag;
        config.reorg.reorder = reorder;
        config.reorg.pack = pack;
        config.reorg.fill_delay = fill_delay;
        matrix.push_back(std::move(config));
    };
    add("full", true, true, true);
    add("-reorder", false, true, true);
    add("-pack", true, false, true);
    add("-fill", true, true, false);
    add("noop-only", false, false, false);
    return matrix;
}

DiffResult
runDifferential(pipeline::Session &session,
                const GeneratedProgram &program,
                const DiffOptions &options)
{
    obs::fuzzMetrics().programs->add();
    DiffResult result =
        program.kind == ProgramKind::PASCAL
            ? runPascalDifferential(session, program, options)
            : runAsmDifferential(session, program, options);
    if (result.mismatch())
        obs::fuzzMetrics().mismatches->add();
    return result;
}

} // namespace mips::fuzz
