/**
 * @file
 * The differential driver: one generated program, every config,
 * every oracle.
 *
 * The repo's correctness story is a stack of independent trust
 * layers — static hazard verification, symbolic translation
 * validation, static-vs-dynamic cost parity, the value-range
 * memory-safety analysis, and the interlocked functional machine as
 * an executable oracle. The fuzzer's job is to point all of them at
 * the same generated program under every configuration the toolchain
 * supports and demand agreement:
 *
 *  - **Pascal** programs run the full pipeline matrix: word vs byte
 *    layout, jump tables on/off, and each reorganizer stage toggled
 *    (`--no-reorder` / `--no-pack` / `--no-fill-delay` analogues).
 *    Every configuration must hazard-verify clean, prove equivalent
 *    under strict TV (notes are failures), pass the value-range and
 *    cost-parity oracles, halt on the pipeline simulator, and print
 *    exactly what the functional (CC-baseline) machine prints.
 *  - **Assembly** units skip the front end: the unit is reorganized
 *    under each stage-toggle configuration, verified, validated,
 *    and run; the console output *and* a dedicated result block in
 *    memory (kResultBase in generator.cc) must match the functional
 *    run of the legal input under every configuration.
 *
 * A clean result means every layer agreed everywhere. A mismatch
 * carries the first failing (config, layer) pair; the minimizer
 * (minimize.h) shrinks the program while that predicate still trips.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fuzz/generator.h"
#include "pipeline/session.h"
#include "reorg/reorganizer.h"

namespace mips::fuzz {

/** One cell of the configuration matrix. */
struct FuzzConfig
{
    std::string tag; ///< e.g. "word+jt", "byte+jt", "word+jt-pack"
    plc::Layout layout = plc::Layout::WORD_ALLOCATED;
    bool jump_tables = true;
    reorg::ReorgOptions reorg;
};

/** The Pascal matrix: layouts x lowerings x reorganizer toggles. */
std::vector<FuzzConfig> pascalMatrix();

/** The assembly matrix: reorganizer stage toggles only (layout and
 *  case lowering are front-end knobs with no meaning for raw asm). */
std::vector<FuzzConfig> asmMatrix();

/** Driver knobs. */
struct DiffOptions
{
    uint64_t max_cycles = 50'000'000;
    /** Run the static-vs-dynamic cost parity oracle (Pascal only —
     *  it needs the profiled pipeline Session chain). */
    bool cost_parity = true;
    /** Run the value-range / memory-safety oracle. */
    bool value_range = true;
    double cost_tolerance = 0.02;
    /** Test-only reorganizer fault injection, applied to every
     *  config. The minimizer tests drive this to prove a planted bug
     *  is caught and survives shrinking. */
    reorg::ReorgBugs bugs;
};

/** Outcome of one program's differential run. */
struct DiffResult
{
    std::string name;
    bool ok = true;
    /** The program itself failed to compile/assemble/link — a
     *  generator defect, not an oracle disagreement. */
    bool front_end_error = false;
    size_t configs = 0;  ///< configurations fully checked
    std::string failure; ///< "<config>: <layer>: detail"; empty if ok

    /** An oracle disagreement (what the fuzzer exists to find). */
    bool mismatch() const { return !ok && !front_end_error; }
};

/**
 * Run one generated program through every matrix configuration with
 * every oracle enabled. Thread-safe: callers fan programs out over a
 * BatchRunner sharing one Session.
 */
DiffResult runDifferential(pipeline::Session &session,
                           const GeneratedProgram &program,
                           const DiffOptions &options = DiffOptions{});

} // namespace mips::fuzz
