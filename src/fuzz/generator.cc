#include "fuzz/generator.h"

#include "obs/catalog.h"
#include "support/logging.h"
#include "support/rng.h"

namespace mips::fuzz {

using support::Rng;
using support::strprintf;

namespace {

// ------------------------------------------------------ Pascal side

/** Scalar variables an expression may read. Loop variables are
 *  included: plc's `for` lowering leaves them with a deterministic
 *  final value, identical under every layout and lowering config. */
constexpr const char *kReadVars[] = {"a", "b", "c", "d", "e",
                                     "t", "i", "j", "k"};

/** Scalar variables a generated statement may assign. Loop variables
 *  and the fuel counter are excluded so chunks cannot clobber an
 *  enclosing loop's control variable. */
constexpr const char *kWriteVars[] = {"a", "b", "c", "d", "e", "t"};

const char *
readVar(Rng &rng)
{
    return kReadVars[rng.below(std::size(kReadVars))];
}

const char *
writeVar(Rng &rng)
{
    return kWriteVars[rng.below(std::size(kWriteVars))];
}

/**
 * A random integer expression. Every binary operation is fully
 * parenthesized (mini-Pascal shares real Pascal's operator
 * precedence, where `and` binds tighter than `<`), and `div`/`mod`
 * only ever see positive constant divisors, so no generated program
 * can divide by zero.
 */
std::string
genExpr(Rng &rng, int depth)
{
    if (depth <= 0 || rng.chance(0.35)) {
        if (rng.chance(0.5))
            return readVar(rng);
        return strprintf("%lld", static_cast<long long>(rng.range(0, 99)));
    }
    switch (rng.below(5)) {
    case 0:
        return strprintf("(%s + %s)", genExpr(rng, depth - 1).c_str(),
                         genExpr(rng, depth - 1).c_str());
    case 1:
        return strprintf("(%s - %s)", genExpr(rng, depth - 1).c_str(),
                         genExpr(rng, depth - 1).c_str());
    case 2:
        return strprintf("(%s * %s)", genExpr(rng, depth - 1).c_str(),
                         genExpr(rng, depth - 1).c_str());
    case 3:
        return strprintf("(%s div %lld)", genExpr(rng, depth - 1).c_str(),
                         static_cast<long long>(rng.range(2, 9)));
    default:
        return strprintf("(%s mod %lld)", genExpr(rng, depth - 1).c_str(),
                         static_cast<long long>(rng.range(2, 19)));
    }
}

/** An expression guaranteed to land in [8, 15]: `x mod 8` is in
 *  [-7, 7] for any x (Pascal `mod` truncates toward zero), so adding
 *  8 keeps every generated array index in bounds — the same masking
 *  idiom the integration-test generator uses. */
std::string
genIndex(Rng &rng)
{
    return strprintf("(%s) mod 8 + 8", genExpr(rng, 1).c_str());
}

/** A character expression in ['B'(66), 'Z'(90)]: `x mod 13` is in
 *  [-12, 12], biased by 78. */
std::string
genCharExpr(Rng &rng)
{
    return strprintf("chr((%s) mod 13 + 78)", genExpr(rng, 1).c_str());
}

/** A boolean condition; each relation individually parenthesized. */
std::string
genCond(Rng &rng, int depth)
{
    static constexpr const char *kRels[] = {"=",  "<>", "<",
                                            "<=", ">",  ">="};
    std::string rel = strprintf("(%s %s %s)", genExpr(rng, 1).c_str(),
                                kRels[rng.below(std::size(kRels))],
                                genExpr(rng, 1).c_str());
    if (depth > 0 && rng.chance(0.3))
        return strprintf("%s %s %s", rel.c_str(),
                         rng.chance(0.5) ? "and" : "or",
                         genCond(rng, depth - 1).c_str());
    return rel;
}

/** One simple (non-compound) statement, no trailing separator. */
std::string
genSimpleStmt(Rng &rng)
{
    switch (rng.below(6)) {
    case 0:
        return strprintf("%s := %s", writeVar(rng),
                         genExpr(rng, 2).c_str());
    case 1:
        return strprintf("buf[%s] := %s", genIndex(rng).c_str(),
                         genExpr(rng, 2).c_str());
    case 2:
        return strprintf("txt[%s] := %s", genIndex(rng).c_str(),
                         genCharExpr(rng).c_str());
    case 3:
        return strprintf("ptx[%s] := %s", genIndex(rng).c_str(),
                         genCharExpr(rng).c_str());
    case 4:
        return strprintf("t := t + f1(%s)", genExpr(rng, 1).c_str());
    default:
        return strprintf("p1(%s)", genExpr(rng, 1).c_str());
    }
}

std::string genStmt(Rng &rng, int depth, int loop_depth,
                    const std::string &indent, const GenOptions &options);

/** A `begin ... end` body of 1-3 statements. */
std::string
genBody(Rng &rng, int depth, int loop_depth, const std::string &indent,
        const GenOptions &options)
{
    std::string body = "begin\n";
    uint64_t n = 1 + rng.below(3);
    for (uint64_t s = 0; s < n; ++s)
        body += genStmt(rng, depth, loop_depth, indent + "  ", options);
    body += indent + "end";
    return body;
}

/**
 * One statement (possibly compound), indented, ';'-terminated, with a
 * trailing newline. `depth` bounds nesting; `loop_depth` selects the
 * control variable for `for` loops (i, then j, then k).
 */
std::string
genStmt(Rng &rng, int depth, int loop_depth, const std::string &indent,
        const GenOptions &options)
{
    if (depth <= 0 || loop_depth >= 3 || rng.chance(0.4))
        return indent + genSimpleStmt(rng) + ";\n";
    static constexpr const char *kLoopVars[] = {"i", "j", "k"};
    switch (rng.below(3)) {
    case 0: { // if / if-else
        std::string s = indent +
            strprintf("if %s then %s", genCond(rng, 1).c_str(),
                      genBody(rng, depth - 1, loop_depth, indent,
                              options).c_str());
        if (rng.chance(0.5))
            s += strprintf(" else %s",
                           genBody(rng, depth - 1, loop_depth, indent,
                                   options).c_str());
        return s + ";\n";
    }
    case 1: // constant-trip for loop
        return indent +
            strprintf("for %s := 0 to %lld do %s;\n",
                      kLoopVars[loop_depth],
                      static_cast<long long>(rng.range(2, 11)),
                      genBody(rng, depth - 1, loop_depth + 1, indent,
                              options).c_str());
    default: { // dense or sparse case over a bounded selector
        bool dense = rng.chance(0.6);
        // Dense: >= 4 consecutive labels, so plc's jump-table
        // lowering fires (count >= 4, span <= 2*count). Sparse:
        // 4 labels spanning > 2*count, forcing the compare chain.
        long long arm_count = dense ? rng.range(4, 8) : 4;
        long long span = dense ? arm_count : rng.range(9, 20);
        std::string s = indent +
            strprintf("case (%s) mod %lld of\n",
                      genExpr(rng, 2).c_str(), span);
        for (long long arm = 0; arm < arm_count; ++arm) {
            long long label = dense
                                  ? arm
                                  : (arm < 3 ? arm : span - 1);
            s += indent +
                strprintf("  %lld: %s%s\n", label,
                          genSimpleStmt(rng).c_str(),
                          arm + 1 < arm_count ? ";" : "");
        }
        if (rng.chance(0.7))
            s += indent + "else\n" + indent + "  " + genSimpleStmt(rng) +
                 "\n";
        return s + indent + "end;\n";
    }
    }
}

/** One top-level chunk: a statement group the minimizer may drop. */
std::string
genPascalChunk(Rng &rng, const GenOptions &options)
{
    switch (rng.below(4)) {
    case 0: { // fuel-bounded while loop
        std::string s = strprintf("  fuel := %lld;\n",
                                  static_cast<long long>(rng.range(3, 10)));
        s += strprintf("  while (fuel > 0) and %s do begin\n",
                       genCond(rng, 0).c_str());
        s += genStmt(rng, options.max_depth - 1, 0, "    ", options);
        s += "    fuel := fuel - 1;\n  end;\n";
        return s;
    }
    case 1: { // fuel-bounded repeat loop
        std::string s = strprintf("  fuel := %lld;\n",
                                  static_cast<long long>(rng.range(2, 8)));
        s += "  repeat\n";
        s += genStmt(rng, options.max_depth - 1, 0, "    ", options);
        s += "    fuel := fuel - 1;\n  until fuel <= 0;\n";
        return s;
    }
    case 2: // observable progress: print as we go
        return strprintf("  writeint((%s) mod 997); writechar(' ');\n",
                         genExpr(rng, 2).c_str());
    default:
        return genStmt(rng, options.max_depth, 0, "  ", options);
    }
}

} // namespace

GeneratedProgram
generatePascal(uint64_t seed, const GenOptions &options)
{
    obs::fuzzMetrics().pascal_programs->add();
    Rng rng(seed);
    GeneratedProgram p;
    p.kind = ProgramKind::PASCAL;
    p.seed = seed;
    p.name = strprintf("fuzz-p-%016llx",
                       static_cast<unsigned long long>(seed));

    std::string pro =
        strprintf("program fuzzp%llu;\n",
                  static_cast<unsigned long long>(seed & 0xffff));
    pro += "var a, b, c, d, e, t, fuel: integer;\n"
           "    i, j, k: integer;\n"
           "    buf: array [0..15] of integer;\n"
           "    txt: array [0..15] of char;\n"
           "    ptx: packed array [0..15] of char;\n";
    pro += strprintf("function f1(x: integer): integer;\n"
                     "var z: integer;\n"
                     "begin\n"
                     "  z := (x * %lld + %lld) mod 97;\n"
                     "  if z < 0 then z := 0 - z;\n"
                     "  f1 := z;\n"
                     "end;\n",
                     static_cast<long long>(rng.range(2, 9)),
                     static_cast<long long>(rng.range(1, 31)));
    pro += strprintf("procedure p1(v: integer);\n"
                     "begin\n"
                     "  if v > %lld then t := t + (v mod 13)\n"
                     "  else t := t - (v mod 7);\n"
                     "end;\n",
                     static_cast<long long>(rng.range(0, 40)));
    pro += "begin\n";
    pro += strprintf("  a := %lld; b := %lld; c := %lld; d := %lld; "
                     "e := %lld;\n",
                     static_cast<long long>(rng.range(0, 99)),
                     static_cast<long long>(rng.range(0, 99)),
                     static_cast<long long>(rng.range(0, 99)),
                     static_cast<long long>(rng.range(0, 99)),
                     static_cast<long long>(rng.range(0, 99)));
    pro += "  t := 0; fuel := 0; j := 0; k := 0;\n";
    pro += strprintf("  for i := 0 to 15 do begin\n"
                     "    buf[i] := (i * %lld) mod 100;\n"
                     "    txt[i] := chr(i mod 13 + 78);\n"
                     "    ptx[i] := chr(i mod 13 + 65);\n"
                     "  end;\n",
                     static_cast<long long>(rng.range(3, 17)));
    p.prologue = pro;

    long long chunks =
        rng.range(options.min_chunks, options.max_chunks);
    for (long long id = 0; id < chunks; ++id)
        p.chunks.push_back(genPascalChunk(rng, options));

    p.epilogue =
        "  t := t + f1(a);\n"
        "  p1(b);\n"
        "  for i := 0 to 15 do "
        "t := t + buf[i] + ord(txt[i]) + ord(ptx[i]);\n"
        "  writeint(a); writechar(' ');\n"
        "  writeint(b); writechar(' ');\n"
        "  writeint(c); writechar(' ');\n"
        "  writeint(d); writechar(' ');\n"
        "  writeint(e); writechar(' ');\n"
        "  writeint(t);\n"
        "end.\n";
    return p;
}

// ---------------------------------------------------- Assembly side

namespace {

/**
 * Where assembly chunks park their results. Each chunk owns two word
 * slots at kResultBase + 2*id; the differential driver compares the
 * whole block across configurations after the run. Well below the
 * MMIO page (0x000ff000) and within the default physical memory.
 */
constexpr unsigned kResultBase = 0x20000;

/** `st <reg>, @0x...` to one of the chunk's two result slots. */
std::string
storeResult(Rng &rng, long long id, const char *reg)
{
    return strprintf("  st %s, @0x%x\n", reg,
                     kResultBase + 2 * static_cast<unsigned>(id) +
                         static_cast<unsigned>(rng.below(2)));
}

/**
 * A three-operand ALU op. The register rhs (when chosen) comes from
 * `pool` — registers the chunk has already initialized. Reading any
 * other register would be read of a value the reorganizer is allowed
 * to treat as dead across configurations (scheme-3 hoisting clobbers
 * dead registers), which would make a differential "mismatch" out of
 * perfectly correct code.
 */
std::string
aluOp(Rng &rng, const char *src, const char *dst,
      const std::vector<const char *> &pool)
{
    static constexpr const char *kOps[] = {"add", "sub", "and",
                                           "or",  "xor", "rsub"};
    static constexpr const char *kShifts[] = {"sll", "srl", "sra"};
    if (rng.chance(0.25))
        return strprintf("  %s %s, #%llu, %s\n",
                         kShifts[rng.below(std::size(kShifts))], src,
                         static_cast<unsigned long long>(rng.range(1, 4)),
                         dst);
    const char *op = kOps[rng.below(std::size(kOps))];
    if (pool.empty() || rng.chance(0.5))
        return strprintf("  %s %s, #%llu, %s\n", op, src,
                         static_cast<unsigned long long>(rng.below(16)),
                         dst);
    return strprintf("  %s %s, %s, %s\n", op, src,
                     pool[rng.below(pool.size())], dst);
}

/**
 * One assembly chunk. Chunks are self-contained: every register read
 * is initialized inside the chunk, labels are namespaced by chunk id,
 * and inline data is jumped over — so the minimizer can drop any
 * subset and the rest still assembles and halts. The text is *legal
 * code* (sequential semantics); the reorganizer schedules it for the
 * pipeline per configuration.
 */
std::string
genAsmChunk(Rng &rng, long long id)
{
    switch (rng.below(6)) {
    case 0: { // straight-line ALU mix
        std::string s;
        s += strprintf("  li #%llu, r1\n",
                       static_cast<unsigned long long>(rng.below(200)));
        s += strprintf("  li #%llu, r2\n",
                       static_cast<unsigned long long>(rng.below(200)));
        s += "  mov r1, r3\n";
        long long n = rng.range(3, 7);
        for (long long op = 0; op < n; ++op)
            s += aluOp(rng, rng.chance(0.5) ? "r1" : "r3", "r3",
                       {"r1", "r2", "r3"});
        s += storeResult(rng, id, "r3");
        return s;
    }
    case 1: { // inline data words, loads, and a combine
        std::string s = strprintf("  bra f%lldgo\n", id);
        s += strprintf("f%lldd0: .word %llu\n", id,
                       static_cast<unsigned long long>(rng.below(100000)));
        s += strprintf("  .word %llu\n",
                       static_cast<unsigned long long>(rng.below(100000)));
        s += strprintf("f%lldgo:\n", id);
        s += strprintf("  la f%lldd0, r7\n", id);
        s += "  ld 0(r7), r2\n";
        s += "  ld 1(r7), r3\n";
        s += aluOp(rng, "r2", "r4", {"r2", "r3"});
        s += "  add r4, r3, r4\n";
        s += storeResult(rng, id, "r4");
        return s;
    }
    case 2: { // compare-and-branch skip (delay-slot shapes)
        static constexpr const char *kConds[] = {"eq", "ne", "lt",
                                                 "le", "gt", "ge"};
        std::string s;
        s += strprintf("  li #%llu, r1\n",
                       static_cast<unsigned long long>(rng.below(50)));
        s += strprintf("  li #%llu, r2\n",
                       static_cast<unsigned long long>(rng.below(50)));
        s += strprintf("  b%s r1, r2, f%lldskip\n",
                       kConds[rng.below(std::size(kConds))], id);
        s += aluOp(rng, "r1", "r1", {"r1", "r2"});
        s += aluOp(rng, "r2", "r2", {"r1", "r2"});
        s += strprintf("f%lldskip:\n", id);
        s += "  sub r1, r2, r3\n";
        s += storeResult(rng, id, "r3");
        return s;
    }
    case 3: { // constant-trip counter loop
        std::string s;
        s += strprintf("  li #%llu, r5\n",
                       static_cast<unsigned long long>(rng.range(3, 9)));
        s += "  li #0, r6\n";
        s += strprintf("f%lldloop:\n", id);
        s += "  add r6, r5, r6\n";
        s += aluOp(rng, "r6", "r6", {"r5", "r6"});
        s += "  sub r5, #1, r5\n";
        s += strprintf("  bgt r5, #0, f%lldloop\n", id);
        s += storeResult(rng, id, "r6");
        return s;
    }
    case 4: { // .noreorder region: explicit delay handling, packing
        std::string s = strprintf("  bra f%lldgo\n", id);
        s += strprintf("f%lldd0: .word %llu\n", id,
                       static_cast<unsigned long long>(rng.below(5000)));
        s += strprintf("  .word %llu\n",
                       static_cast<unsigned long long>(rng.below(5000)));
        s += strprintf("f%lldgo:\n", id);
        s += strprintf("  la f%lldd0, r7\n", id);
        s += strprintf("  li #%llu, r6\n",
                       static_cast<unsigned long long>(rng.below(30)));
        // Inside the fence both machines must agree under raw
        // pipeline semantics: every load is followed by a nop before
        // use, and the packed word's pieces touch disjoint registers.
        s += "  .noreorder\n";
        s += "  ld 0(r7), r5\n";
        s += "  nop\n";
        s += strprintf("  add r5, #%llu, r5\n",
                       static_cast<unsigned long long>(rng.below(16)));
        s += "  add r6, #1, r6 | ld 1(r7), r8\n";
        s += "  nop\n";
        s += "  xor r5, r8, r5\n";
        s += "  add r5, r6, r5\n";
        s += "  .reorder\n";
        s += storeResult(rng, id, "r5");
        return s;
    }
    default: { // jtab dispatch: inline table, four arms
        long long index = rng.range(0, 3);
        std::string s;
        if (rng.chance(0.5)) {
            s += strprintf("  li #%llu, r1\n",
                           static_cast<unsigned long long>(rng.below(200)));
            s += "  and r1, #3, r3\n"; // masked computed index
        } else {
            s += strprintf("  li #%lld, r3\n", index);
        }
        s += strprintf("  la f%lldtab, r2\n", id);
        s += strprintf("  jtab (r2+r3), f%lldtab\n", id);
        s += strprintf("f%lldtab:\n", id);
        for (long long arm = 0; arm < 4; ++arm)
            s += strprintf("  .word f%lldc%lld\n", id, arm);
        for (long long arm = 0; arm < 4; ++arm) {
            s += strprintf("f%lldc%lld:\n", id, arm);
            s += strprintf("  li #%llu, r4\n",
                           static_cast<unsigned long long>(rng.below(250)));
            if (arm < 3)
                s += strprintf("  bra f%lldout\n", id);
        }
        s += strprintf("f%lldout:\n", id);
        s += aluOp(rng, "r4", "r4", {"r3", "r4"});
        s += storeResult(rng, id, "r4");
        return s;
    }
    }
}

} // namespace

GeneratedProgram
generateAsm(uint64_t seed, const GenOptions &options)
{
    obs::fuzzMetrics().asm_programs->add();
    Rng rng(seed);
    GeneratedProgram p;
    p.kind = ProgramKind::ASM;
    p.seed = seed;
    p.name = strprintf("fuzz-a-%016llx",
                       static_cast<unsigned long long>(seed));

    p.prologue = strprintf("; %s (generated; seed %llu)\n",
                           p.name.c_str(),
                           static_cast<unsigned long long>(seed));

    long long chunks =
        rng.range(options.min_chunks, options.max_chunks);
    for (long long id = 0; id < chunks; ++id) {
        std::string chunk = genAsmChunk(rng, id);
        // Occasionally make a chunk observable on the console too:
        // emit one printable byte through the MMIO console register,
        // the same ldi/st shape plc's writechar lowers to.
        if (rng.chance(0.3)) {
            chunk += strprintf("  li #%llu, r4\n",
                               static_cast<unsigned long long>(
                                   rng.range('A', 'Z')));
            chunk += "  ldi #0xff000, r9\n";
            chunk += "  st r4, (r9)\n";
        }
        p.chunks.push_back(chunk);
    }

    p.epilogue = "  halt\n";
    return p;
}

// ----------------------------------------------------------- common

std::string
GeneratedProgram::render() const
{
    std::string out = prologue;
    for (const std::string &chunk : chunks)
        out += chunk;
    out += epilogue;
    return out;
}

std::vector<GeneratedProgram>
generateBatch(uint64_t seed, size_t count, const GenOptions &options)
{
    // One master stream decides each program's kind and per-program
    // seed, so the batch is a pure function of (seed, count) and
    // program k is unaffected by how programs before it rendered.
    Rng master(seed);
    std::vector<GeneratedProgram> batch;
    batch.reserve(count);
    for (size_t k = 0; k < count; ++k) {
        uint64_t program_seed = master.next();
        bool as_asm = master.uniform() < options.asm_ratio;
        GeneratedProgram p = as_asm
                                 ? generateAsm(program_seed, options)
                                 : generatePascal(program_seed, options);
        p.name = strprintf("fuzz-%03zu-%c", k, as_asm ? 'a' : 'p');
        batch.push_back(std::move(p));
    }
    return batch;
}

} // namespace mips::fuzz
