/**
 * @file
 * Seeded random program generator for differential fuzzing.
 *
 * The corpus in src/workload is eleven hand-written programs; the
 * fuzzer scales "scenario diversity" by generating programs from a
 * seed instead. Two kinds come out of the same `support::Rng` stream:
 *
 *  - **Pascal** programs drive the whole front end (plc): nested
 *    control flow, array traffic under every layout, calls through
 *    generated routines, and dense `case` statements sized to cross
 *    the jump-table lowering threshold (DESIGN.md §14).
 *  - **Assembly** units drive the reorganizer and verifiers directly
 *    with shapes the compiler rarely emits: `.noreorder` regions,
 *    hand-packed pieces, tight branch ladders, counter loops, and raw
 *    `jtab` dispatch blocks with inline `.word` tables.
 *
 * Determinism contract (tested): the same seed and the same binary
 * produce byte-identical source text. The generator draws only from
 * `support::Rng` (xorshift64*, platform-pinned) and never consults
 * time, addresses, or locale.
 *
 * Every program is a prologue + independent *chunks* + an epilogue.
 * Chunks are self-contained (they initialize what they read and only
 * write chunk-owned result slots), so the minimizer (minimize.h) can
 * drop any subset and the rest still compiles, assembles, and halts.
 * Generated programs terminate by construction: loops either have
 * constant trip counts or decrement a fuel counter.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mips::fuzz {

/** Which front door the program goes in through. */
enum class ProgramKind
{
    PASCAL, ///< mini-Pascal source, compiled by plc
    ASM,    ///< assembly text, assembled and reorganized directly
};

/** Generator knobs. Defaults match the CLI and the smoke gates. */
struct GenOptions
{
    /** Fraction of a batch generated as raw assembly units. */
    double asm_ratio = 0.4;
    /** Top-level statement chunks per Pascal program. */
    int min_chunks = 4;
    int max_chunks = 10;
    /** Statement-nesting depth bound inside a chunk. */
    int max_depth = 2;
};

/**
 * One generated program, kept in chunk form so the minimizer can
 * remove chunks without re-parsing the rendered text.
 */
struct GeneratedProgram
{
    std::string name; ///< e.g. "fuzz-p-000042" / "fuzz-a-000017"
    ProgramKind kind = ProgramKind::PASCAL;
    uint64_t seed = 0; ///< per-program seed (derived from batch seed)
    std::string prologue;
    std::vector<std::string> chunks; ///< independently droppable
    std::string epilogue;

    /** The complete source text: prologue + chunks + epilogue. */
    std::string render() const;
};

/** Generate one Pascal program from a per-program seed. */
GeneratedProgram generatePascal(uint64_t seed,
                                const GenOptions &options = GenOptions{});

/** Generate one assembly unit from a per-program seed. */
GeneratedProgram generateAsm(uint64_t seed,
                             const GenOptions &options = GenOptions{});

/**
 * Generate a batch of `count` programs from a batch seed. The batch
 * is deterministic as a whole: program kinds, per-program seeds, and
 * names all derive from `seed` alone.
 */
std::vector<GeneratedProgram>
generateBatch(uint64_t seed, size_t count,
              const GenOptions &options = GenOptions{});

} // namespace mips::fuzz
