#include "fuzz/minimize.h"

#include <algorithm>

#include "obs/catalog.h"

namespace mips::fuzz {

namespace {

/** `program` minus chunks [start, start+count). */
GeneratedProgram
without(const GeneratedProgram &program, size_t start, size_t count)
{
    GeneratedProgram candidate = program;
    candidate.chunks.erase(candidate.chunks.begin() +
                               static_cast<ptrdiff_t>(start),
                           candidate.chunks.begin() +
                               static_cast<ptrdiff_t>(start + count));
    return candidate;
}

} // namespace

MinimizeOutcome
minimizeProgram(const GeneratedProgram &program,
                const std::function<bool(const GeneratedProgram &)>
                    &still_fails)
{
    MinimizeOutcome outcome;
    outcome.program = program;

    ++outcome.steps;
    obs::fuzzMetrics().minimize_steps->add();
    if (!still_fails(outcome.program))
        return outcome; // not reproducible; nothing to shrink

    // ddmin-style greedy descent: remove the biggest window that
    // still fails, halving the window size until single chunks, and
    // restart from the top after any successful removal (a deletion
    // can unlock earlier windows).
    bool shrunk = true;
    while (shrunk && outcome.program.chunks.size() > 1) {
        shrunk = false;
        for (size_t window =
                 std::max<size_t>(1, outcome.program.chunks.size() / 2);
             window >= 1 && !shrunk; window /= 2) {
            for (size_t start = 0;
                 start + window <= outcome.program.chunks.size();
                 ++start) {
                GeneratedProgram candidate =
                    without(outcome.program, start, window);
                ++outcome.steps;
                obs::fuzzMetrics().minimize_steps->add();
                if (still_fails(candidate)) {
                    outcome.removed += window;
                    outcome.program = std::move(candidate);
                    shrunk = true;
                    break;
                }
            }
            if (window == 1)
                break;
        }
    }
    return outcome;
}

} // namespace mips::fuzz
