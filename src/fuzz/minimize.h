/**
 * @file
 * Greedy chunk-level minimizer for differential counterexamples.
 *
 * When the differ finds a mismatch, the raw program is rarely the
 * story — most of its chunks are bystanders. The minimizer shrinks a
 * GeneratedProgram by deleting chunks while a caller-supplied
 * predicate ("does this still fail the same way?") keeps returning
 * true, ddmin-style: try removing large windows first, halve the
 * window on failure, repeat to a fixpoint. Chunks are self-contained
 * by generator contract, so every candidate still compiles; the
 * predicate re-runs the full differential matrix per candidate.
 *
 * The result is what gets written as a reproducer file and checked
 * into tests/data/fuzz-regressions/ (see docs/FUZZING.md for the
 * check-in workflow).
 */
#pragma once

#include <cstddef>
#include <functional>

#include "fuzz/generator.h"

namespace mips::fuzz {

/** Outcome of one minimization. */
struct MinimizeOutcome
{
    GeneratedProgram program; ///< smallest still-failing program
    size_t steps = 0;         ///< candidate evaluations performed
    size_t removed = 0;       ///< chunks deleted from the original
};

/**
 * Shrink `program` while `still_fails` holds. `still_fails` must be
 * deterministic and must return true for `program` itself (callers
 * only minimize programs that already failed); if it does not, the
 * input is returned unchanged.
 */
MinimizeOutcome
minimizeProgram(const GeneratedProgram &program,
                const std::function<bool(const GeneratedProgram &)>
                    &still_fails);

} // namespace mips::fuzz
