#include "isa/alu.h"

#include "support/bits.h"
#include "support/logging.h"

namespace mips::isa {

AluOutputs
evalAlu(const AluPiece &piece, const AluInputs &in)
{
    AluOutputs out;
    out.writes_rd = aluWritesRd(piece.op);
    out.writes_lo = aluWritesLo(piece.op);

    switch (piece.op) {
      case AluOp::ADD:
        out.rd = support::addOverflow(in.rs, in.src2, &out.overflow);
        break;
      case AluOp::SUB:
        out.rd = support::subOverflow(in.rs, in.src2, &out.overflow);
        break;
      case AluOp::RSUB:
        out.rd = support::subOverflow(in.src2, in.rs, &out.overflow);
        break;
      case AluOp::AND:
        out.rd = in.rs & in.src2;
        break;
      case AluOp::OR:
        out.rd = in.rs | in.src2;
        break;
      case AluOp::XOR:
        out.rd = in.rs ^ in.src2;
        break;
      case AluOp::NOT:
        out.rd = ~in.rs;
        break;
      case AluOp::SLL:
        out.rd = in.rs << (in.src2 & 31);
        break;
      case AluOp::SRL:
        out.rd = in.rs >> (in.src2 & 31);
        break;
      case AluOp::SRA:
        out.rd = static_cast<uint32_t>(
            static_cast<int32_t>(in.rs) >> (in.src2 & 31));
        break;
      case AluOp::XC:
        // Byte pointer in rs (low two bits), word in src2.
        out.rd = (in.src2 >> (8 * (in.rs & 3))) & 0xff;
        break;
      case AluOp::IC: {
        // Replace byte (LO & 3) of old rd with the low byte of rs.
        int shift = 8 * (in.lo & 3);
        uint32_t byte_mask = 0xffu << shift;
        out.rd = (in.rd_old & ~byte_mask) |
                 ((in.rs & 0xff) << shift);
        break;
      }
      case AluOp::MOVI8:
        out.rd = piece.imm8;
        break;
      case AluOp::SET:
        out.rd = evalCond(piece.cond, in.rs, in.src2) ? 1 : 0;
        break;
      case AluOp::MTLO:
        out.lo = in.rs;
        break;
      case AluOp::MFLO:
        out.rd = in.lo;
        break;
      case AluOp::MSTEP:
        // One shift-and-add multiply step (see header).
        out.rd = (in.lo & 1) ? in.rd_old + in.rs : in.rd_old;
        out.lo = in.lo >> 1;
        break;
      case AluOp::DSTEP: {
        // One restoring-division step (see header).
        uint32_t rem = (in.rd_old << 1) | (in.lo >> 31);
        uint32_t quo = in.lo << 1;
        if (rem >= in.rs && in.rs != 0) {
            rem -= in.rs;
            quo |= 1;
        }
        out.rd = rem;
        out.lo = quo;
        break;
      }
    }
    return out;
}

std::string
aluOpName(AluOp op)
{
    switch (op) {
      case AluOp::ADD:   return "add";
      case AluOp::SUB:   return "sub";
      case AluOp::RSUB:  return "rsub";
      case AluOp::AND:   return "and";
      case AluOp::OR:    return "or";
      case AluOp::XOR:   return "xor";
      case AluOp::NOT:   return "not";
      case AluOp::SLL:   return "sll";
      case AluOp::SRL:   return "srl";
      case AluOp::SRA:   return "sra";
      case AluOp::XC:    return "xc";
      case AluOp::IC:    return "ic";
      case AluOp::MOVI8: return "movi";
      case AluOp::SET:   return "set";
      case AluOp::MTLO:  return "mtlo";
      case AluOp::MFLO:  return "mflo";
      case AluOp::MSTEP: return "mstep";
      case AluOp::DSTEP: return "dstep";
    }
    support::panic("aluOpName: bad op %d", static_cast<int>(op));
}

bool
aluWritesRd(AluOp op)
{
    return op != AluOp::MTLO;
}

bool
aluReadsRs(AluOp op)
{
    return op != AluOp::MOVI8 && op != AluOp::MFLO;
}

bool
aluReadsSrc2(AluOp op)
{
    switch (op) {
      case AluOp::NOT:
      case AluOp::MOVI8:
      case AluOp::IC:
      case AluOp::MTLO:
      case AluOp::MFLO:
      case AluOp::MSTEP:
      case AluOp::DSTEP:
        return false;
      default:
        return true;
    }
}

bool
aluReadsRdOld(AluOp op)
{
    return op == AluOp::IC || op == AluOp::MSTEP || op == AluOp::DSTEP;
}

bool
aluReadsLo(AluOp op)
{
    return op == AluOp::IC || op == AluOp::MFLO || op == AluOp::MSTEP ||
           op == AluOp::DSTEP;
}

bool
aluWritesLo(AluOp op)
{
    return op == AluOp::MTLO || op == AluOp::MSTEP || op == AluOp::DSTEP;
}

bool
aluCanOverflow(AluOp op)
{
    return op == AluOp::ADD || op == AluOp::SUB || op == AluOp::RSUB;
}

} // namespace mips::isa
