#include "isa/alu.h"

#include "support/bits.h"
#include "support/logging.h"

namespace mips::isa {

std::string
aluOpName(AluOp op)
{
    switch (op) {
      case AluOp::ADD:   return "add";
      case AluOp::SUB:   return "sub";
      case AluOp::RSUB:  return "rsub";
      case AluOp::AND:   return "and";
      case AluOp::OR:    return "or";
      case AluOp::XOR:   return "xor";
      case AluOp::NOT:   return "not";
      case AluOp::SLL:   return "sll";
      case AluOp::SRL:   return "srl";
      case AluOp::SRA:   return "sra";
      case AluOp::XC:    return "xc";
      case AluOp::IC:    return "ic";
      case AluOp::MOVI8: return "movi";
      case AluOp::SET:   return "set";
      case AluOp::MTLO:  return "mtlo";
      case AluOp::MFLO:  return "mflo";
      case AluOp::MSTEP: return "mstep";
      case AluOp::DSTEP: return "dstep";
    }
    support::panic("aluOpName: bad op %d", static_cast<int>(op));
}

bool
aluReadsRs(AluOp op)
{
    return op != AluOp::MOVI8 && op != AluOp::MFLO;
}

bool
aluReadsSrc2(AluOp op)
{
    switch (op) {
      case AluOp::NOT:
      case AluOp::MOVI8:
      case AluOp::IC:
      case AluOp::MTLO:
      case AluOp::MFLO:
      case AluOp::MSTEP:
      case AluOp::DSTEP:
        return false;
      default:
        return true;
    }
}

bool
aluReadsRdOld(AluOp op)
{
    return op == AluOp::IC || op == AluOp::MSTEP || op == AluOp::DSTEP;
}

bool
aluReadsLo(AluOp op)
{
    return op == AluOp::IC || op == AluOp::MFLO || op == AluOp::MSTEP ||
           op == AluOp::DSTEP;
}

bool
aluCanOverflow(AluOp op)
{
    return op == AluOp::ADD || op == AluOp::SUB || op == AluOp::RSUB;
}

} // namespace mips::isa
