/**
 * @file
 * The ALU instruction piece.
 *
 * The paper's instructions are built from *pieces*: an ALU piece and a
 * memory piece can occupy one 32-bit word. The ALU piece here carries
 * the paper-mandated features: a 4-bit inline constant usable wherever
 * a register is (covering ~70% of constants, Table 1), an 8-bit move
 * immediate (all but ~5%), *reverse* operators so small negative
 * constants need no sign extension, set-conditionally with the full
 * 16-comparison repertoire, and the insert/extract-byte operations
 * that make word addressing viable (Section 4.1).
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "isa/cond.h"
#include "isa/registers.h"
#include "support/bits.h"

namespace mips::isa {

/** ALU operations (6-bit opcode space in the unpacked format). */
enum class AluOp : uint8_t
{
    ADD = 0,    ///< rd = rs + src2 (traps on signed overflow if enabled)
    SUB = 1,    ///< rd = rs - src2 (traps on signed overflow if enabled)
    RSUB = 2,   ///< rd = src2 - rs: the paper's reverse operator
    AND = 3,    ///< rd = rs & src2
    OR = 4,     ///< rd = rs | src2
    XOR = 5,    ///< rd = rs ^ src2
    NOT = 6,    ///< rd = ~rs (src2 ignored)
    SLL = 7,    ///< rd = rs << (src2 & 31)
    SRL = 8,    ///< rd = rs >> (src2 & 31), logical
    SRA = 9,    ///< rd = rs >> (src2 & 31), arithmetic
    XC = 10,    ///< extract byte: rd = byte (rs & 3) of src2 (a register)
    IC = 11,    ///< insert byte: replace byte (LO & 3) of rd with low
                ///< byte of rs; reads rd and the LO special register
    MOVI8 = 12, ///< rd = imm8 (the special 8-bit move immediate)
    SET = 13,   ///< set conditionally: rd = evalCond(cond, rs, src2)
    MTLO = 14,  ///< LO = rs (byte selector for IC)
    MFLO = 15,  ///< rd = LO
    MSTEP = 16, ///< multiply step (see evalAlu for exact semantics)
    DSTEP = 17, ///< divide step (see evalAlu for exact semantics)
};

/** Number of distinct ALU opcodes. */
constexpr int kNumAluOps = 18;

/**
 * Second operand: a register or the paper's 4-bit inline constant.
 * The constant is unsigned 0..15; negative values are expressed with
 * the reverse operators and swapped comparisons instead of a sign bit
 * (the paper's stated choice).
 */
struct Src2
{
    bool is_imm = false;
    Reg reg = kZeroReg; ///< valid when !is_imm
    uint8_t imm4 = 0;   ///< valid when is_imm; 0..15

    static Src2 fromReg(Reg r) { return Src2{false, r, 0}; }
    static Src2 fromImm(uint8_t v) { return Src2{true, kZeroReg, v}; }

    bool operator==(const Src2 &) const = default;
};

/** One ALU piece. Fields not used by `op` must be left defaulted. */
struct AluPiece
{
    AluOp op = AluOp::ADD;
    Reg rd = kZeroReg;
    Reg rs = kZeroReg;
    Src2 src2;
    Cond cond = Cond::ALWAYS; ///< only meaningful for SET
    uint8_t imm8 = 0;         ///< only meaningful for MOVI8

    bool operator==(const AluPiece &) const = default;
};

/** Inputs to ALU evaluation (register values already read). */
struct AluInputs
{
    uint32_t rs = 0;      ///< value of the rs register
    uint32_t src2 = 0;    ///< value of src2 (register value or imm4)
    uint32_t rd_old = 0;  ///< old value of rd (IC and MSTEP/DSTEP read it)
    uint32_t lo = 0;      ///< value of the LO special register
};

/** Results of ALU evaluation. */
struct AluOutputs
{
    uint32_t rd = 0;        ///< new rd value (if the op writes rd)
    uint32_t lo = 0;        ///< new LO value (if the op writes LO)
    bool writes_rd = false;
    bool writes_lo = false;
    bool overflow = false;  ///< signed overflow occurred (ADD/SUB/RSUB)
};

/** True if the op writes its rd register. */
inline bool
aluWritesRd(AluOp op)
{
    return op != AluOp::MTLO;
}

/** True if the op writes the LO special register. */
inline bool
aluWritesLo(AluOp op)
{
    return op == AluOp::MTLO || op == AluOp::MSTEP || op == AluOp::DSTEP;
}

/**
 * Pure combinational ALU semantics, shared by the functional executor
 * and the pipeline simulator. Inline — the pipeline simulator runs one
 * of these per simulated ALU piece, i.e. on almost every cycle.
 *
 * MSTEP implements one step of a shift-and-add multiply: LO holds the
 * multiplier; if its low bit is set rd += rs; then LO >>= 1 and rs is
 * expected to be doubled by a separate SLL (software controls the
 * datapath, in keeping with the paper's minimal-hardware stance).
 * DSTEP implements one step of restoring division: rd (remainder) is
 * shifted left by one bringing in the top bit of LO, LO shifts left;
 * if rd >= rs then rd -= rs and the low bit of LO is set.
 */
inline AluOutputs
evalAlu(const AluPiece &piece, const AluInputs &in)
{
    AluOutputs out;
    out.writes_rd = aluWritesRd(piece.op);
    out.writes_lo = aluWritesLo(piece.op);

    switch (piece.op) {
      case AluOp::ADD:
        out.rd = support::addOverflow(in.rs, in.src2, &out.overflow);
        break;
      case AluOp::SUB:
        out.rd = support::subOverflow(in.rs, in.src2, &out.overflow);
        break;
      case AluOp::RSUB:
        out.rd = support::subOverflow(in.src2, in.rs, &out.overflow);
        break;
      case AluOp::AND:
        out.rd = in.rs & in.src2;
        break;
      case AluOp::OR:
        out.rd = in.rs | in.src2;
        break;
      case AluOp::XOR:
        out.rd = in.rs ^ in.src2;
        break;
      case AluOp::NOT:
        out.rd = ~in.rs;
        break;
      case AluOp::SLL:
        out.rd = in.rs << (in.src2 & 31);
        break;
      case AluOp::SRL:
        out.rd = in.rs >> (in.src2 & 31);
        break;
      case AluOp::SRA:
        out.rd = static_cast<uint32_t>(
            static_cast<int32_t>(in.rs) >> (in.src2 & 31));
        break;
      case AluOp::XC:
        // Byte pointer in rs (low two bits), word in src2.
        out.rd = (in.src2 >> (8 * (in.rs & 3))) & 0xff;
        break;
      case AluOp::IC: {
        // Replace byte (LO & 3) of old rd with the low byte of rs.
        int shift = 8 * (in.lo & 3);
        uint32_t byte_mask = 0xffu << shift;
        out.rd = (in.rd_old & ~byte_mask) |
                 ((in.rs & 0xff) << shift);
        break;
      }
      case AluOp::MOVI8:
        out.rd = piece.imm8;
        break;
      case AluOp::SET:
        out.rd = evalCond(piece.cond, in.rs, in.src2) ? 1 : 0;
        break;
      case AluOp::MTLO:
        out.lo = in.rs;
        break;
      case AluOp::MFLO:
        out.rd = in.lo;
        break;
      case AluOp::MSTEP:
        // One shift-and-add multiply step (see above).
        out.rd = (in.lo & 1) ? in.rd_old + in.rs : in.rd_old;
        out.lo = in.lo >> 1;
        break;
      case AluOp::DSTEP: {
        // One restoring-division step (see above).
        uint32_t rem = (in.rd_old << 1) | (in.lo >> 31);
        uint32_t quo = in.lo << 1;
        if (rem >= in.rs && in.rs != 0) {
            rem -= in.rs;
            quo |= 1;
        }
        out.rd = rem;
        out.lo = quo;
        break;
      }
    }
    return out;
}

/** Mnemonic for an ALU op, e.g. "add", "xc", "seteq" (SET uses cond). */
std::string aluOpName(AluOp op);

/** True if the op reads its rs register. */
bool aluReadsRs(AluOp op);

/** True if the op reads its src2 operand. */
bool aluReadsSrc2(AluOp op);

/** True if the op reads the previous value of rd (IC, MSTEP, DSTEP). */
bool aluReadsRdOld(AluOp op);

/** True if the op reads the LO special register. */
bool aluReadsLo(AluOp op);

/** True if the op can raise an overflow trap. */
bool aluCanOverflow(AluOp op);

} // namespace mips::isa
