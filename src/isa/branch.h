/**
 * @file
 * Control-transfer pieces: compare-and-branch and jumps.
 *
 * MIPS has *no condition codes* (Section 2.3): conditional control flow
 * is a single compare-and-branch instruction choosing among the 16
 * comparisons. All branches are delayed with a single delay slot;
 * indirect jumps have a branch delay of two (Section 3.3: three return
 * addresses are saved so code after an indirect jump can be resumed).
 */
#pragma once

#include <cstdint>

#include "isa/alu.h"
#include "isa/cond.h"
#include "isa/registers.h"

namespace mips::isa {

/** Architectural delay (in instruction slots) after a taken branch. */
constexpr int kBranchDelay = 1;

/** Architectural delay after an indirect (register) jump. */
constexpr int kIndirectJumpDelay = 2;

/** Delay slots visible after a load before its value is readable. */
constexpr int kLoadDelay = 1;

/** Width of the PC-relative branch offset field (signed words). */
constexpr int kBranchOffsetBits = 16;

/** Width of the direct-jump absolute word-address field. */
constexpr int kJumpAddrBits = 24;

/** Width of the call-direct absolute word-address field. */
constexpr int kCallAddrBits = 23;

/** Compare-and-branch: if evalCond(cond, rs, src2) then PC += offset. */
struct BranchPiece
{
    Cond cond = Cond::ALWAYS;
    Reg rs = kZeroReg;
    Src2 src2;
    /**
     * Signed word offset relative to the *following* instruction
     * (i.e. target = branch address + 1 + offset).
     */
    int32_t offset = 0;

    bool operator==(const BranchPiece &) const = default;
};

/** Jump kinds. */
enum class JumpKind : uint8_t
{
    DIRECT = 0,        ///< PC = absolute address, delay 1
    INDIRECT = 1,      ///< PC = register, delay 2
    CALL_DIRECT = 2,   ///< link = return address; PC = absolute, delay 1
    CALL_INDIRECT = 3, ///< link = return address; PC = register, delay 2
    /**
     * Table dispatch: PC = mem[base + index] (word addressing). The
     * target word travels over the data-memory interface, so a TABLE
     * jump occupies the data port like a load and exposes the indirect
     * delay of two slots. Encoded as the INDIRECT sub-code with a
     * discriminator bit (existing INDIRECT words have it clear).
     */
    TABLE = 4,
};

/** Unconditional jump / call piece. */
struct JumpPiece
{
    JumpKind kind = JumpKind::DIRECT;
    uint32_t target_addr = 0; ///< DIRECT / CALL_DIRECT
    Reg target_reg = kZeroReg; ///< INDIRECT / CALL_INDIRECT; TABLE base
    Reg index = kZeroReg;      ///< TABLE index (word offset into table)
    Reg link = kLinkReg;       ///< CALL_*: receives address after delay
                               ///< slots (the resume point)

    bool operator==(const JumpPiece &) const = default;
};

/** Number of delay slots a jump of this kind exposes. */
constexpr int
jumpDelay(JumpKind kind)
{
    return kind == JumpKind::DIRECT || kind == JumpKind::CALL_DIRECT
        ? kBranchDelay : kIndirectJumpDelay;
}

/** True for CALL_DIRECT / CALL_INDIRECT. */
constexpr bool
jumpIsCall(JumpKind kind)
{
    return kind == JumpKind::CALL_DIRECT || kind == JumpKind::CALL_INDIRECT;
}

/**
 * True for INDIRECT / CALL_INDIRECT: the target is *in* target_reg.
 * Deliberately false for TABLE, whose target is a memory word — every
 * caller that reads the register as the target must treat TABLE
 * separately.
 */
constexpr bool
jumpIsIndirect(JumpKind kind)
{
    return kind == JumpKind::INDIRECT || kind == JumpKind::CALL_INDIRECT;
}

/** True for the table-dispatch form. */
constexpr bool
jumpIsTable(JumpKind kind)
{
    return kind == JumpKind::TABLE;
}

} // namespace mips::isa
