#include "isa/cond.h"

#include "support/logging.h"

namespace mips::isa {

namespace detail {

void
badCond(int c)
{
    support::panic("evalCond: bad cond %d", c);
}

} // namespace detail

Cond
negateCond(Cond c)
{
    switch (c) {
      case Cond::ALWAYS: return Cond::NEVER;
      case Cond::NEVER:  return Cond::ALWAYS;
      case Cond::EQ:     return Cond::NE;
      case Cond::NE:     return Cond::EQ;
      case Cond::LT:     return Cond::GE;
      case Cond::LE:     return Cond::GT;
      case Cond::GT:     return Cond::LE;
      case Cond::GE:     return Cond::LT;
      case Cond::LTU:    return Cond::GEU;
      case Cond::LEU:    return Cond::GTU;
      case Cond::GTU:    return Cond::LEU;
      case Cond::GEU:    return Cond::LTU;
      case Cond::MI:     return Cond::PL;
      case Cond::PL:     return Cond::MI;
      case Cond::EVN:    return Cond::ODD;
      case Cond::ODD:    return Cond::EVN;
    }
    support::panic("negateCond: bad cond %d", static_cast<int>(c));
}

Cond
swapCond(Cond c)
{
    switch (c) {
      case Cond::LT:  return Cond::GT;
      case Cond::LE:  return Cond::GE;
      case Cond::GT:  return Cond::LT;
      case Cond::GE:  return Cond::LE;
      case Cond::LTU: return Cond::GTU;
      case Cond::LEU: return Cond::GEU;
      case Cond::GTU: return Cond::LTU;
      case Cond::GEU: return Cond::LEU;
      default:        return c; // symmetric or unary comparisons
    }
}

std::string
condName(Cond c)
{
    switch (c) {
      case Cond::ALWAYS: return "always";
      case Cond::NEVER:  return "never";
      case Cond::EQ:     return "eq";
      case Cond::NE:     return "ne";
      case Cond::LT:     return "lt";
      case Cond::LE:     return "le";
      case Cond::GT:     return "gt";
      case Cond::GE:     return "ge";
      case Cond::LTU:    return "ltu";
      case Cond::LEU:    return "leu";
      case Cond::GTU:    return "gtu";
      case Cond::GEU:    return "geu";
      case Cond::MI:     return "mi";
      case Cond::PL:     return "pl";
      case Cond::EVN:    return "evn";
      case Cond::ODD:    return "odd";
    }
    support::panic("condName: bad cond %d", static_cast<int>(c));
}

bool
parseCond(const std::string &name, Cond *out)
{
    for (int i = 0; i < kNumConds; ++i) {
        Cond c = static_cast<Cond>(i);
        if (condName(c) == name) {
            *out = c;
            return true;
        }
    }
    return false;
}

} // namespace mips::isa
