/**
 * @file
 * The 16 comparison codes shared by compare-and-branch and
 * set-conditionally.
 *
 * The paper: "MIPS supports conditional control flow breaks using a
 * compare and branch instruction with one of 16 possible comparisons.
 * The 16 comparisons include both signed and unsigned arithmetic."
 * The exact set is not enumerated, so this rendition uses the ten
 * two-operand relations (signed and unsigned), ALWAYS/NEVER, sign and
 * parity tests of the first operand.
 */
#pragma once

#include <cstdint>
#include <string>

namespace mips::isa {

/** Comparison codes; exactly 16 so they fit a 4-bit field. */
enum class Cond : uint8_t
{
    ALWAYS = 0,  ///< unconditionally true (plain branch)
    NEVER = 1,   ///< unconditionally false (useful as a scheduled no-op)
    EQ = 2,      ///< a == b
    NE = 3,      ///< a != b
    LT = 4,      ///< signed a < b
    LE = 5,      ///< signed a <= b
    GT = 6,      ///< signed a > b
    GE = 7,      ///< signed a >= b
    LTU = 8,     ///< unsigned a < b
    LEU = 9,     ///< unsigned a <= b
    GTU = 10,    ///< unsigned a > b
    GEU = 11,    ///< unsigned a >= b
    MI = 12,     ///< a is negative (b ignored)
    PL = 13,     ///< a is non-negative (b ignored)
    EVN = 14,    ///< a is even (b ignored)
    ODD = 15,    ///< a is odd (b ignored)
};

/** Number of comparison codes. */
constexpr int kNumConds = 16;

namespace detail {
/** Out-of-line panic keeping the hot inline path free of logging. */
[[noreturn]] void badCond(int c);
} // namespace detail

/** Evaluate a comparison on 32-bit operands. Inline — the pipeline
 *  simulator evaluates one of these per simulated branch. */
inline bool
evalCond(Cond c, uint32_t a, uint32_t b)
{
    int32_t sa = static_cast<int32_t>(a);
    int32_t sb = static_cast<int32_t>(b);
    switch (c) {
      case Cond::ALWAYS: return true;
      case Cond::NEVER:  return false;
      case Cond::EQ:     return a == b;
      case Cond::NE:     return a != b;
      case Cond::LT:     return sa < sb;
      case Cond::LE:     return sa <= sb;
      case Cond::GT:     return sa > sb;
      case Cond::GE:     return sa >= sb;
      case Cond::LTU:    return a < b;
      case Cond::LEU:    return a <= b;
      case Cond::GTU:    return a > b;
      case Cond::GEU:    return a >= b;
      case Cond::MI:     return sa < 0;
      case Cond::PL:     return sa >= 0;
      case Cond::EVN:    return (a & 1) == 0;
      case Cond::ODD:    return (a & 1) == 1;
    }
    detail::badCond(static_cast<int>(c));
}

/** The logical negation (evalCond(negate(c),a,b) == !evalCond(c,a,b)). */
Cond negateCond(Cond c);

/**
 * The comparison with operands swapped
 * (evalCond(swapCond(c),a,b) == evalCond(c,b,a)). Used by the code
 * generators to put a constant on the immediate side (the paper's
 * "reverse operators").
 */
Cond swapCond(Cond c);

/** Assembler mnemonic suffix, e.g. "eq", "ltu", "always". */
std::string condName(Cond c);

/** Parse a mnemonic suffix; returns false on unknown names. */
bool parseCond(const std::string &name, Cond *out);

} // namespace mips::isa
