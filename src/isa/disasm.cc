#include "isa/disasm.h"

#include "support/logging.h"

namespace mips::isa {

using support::strprintf;

namespace {

std::string
src2Str(const Src2 &s)
{
    if (s.is_imm)
        return strprintf("#%d", s.imm4);
    return regName(s.reg);
}

} // namespace

std::string
disasmAlu(const AluPiece &p)
{
    switch (p.op) {
      case AluOp::MOVI8:
        return strprintf("movi #%d, %s", p.imm8, regName(p.rd).c_str());
      case AluOp::SET:
        return strprintf("set%s %s, %s, %s", condName(p.cond).c_str(),
                         regName(p.rs).c_str(), src2Str(p.src2).c_str(),
                         regName(p.rd).c_str());
      case AluOp::NOT:
        return strprintf("not %s, %s", regName(p.rs).c_str(),
                         regName(p.rd).c_str());
      case AluOp::MTLO:
        return strprintf("mtlo %s", regName(p.rs).c_str());
      case AluOp::MFLO:
        return strprintf("mflo %s", regName(p.rd).c_str());
      case AluOp::IC:
        return strprintf("ic %s, %s", regName(p.rs).c_str(),
                         regName(p.rd).c_str());
      case AluOp::MSTEP:
      case AluOp::DSTEP:
        return strprintf("%s %s, %s", aluOpName(p.op).c_str(),
                         regName(p.rs).c_str(), regName(p.rd).c_str());
      default:
        return strprintf("%s %s, %s, %s", aluOpName(p.op).c_str(),
                         regName(p.rs).c_str(), src2Str(p.src2).c_str(),
                         regName(p.rd).c_str());
    }
}

std::string
disasmMem(const MemPiece &p)
{
    const char *op = p.is_store ? "st" : "ld";
    std::string data = regName(p.rd);
    switch (p.mode) {
      case MemMode::LONG_IMM:
        return strprintf("ldi #%d, %s", p.imm, data.c_str());
      case MemMode::ABSOLUTE:
        if (p.is_store)
            return strprintf("st %s, @%d", data.c_str(), p.imm);
        return strprintf("ld @%d, %s", p.imm, data.c_str());
      case MemMode::DISP:
        if (p.is_store) {
            return strprintf("st %s, %d(%s)", data.c_str(), p.imm,
                             regName(p.base).c_str());
        }
        return strprintf("ld %d(%s), %s", p.imm,
                         regName(p.base).c_str(), data.c_str());
      case MemMode::BASE_INDEX:
        if (p.is_store) {
            return strprintf("st %s, (%s+%s)", data.c_str(),
                             regName(p.base).c_str(),
                             regName(p.index).c_str());
        }
        return strprintf("ld (%s+%s), %s", regName(p.base).c_str(),
                         regName(p.index).c_str(), data.c_str());
      case MemMode::BASE_SHIFT:
        if (p.is_store) {
            return strprintf("st %s, (%s+%s>>%d)", data.c_str(),
                             regName(p.base).c_str(),
                             regName(p.index).c_str(), p.shift);
        }
        return strprintf("ld (%s+%s>>%d), %s", regName(p.base).c_str(),
                         regName(p.index).c_str(), p.shift,
                         data.c_str());
    }
    support::panic("disasmMem: bad mode (op %s)", op);
}

std::string
disasm(const Instruction &inst, uint32_t pc)
{
    if (inst.isNop())
        return "nop";

    std::string out;
    if (inst.alu)
        out = disasmAlu(*inst.alu);

    if (inst.mem) {
        std::string mem = disasmMem(*inst.mem);
        out = out.empty() ? mem : out + " | " + mem;
    } else if (inst.branch) {
        const BranchPiece &b = *inst.branch;
        uint32_t target = pc + 1 + static_cast<uint32_t>(b.offset);
        if (b.cond == Cond::ALWAYS) {
            out = strprintf("bra %u", target);
        } else {
            out = strprintf("b%s %s, %s, %u", condName(b.cond).c_str(),
                            regName(b.rs).c_str(),
                            src2Str(b.src2).c_str(), target);
        }
    } else if (inst.jump) {
        const JumpPiece &j = *inst.jump;
        switch (j.kind) {
          case JumpKind::DIRECT:
            out = strprintf("jmp %u", j.target_addr);
            break;
          case JumpKind::INDIRECT:
            out = strprintf("jmp (%s)", regName(j.target_reg).c_str());
            break;
          case JumpKind::CALL_DIRECT:
            out = strprintf("call %u, %s", j.target_addr,
                            regName(j.link).c_str());
            break;
          case JumpKind::CALL_INDIRECT:
            out = strprintf("call (%s), %s",
                            regName(j.target_reg).c_str(),
                            regName(j.link).c_str());
            break;
          case JumpKind::TABLE:
            out = strprintf("jtab (%s+%s)",
                            regName(j.target_reg).c_str(),
                            regName(j.index).c_str());
            break;
        }
    } else if (inst.special) {
        const SpecialPiece &p = *inst.special;
        switch (p.op) {
          case SpecialOp::NOP:
            out = "nop";
            break;
          case SpecialOp::TRAP:
            out = strprintf("trap #%d", p.trap_code);
            break;
          case SpecialOp::RFE:
            out = "rfe";
            break;
          case SpecialOp::MFS:
            out = strprintf("mfs %s, %s",
                            specialRegName(p.sreg).c_str(),
                            regName(p.reg).c_str());
            break;
          case SpecialOp::MTS:
            out = strprintf("mts %s, %s", regName(p.reg).c_str(),
                            specialRegName(p.sreg).c_str());
            break;
          case SpecialOp::HALT:
            out = "halt";
            break;
        }
    }
    return out;
}

} // namespace mips::isa
