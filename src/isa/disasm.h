/**
 * @file
 * Textual disassembly of instruction words.
 *
 * The syntax matches what the assembler in src/asm accepts, so
 * assemble(disassemble(p)) round-trips. Packed words print both pieces
 * separated by " | ".
 */
#pragma once

#include <string>

#include "isa/instruction.h"

namespace mips::isa {

/** Disassemble one ALU piece. */
std::string disasmAlu(const AluPiece &p);

/** Disassemble one memory piece. */
std::string disasmMem(const MemPiece &p);

/**
 * Disassemble a whole word. `pc` (the word's own address) is used to
 * print absolute branch targets next to relative offsets.
 */
std::string disasm(const Instruction &inst, uint32_t pc = 0);

} // namespace mips::isa
