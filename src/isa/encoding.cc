#include "isa/encoding.h"

#include "support/bits.h"
#include "support/logging.h"

namespace mips::isa {

using support::bits;
using support::insertBits;
using support::sext;

namespace {

constexpr uint32_t kFmtSpecial = 0;
constexpr uint32_t kFmtAlu = 1;
constexpr uint32_t kFmtMem = 2;
constexpr uint32_t kFmtPacked = 3;
constexpr uint32_t kFmtBranch = 4;
constexpr uint32_t kFmtJump = 5;

/** Mapping of packable ALU ops onto the 3-bit packed opcode field. */
constexpr AluOp kPackedOps[8] = {
    AluOp::ADD, AluOp::SUB, AluOp::AND, AluOp::OR,
    AluOp::XOR, AluOp::SLL, AluOp::XC, AluOp::IC,
};

int
packedOpIndex(AluOp op)
{
    for (int i = 0; i < 8; ++i)
        if (kPackedOps[i] == op)
            return i;
    return -1;
}

uint32_t
encodeAluFields(const AluPiece &a, uint32_t word)
{
    word = insertBits(word, 28, 23, static_cast<uint32_t>(a.op));
    word = insertBits(word, 22, 19, a.rd);
    word = insertBits(word, 18, 15, a.rs);
    if (a.op == AluOp::MOVI8) {
        word = insertBits(word, 13, 6, a.imm8);
    } else {
        word = insertBits(word, 14, 14, a.src2.is_imm ? 1 : 0);
        word = insertBits(word, 13, 10,
                          a.src2.is_imm ? a.src2.imm4 : a.src2.reg);
        word = insertBits(word, 9, 6, static_cast<uint32_t>(a.cond));
    }
    return word;
}

support::Result<Instruction>
decodeSpecial(uint32_t word)
{
    SpecialPiece p;
    uint32_t sub = bits(word, 28, 25);
    switch (sub) {
      case 0:
        // All-zero payload is the canonical no-op; a plain NOP word
        // decodes to an empty instruction.
        return Instruction::makeNop();
      case 1:
        p.op = SpecialOp::TRAP;
        p.trap_code = static_cast<uint16_t>(bits(word, 24, 13));
        break;
      case 2:
        p.op = SpecialOp::RFE;
        break;
      case 3:
      case 4:
        p.op = sub == 3 ? SpecialOp::MFS : SpecialOp::MTS;
        p.reg = static_cast<Reg>(bits(word, 24, 21));
        if (bits(word, 20, 18) >= kNumSpecialRegs)
            return support::makeError("bad special register");
        p.sreg = static_cast<SpecialReg>(bits(word, 20, 18));
        break;
      case 15:
        p.op = SpecialOp::HALT;
        break;
      default:
        return support::makeError("bad special subcode");
    }
    return Instruction::makeSpecial(p);
}

support::Result<Instruction>
decodeAlu(uint32_t word)
{
    if (bits(word, 28, 23) >= kNumAluOps)
        return support::makeError("bad ALU opcode");
    AluPiece a;
    a.op = static_cast<AluOp>(bits(word, 28, 23));
    a.rd = static_cast<Reg>(bits(word, 22, 19));
    a.rs = static_cast<Reg>(bits(word, 18, 15));
    if (a.op == AluOp::MOVI8) {
        a.imm8 = static_cast<uint8_t>(bits(word, 13, 6));
    } else {
        uint8_t field = static_cast<uint8_t>(bits(word, 13, 10));
        a.src2 = bits(word, 14, 14) ? Src2::fromImm(field)
                                    : Src2::fromReg(field);
        a.cond = static_cast<Cond>(bits(word, 9, 6));
    }
    return Instruction::makeAlu(a);
}

support::Result<Instruction>
decodeMem(uint32_t word)
{
    if (bits(word, 28, 26) > static_cast<uint32_t>(MemMode::BASE_SHIFT))
        return support::makeError("bad memory mode");
    MemPiece m;
    m.mode = static_cast<MemMode>(bits(word, 28, 26));
    m.is_store = bits(word, 25, 25);
    m.rd = static_cast<Reg>(bits(word, 24, 21));
    switch (m.mode) {
      case MemMode::LONG_IMM:
        if (m.is_store)
            return support::makeError("long-immediate store");
        m.imm = static_cast<int32_t>(sext(bits(word, 20, 0),
                                          kLongImmBits));
        break;
      case MemMode::ABSOLUTE:
        m.imm = static_cast<int32_t>(bits(word, 20, 0));
        break;
      case MemMode::DISP:
        m.base = static_cast<Reg>(bits(word, 20, 17));
        m.imm = static_cast<int32_t>(sext(bits(word, 16, 0), kDispBits));
        break;
      case MemMode::BASE_INDEX:
        m.base = static_cast<Reg>(bits(word, 20, 17));
        m.index = static_cast<Reg>(bits(word, 16, 13));
        break;
      case MemMode::BASE_SHIFT:
        m.base = static_cast<Reg>(bits(word, 20, 17));
        m.index = static_cast<Reg>(bits(word, 16, 13));
        m.shift = static_cast<uint8_t>(bits(word, 12, 10));
        break;
    }
    return Instruction::makeMem(m);
}

support::Result<Instruction>
decodePacked(uint32_t word)
{
    MemPiece m;
    m.mode = MemMode::DISP;
    m.is_store = bits(word, 28, 28);
    m.rd = static_cast<Reg>(bits(word, 27, 24));
    m.base = static_cast<Reg>(bits(word, 23, 20));
    m.imm = static_cast<int32_t>(bits(word, 19, 16));

    AluPiece a;
    a.op = kPackedOps[bits(word, 15, 13)];
    a.rd = static_cast<Reg>(bits(word, 12, 9));
    a.rs = static_cast<Reg>(bits(word, 8, 5));
    uint8_t field = static_cast<uint8_t>(bits(word, 3, 0));
    a.src2 = bits(word, 4, 4) ? Src2::fromImm(field)
                              : Src2::fromReg(field);
    return Instruction::makePacked(a, m);
}

support::Result<Instruction>
decodeBranch(uint32_t word)
{
    BranchPiece b;
    b.cond = static_cast<Cond>(bits(word, 28, 25));
    b.rs = static_cast<Reg>(bits(word, 24, 21));
    uint8_t field = static_cast<uint8_t>(bits(word, 19, 16));
    b.src2 = bits(word, 20, 20) ? Src2::fromImm(field)
                                : Src2::fromReg(field);
    b.offset = static_cast<int32_t>(sext(bits(word, 15, 0),
                                         kBranchOffsetBits));
    return Instruction::makeBranch(b);
}

support::Result<Instruction>
decodeJump(uint32_t word)
{
    JumpPiece j;
    j.kind = static_cast<JumpKind>(bits(word, 28, 27));
    // The INDIRECT sub-code carries a discriminator: bit 22 set means
    // the table-dispatch form (plain indirect words leave it clear).
    if (j.kind == JumpKind::INDIRECT && bits(word, 22, 22))
        j.kind = JumpKind::TABLE;
    switch (j.kind) {
      case JumpKind::DIRECT:
        j.target_addr = static_cast<uint32_t>(bits(word, 23, 0));
        break;
      case JumpKind::INDIRECT:
        j.target_reg = static_cast<Reg>(bits(word, 26, 23));
        break;
      case JumpKind::TABLE:
        j.target_reg = static_cast<Reg>(bits(word, 26, 23));
        j.index = static_cast<Reg>(bits(word, 21, 18));
        break;
      case JumpKind::CALL_DIRECT:
        j.link = static_cast<Reg>(bits(word, 26, 23));
        j.target_addr = static_cast<uint32_t>(bits(word, 22, 0));
        break;
      case JumpKind::CALL_INDIRECT:
        j.link = static_cast<Reg>(bits(word, 26, 23));
        j.target_reg = static_cast<Reg>(bits(word, 22, 19));
        break;
    }
    return Instruction::makeJump(j);
}

} // namespace

uint32_t
encode(const Instruction &inst)
{
    std::string err = validate(inst);
    if (!err.empty())
        support::panic("encode: invalid instruction: %s", err.c_str());

    uint32_t word = 0;

    if (inst.isNop())
        return insertBits(0, 31, 29, kFmtSpecial);

    if (inst.alu && inst.mem) {
        const AluPiece &a = *inst.alu;
        const MemPiece &m = *inst.mem;
        word = insertBits(word, 31, 29, kFmtPacked);
        word = insertBits(word, 28, 28, m.is_store ? 1 : 0);
        word = insertBits(word, 27, 24, m.rd);
        word = insertBits(word, 23, 20, m.base);
        word = insertBits(word, 19, 16, static_cast<uint32_t>(m.imm));
        word = insertBits(word, 15, 13,
                          static_cast<uint32_t>(packedOpIndex(a.op)));
        word = insertBits(word, 12, 9, a.rd);
        word = insertBits(word, 8, 5, a.rs);
        word = insertBits(word, 4, 4, a.src2.is_imm ? 1 : 0);
        word = insertBits(word, 3, 0,
                          a.src2.is_imm ? a.src2.imm4 : a.src2.reg);
        return word;
    }

    if (inst.alu) {
        word = insertBits(word, 31, 29, kFmtAlu);
        return encodeAluFields(*inst.alu, word);
    }

    if (inst.mem) {
        const MemPiece &m = *inst.mem;
        word = insertBits(word, 31, 29, kFmtMem);
        word = insertBits(word, 28, 26, static_cast<uint32_t>(m.mode));
        word = insertBits(word, 25, 25, m.is_store ? 1 : 0);
        word = insertBits(word, 24, 21, m.rd);
        switch (m.mode) {
          case MemMode::LONG_IMM:
          case MemMode::ABSOLUTE:
            word = insertBits(word, 20, 0, static_cast<uint32_t>(m.imm));
            break;
          case MemMode::DISP:
            word = insertBits(word, 20, 17, m.base);
            word = insertBits(word, 16, 0, static_cast<uint32_t>(m.imm));
            break;
          case MemMode::BASE_INDEX:
            word = insertBits(word, 20, 17, m.base);
            word = insertBits(word, 16, 13, m.index);
            break;
          case MemMode::BASE_SHIFT:
            word = insertBits(word, 20, 17, m.base);
            word = insertBits(word, 16, 13, m.index);
            word = insertBits(word, 12, 10, m.shift);
            break;
        }
        return word;
    }

    if (inst.branch) {
        const BranchPiece &b = *inst.branch;
        word = insertBits(word, 31, 29, kFmtBranch);
        word = insertBits(word, 28, 25, static_cast<uint32_t>(b.cond));
        word = insertBits(word, 24, 21, b.rs);
        word = insertBits(word, 20, 20, b.src2.is_imm ? 1 : 0);
        word = insertBits(word, 19, 16,
                          b.src2.is_imm ? b.src2.imm4 : b.src2.reg);
        word = insertBits(word, 15, 0, static_cast<uint32_t>(b.offset));
        return word;
    }

    if (inst.jump) {
        const JumpPiece &j = *inst.jump;
        word = insertBits(word, 31, 29, kFmtJump);
        word = insertBits(word, 28, 27,
                          j.kind == JumpKind::TABLE
                              ? static_cast<uint32_t>(JumpKind::INDIRECT)
                              : static_cast<uint32_t>(j.kind));
        switch (j.kind) {
          case JumpKind::DIRECT:
            word = insertBits(word, 23, 0, j.target_addr);
            break;
          case JumpKind::INDIRECT:
            word = insertBits(word, 26, 23, j.target_reg);
            break;
          case JumpKind::TABLE:
            word = insertBits(word, 26, 23, j.target_reg);
            word = insertBits(word, 22, 22, 1);
            word = insertBits(word, 21, 18, j.index);
            break;
          case JumpKind::CALL_DIRECT:
            word = insertBits(word, 26, 23, j.link);
            word = insertBits(word, 22, 0, j.target_addr);
            break;
          case JumpKind::CALL_INDIRECT:
            word = insertBits(word, 26, 23, j.link);
            word = insertBits(word, 22, 19, j.target_reg);
            break;
        }
        return word;
    }

    // Special piece.
    const SpecialPiece &p = *inst.special;
    word = insertBits(word, 31, 29, kFmtSpecial);
    switch (p.op) {
      case SpecialOp::NOP:
        break;
      case SpecialOp::TRAP:
        word = insertBits(word, 28, 25, 1);
        word = insertBits(word, 24, 13, p.trap_code);
        break;
      case SpecialOp::RFE:
        word = insertBits(word, 28, 25, 2);
        break;
      case SpecialOp::MFS:
      case SpecialOp::MTS:
        word = insertBits(word, 28, 25, p.op == SpecialOp::MFS ? 3 : 4);
        word = insertBits(word, 24, 21, p.reg);
        word = insertBits(word, 20, 18, static_cast<uint32_t>(p.sreg));
        break;
      case SpecialOp::HALT:
        word = insertBits(word, 28, 25, 15);
        break;
    }
    return word;
}

support::Result<Instruction>
decode(uint32_t word)
{
    switch (bits(word, 31, 29)) {
      case kFmtSpecial: return decodeSpecial(word);
      case kFmtAlu:     return decodeAlu(word);
      case kFmtMem:     return decodeMem(word);
      case kFmtPacked:  return decodePacked(word);
      case kFmtBranch:  return decodeBranch(word);
      case kFmtJump:    return decodeJump(word);
      default:
        return support::makeError("reserved instruction format");
    }
}

} // namespace mips::isa
