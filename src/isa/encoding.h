/**
 * @file
 * Binary encoding of instruction words.
 *
 * The paper fixes the *budget* (every instruction is one 32-bit word,
 * pieces share the word, register fields are 4 bits, inline constants
 * are 4 bits, move-immediate is 8 bits) but not the exact bit layout;
 * the layout below is this reproduction's rendition. Format selector
 * in bits [31:29]:
 *
 *   0  SPECIAL   sub[28:25]; TRAP code[24:13]; MFS/MTS reg[24:21]
 *                sreg[20:18].  Word 0 is the canonical no-op.
 *   1  ALU       op[28:23] rd[22:19] rs[18:15] isimm[14] src2[13:10]
 *                cond[9:6]; MOVI8 keeps imm8 in [13:6].
 *   2  MEM       mode[28:26] store[25] rd[24:21]; payload in [20:0]:
 *                LONG_IMM imm21 / ABSOLUTE addr21 /
 *                DISP base[20:17] disp17[16:0] /
 *                BASE_INDEX base[20:17] index[16:13] /
 *                BASE_SHIFT base[20:17] index[16:13] shift[12:10]
 *   3  PACKED    store[28] memrd[27:24] base[23:20] disp4[19:16]
 *                aluop3[15:13] alurd[12:9] alurs[8:5] isimm[4]
 *                src2[3:0]
 *   4  BRANCH    cond[28:25] rs[24:21] isimm[20] src2[19:16]
 *                offset16[15:0] (signed words, relative to PC+1)
 *   5  JUMP      sub[28:27]; DIRECT addr24[23:0] /
 *                INDIRECT reg[26:23] /
 *                CALL_DIRECT link[26:23] addr23[22:0] /
 *                CALL_INDIRECT link[26:23] reg[22:19]
 */
#pragma once

#include <cstdint>

#include "isa/instruction.h"
#include "support/result.h"

namespace mips::isa {

/**
 * Encode an instruction word. The instruction must pass validate();
 * violations are internal errors (panic), since construction sites are
 * expected to validate user input themselves.
 */
uint32_t encode(const Instruction &inst);

/**
 * Decode a 32-bit word. Unused encodings yield an error (the simulator
 * turns that into an illegal-instruction exception rather than
 * crashing, since programs can jump into data).
 */
support::Result<Instruction> decode(uint32_t word);

} // namespace mips::isa
