#include "isa/instruction.h"

#include "support/bits.h"
#include "support/logging.h"

namespace mips::isa {

bool
specialRequiresPrivilege(const SpecialPiece &piece)
{
    switch (piece.op) {
      case SpecialOp::MTS:
        return true; // all special-register writes are privileged
      case SpecialOp::MFS:
        // LO and the saved return addresses are user-readable.
        return piece.sreg == SpecialReg::SURPRISE ||
               piece.sreg == SpecialReg::SEG_BITS ||
               piece.sreg == SpecialReg::SEG_PID ||
               piece.sreg == SpecialReg::FAULT;
      case SpecialOp::RFE:
        return true;
      default:
        return false;
    }
}

bool
Instruction::isControlTransfer() const
{
    if (branch || jump)
        return true;
    if (special) {
        switch (special->op) {
          case SpecialOp::TRAP:
          case SpecialOp::RFE:
          case SpecialOp::HALT:
            return true;
          default:
            break;
        }
    }
    return false;
}

bool
Instruction::referencesMemory() const
{
    // A table-dispatch jump fetches its target word over the data
    // interface, so it occupies the data port exactly like a load.
    if (jump && jumpIsTable(jump->kind))
        return true;
    return mem && memReferencesMemory(*mem);
}

bool
Instruction::isStore() const
{
    return mem && mem->is_store;
}

bool
Instruction::isLoad() const
{
    return mem && !mem->is_store && memReferencesMemory(*mem);
}

Instruction
Instruction::makeNop()
{
    return Instruction{};
}

Instruction
Instruction::makeAlu(AluPiece p)
{
    Instruction i;
    i.alu = p;
    return i;
}

Instruction
Instruction::makeMem(MemPiece p)
{
    Instruction i;
    i.mem = p;
    return i;
}

Instruction
Instruction::makePacked(AluPiece a, MemPiece m)
{
    Instruction i;
    i.alu = a;
    i.mem = m;
    return i;
}

Instruction
Instruction::makeBranch(BranchPiece p)
{
    Instruction i;
    i.branch = p;
    return i;
}

Instruction
Instruction::makeJump(JumpPiece p)
{
    Instruction i;
    i.jump = p;
    return i;
}

Instruction
Instruction::makeSpecial(SpecialPiece p)
{
    Instruction i;
    i.special = p;
    return i;
}

Instruction
Instruction::makeHalt()
{
    SpecialPiece p;
    p.op = SpecialOp::HALT;
    return makeSpecial(p);
}

Instruction
Instruction::makeTrap(uint16_t code)
{
    SpecialPiece p;
    p.op = SpecialOp::TRAP;
    p.trap_code = code;
    return makeSpecial(p);
}

namespace {

void
markRead(RegUse *use, Reg r)
{
    if (r != kZeroReg)
        use->gpr_reads |= static_cast<uint16_t>(1u << r);
}

void
markWrite(RegUse *use, Reg r)
{
    if (r != kZeroReg)
        use->gpr_writes |= static_cast<uint16_t>(1u << r);
}

} // namespace

RegUse
regUseAlu(const AluPiece &p)
{
    RegUse use;
    if (aluReadsRs(p.op))
        markRead(&use, p.rs);
    if (aluReadsSrc2(p.op) && !p.src2.is_imm)
        markRead(&use, p.src2.reg);
    if (aluReadsRdOld(p.op))
        markRead(&use, p.rd);
    if (aluWritesRd(p.op))
        markWrite(&use, p.rd);
    use.reads_lo = aluReadsLo(p.op);
    use.writes_lo = aluWritesLo(p.op);
    return use;
}

RegUse
regUseMem(const MemPiece &p)
{
    RegUse use;
    if (memReadsBase(p))
        markRead(&use, p.base);
    if (memReadsIndex(p))
        markRead(&use, p.index);
    if (p.is_store) {
        markRead(&use, p.rd);
        use.writes_memory = true;
    } else {
        markWrite(&use, p.rd);
        use.reads_memory = memReferencesMemory(p);
    }
    return use;
}

RegUse
regUse(const Instruction &inst)
{
    RegUse use;
    auto merge = [&use](const RegUse &other) {
        use.gpr_reads |= other.gpr_reads;
        use.gpr_writes |= other.gpr_writes;
        use.reads_lo |= other.reads_lo;
        use.writes_lo |= other.writes_lo;
        use.touches_system_state |= other.touches_system_state;
        use.reads_memory |= other.reads_memory;
        use.writes_memory |= other.writes_memory;
    };

    if (inst.alu)
        merge(regUseAlu(*inst.alu));
    if (inst.mem)
        merge(regUseMem(*inst.mem));
    if (inst.branch) {
        markRead(&use, inst.branch->rs);
        if (!inst.branch->src2.is_imm)
            markRead(&use, inst.branch->src2.reg);
    }
    if (inst.jump) {
        if (jumpIsIndirect(inst.jump->kind))
            markRead(&use, inst.jump->target_reg);
        if (jumpIsTable(inst.jump->kind)) {
            markRead(&use, inst.jump->target_reg);
            markRead(&use, inst.jump->index);
            use.reads_memory = true;
        }
        if (jumpIsCall(inst.jump->kind))
            markWrite(&use, inst.jump->link);
    }
    if (inst.special) {
        switch (inst.special->op) {
          case SpecialOp::NOP:
            break;
          case SpecialOp::MFS:
            markWrite(&use, inst.special->reg);
            if (inst.special->sreg == SpecialReg::LO)
                use.reads_lo = true;
            else
                use.touches_system_state = true;
            break;
          case SpecialOp::MTS:
            markRead(&use, inst.special->reg);
            if (inst.special->sreg == SpecialReg::LO)
                use.writes_lo = true;
            else
                use.touches_system_state = true;
            break;
          default:
            use.touches_system_state = true;
            break;
        }
    }
    return use;
}

bool
aluOpPackable(AluOp op)
{
    switch (op) {
      case AluOp::ADD:
      case AluOp::SUB:
      case AluOp::AND:
      case AluOp::OR:
      case AluOp::XOR:
      case AluOp::SLL:
      case AluOp::XC:
      case AluOp::IC:
        return true;
      default:
        return false;
    }
}

bool
canPack(const AluPiece &a, const MemPiece &m)
{
    if (!aluOpPackable(a.op))
        return false;
    if (m.mode != MemMode::DISP)
        return false;
    if (m.imm < 0 ||
        !support::fitsUnsigned(static_cast<uint64_t>(m.imm),
                               kPackedDispBits)) {
        return false;
    }
    return true;
}

std::string
validate(const Instruction &inst)
{
    int xfer = (inst.mem ? 1 : 0) + (inst.branch ? 1 : 0) +
               (inst.jump ? 1 : 0) + (inst.special ? 1 : 0);
    if (xfer > 1)
        return "more than one transfer piece in a word";
    if (inst.alu && (inst.branch || inst.jump || inst.special))
        return "an ALU piece may share a word only with a memory piece";
    if (inst.alu && inst.mem && !canPack(*inst.alu, *inst.mem))
        return "ALU/memory combination does not fit the packed format";
    if (inst.mem) {
        std::string err = memValidate(*inst.mem);
        if (!err.empty())
            return err;
    }
    if (inst.branch) {
        if (!support::fitsSigned(inst.branch->offset, kBranchOffsetBits))
            return "branch offset out of range";
    }
    if (inst.jump) {
        if (inst.jump->kind == JumpKind::DIRECT &&
            !support::fitsUnsigned(inst.jump->target_addr, kJumpAddrBits))
            return "jump target out of range";
        if (inst.jump->kind == JumpKind::CALL_DIRECT &&
            !support::fitsUnsigned(inst.jump->target_addr, kCallAddrBits))
            return "call target out of range";
    }
    if (inst.special && inst.special->op == SpecialOp::TRAP &&
        inst.special->trap_code >= (1u << kTrapCodeBits)) {
        return "trap code out of range";
    }
    return "";
}

} // namespace mips::isa
