/**
 * @file
 * The 32-bit instruction word: a container of pieces.
 *
 * An instruction word holds at most one ALU piece plus at most one
 * transfer piece (memory, branch, jump, or special). The packed
 * ALU+memory combination is the paper's "instruction pieces ... packed
 * into one 32-bit word" (Section 4.2.1); packing is what lets an
 * instruction use both the ALU and the data-memory interface in one
 * cycle, and unpacked ALU-only words are what leave the *free memory
 * cycles* of Section 3.1.
 *
 * This header also exposes the register read/write sets used by the
 * reorganizer's dependence analysis.
 */
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "isa/alu.h"
#include "isa/branch.h"
#include "isa/mem.h"
#include "isa/special.h"

namespace mips::isa {

/** A decoded 32-bit instruction word. */
struct Instruction
{
    std::optional<AluPiece> alu;
    std::optional<MemPiece> mem;
    std::optional<BranchPiece> branch;
    std::optional<JumpPiece> jump;
    std::optional<SpecialPiece> special;

    /** A word with no pieces is a no-op. */
    bool
    isNop() const
    {
        return !alu && !mem && !branch && !jump && !special;
    }

    /** True if the word ends a basic block (branch/jump/trap/rfe/halt). */
    bool isControlTransfer() const;

    /** True if the word contains a load or store that touches memory. */
    bool referencesMemory() const;

    /** True if the word contains a store. */
    bool isStore() const;

    /** True if the word contains a memory-referencing load. */
    bool isLoad() const;

    bool operator==(const Instruction &) const = default;

    // --- Constructors for the common shapes ---------------------------

    static Instruction makeNop();
    static Instruction makeAlu(AluPiece p);
    static Instruction makeMem(MemPiece p);
    static Instruction makePacked(AluPiece a, MemPiece m);
    static Instruction makeBranch(BranchPiece p);
    static Instruction makeJump(JumpPiece p);
    static Instruction makeSpecial(SpecialPiece p);
    static Instruction makeHalt();
    static Instruction makeTrap(uint16_t code);
};

/**
 * Register read/write summary of an instruction word, used for
 * dependence analysis. GPRs are a 16-bit mask; the special state bits
 * cover the LO byte selector and "any special processor register"
 * (surprise register etc., which the reorganizer never reorders across).
 */
struct RegUse
{
    uint16_t gpr_reads = 0;
    uint16_t gpr_writes = 0;
    bool reads_lo = false;
    bool writes_lo = false;
    bool touches_system_state = false; ///< MFS/MTS/RFE/TRAP/HALT
    bool reads_memory = false;
    bool writes_memory = false;

    bool
    readsGpr(Reg r) const
    {
        return (gpr_reads >> r) & 1;
    }

    bool
    writesGpr(Reg r) const
    {
        return (gpr_writes >> r) & 1;
    }
};

/** Compute the register/memory use summary for a word. */
RegUse regUse(const Instruction &inst);

/** Register/memory use of a single ALU piece. */
RegUse regUseAlu(const AluPiece &p);

/** Register/memory use of a single memory piece. */
RegUse regUseMem(const MemPiece &p);

/**
 * Validate an instruction word against the encoding rules. Returns an
 * empty string when valid, otherwise a description of the violation.
 *
 * Rules: at most one of {mem, branch, jump, special}; an ALU piece may
 * share a word only with a memory piece, and then only if canPack()
 * allows the combination.
 */
std::string validate(const Instruction &inst);

/**
 * True if this ALU piece and memory piece fit the packed word format:
 * the ALU op must be in the compact 3-bit set {ADD, SUB, AND, OR, XOR,
 * SLL, XC, IC} and the memory piece must be displacement(base) with an
 * unsigned 4-bit displacement.
 */
bool canPack(const AluPiece &a, const MemPiece &m);

/** True if this ALU op is encodable in the packed format. */
bool aluOpPackable(AluOp op);

} // namespace mips::isa
