#include "isa/mem.h"

#include "support/bits.h"
#include "support/logging.h"

namespace mips::isa {

namespace detail {

void
badMemMode(int mode)
{
    support::panic("memEffectiveAddress: bad mode %d (LONG_IMM makes "
                   "no memory reference)", mode);
}

} // namespace detail

bool
memReferencesMemory(const MemPiece &piece)
{
    return piece.mode != MemMode::LONG_IMM;
}

bool
memReadsBase(const MemPiece &piece)
{
    return piece.mode == MemMode::DISP ||
           piece.mode == MemMode::BASE_INDEX ||
           piece.mode == MemMode::BASE_SHIFT;
}

bool
memReadsIndex(const MemPiece &piece)
{
    return piece.mode == MemMode::BASE_INDEX ||
           piece.mode == MemMode::BASE_SHIFT;
}

std::string
memModeName(MemMode mode)
{
    switch (mode) {
      case MemMode::LONG_IMM:   return "long-immediate";
      case MemMode::ABSOLUTE:   return "absolute";
      case MemMode::DISP:       return "displacement(base)";
      case MemMode::BASE_INDEX: return "(base+index)";
      case MemMode::BASE_SHIFT: return "base-shifted";
    }
    support::panic("memModeName: bad mode %d", static_cast<int>(mode));
}

std::string
memValidate(const MemPiece &piece)
{
    using support::fitsSigned;
    using support::fitsUnsigned;

    switch (piece.mode) {
      case MemMode::LONG_IMM:
        if (piece.is_store)
            return "long-immediate must be a load";
        if (!fitsSigned(piece.imm, kLongImmBits))
            return "long-immediate constant out of range";
        break;
      case MemMode::ABSOLUTE:
        if (piece.imm < 0 ||
            !fitsUnsigned(static_cast<uint64_t>(piece.imm), kAbsoluteBits))
            return "absolute address out of range";
        break;
      case MemMode::DISP:
        if (!fitsSigned(piece.imm, kDispBits))
            return "displacement out of range";
        break;
      case MemMode::BASE_INDEX:
        break;
      case MemMode::BASE_SHIFT:
        if (piece.shift > support::mask(kShiftBits))
            return "shift amount out of range";
        break;
    }
    return "";
}

} // namespace mips::isa
