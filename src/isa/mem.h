/**
 * @file
 * The memory (load/store) instruction piece.
 *
 * The machine is *word addressed*: every effective address names a
 * 32-bit word, and there is no byte addressing (Section 4.1 of the
 * paper). The five load/store types are exactly the paper's list:
 * "long immediate, absolute, displacement(base), (base+index), and
 * base shifted by n" — the last accesses packed arrays of 2^n-bit
 * objects by shifting a sub-word element index down to a word index.
 */
#pragma once

#include <cstdint>
#include <string>

#include "isa/registers.h"

namespace mips::isa {

/** Addressing modes (3-bit field). */
enum class MemMode : uint8_t
{
    LONG_IMM = 0,   ///< rd = sign-extended 21-bit constant (load only)
    ABSOLUTE = 1,   ///< ea = unsigned 21-bit word address
    DISP = 2,       ///< ea = base + signed 17-bit word displacement
    BASE_INDEX = 3, ///< ea = base + index
    BASE_SHIFT = 4, ///< ea = base + (index >> shift); packed arrays
};

/** Field-width limits for the unpacked memory format. */
constexpr int kLongImmBits = 21;   ///< signed
constexpr int kAbsoluteBits = 21;  ///< unsigned
constexpr int kDispBits = 17;      ///< signed
constexpr int kPackedDispBits = 4; ///< unsigned, packed format only
constexpr int kShiftBits = 3;      ///< shift amount 0..7

/** One memory piece. */
struct MemPiece
{
    bool is_store = false; ///< LONG_IMM must be a load
    MemMode mode = MemMode::DISP;
    Reg rd = kZeroReg;     ///< data register (destination or source)
    Reg base = kZeroReg;   ///< base register (DISP/BASE_INDEX/BASE_SHIFT)
    Reg index = kZeroReg;  ///< index register (BASE_INDEX/BASE_SHIFT)
    int32_t imm = 0;       ///< displacement / absolute address / constant
    uint8_t shift = 0;     ///< right-shift of index (BASE_SHIFT)

    bool operator==(const MemPiece &) const = default;
};

namespace detail {
/** Out-of-line panic keeping the hot inline path free of logging. */
[[noreturn]] void badMemMode(int mode);
} // namespace detail

/**
 * Compute the effective *word* address given operand register values.
 * Must not be called for LONG_IMM (which makes no memory reference).
 * Inline — the pipeline simulator computes one per simulated memory
 * reference.
 */
inline uint32_t
memEffectiveAddress(const MemPiece &piece, uint32_t base_val,
                    uint32_t index_val)
{
    switch (piece.mode) {
      case MemMode::LONG_IMM:
        break; // no memory reference; fall through to the panic
      case MemMode::ABSOLUTE:
        return static_cast<uint32_t>(piece.imm);
      case MemMode::DISP:
        return base_val + static_cast<uint32_t>(piece.imm);
      case MemMode::BASE_INDEX:
        return base_val + index_val;
      case MemMode::BASE_SHIFT:
        return base_val + (index_val >> piece.shift);
    }
    detail::badMemMode(static_cast<int>(piece.mode));
}

/** True if the piece actually touches memory (everything but LONG_IMM). */
bool memReferencesMemory(const MemPiece &piece);

/** True if the piece reads its base register. */
bool memReadsBase(const MemPiece &piece);

/** True if the piece reads its index register. */
bool memReadsIndex(const MemPiece &piece);

/** Human-readable mode name. */
std::string memModeName(MemMode mode);

/** Validate field ranges; returns a description of the first problem. */
std::string memValidate(const MemPiece &piece);

} // namespace mips::isa
