#include "isa/registers.h"

#include "support/logging.h"

namespace mips::isa {

std::string
regName(Reg r)
{
    if (!isValidReg(r))
        support::panic("regName: bad register %d", r);
    return support::strprintf("r%d", r);
}

std::string
specialRegName(SpecialReg r)
{
    switch (r) {
      case SpecialReg::LO:       return "lo";
      case SpecialReg::SURPRISE: return "sr";
      case SpecialReg::SEG_BITS: return "segbits";
      case SpecialReg::SEG_PID:  return "segpid";
      case SpecialReg::RA0:      return "ra0";
      case SpecialReg::RA1:      return "ra1";
      case SpecialReg::RA2:      return "ra2";
      case SpecialReg::FAULT:    return "fault";
    }
    support::panic("specialRegName: bad register %d", static_cast<int>(r));
}

} // namespace mips::isa
