/**
 * @file
 * Register definitions for the MIPS-82 ISA rendition.
 *
 * The paper's MIPS uses 4-bit register fields (a 4-bit constant can take
 * the place of a register field), so this rendition has 16 general
 * registers. r0 reads as zero and ignores writes, which gives the
 * compare-with-zero and clear idioms for free.
 *
 * Besides the GPRs there is a small set of special processor registers:
 * the byte-selector LO used by the insert-byte instruction (the paper:
 * "for insert the byte pointer must be moved to a special register"),
 * the *surprise register* holding all miscellaneous processor state
 * (privilege, enables, exception cause), the segmentation registers of
 * the on-chip mapping unit, and the three exception return addresses.
 */
#pragma once

#include <cstdint>
#include <string>

namespace mips::isa {

/** A general-purpose register index, 0..15. r0 is hardwired to zero. */
using Reg = uint8_t;

/** Number of general registers (4-bit register fields). */
constexpr int kNumRegs = 16;

/** The hardwired-zero register. */
constexpr Reg kZeroReg = 0;

/** Conventional link register used by call pseudo-instructions. */
constexpr Reg kLinkReg = 15;

/** Conventional stack pointer used by the compiler's runtime model. */
constexpr Reg kStackReg = 14;

/** Conventional global/static-area pointer used by the compiler. */
constexpr Reg kGlobalReg = 13;

/** True for a representable register index. */
constexpr bool
isValidReg(int r)
{
    return r >= 0 && r < kNumRegs;
}

/** Special (non-GPR) processor registers. */
enum class SpecialReg : uint8_t
{
    /** Byte selector consumed by the insert-byte instruction. */
    LO = 0,
    /** The surprise register (processor status word). */
    SURPRISE = 1,
    /** On-chip segmentation: number of masked top bits (n). */
    SEG_BITS = 2,
    /** On-chip segmentation: process identification number. */
    SEG_PID = 3,
    /** Exception return addresses (a branch delay of two needs three). */
    RA0 = 4,
    RA1 = 5,
    RA2 = 6,
    /** Faulting system-virtual (or physical) address of the last
     *  page fault / address error, for the OS pager. */
    FAULT = 7,
};

/** Number of encodable special registers. */
constexpr int kNumSpecialRegs = 8;

/** "r4"-style name for a general register. */
std::string regName(Reg r);

/** Symbolic name for a special register. */
std::string specialRegName(SpecialReg r);

} // namespace mips::isa
