/**
 * @file
 * Special (system) instruction pieces.
 *
 * These carry the paper's Section 3 machinery: software traps with a
 * 12-bit code ("allowing 4096 different monitor calls"), reads/writes
 * of the surprise register and the on-chip segmentation registers
 * (the only privileged instructions), return-from-exception, and a
 * HALT used by the simulator harness.
 */
#pragma once

#include <cstdint>

#include "isa/registers.h"

namespace mips::isa {

/** Special operations (4-bit subcode). */
enum class SpecialOp : uint8_t
{
    NOP = 0,   ///< explicit no-op (inserted by the reorganizer)
    TRAP = 1,  ///< software trap with 12-bit code
    RFE = 2,   ///< return from exception: restore privilege + mapping
    MFS = 3,   ///< rd = special register (privileged for most)
    MTS = 4,   ///< special register = rs (privileged)
    HALT = 15, ///< stop simulation (testing harness convenience)
};

/** Width of the software-trap code field. */
constexpr int kTrapCodeBits = 12;

/** One special piece. */
struct SpecialPiece
{
    SpecialOp op = SpecialOp::NOP;
    uint16_t trap_code = 0;  ///< TRAP: 0..4095
    Reg reg = kZeroReg;      ///< MFS destination / MTS source
    SpecialReg sreg = SpecialReg::LO; ///< MFS/MTS target

    bool operator==(const SpecialPiece &) const = default;
};

/**
 * True if executing this special op requires supervisor privilege.
 * The paper: "The only instructions that require supervisor privilege
 * are those that read and write the surprise register and the on-chip
 * segmentation registers." LO (the byte selector) is user-accessible;
 * so is reading the saved return addresses.
 */
bool specialRequiresPrivilege(const SpecialPiece &piece);

} // namespace mips::isa
