/**
 * @file
 * Per-opcode *symbolic* transfer functions, living next to the
 * concrete ones in alu.h / mem.h so the two cannot drift apart.
 *
 * evalAluSymbolic() mirrors evalAlu() case for case, but instead of
 * computing uint32_t values it asks a caller-supplied expression
 * *builder* to construct terms. Two builders exist:
 *
 *  - the translation validator's hash-consing arena
 *    (src/verify/symexec.h), which turns these transfer functions
 *    into a symbolic evaluator, and
 *  - ConcreteBuilder below, whose Expr is plain uint32_t, which turns
 *    them back into the concrete semantics so tests can assert
 *    evalAluSymbolic(ConcreteBuilder) == evalAlu for every opcode and
 *    input — one verified definition shared by the simulators, the
 *    dependence DAG, the hazard checks, and the validator.
 *
 * Builder contract (Expr is any copyable value type):
 *   Expr konst(uint32_t v);
 *   Expr add(Expr a, Expr b);            //  a + b  (mod 2^32)
 *   Expr sub(Expr a, Expr b);            //  a - b
 *   Expr and_(Expr a, Expr b);
 *   Expr or_(Expr a, Expr b);
 *   Expr xor_(Expr a, Expr b);
 *   Expr not_(Expr a);
 *   Expr shl(Expr a, Expr amt);          //  a << (amt & 31)
 *   Expr shrl(Expr a, Expr amt);         //  a >> (amt & 31), logical
 *   Expr shra(Expr a, Expr amt);         //  a >> (amt & 31), arithmetic
 *   Expr extractByte(Expr sel, Expr w);  //  (w >> 8*(sel&3)) & 0xff
 *   Expr insertByte(Expr old, Expr src, Expr sel);
 *                                        //  byte (sel&3) of old := src&0xff
 *   Expr cmp(Cond c, Expr a, Expr b);    //  evalCond(c,a,b) ? 1 : 0
 *   Expr select(Expr c, Expr t, Expr f); //  c != 0 ? t : f
 */
#pragma once

#include <cstdint>

#include "isa/alu.h"
#include "isa/cond.h"
#include "isa/mem.h"

namespace mips::isa {

/** Symbolic counterpart of AluOutputs. */
template <typename B> struct SymAluOutputs
{
    typename B::Expr rd{}; ///< new rd term (meaningful iff writes_rd)
    typename B::Expr lo{}; ///< new LO term (meaningful iff writes_lo)
    bool writes_rd = false;
    bool writes_lo = false;
};

/**
 * Symbolic counterpart of evalAlu(): same inputs (as terms), same
 * per-opcode semantics, expressed through the builder. Overflow
 * trapping is deliberately not modeled — the translation validator
 * documents that incompleteness (DESIGN.md §8).
 */
template <typename B>
SymAluOutputs<B>
evalAluSymbolic(const AluPiece &piece, B &b, typename B::Expr rs,
                typename B::Expr src2, typename B::Expr rd_old,
                typename B::Expr lo)
{
    SymAluOutputs<B> out;
    out.rd = rd_old;
    out.lo = lo;
    out.writes_rd = aluWritesRd(piece.op);
    out.writes_lo = aluWritesLo(piece.op);

    switch (piece.op) {
      case AluOp::ADD:
        out.rd = b.add(rs, src2);
        break;
      case AluOp::SUB:
        out.rd = b.sub(rs, src2);
        break;
      case AluOp::RSUB:
        out.rd = b.sub(src2, rs);
        break;
      case AluOp::AND:
        out.rd = b.and_(rs, src2);
        break;
      case AluOp::OR:
        out.rd = b.or_(rs, src2);
        break;
      case AluOp::XOR:
        out.rd = b.xor_(rs, src2);
        break;
      case AluOp::NOT:
        out.rd = b.not_(rs);
        break;
      case AluOp::SLL:
        out.rd = b.shl(rs, src2);
        break;
      case AluOp::SRL:
        out.rd = b.shrl(rs, src2);
        break;
      case AluOp::SRA:
        out.rd = b.shra(rs, src2);
        break;
      case AluOp::XC:
        // Byte pointer in rs (low two bits), word in src2.
        out.rd = b.extractByte(rs, src2);
        break;
      case AluOp::IC:
        // Replace byte (LO & 3) of old rd with the low byte of rs.
        out.rd = b.insertByte(rd_old, rs, lo);
        break;
      case AluOp::MOVI8:
        out.rd = b.konst(piece.imm8);
        break;
      case AluOp::SET:
        out.rd = b.cmp(piece.cond, rs, src2);
        break;
      case AluOp::MTLO:
        out.lo = rs;
        break;
      case AluOp::MFLO:
        out.rd = lo;
        break;
      case AluOp::MSTEP:
        // One shift-and-add multiply step (see evalAlu).
        out.rd = b.select(b.and_(lo, b.konst(1)), b.add(rd_old, rs),
                          rd_old);
        out.lo = b.shrl(lo, b.konst(1));
        break;
      case AluOp::DSTEP: {
        // One restoring-division step (see evalAlu).
        typename B::Expr rem =
            b.or_(b.shl(rd_old, b.konst(1)), b.shrl(lo, b.konst(31)));
        typename B::Expr quo = b.shl(lo, b.konst(1));
        typename B::Expr take =
            b.and_(b.cmp(Cond::GEU, rem, rs),
                   b.cmp(Cond::NE, rs, b.konst(0)));
        out.rd = b.select(take, b.sub(rem, rs), rem);
        out.lo = b.select(take, b.or_(quo, b.konst(1)), quo);
        break;
      }
    }
    return out;
}

/**
 * Symbolic counterpart of memEffectiveAddress(). Must not be called
 * for LONG_IMM (which makes no memory reference).
 */
template <typename B>
typename B::Expr
memEffectiveAddressSymbolic(const MemPiece &piece, B &b,
                            typename B::Expr base,
                            typename B::Expr index)
{
    switch (piece.mode) {
      case MemMode::LONG_IMM:
        break; // no memory reference; fall through to the panic
      case MemMode::ABSOLUTE:
        return b.konst(static_cast<uint32_t>(piece.imm));
      case MemMode::DISP:
        return b.add(base, b.konst(static_cast<uint32_t>(piece.imm)));
      case MemMode::BASE_INDEX:
        return b.add(base, index);
      case MemMode::BASE_SHIFT:
        return b.add(base, b.shrl(index, b.konst(piece.shift)));
    }
    detail::badMemMode(static_cast<int>(piece.mode));
}

/**
 * The concrete builder: Expr is uint32_t and every operation is the
 * plain 32-bit arithmetic evalAlu() performs. Evaluating
 * evalAluSymbolic over this builder must reproduce evalAlu exactly;
 * the conformance test in tests/tv_test.cc asserts it for every
 * opcode over a broad input matrix.
 */
struct ConcreteBuilder
{
    using Expr = uint32_t;

    Expr konst(uint32_t v) { return v; }
    Expr add(Expr a, Expr b) { return a + b; }
    Expr sub(Expr a, Expr b) { return a - b; }
    Expr and_(Expr a, Expr b) { return a & b; }
    Expr or_(Expr a, Expr b) { return a | b; }
    Expr xor_(Expr a, Expr b) { return a ^ b; }
    Expr not_(Expr a) { return ~a; }
    Expr shl(Expr a, Expr amt) { return a << (amt & 31); }
    Expr shrl(Expr a, Expr amt) { return a >> (amt & 31); }
    Expr shra(Expr a, Expr amt)
    {
        return static_cast<uint32_t>(static_cast<int32_t>(a) >>
                                     (amt & 31));
    }
    Expr extractByte(Expr sel, Expr w)
    {
        return (w >> (8 * (sel & 3))) & 0xff;
    }
    Expr insertByte(Expr old, Expr src, Expr sel)
    {
        int shift = 8 * (sel & 3);
        uint32_t byte_mask = 0xffu << shift;
        return (old & ~byte_mask) | ((src & 0xff) << shift);
    }
    Expr cmp(Cond c, Expr a, Expr b)
    {
        return evalCond(c, a, b) ? 1 : 0;
    }
    Expr select(Expr c, Expr t, Expr f) { return c != 0 ? t : f; }
};

} // namespace mips::isa
