#include "obs/catalog.h"

#include <array>

#include "support/logging.h"

namespace mips::obs {

using support::panic;
using support::strprintf;

namespace {

/** Millisecond latency buckets shared by the latency histograms:
 *  sub-ms stage hits up to multi-second corpus chains. */
std::vector<double>
latencyMsBounds()
{
    return {0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000, 3000};
}

constexpr const char *kStageNames[kPipelineStageCount] = {
    "parse",
    "compile",
    "assemble",
    "reorganize",
    "hazard-verify",
    "translation-validate",
    "simulate",
    "cost",
    "range",
};

constexpr const char *kDiagCodeNames[kVerifyDiagCodes] = {
    "HZ001", "HZ002", "HZ003", "HZ004", "HZ005", "HZ006",
    "LT001", "LT002", "LT003", "VF001", "VF002",
    "TV001", "TV002", "TV003", "TV004", "TV005", "TV006", "TV090",
    "CC001", "CC002", "CC003", "CC004", "LT004",
    "MS001", "MS002", "MS003", "MS004", "MS005", "MS006",
    "VF003", "VF004", "HZ007", "MS007", "TV007", "TV008",
};

StageMetrics
makeStageMetrics(const char *stage)
{
    Registry &r = Registry::instance();
    StageMetrics m;
    m.lookups = &r.counter(
        strprintf("pipeline.%s.lookups", stage), "count",
        strprintf("artifact requests to the %s stage cache", stage));
    m.hits = &r.counter(
        strprintf("pipeline.%s.hits", stage), "count",
        strprintf("%s artifacts served from the session cache", stage));
    m.misses = &r.counter(
        strprintf("pipeline.%s.misses", stage), "count",
        strprintf("%s artifacts computed (including cached errors)",
                  stage));
    m.wait_blocks = &r.counter(
        strprintf("pipeline.%s.wait_blocks", stage), "count",
        strprintf("%s hits that blocked on an in-flight computation",
                  stage));
    m.miss_us = &r.counter(
        strprintf("pipeline.%s.miss_us", stage), "us",
        strprintf("wall time spent computing %s artifacts", stage));
    return m;
}

} // namespace

const char *
pipelineStageName(size_t stage)
{
    if (stage >= kPipelineStageCount)
        panic("pipelineStageName: stage %zu out of range", stage);
    return kStageNames[stage];
}

StageMetrics &
pipelineStageMetrics(size_t stage)
{
    if (stage >= kPipelineStageCount)
        panic("pipelineStageMetrics: stage %zu out of range", stage);
    static std::array<StageMetrics, kPipelineStageCount> metrics = [] {
        std::array<StageMetrics, kPipelineStageCount> m;
        for (size_t i = 0; i < kPipelineStageCount; ++i)
            m[i] = makeStageMetrics(kStageNames[i]);
        return m;
    }();
    return metrics[stage];
}

Histogram &
pipelineStageMissMs()
{
    static Histogram &h = Registry::instance().histogram(
        "pipeline.stage_miss_ms", "ms",
        "latency distribution of stage computations (cache misses)",
        latencyMsBounds());
    return h;
}

Counter &
pipelineCacheShardConflicts()
{
    static Counter &c = Registry::instance().counter(
        "pipeline.cache.shard_conflicts", "count",
        "cache lookups that contended on a shard lock");
    return c;
}

BatchMetrics &
batchMetrics()
{
    static BatchMetrics m = [] {
        Registry &r = Registry::instance();
        BatchMetrics b;
        b.runs = &r.counter("batch.runs", "count",
                            "BatchRunner::runAll invocations");
        b.items = &r.counter("batch.items", "count",
                             "items submitted to BatchRunner::runAll");
        b.claims = &r.counter(
            "batch.claims", "count",
            "item indices claimed by workers (== items completed)");
        b.chunk_claims = &r.counter(
            "batch.chunk_claims", "count",
            "index chunks taken off the shared claim cursor");
        b.steals = &r.counter(
            "batch.steals", "count",
            "successful steals of queued items from another worker");
        b.workers_spawned =
            &r.counter("batch.workers_spawned", "count",
                       "worker threads created by BatchRunner");
        b.worker_busy_us = &r.counter(
            "batch.worker_busy_us", "us",
            "total wall time workers spent inside item callbacks");
        b.queue_depth = &r.gauge(
            "batch.queue_depth", "items",
            "items of the most recent runAll not yet completed "
            "(0 when idle)");
        return b;
    }();
    return m;
}

SimMetrics &
simMetrics()
{
    static SimMetrics m = [] {
        Registry &r = Registry::instance();
        SimMetrics s;
        s.runs = &r.counter("sim.runs", "count",
                            "simulator runs published to the registry");
        s.instructions = &r.counter(
            "sim.instructions", "instructions",
            "instruction words issued (one per machine cycle)");
        s.free_data_cycles = &r.counter(
            "sim.free_data_cycles", "cycles",
            "cycles with the data memory port idle (Section 3.1)");
        s.alu_pieces = &r.counter("sim.alu_pieces", "count",
                                  "ALU pieces executed");
        s.loads = &r.counter("sim.loads", "count",
                             "memory-referencing loads executed");
        s.stores = &r.counter("sim.stores", "count", "stores executed");
        s.long_immediates =
            &r.counter("sim.long_immediates", "count",
                       "long-immediate loads executed");
        s.branches =
            &r.counter("sim.branches", "count", "branches executed");
        s.branches_taken =
            &r.counter("sim.branches_taken", "count", "branches taken");
        s.jumps = &r.counter("sim.jumps", "count", "jumps executed");
        s.nops = &r.counter("sim.nops", "count",
                            "instruction words with no pieces");
        s.packed_words =
            &r.counter("sim.packed_words", "count",
                       "words carrying both ALU and memory pieces");
        s.traps = &r.counter("sim.traps", "count", "traps taken");
        s.exceptions = &r.counter("sim.exceptions", "count",
                                  "exceptions taken (all causes)");
        s.decode_hits =
            &r.counter("sim.decode_cache.hits", "count",
                       "predecoded-instruction-cache hits (host side)");
        s.decode_misses =
            &r.counter("sim.decode_cache.misses", "count",
                       "predecoded-instruction-cache fills (host side)");
        s.decode_invalidations = &r.counter(
            "sim.decode_cache.invalidations", "count",
            "predecoded entries invalidated by memory writes");
        s.tlb_hits = &r.counter("sim.tlb.hits", "count",
                                "micro-TLB hits (host side)");
        s.tlb_misses = &r.counter(
            "sim.tlb.misses", "count",
            "micro-TLB misses (fold + page-map reference walks)");
        s.tlb_flushes = &r.counter(
            "sim.tlb.flushes", "count",
            "micro-TLB flushes (map mutation, privilege swaps, ...)");
        s.map_translations =
            &r.counter("sim.map.translations", "count",
                       "successful address translations");
        s.map_faults = &r.counter(
            "sim.map.faults", "count",
            "translation faults (page faults and address errors)");
        return s;
    }();
    return m;
}

const char *
verifyDiagCodeName(size_t code)
{
    if (code >= kVerifyDiagCodes)
        panic("verifyDiagCodeName: code %zu out of range", code);
    return kDiagCodeNames[code];
}

VerifyMetrics &
verifyMetrics()
{
    static VerifyMetrics m = [] {
        Registry &r = Registry::instance();
        VerifyMetrics v;
        v.units = &r.counter(
            "verify.units", "count",
            "verification runs (verifyUnit / verifyReorganization)");
        v.clean_units =
            &r.counter("verify.clean_units", "count",
                       "verification runs with no error findings");
        for (size_t i = 0; i < kVerifyDiagCodes; ++i)
            v.diag[i] = &r.counter(
                strprintf("verify.diag.%s", kDiagCodeNames[i]), "count",
                strprintf("diagnostics reported with code %s",
                          kDiagCodeNames[i]));
        return v;
    }();
    return m;
}

Histogram &
verifyUnitMs()
{
    static Histogram &h = Registry::instance().histogram(
        "verify.unit_ms", "ms",
        "per-unit wall time of one hazard verification (pipeline "
        "stage computation or single-file CLI run)",
        latencyMsBounds());
    return h;
}

CostMetrics &
costMetrics()
{
    static CostMetrics m = [] {
        Registry &r = Registry::instance();
        CostMetrics c;
        c.reports = &r.counter("verify.cost.reports", "count",
                               "static cycle-cost reports computed");
        c.functions =
            &r.counter("verify.cost.functions", "count",
                       "functions costed across all cost reports");
        c.blocks = &r.counter(
            "verify.cost.blocks", "count",
            "straight-line blocks costed across all cost reports");
        c.static_cycles = &r.counter(
            "verify.cost.static_cycles", "cycles",
            "summed static cycles for one sweep of each costed unit");
        c.interlock_nops = &r.counter(
            "verify.cost.interlock_nops", "count",
            "software-interlock nop words counted by the cost model");
        c.dispatches = &r.counter(
            "verify.cost.dispatches", "count",
            "table-dispatch (jtab) words counted by the cost model");
        c.dispatch_words = &r.counter(
            "verify.cost.dispatch_words", "count",
            "words inside table-dispatch blocks counted by the cost "
            "model");
        c.parity_checks = &r.counter(
            "verify.cost.parity_checks", "count",
            "blocks compared against simulator dynamic cycle counts");
        c.parity_violations = &r.counter(
            "verify.cost.parity_violations", "count",
            "blocks whose static cost disagreed with the simulator");
        return c;
    }();
    return m;
}

RangeMetrics &
rangeMetrics()
{
    static RangeMetrics m = [] {
        Registry &r = Registry::instance();
        RangeMetrics v;
        v.reports = &r.counter("verify.range.reports", "count",
                               "value-range analyses computed");
        v.functions = &r.counter(
            "verify.range.functions", "count",
            "functions analyzed across all range reports");
        v.checked_refs = &r.counter(
            "verify.range.checked_refs", "count",
            "memory references checked by the range analysis");
        v.must_findings = &r.counter(
            "verify.range.must_findings", "count",
            "MUST (error) memory-safety findings reported");
        v.may_findings = &r.counter(
            "verify.range.may_findings", "count",
            "MAY (warning) memory-safety findings reported");
        v.widenings = &r.counter(
            "verify.range.widenings", "count",
            "interval widenings applied to reach the fixpoint");
        return v;
    }();
    return m;
}

TvMetrics &
tvMetrics()
{
    static TvMetrics m = [] {
        Registry &r = Registry::instance();
        TvMetrics t;
        t.units = &r.counter("tv.units", "count",
                             "translation-validation runs");
        t.proved = &r.counter(
            "tv.proved", "count",
            "runs proving the reorganized unit equivalent");
        t.refuted =
            &r.counter("tv.refuted", "count",
                       "runs finding a divergence (TV001-TV006 error)");
        t.not_proven = &r.counter(
            "tv.not_proven", "count",
            "inconclusive runs (TV090 note, no divergence)");
        return t;
    }();
    return m;
}

FuzzMetrics &
fuzzMetrics()
{
    static FuzzMetrics m = [] {
        Registry &r = Registry::instance();
        FuzzMetrics f;
        f.programs = &r.counter(
            "fuzz.programs", "count",
            "generated programs run through the differential driver");
        f.pascal_programs =
            &r.counter("fuzz.pascal_programs", "count",
                       "Pascal programs generated");
        f.asm_programs = &r.counter("fuzz.asm_programs", "count",
                                    "assembly units generated");
        f.mismatches = &r.counter(
            "fuzz.mismatches", "count",
            "programs on which any oracle or config disagreed");
        f.minimize_steps = &r.counter(
            "fuzz.minimize_steps", "count",
            "candidate programs evaluated by the minimizer");
        f.repro_writes = &r.counter(
            "fuzz.repro_writes", "count",
            "minimized reproducer files written to disk");
        return f;
    }();
    return m;
}

FuzzChainMetrics &
fuzzChainMetrics()
{
    static FuzzChainMetrics m = [] {
        Registry &r = Registry::instance();
        FuzzChainMetrics f;
        f.chains = &r.counter(
            "pipeline.fuzz.chains", "count",
            "per-configuration oracle chains started by the "
            "differential fuzzer");
        f.oracle_failures = &r.counter(
            "pipeline.fuzz.oracle_failures", "count",
            "fuzz chains that failed an oracle layer");
        return f;
    }();
    return m;
}

void
registerBuiltinMetrics()
{
    for (size_t i = 0; i < kPipelineStageCount; ++i)
        pipelineStageMetrics(i);
    pipelineStageMissMs();
    pipelineCacheShardConflicts();
    batchMetrics();
    simMetrics();
    verifyMetrics();
    verifyUnitMs();
    costMetrics();
    rangeMetrics();
    tvMetrics();
    fuzzMetrics();
    fuzzChainMetrics();
}

} // namespace mips::obs
