/**
 * @file
 * The metric catalog: every built-in metric name in one place.
 *
 * Subsystems do not invent names inline — they fetch their handle
 * bundle from an accessor here (`pipelineStageMetrics`, `simMetrics`,
 * ...), which registers the metrics with Registry::instance() on
 * first use with canonical name / unit / help metadata. That gives
 * three guarantees:
 *
 *  - one name, one definition: a metric's unit and meaning cannot
 *    diverge between the subsystem that writes it and the docs;
 *  - `registerBuiltinMetrics()` can force-register the whole surface,
 *    so `mipsverify --list-metrics` (and the docs-drift gate,
 *    scripts/check_metrics_docs.sh) sees every metric even on runs
 *    that never touch some subsystem;
 *  - handles are plain pointers into the registry, fetched once into
 *    function-local statics — the hot-path cost of being observable
 *    is the relaxed atomic add, not a name lookup.
 *
 * The catalog deliberately depends only on obs/metrics.h: pipeline
 * stage names and verifier diagnostic codes are mirrored here as
 * strings (tests assert the mirrors match the owning enums). Every
 * name below must appear in docs/METRICS.md — the `check_metrics_docs`
 * ctest gate fails on any drift, in either direction.
 */
#pragma once

#include <cstddef>

#include "obs/metrics.h"

namespace mips::obs {

// --------------------------------------------------- pipeline session

/** Mirrors pipeline::kStageCount / stageName (asserted by obs_test). */
constexpr size_t kPipelineStageCount = 9;
const char *pipelineStageName(size_t stage);

/** Handles for `pipeline.<stage>.*`. Lookup/hit/miss obey
 *  lookups == hits + misses (checked by the scripts/check.sh stats
 *  gate); wait_blocks counts hits that blocked on an in-flight
 *  computation of the same key. */
struct StageMetrics
{
    Counter *lookups;
    Counter *hits;
    Counter *misses;
    Counter *wait_blocks;
    Counter *miss_us;
};
StageMetrics &pipelineStageMetrics(size_t stage);

/** `pipeline.stage_miss_ms`: latency distribution of all stage
 *  computations (cache misses), any stage. */
Histogram &pipelineStageMissMs();

/** `pipeline.cache.shard_conflicts`: lookups that found their cache
 *  shard's lock held by another thread. Near zero for distinct-key
 *  workloads under the 16-way sharded session cache. */
Counter &pipelineCacheShardConflicts();

// ------------------------------------------------------- batch runner

/** Handles for `batch.*` (the BatchRunner work-stealing pool). */
struct BatchMetrics
{
    Counter *runs;            ///< runAll invocations
    Counter *items;           ///< items submitted
    Counter *claims;          ///< items executed by workers
    Counter *chunk_claims;    ///< chunks taken off the shared cursor
    Counter *steals;          ///< successful steals from another worker
    Counter *workers_spawned; ///< worker threads created
    Counter *worker_busy_us;  ///< total µs workers spent in callbacks
    Gauge *queue_depth;       ///< items of the current run not yet done
};
BatchMetrics &batchMetrics();

// ---------------------------------------------------------- simulator

/** Handles for `sim.*`. Published post-run from the Cpu/MappingUnit/
 *  PhysMemory counters by sim::publishMetrics — the cycle loop itself
 *  is untouched (see DESIGN.md §11 for the overhead budget). */
struct SimMetrics
{
    Counter *runs;
    Counter *instructions; ///< instruction words issued (== cycles)
    Counter *free_data_cycles;
    Counter *alu_pieces;
    Counter *loads;
    Counter *stores;
    Counter *long_immediates;
    Counter *branches;
    Counter *branches_taken;
    Counter *jumps;
    Counter *nops;
    Counter *packed_words;
    Counter *traps;
    Counter *exceptions;
    Counter *decode_hits;
    Counter *decode_misses;
    Counter *decode_invalidations;
    Counter *tlb_hits;
    Counter *tlb_misses;
    Counter *tlb_flushes;
    Counter *map_translations;
    Counter *map_faults;
};
SimMetrics &simMetrics();

// ----------------------------------------------------------- verifier

/** Mirrors verify::kNumCodes / codeName (asserted by obs_test). */
constexpr size_t kVerifyDiagCodes = 35;
const char *verifyDiagCodeName(size_t code);

/** Handles for `verify.*`: per-code diagnostic counts plus unit
 *  totals, incremented by every verifyUnit/verifyReorganization run
 *  (CLI, pipeline stage, or test oracle alike). */
struct VerifyMetrics
{
    Counter *units;       ///< verification runs
    Counter *clean_units; ///< runs with zero error-severity findings
    Counter *diag[kVerifyDiagCodes];
};
VerifyMetrics &verifyMetrics();

/** `verify.unit_ms`: per-unit wall time of one hazard verification —
 *  observed by the pipeline's hazard-verify stage per computed unit
 *  and by single-file mipsverify runs (cache hits replay without
 *  re-observing). */
Histogram &verifyUnitMs();

/** Handles for `verify.cost.*` (the static cycle-cost model).
 *  Report counters are published once per computed cost report
 *  (CostModel pipeline stage or single-file CLI run); parity
 *  counters by every static-vs-dynamic comparison sweep. */
struct CostMetrics
{
    Counter *reports;           ///< cost reports computed
    Counter *functions;         ///< functions costed across reports
    Counter *blocks;            ///< basic blocks costed across reports
    Counter *static_cycles;     ///< summed single-sweep static cycles
    Counter *interlock_nops;    ///< software-interlock nops counted
    Counter *dispatches;        ///< table-dispatch (jtab) words costed
    Counter *dispatch_words;    ///< words inside dispatch blocks
    Counter *parity_checks;     ///< blocks compared against the simulator
    Counter *parity_violations; ///< blocks whose static cost disagreed
};
CostMetrics &costMetrics();

/** Handles for `verify.range.*` (the value-range abstract
 *  interpreter and memory-safety checker). Published once per
 *  computed range report (VALUE_RANGE pipeline stage or single-file
 *  `mipsverify --range` run); per-code MS counts ride the shared
 *  `verify.diag.<CODE>` counters. */
struct RangeMetrics
{
    Counter *reports;      ///< range analyses computed
    Counter *functions;    ///< functions analyzed across reports
    Counter *checked_refs; ///< memory references range-checked
    Counter *must_findings;///< MUST (error) memory-safety findings
    Counter *may_findings; ///< MAY (warning) memory-safety findings
    Counter *widenings;    ///< interval widenings applied
};
RangeMetrics &rangeMetrics();

/** Handles for `tv.*` (translation-validation proof outcomes;
 *  units == proved + refuted + not_proven). */
struct TvMetrics
{
    Counter *units;
    Counter *proved;     ///< clean report, no TV090
    Counter *refuted;    ///< at least one TV error
    Counter *not_proven; ///< inconclusive (TV090), no error
};
TvMetrics &tvMetrics();

// -------------------------------------------------------------- fuzz

/** Handles for `fuzz.*` (the differential program fuzzer, src/fuzz).
 *  Program counts come from the generator and driver; minimizer
 *  counters from shrinking runs (`--fuzz-minimize`). */
struct FuzzMetrics
{
    Counter *programs;        ///< programs run through the differ
    Counter *pascal_programs; ///< Pascal programs generated
    Counter *asm_programs;    ///< assembly units generated
    Counter *mismatches;      ///< differential oracle disagreements
    Counter *minimize_steps;  ///< minimizer candidate evaluations
    Counter *repro_writes;    ///< reproducer files written
};
FuzzMetrics &fuzzMetrics();

/** Handles for `pipeline.fuzz.*` (the per-configuration oracle
 *  chains the differential driver runs through a Session). */
struct FuzzChainMetrics
{
    Counter *chains;          ///< (program, config) chains started
    Counter *oracle_failures; ///< chains failing any oracle layer
};
FuzzChainMetrics &fuzzChainMetrics();

/**
 * Force-register every metric above (idempotent). Call before
 * snapshotting in contexts that must see the full surface —
 * `mipsverify --stats` / `--list-metrics`, the bench reports, and
 * the docs-drift gate.
 */
void registerBuiltinMetrics();

} // namespace mips::obs
