#include "obs/metrics.h"

#include <algorithm>

#include "support/logging.h"
#include "support/table.h"

namespace mips::obs {

using support::panic;
using support::strprintf;

unsigned
threadId()
{
    static std::atomic<unsigned> next{0};
    thread_local unsigned id =
        next.fetch_add(1, std::memory_order_relaxed);
    return id;
}

const char *
metricKindName(MetricKind kind)
{
    switch (kind) {
    case MetricKind::COUNTER: return "counter";
    case MetricKind::GAUGE: return "gauge";
    case MetricKind::HISTOGRAM: return "histogram";
    }
    return "?";
}

// --------------------------------------------------------- Histogram

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds))
{
    if (bounds_.empty())
        panic("Histogram: empty bucket bounds");
    for (size_t i = 1; i < bounds_.size(); ++i)
        if (bounds_[i] <= bounds_[i - 1])
            panic("Histogram: bounds not strictly increasing at %zu",
                  i);
    for (Shard &s : shards_)
        s.counts = std::vector<std::atomic<uint64_t>>(bounds_.size() + 1);
}

void
Histogram::observe(double v)
{
    size_t idx = std::upper_bound(bounds_.begin(), bounds_.end(), v) -
                 bounds_.begin();
    // upper_bound finds the first bound > v; bucket semantics are
    // v <= bound, so step back when v sits exactly on a bound.
    if (idx > 0 && v == bounds_[idx - 1])
        --idx;
    Shard &s = shards_[threadId() & (kShards - 1)];
    s.counts[idx].fetch_add(1, std::memory_order_relaxed);
    s.sum.fetch_add(v, std::memory_order_relaxed);
}

std::vector<uint64_t>
Histogram::bucketCounts() const
{
    std::vector<uint64_t> merged(bounds_.size() + 1, 0);
    for (const Shard &s : shards_)
        for (size_t i = 0; i < merged.size(); ++i)
            merged[i] += s.counts[i].load(std::memory_order_relaxed);
    return merged;
}

uint64_t
Histogram::count() const
{
    uint64_t total = 0;
    for (uint64_t c : bucketCounts())
        total += c;
    return total;
}

double
Histogram::sum() const
{
    double total = 0.0;
    for (const Shard &s : shards_)
        total += s.sum.load(std::memory_order_relaxed);
    return total;
}

void
Histogram::reset()
{
    for (Shard &s : shards_) {
        for (auto &c : s.counts)
            c.store(0, std::memory_order_relaxed);
        s.sum.store(0.0, std::memory_order_relaxed);
    }
}

// ---------------------------------------------------------- Snapshot

const Sample *
Snapshot::find(std::string_view name) const
{
    for (const Sample &s : samples)
        if (s.name == name)
            return &s;
    return nullptr;
}

uint64_t
Snapshot::counter(std::string_view name) const
{
    const Sample *s = find(name);
    return s != nullptr && s->kind == MetricKind::COUNTER
               ? s->counter_value
               : 0;
}

namespace {

/** Trim a %g rendering so bounds print as "10" / "0.5", not "1e+01". */
std::string
numStr(double v)
{
    return strprintf("%g", v);
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

} // namespace

std::string
Snapshot::jsonMetricsArray(int indent) const
{
    std::string pad(static_cast<size_t>(indent), ' ');
    std::string out = "[\n";
    for (size_t i = 0; i < samples.size(); ++i) {
        const Sample &s = samples[i];
        out += pad + "  {\"name\": \"" + jsonEscape(s.name) +
               "\", \"kind\": \"" + metricKindName(s.kind) +
               "\", \"unit\": \"" + jsonEscape(s.unit) + "\", ";
        switch (s.kind) {
        case MetricKind::COUNTER:
            out += strprintf(
                "\"value\": %llu",
                static_cast<unsigned long long>(s.counter_value));
            break;
        case MetricKind::GAUGE:
            out += strprintf("\"value\": %lld",
                             static_cast<long long>(s.gauge_value));
            break;
        case MetricKind::HISTOGRAM: {
            out += strprintf(
                "\"count\": %llu, \"sum\": %.6f, \"buckets\": [",
                static_cast<unsigned long long>(s.hist_count),
                s.hist_sum);
            for (size_t b = 0; b < s.bucket_counts.size(); ++b) {
                if (b > 0)
                    out += ", ";
                std::string le =
                    b < s.bounds.size()
                        ? numStr(s.bounds[b])
                        : std::string("\"+inf\"");
                out += strprintf(
                    "{\"le\": %s, \"count\": %llu}", le.c_str(),
                    static_cast<unsigned long long>(s.bucket_counts[b]));
            }
            out += "]";
            break;
        }
        }
        out += "}";
        out += i + 1 < samples.size() ? ",\n" : "\n";
    }
    out += pad + "]";
    return out;
}

std::string
Snapshot::json() const
{
    return "{\n  \"schema\": 1,\n  \"metrics\": " +
           jsonMetricsArray(2) + "\n}\n";
}

std::string
Snapshot::table() const
{
    support::TextTable t("Metrics registry snapshot");
    t.setHeader({"Metric", "Kind", "Value", "Unit"});
    for (const Sample &s : samples) {
        std::string value;
        switch (s.kind) {
        case MetricKind::COUNTER:
            value = strprintf(
                "%llu", static_cast<unsigned long long>(s.counter_value));
            break;
        case MetricKind::GAUGE:
            value = strprintf("%lld",
                              static_cast<long long>(s.gauge_value));
            break;
        case MetricKind::HISTOGRAM:
            value = strprintf(
                "n=%llu sum=%s",
                static_cast<unsigned long long>(s.hist_count),
                numStr(s.hist_sum).c_str());
            break;
        }
        t.addRow({s.name, metricKindName(s.kind), value, s.unit});
    }
    return t.render();
}

// ---------------------------------------------------------- Registry

Registry &
Registry::instance()
{
    static Registry registry;
    return registry;
}

Counter &
Registry::counter(std::string_view name, std::string_view unit,
                  std::string_view help)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        if (it->second.kind != MetricKind::COUNTER)
            panic("metric %s already registered as %s",
                  std::string(name).c_str(),
                  metricKindName(it->second.kind));
        return *it->second.counter;
    }
    Counter &c = counters_.emplace_back();
    Entry e;
    e.kind = MetricKind::COUNTER;
    e.unit = std::string(unit);
    e.help = std::string(help);
    e.counter = &c;
    entries_.emplace(std::string(name), std::move(e));
    return c;
}

Gauge &
Registry::gauge(std::string_view name, std::string_view unit,
                std::string_view help)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        if (it->second.kind != MetricKind::GAUGE)
            panic("metric %s already registered as %s",
                  std::string(name).c_str(),
                  metricKindName(it->second.kind));
        return *it->second.gauge;
    }
    Gauge &g = gauges_.emplace_back();
    Entry e;
    e.kind = MetricKind::GAUGE;
    e.unit = std::string(unit);
    e.help = std::string(help);
    e.gauge = &g;
    entries_.emplace(std::string(name), std::move(e));
    return g;
}

Histogram &
Registry::histogram(std::string_view name, std::string_view unit,
                    std::string_view help, std::vector<double> bounds)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(name);
    if (it != entries_.end()) {
        if (it->second.kind != MetricKind::HISTOGRAM)
            panic("metric %s already registered as %s",
                  std::string(name).c_str(),
                  metricKindName(it->second.kind));
        if (it->second.histogram->bounds() != bounds)
            panic("metric %s re-registered with different buckets",
                  std::string(name).c_str());
        return *it->second.histogram;
    }
    Histogram &h = histograms_.emplace_back(std::move(bounds));
    Entry e;
    e.kind = MetricKind::HISTOGRAM;
    e.unit = std::string(unit);
    e.help = std::string(help);
    e.histogram = &h;
    entries_.emplace(std::string(name), std::move(e));
    return h;
}

std::vector<std::string>
Registry::names() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<std::string> out;
    out.reserve(entries_.size());
    for (const auto &[name, entry] : entries_)
        out.push_back(name);
    return out;
}

Snapshot
Registry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mu_);
    Snapshot snap;
    snap.samples.reserve(entries_.size());
    for (const auto &[name, entry] : entries_) {
        Sample s;
        s.name = name;
        s.kind = entry.kind;
        s.unit = entry.unit;
        s.help = entry.help;
        switch (entry.kind) {
        case MetricKind::COUNTER:
            s.counter_value = entry.counter->value();
            break;
        case MetricKind::GAUGE:
            s.gauge_value = entry.gauge->value();
            break;
        case MetricKind::HISTOGRAM:
            s.bounds = entry.histogram->bounds();
            s.bucket_counts = entry.histogram->bucketCounts();
            s.hist_sum = entry.histogram->sum();
            for (uint64_t c : s.bucket_counts)
                s.hist_count += c;
            break;
        }
        snap.samples.push_back(std::move(s));
    }
    return snap;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (Counter &c : counters_)
        c.reset();
    for (Gauge &g : gauges_)
        g.reset();
    for (Histogram &h : histograms_)
        h.reset();
}

} // namespace mips::obs
