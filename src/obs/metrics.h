/**
 * @file
 * Lock-cheap metrics registry: named monotonic counters, gauges, and
 * fixed-bucket histograms for the whole toolchain.
 *
 * The paper's method is *measuring* where cycles and bytes go (the
 * free-memory-cycle profiling of Section 3, the static size accounting
 * of Table 11); this module is the host-side equivalent for the
 * toolchain itself. Every subsystem (pipeline session, batch runner,
 * simulator, verifier) reports through one process-wide `Registry`,
 * and every consumer (mipsverify --stats, the bench JSON reports,
 * examples/observability) reads one `Snapshot` of it.
 *
 * Concurrency model: hot-path updates never take a lock. A `Counter`
 * (and each `Histogram` bucket row) is striped across `kShards`
 * cache-line-sized cells; a thread updates the cell picked by its
 * small sequential thread id with a relaxed atomic add, so unrelated
 * threads touch unrelated cache lines and the common increment is one
 * uncontended `fetch_add`. Readers merge the shards on demand —
 * `value()` and `Registry::snapshot()` sum over all cells, which makes
 * reads linear in `kShards` but leaves writers entirely undisturbed.
 * Relaxed ordering is deliberate: metrics are monotonic event counts,
 * not synchronization; a snapshot taken while writers run is a
 * consistent *per-metric* view (each cell read once), not a global
 * atomic cut.
 *
 * Registration is idempotent and keyed by name: the first
 * `counter(name, ...)` call defines the metric, later calls return
 * the same handle (a kind conflict panics — two subsystems may share
 * a metric, never redefine it). Handles are stable for the process
 * lifetime; the intended pattern is a function-local static:
 *
 *   static obs::Counter &hits =
 *       obs::Registry::instance().counter("x.hits", "count", "...");
 *   hits.add();
 *
 * The canonical name list lives in obs/catalog.h; docs/METRICS.md
 * documents every name and scripts/check_metrics_docs.sh keeps the
 * two from drifting.
 */
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mips::obs {

/** Shard count for striped metrics (power of two). 16 covers the
 *  repo's widest fan-out (mipsverify --jobs 8 plus the main thread)
 *  without making merged reads expensive. */
constexpr size_t kShards = 16;

/** Small dense id of the calling thread (0, 1, 2, ... in first-use
 *  order, process-wide). Shared with the tracer, which uses it as the
 *  Chrome-trace tid. */
unsigned threadId();

/** What a metric measures. */
enum class MetricKind : uint8_t
{
    COUNTER,   ///< monotonic event count
    GAUGE,     ///< instantaneous level, can go down
    HISTOGRAM, ///< distribution over fixed buckets
};

/** Kind name for rendering, e.g. "counter". */
const char *metricKindName(MetricKind kind);

/** Monotonic counter, striped per thread. */
class Counter
{
  public:
    Counter() = default;
    Counter(const Counter &) = delete;
    Counter &operator=(const Counter &) = delete;

    /** Add `n` (relaxed; never takes a lock). */
    void
    add(uint64_t n = 1)
    {
        cells_[threadId() & (kShards - 1)].v.fetch_add(
            n, std::memory_order_relaxed);
    }

    /** Merged value over all shards. */
    uint64_t
    value() const
    {
        uint64_t total = 0;
        for (const Cell &c : cells_)
            total += c.v.load(std::memory_order_relaxed);
        return total;
    }

    /** Zero every shard (tests and Registry::reset only). */
    void
    reset()
    {
        for (Cell &c : cells_)
            c.v.store(0, std::memory_order_relaxed);
    }

  private:
    struct alignas(64) Cell
    {
        std::atomic<uint64_t> v{0};
    };
    std::array<Cell, kShards> cells_;
};

/** Instantaneous level. A single atomic: `set` does not merge across
 *  threads, so sharding would change its meaning. */
class Gauge
{
  public:
    Gauge() = default;
    Gauge(const Gauge &) = delete;
    Gauge &operator=(const Gauge &) = delete;

    void set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
    void add(int64_t d) { v_.fetch_add(d, std::memory_order_relaxed); }
    int64_t value() const { return v_.load(std::memory_order_relaxed); }
    void reset() { set(0); }

  private:
    std::atomic<int64_t> v_{0};
};

/**
 * Fixed-bucket histogram. Bucket `i` counts observations with
 * `v <= bounds[i]` (and greater than the previous bound); one overflow
 * bucket past the last bound catches the rest. Counts are striped like
 * Counter cells; the observed-value sum is a per-shard atomic double.
 */
class Histogram
{
  public:
    /** `bounds` must be non-empty and strictly increasing (panics
     *  otherwise: bucket layout is part of the documented surface). */
    explicit Histogram(std::vector<double> bounds);
    Histogram(const Histogram &) = delete;
    Histogram &operator=(const Histogram &) = delete;

    /** Record one observation (relaxed; never takes a lock). */
    void observe(double v);

    const std::vector<double> &bounds() const { return bounds_; }

    /** Merged per-bucket counts, size bounds().size() + 1 (the last
     *  entry is the overflow bucket). */
    std::vector<uint64_t> bucketCounts() const;

    /** Merged observation count / value sum over all shards. */
    uint64_t count() const;
    double sum() const;

    /** Zero every shard (tests and Registry::reset only). */
    void reset();

  private:
    struct alignas(64) Shard
    {
        std::vector<std::atomic<uint64_t>> counts; ///< bounds + 1
        std::atomic<double> sum{0.0};
    };

    std::vector<double> bounds_;
    std::array<Shard, kShards> shards_;
};

/** One merged metric value inside a Snapshot. */
struct Sample
{
    std::string name;
    MetricKind kind = MetricKind::COUNTER;
    std::string unit;
    std::string help;
    uint64_t counter_value = 0; ///< COUNTER
    int64_t gauge_value = 0;    ///< GAUGE
    // HISTOGRAM:
    std::vector<double> bounds;
    std::vector<uint64_t> bucket_counts; ///< bounds + 1 (overflow last)
    uint64_t hist_count = 0;
    double hist_sum = 0.0;
};

/** A point-in-time read of every registered metric, sorted by name. */
struct Snapshot
{
    std::vector<Sample> samples;

    /** Sample by name, or nullptr. */
    const Sample *find(std::string_view name) const;

    /** Counter value by name (0 if absent or not a counter) — the
     *  convenience most callers want. */
    uint64_t counter(std::string_view name) const;

    /**
     * Render as a JSON array of metric objects:
     *   [{"name": ..., "kind": "counter", "unit": ..., "value": N},
     *    {"kind": "gauge", "value": N},
     *    {"kind": "histogram", "count": N, "sum": S,
     *     "buckets": [{"le": B, "count": N}, ...,
     *                 {"le": "+inf", "count": N}]}]
     * `indent` spaces prefix each line so reports can embed it.
     */
    std::string jsonMetricsArray(int indent = 2) const;

    /** Standalone JSON document: {"schema": 1, "metrics": [...]}. */
    std::string json() const;

    /** Render as a support::TextTable (mipsverify --stats). */
    std::string table() const;
};

/**
 * The process-wide name → metric map. All registration methods are
 * idempotent per name and thread-safe; returned references stay valid
 * for the process lifetime.
 */
class Registry
{
  public:
    static Registry &instance();

    Registry() = default;
    Registry(const Registry &) = delete;
    Registry &operator=(const Registry &) = delete;

    /** Define-or-fetch. Panics if `name` exists with another kind or,
     *  for histograms, with different bucket bounds. */
    Counter &counter(std::string_view name, std::string_view unit,
                     std::string_view help);
    Gauge &gauge(std::string_view name, std::string_view unit,
                 std::string_view help);
    Histogram &histogram(std::string_view name, std::string_view unit,
                         std::string_view help,
                         std::vector<double> bounds);

    /** Every registered name, sorted. */
    std::vector<std::string> names() const;

    /** Merged point-in-time read of everything, sorted by name. */
    Snapshot snapshot() const;

    /** Zero every value; definitions stay registered (tests). */
    void reset();

  private:
    struct Entry
    {
        MetricKind kind;
        std::string unit;
        std::string help;
        Counter *counter = nullptr;
        Gauge *gauge = nullptr;
        Histogram *histogram = nullptr;
    };

    // std::map: ordered iteration makes snapshots deterministic by
    // construction. deques give the metric objects stable addresses.
    mutable std::mutex mu_;
    std::map<std::string, Entry, std::less<>> entries_;
    std::deque<Counter> counters_;
    std::deque<Gauge> gauges_;
    std::deque<Histogram> histograms_;
};

} // namespace mips::obs
