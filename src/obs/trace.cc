#include "obs/trace.h"

#include <cstdio>

#include "obs/metrics.h"
#include "support/logging.h"

namespace mips::obs {

using support::strprintf;

namespace {

std::atomic<uint64_t> next_span_id{1};

/** Innermost live span on this thread (0 = none). */
thread_local uint64_t current_span = 0;

} // namespace

Tracer &
Tracer::instance()
{
    static Tracer tracer;
    return tracer;
}

void
Tracer::enable(bool on)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (on) {
        epoch_ = std::chrono::steady_clock::now();
        ring_.clear();
        next_ = 0;
        dropped_ = 0;
    }
    enabled_.store(on, std::memory_order_relaxed);
}

void
Tracer::setCapacity(size_t spans)
{
    std::lock_guard<std::mutex> lock(mu_);
    capacity_ = spans == 0 ? 1 : spans;
    ring_.clear();
    next_ = 0;
    dropped_ = 0;
}

void
Tracer::record(SpanRecord record)
{
    std::lock_guard<std::mutex> lock(mu_);
    if (ring_.size() < capacity_) {
        ring_.push_back(std::move(record));
        return;
    }
    // Full: overwrite the oldest slot. `next_` chases the logical
    // head once the vector stops growing.
    ring_[next_] = std::move(record);
    next_ = (next_ + 1) % capacity_;
    ++dropped_;
}

uint64_t
Tracer::dropped() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return dropped_;
}

std::vector<SpanRecord>
Tracer::spans() const
{
    std::lock_guard<std::mutex> lock(mu_);
    std::vector<SpanRecord> out;
    out.reserve(ring_.size());
    // Oldest first: [next_, end) then [0, next_).
    for (size_t i = next_; i < ring_.size(); ++i)
        out.push_back(ring_[i]);
    for (size_t i = 0; i < next_; ++i)
        out.push_back(ring_[i]);
    return out;
}

int64_t
Tracer::nowUs() const
{
    if (!enabled())
        return 0;
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
}

std::string
Tracer::chromeTrace() const
{
    std::vector<SpanRecord> all = spans();
    std::string out = "{\"traceEvents\": [\n";
    for (size_t i = 0; i < all.size(); ++i) {
        const SpanRecord &s = all[i];
        out += strprintf(
            "  {\"name\": \"%s\", \"cat\": \"mips82\", \"ph\": \"X\", "
            "\"ts\": %lld, \"dur\": %lld, \"pid\": 1, \"tid\": %u, "
            "\"args\": {\"id\": %llu, \"parent\": %llu%s%s%s}}%s\n",
            s.name.c_str(), static_cast<long long>(s.start_us),
            static_cast<long long>(s.dur_us), s.tid,
            static_cast<unsigned long long>(s.id),
            static_cast<unsigned long long>(s.parent),
            s.detail.empty() ? "" : ", \"detail\": \"",
            s.detail.c_str(), s.detail.empty() ? "" : "\"",
            i + 1 < all.size() ? "," : "");
    }
    out += "], \"displayTimeUnit\": \"ms\"}\n";
    return out;
}

bool
Tracer::writeChromeTrace(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (f == nullptr)
        return false;
    std::string doc = chromeTrace();
    size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
    return std::fclose(f) == 0 && written == doc.size();
}

Span::Span(std::string_view name, std::string_view detail)
{
    Tracer &tracer = Tracer::instance();
    if (!tracer.enabled())
        return;
    id_ = next_span_id.fetch_add(1, std::memory_order_relaxed);
    parent_ = current_span;
    current_span = id_;
    name_ = std::string(name);
    detail_ = std::string(detail);
    start_us_ = tracer.nowUs();
}

Span::~Span()
{
    if (id_ == 0)
        return;
    current_span = parent_;
    Tracer &tracer = Tracer::instance();
    // The tracer may have been disabled mid-span; record anyway — the
    // enable() that started this window cleared the ring, so a late
    // record is still from the current window.
    SpanRecord record;
    record.id = id_;
    record.parent = parent_;
    record.tid = threadId();
    record.start_us = start_us_;
    record.dur_us = tracer.nowUs() - start_us_;
    if (record.dur_us < 0)
        record.dur_us = 0;
    record.name = std::move(name_);
    record.detail = std::move(detail_);
    tracer.record(std::move(record));
}

} // namespace mips::obs
