/**
 * @file
 * Span-based tracing: RAII `Span`s with parent linkage, steady-clock
 * timing, a bounded ring buffer, and Chrome-trace JSON export.
 *
 * A `Span` marks one timed region (a pipeline stage computation, one
 * corpus chain, one simulator run). Construction reads the steady
 * clock and pushes the span onto a thread-local stack so nested spans
 * record their parent; destruction computes the duration and appends
 * one `SpanRecord` to the process-wide `Tracer` ring buffer. The
 * buffer is bounded: when full, the oldest record is overwritten and
 * `dropped()` counts the loss — tracing a long run degrades to "the
 * most recent N spans", never to unbounded memory.
 *
 * Tracing is off by default. A disabled tracer makes Span construction
 * one relaxed atomic load and nothing else, so instrumentation can sit
 * permanently on the pipeline paths (`mipsverify --trace-out FILE`
 * switches it on). The ring is mutex-protected on record — spans mark
 * millisecond-scale stage work, not per-cycle events, so a lock per
 * span end is well under the noise floor (see DESIGN.md §11 for the
 * measured overhead).
 *
 * Export is the Chrome trace-event format (chrome://tracing,
 * https://ui.perfetto.dev): one complete ("ph":"X") event per span,
 * with the obs::threadId() as tid and the parent span id in args, so
 * the session's cached-stage fan-out is directly visible on a
 * timeline.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mips::obs {

/** One finished span. */
struct SpanRecord
{
    uint64_t id = 0;       ///< unique per process, 1-based
    uint64_t parent = 0;   ///< enclosing span on the same thread, 0 = root
    unsigned tid = 0;      ///< obs::threadId() of the recording thread
    int64_t start_us = 0;  ///< steady-clock µs since Tracer enable
    int64_t dur_us = 0;
    std::string name;      ///< e.g. "compile"
    std::string detail;    ///< e.g. the unit name; may be empty
};

/** Process-wide span sink. */
class Tracer
{
  public:
    static Tracer &instance();

    Tracer() = default;
    Tracer(const Tracer &) = delete;
    Tracer &operator=(const Tracer &) = delete;

    /** Turn tracing on (re-arms the epoch) or off. Enabling clears
     *  previously collected spans. */
    void enable(bool on);

    bool
    enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    /** Resize the ring (default 65536 spans). Clears collected spans. */
    void setCapacity(size_t spans);

    /** Append one record (called by ~Span). */
    void record(SpanRecord record);

    /** Spans overwritten because the ring was full. */
    uint64_t dropped() const;

    /** Collected spans, oldest first. */
    std::vector<SpanRecord> spans() const;

    /** Render every collected span as a Chrome trace-event document:
     *  {"traceEvents": [...], "displayTimeUnit": "ms"}. */
    std::string chromeTrace() const;

    /** chromeTrace() to a file; false (with errno intact) on failure. */
    bool writeChromeTrace(const std::string &path) const;

    /** µs since the enable() epoch (0 when never enabled). */
    int64_t nowUs() const;

  private:
    mutable std::mutex mu_;
    std::atomic<bool> enabled_{false};
    std::chrono::steady_clock::time_point epoch_{};
    std::vector<SpanRecord> ring_;
    size_t capacity_ = 65536;
    size_t next_ = 0;      ///< ring write index once full
    uint64_t dropped_ = 0;
};

/**
 * RAII timed region. Inert (no clock read, no allocation) when the
 * tracer is disabled at construction time.
 */
class Span
{
  public:
    explicit Span(std::string_view name, std::string_view detail = "");
    ~Span();

    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

    /** This span's id (0 when inert). */
    uint64_t id() const { return id_; }

  private:
    uint64_t id_ = 0;
    uint64_t parent_ = 0;
    int64_t start_us_ = 0;
    std::string name_;
    std::string detail_;
};

} // namespace mips::obs
