/**
 * @file
 * BatchRunner: a work-stealing fixed-thread-pool fan-out.
 *
 * `runAll` spawns min(jobs, items) threads. Workers claim *chunks* of
 * item indices from one shared atomic cursor (amortizing the
 * claim/wake overhead that dominates millisecond-scale items), queue
 * the remainder of each chunk in a per-worker deque, and — once the
 * cursor is exhausted — steal half of a victim's queued items from
 * the back. Each deque is guarded by its own cache-line-aligned
 * mutex; deque operations happen once per chunk or steal, not per
 * item, so the lock is all but uncontended. The shared mutable state
 * stays auditable: the claim cursor, the per-worker deques, per-slot
 * results (each written by exactly one thread), and whatever the
 * callback itself shares — for pipeline work that is a `Session`,
 * whose sharded cache is internally synchronized.
 *
 * Determinism: results are collected by input index, so the returned
 * vector is element-wise identical to a serial run regardless of
 * scheduling or stealing. Exceptions are captured per item and the
 * lowest-index one is rethrown after all threads join.
 *
 * `jobs == 0` means auto: one worker per hardware thread
 * (`defaultJobs()`).
 *
 * Observability: every run reports through the `batch.*` metrics
 * (items, claims, chunk claims, steals, workers spawned, worker busy
 * time, and a live queue-depth gauge — see docs/METRICS.md). The
 * queue-depth gauge counts items not yet *completed* (decremented
 * when an item finishes, not when it is claimed) and is asserted to
 * return to 0 after every run. Workers accumulate busy time and
 * steal/claim counts in locals and publish once at exit, so the
 * per-item cost of being observable is one relaxed counter add and
 * one gauge decrement.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/catalog.h"
#include "support/logging.h"

namespace mips::pipeline {

class BatchRunner
{
  public:
    /** `jobs == 0` means auto (`defaultJobs()`). */
    explicit BatchRunner(unsigned jobs)
        : jobs_(jobs == 0 ? defaultJobs() : jobs)
    {
    }

    /** One worker per hardware thread; 1 when the hardware does not
     *  say (`std::thread::hardware_concurrency() == 0`). */
    static unsigned
    defaultJobs()
    {
        unsigned hw = std::thread::hardware_concurrency();
        return hw == 0 ? 1 : hw;
    }

    unsigned jobs() const { return jobs_; }

    /**
     * Apply `fn(item, index)` to every item; returns the results in
     * input order. The result type must be default-constructible and
     * movable. `fn` must be safe to call concurrently when jobs > 1.
     */
    template <typename In, typename Fn>
    auto
    runAll(const std::vector<In> &items, Fn &&fn) const
        -> std::vector<
            std::decay_t<std::invoke_result_t<Fn &, const In &, size_t>>>
    {
        using Out =
            std::decay_t<std::invoke_result_t<Fn &, const In &, size_t>>;
        using BusyClock = std::chrono::steady_clock;
        std::vector<Out> results(items.size());
        obs::BatchMetrics &bm = obs::batchMetrics();
        bm.runs->add();
        bm.items->add(items.size());
        if (items.empty())
            return results;
        bm.queue_depth->set(static_cast<int64_t>(items.size()));

        size_t threads = std::min<size_t>(jobs_, items.size());
        if (threads <= 1) {
            BusyClock::time_point start = BusyClock::now();
            for (size_t i = 0; i < items.size(); ++i) {
                bm.claims->add();
                results[i] = fn(items[i], i);
                bm.queue_depth->add(-1);
            }
            bm.worker_busy_us->add(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    BusyClock::now() - start)
                    .count()));
            if (bm.queue_depth->value() != 0)
                support::panic("BatchRunner: queue depth %lld after a "
                               "serial run, expected 0",
                               static_cast<long long>(
                                   bm.queue_depth->value()));
            return results;
        }

        // Chunk size: enough to amortize cursor traffic (items are
        // claimed ~4 chunks per worker), small enough that the tail
        // imbalance work stealing has to fix stays bounded.
        size_t chunk = std::min<size_t>(
            std::max<size_t>(items.size() / (threads * 4), 1), 64);

        struct alignas(64) WorkerQueue
        {
            std::mutex mu;
            std::deque<size_t> q;
        };
        std::vector<WorkerQueue> queues(threads);
        std::atomic<size_t> cursor{0};
        std::vector<std::exception_ptr> errors(items.size());

        auto worker = [&](size_t self) {
            uint64_t busy_us = 0;
            uint64_t item_claims = 0;
            uint64_t chunk_claims = 0;
            uint64_t steals = 0;
            WorkerQueue &mine = queues[self];
            auto run = [&](size_t i) {
                ++item_claims;
                BusyClock::time_point start = BusyClock::now();
                try {
                    results[i] = fn(items[i], i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                busy_us += static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(BusyClock::now() -
                                                   start)
                        .count());
                bm.queue_depth->add(-1);
            };
            for (;;) {
                size_t i = items.size(); // sentinel: nothing claimed
                {
                    std::lock_guard<std::mutex> lock(mine.mu);
                    if (!mine.q.empty()) {
                        i = mine.q.front();
                        mine.q.pop_front();
                    }
                }
                if (i >= items.size()) {
                    // Local queue dry: claim a fresh chunk off the
                    // shared cursor, run its first index, queue the
                    // rest.
                    size_t base = cursor.fetch_add(
                        chunk, std::memory_order_relaxed);
                    if (base < items.size()) {
                        size_t end =
                            std::min(base + chunk, items.size());
                        ++chunk_claims;
                        i = base;
                        if (end - base > 1) {
                            std::lock_guard<std::mutex> lock(mine.mu);
                            for (size_t j = base + 1; j < end; ++j)
                                mine.q.push_back(j);
                        }
                    }
                }
                if (i >= items.size()) {
                    // Cursor exhausted: steal half a victim's queue
                    // from the back (the items it would reach last).
                    for (size_t off = 1; off < threads; ++off) {
                        WorkerQueue &victim =
                            queues[(self + off) % threads];
                        std::vector<size_t> got;
                        {
                            std::lock_guard<std::mutex> lock(
                                victim.mu);
                            size_t take = (victim.q.size() + 1) / 2;
                            while (take-- > 0) {
                                got.push_back(victim.q.back());
                                victim.q.pop_back();
                            }
                        }
                        if (got.empty())
                            continue;
                        ++steals;
                        i = got.back();
                        got.pop_back();
                        if (!got.empty()) {
                            std::lock_guard<std::mutex> lock(mine.mu);
                            for (size_t j : got)
                                mine.q.push_back(j);
                        }
                        break;
                    }
                }
                if (i >= items.size())
                    break; // no work anywhere: done
                run(i);
            }
            bm.worker_busy_us->add(busy_us);
            bm.claims->add(item_claims);
            bm.chunk_claims->add(chunk_claims);
            bm.steals->add(steals);
        };

        bm.workers_spawned->add(threads);
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (size_t t = 0; t < threads; ++t)
            pool.emplace_back(worker, t);
        for (std::thread &t : pool)
            t.join();
        if (bm.queue_depth->value() != 0)
            support::panic("BatchRunner: queue depth %lld after a "
                           "run, expected 0",
                           static_cast<long long>(
                               bm.queue_depth->value()));
        for (std::exception_ptr &e : errors)
            if (e)
                std::rethrow_exception(e);
        return results;
    }

  private:
    unsigned jobs_;
};

} // namespace mips::pipeline
