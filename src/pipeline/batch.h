/**
 * @file
 * BatchRunner: a deliberately simple fixed-thread-pool fan-out.
 *
 * No work stealing, no futures, no task graph: `runAll` spawns
 * min(jobs, items) threads that claim item indices from one atomic
 * counter and write each result into its input-ordered slot. That is
 * enough for this repo's workloads (per-program toolchain chains of
 * roughly equal cost) and keeps the concurrency story auditable: the
 * only shared mutable state is the claim counter, per-slot results
 * (each touched by exactly one thread), and whatever the callback
 * itself shares — for pipeline work that is a `Session`, whose cache
 * is internally synchronized.
 *
 * Determinism: results are collected by input index, so the returned
 * vector is element-wise identical to a serial run regardless of
 * scheduling. Exceptions are captured per item and the lowest-index
 * one is rethrown after all threads join.
 *
 * Observability: every run reports through the `batch.*` metrics
 * (items, claims, workers spawned, worker busy time, and a live
 * queue-depth gauge — see docs/METRICS.md). Workers accumulate busy
 * time in a local and publish once at exit, so the per-item cost of
 * being observable is one relaxed counter add and one gauge
 * decrement.
 */
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <exception>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/catalog.h"

namespace mips::pipeline {

class BatchRunner
{
  public:
    /** `jobs == 0` means one (serial). */
    explicit BatchRunner(unsigned jobs) : jobs_(jobs == 0 ? 1 : jobs) {}

    unsigned jobs() const { return jobs_; }

    /**
     * Apply `fn(item, index)` to every item; returns the results in
     * input order. The result type must be default-constructible and
     * movable. `fn` must be safe to call concurrently when jobs > 1.
     */
    template <typename In, typename Fn>
    auto
    runAll(const std::vector<In> &items, Fn &&fn) const
        -> std::vector<
            std::decay_t<std::invoke_result_t<Fn &, const In &, size_t>>>
    {
        using Out =
            std::decay_t<std::invoke_result_t<Fn &, const In &, size_t>>;
        using BusyClock = std::chrono::steady_clock;
        std::vector<Out> results(items.size());
        obs::BatchMetrics &bm = obs::batchMetrics();
        bm.runs->add();
        bm.items->add(items.size());
        if (items.empty())
            return results;
        bm.queue_depth->set(static_cast<int64_t>(items.size()));

        size_t threads = std::min<size_t>(jobs_, items.size());
        if (threads <= 1) {
            BusyClock::time_point start = BusyClock::now();
            for (size_t i = 0; i < items.size(); ++i) {
                bm.claims->add();
                bm.queue_depth->add(-1);
                results[i] = fn(items[i], i);
            }
            bm.worker_busy_us->add(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::microseconds>(
                    BusyClock::now() - start)
                    .count()));
            bm.queue_depth->set(0);
            return results;
        }

        std::atomic<size_t> next{0};
        std::vector<std::exception_ptr> errors(items.size());
        auto worker = [&]() {
            uint64_t busy_us = 0;
            for (;;) {
                size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= items.size())
                    break;
                bm.claims->add();
                bm.queue_depth->add(-1);
                BusyClock::time_point start = BusyClock::now();
                try {
                    results[i] = fn(items[i], i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
                busy_us += static_cast<uint64_t>(
                    std::chrono::duration_cast<
                        std::chrono::microseconds>(BusyClock::now() -
                                                   start)
                        .count());
            }
            bm.worker_busy_us->add(busy_us);
        };
        bm.workers_spawned->add(threads);
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (size_t t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
        bm.queue_depth->set(0);
        for (std::exception_ptr &e : errors)
            if (e)
                std::rethrow_exception(e);
        return results;
    }

  private:
    unsigned jobs_;
};

} // namespace mips::pipeline
