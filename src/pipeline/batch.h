/**
 * @file
 * BatchRunner: a deliberately simple fixed-thread-pool fan-out.
 *
 * No work stealing, no futures, no task graph: `runAll` spawns
 * min(jobs, items) threads that claim item indices from one atomic
 * counter and write each result into its input-ordered slot. That is
 * enough for this repo's workloads (per-program toolchain chains of
 * roughly equal cost) and keeps the concurrency story auditable: the
 * only shared mutable state is the claim counter, per-slot results
 * (each touched by exactly one thread), and whatever the callback
 * itself shares — for pipeline work that is a `Session`, whose cache
 * is internally synchronized.
 *
 * Determinism: results are collected by input index, so the returned
 * vector is element-wise identical to a serial run regardless of
 * scheduling. Exceptions are captured per item and the lowest-index
 * one is rethrown after all threads join.
 */
#pragma once

#include <atomic>
#include <cstddef>
#include <exception>
#include <thread>
#include <type_traits>
#include <vector>

namespace mips::pipeline {

class BatchRunner
{
  public:
    /** `jobs == 0` means one (serial). */
    explicit BatchRunner(unsigned jobs) : jobs_(jobs == 0 ? 1 : jobs) {}

    unsigned jobs() const { return jobs_; }

    /**
     * Apply `fn(item, index)` to every item; returns the results in
     * input order. The result type must be default-constructible and
     * movable. `fn` must be safe to call concurrently when jobs > 1.
     */
    template <typename In, typename Fn>
    auto
    runAll(const std::vector<In> &items, Fn &&fn) const
        -> std::vector<
            std::decay_t<std::invoke_result_t<Fn &, const In &, size_t>>>
    {
        using Out =
            std::decay_t<std::invoke_result_t<Fn &, const In &, size_t>>;
        std::vector<Out> results(items.size());
        if (items.empty())
            return results;

        size_t threads = std::min<size_t>(jobs_, items.size());
        if (threads <= 1) {
            for (size_t i = 0; i < items.size(); ++i)
                results[i] = fn(items[i], i);
            return results;
        }

        std::atomic<size_t> next{0};
        std::vector<std::exception_ptr> errors(items.size());
        auto worker = [&]() {
            for (;;) {
                size_t i = next.fetch_add(1, std::memory_order_relaxed);
                if (i >= items.size())
                    return;
                try {
                    results[i] = fn(items[i], i);
                } catch (...) {
                    errors[i] = std::current_exception();
                }
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(threads);
        for (size_t t = 0; t < threads; ++t)
            pool.emplace_back(worker);
        for (std::thread &t : pool)
            t.join();
        for (std::exception_ptr &e : errors)
            if (e)
                std::rethrow_exception(e);
        return results;
    }

  private:
    unsigned jobs_;
};

} // namespace mips::pipeline
