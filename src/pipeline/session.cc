#include "pipeline/session.h"

#include <array>
#include <atomic>
#include <chrono>
#include <functional>
#include <optional>

#include "obs/catalog.h"
#include "obs/trace.h"
#include "pipeline/batch.h"
#include "plc/parser.h"
#include "plc/sema.h"
#include "sim/machine.h"
#include "sim/obspub.h"
#include "support/strings.h"
#include "support/table.h"

namespace mips::pipeline {

using support::strprintf;

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

// Option serializations for cache keys. Every field that can change a
// stage's artifact must appear here; adding a field to an options
// struct means extending its key.

std::string
keyOf(const plc::CompileOptions &o)
{
    return strprintf("L%d;S%u;J%d", static_cast<int>(o.layout),
                     o.stack_top, o.jump_tables);
}

unsigned
bugBits(const reorg::ReorgBugs &b)
{
    return (b.pack_dependent << 0) | (b.hoist_blind << 1) |
           (b.alias_blind << 2) | (b.slot_overwritten_def << 3) |
           (b.drop_load_noop << 4) | (b.drop_branch_noop << 5) |
           (b.retarget_same_target << 6) | (b.dup_skip_second << 7);
}

std::string
keyOf(const reorg::ReorgOptions &o)
{
    return strprintf("r%dp%df%d;V%u;B%02x", o.reorder, o.pack,
                     o.fill_delay, o.alias.volatile_base,
                     bugBits(o.bugs));
}

std::string
keyOf(const verify::VerifyOptions &o)
{
    return strprintf("l%d;i%d;A%04x;S%04x", o.lint, o.interproc,
                     static_cast<unsigned>(o.assume_initialized),
                     static_cast<unsigned>(o.callee_saved));
}

std::string
keyOf(const verify::RangeCheckOptions &o)
{
    return strprintf("M%u;B%u;W%d", o.mem_words, o.stack_budget,
                     o.range.widen_after);
}

std::string
keyOf(const SimOptions &o)
{
    return strprintf("C%llu;P%d",
                     static_cast<unsigned long long>(o.max_cycles),
                     o.profile);
}

} // namespace

size_t
cacheShardOf(std::string_view key)
{
    return std::hash<std::string_view>{}(key) & (kCacheShards - 1);
}

const char *
stageName(Stage stage)
{
    switch (stage) {
    case Stage::PARSE: return "parse";
    case Stage::COMPILE: return "compile";
    case Stage::ASSEMBLE: return "assemble";
    case Stage::REORGANIZE: return "reorganize";
    case Stage::HAZARD_VERIFY: return "hazard-verify";
    case Stage::TRANSLATION_VALIDATE: return "translation-validate";
    case Stage::SIMULATE: return "simulate";
    case Stage::COST_MODEL: return "cost";
    case Stage::VALUE_RANGE: return "range";
    }
    return "?";
}

uint64_t
PipelineStats::hits() const
{
    uint64_t n = 0;
    for (const StageCounters &c : stage)
        n += c.hits;
    return n;
}

uint64_t
PipelineStats::misses() const
{
    uint64_t n = 0;
    for (const StageCounters &c : stage)
        n += c.misses;
    return n;
}

double
PipelineStats::missMs() const
{
    double ms = 0;
    for (const StageCounters &c : stage)
        ms += c.miss_ms;
    return ms;
}

std::string
PipelineStats::table() const
{
    support::TextTable t("Pipeline session: per-stage cache counters");
    t.setHeader({"Stage", "Hits", "Misses", "Waits", "Hit rate",
                 "Miss ms"});
    uint64_t waits = 0;
    for (size_t i = 0; i < kStageCount; ++i) {
        const StageCounters &c = stage[i];
        uint64_t total = c.hits + c.misses;
        waits += c.wait_blocks;
        t.addRow({stageName(static_cast<Stage>(i)),
                  strprintf("%llu",
                            static_cast<unsigned long long>(c.hits)),
                  strprintf("%llu",
                            static_cast<unsigned long long>(c.misses)),
                  strprintf("%llu", static_cast<unsigned long long>(
                                        c.wait_blocks)),
                  total ? support::TextTable::pct(
                              static_cast<double>(c.hits) /
                              static_cast<double>(total))
                        : "-",
                  support::TextTable::num(c.miss_ms, 1)});
    }
    t.addSeparator();
    uint64_t total = hits() + misses();
    t.addRow({"total",
              strprintf("%llu", static_cast<unsigned long long>(hits())),
              strprintf("%llu",
                        static_cast<unsigned long long>(misses())),
              strprintf("%llu", static_cast<unsigned long long>(waits)),
              total ? support::TextTable::pct(
                          static_cast<double>(hits()) /
                          static_cast<double>(total))
                    : "-",
              support::TextTable::num(missMs(), 1)});
    return t.render() +
           strprintf("cache shard conflicts: %llu\n",
                     static_cast<unsigned long long>(shard_conflicts));
}

// ------------------------------------------------------ Session::Impl

struct Session::Impl
{
    /**
     * One cache entry. `result` is written exactly once, under the
     * owning shard's lock, after which `ready` flips (release) and
     * waiters wake; from then on the entry is immutable and may be
     * read with no lock at all — the fast path acquire-loads `ready`
     * and copies `result`.
     */
    template <typename T>
    struct Slot
    {
        std::atomic<bool> ready{false};
        std::optional<support::Result<std::shared_ptr<const T>>> result;
    };

    template <typename T>
    using Map = std::unordered_map<std::string,
                                   std::shared_ptr<Slot<T>>>;

    /**
     * One cache shard: a cache-line-aligned mutex/cv pair plus an
     * RCU-style published snapshot of the shard's key → slot map.
     * Readers atomically load `snap` and search it lock-free; writers
     * (misses) copy the map under `mu`, insert, and re-publish. The
     * copy is cheap — shard maps hold a handful of shared_ptrs — and
     * happens once per computed artifact, never per hit.
     */
    template <typename T>
    struct alignas(64) Shard
    {
        std::mutex mu;
        std::condition_variable cv;
        /** Lookups that found `mu` held by another thread. */
        std::atomic<uint64_t> conflicts{0};
        std::atomic<std::shared_ptr<const Map<T>>> snap;
    };

    template <typename T>
    struct Cache
    {
        std::array<Shard<T>, kCacheShards> shards;

        uint64_t
        conflicts() const
        {
            uint64_t n = 0;
            for (const Shard<T> &s : shards)
                n += s.conflicts.load(std::memory_order_relaxed);
            return n;
        }
    };

    /** Per-stage counters, striped per thread (obs::Counter cells) so
     *  the lock-free hit path never shares a cache line between
     *  threads. `miss_ns` holds nanoseconds; stats() renders ms. */
    struct StageLocal
    {
        obs::Counter hits;
        obs::Counter misses;
        obs::Counter wait_blocks;
        obs::Counter miss_ns;
    };
    StageLocal counters[kStageCount];

    Cache<ParseArtifact> parse_cache;
    Cache<CompileArtifact> compile_cache;
    Cache<AssembleArtifact> assemble_cache;
    Cache<ReorgArtifact> reorg_cache;
    Cache<VerifyArtifact> verify_cache;
    Cache<TvArtifact> tv_cache;
    Cache<SimArtifact> sim_cache;
    Cache<CostArtifact> cost_cache;
    Cache<RangeArtifact> range_cache;

    uint64_t
    shardConflicts() const
    {
        return parse_cache.conflicts() + compile_cache.conflicts() +
               assemble_cache.conflicts() + reorg_cache.conflicts() +
               verify_cache.conflicts() + tv_cache.conflicts() +
               sim_cache.conflicts() + cost_cache.conflicts() +
               range_cache.conflicts();
    }

    /** Lock a shard, counting the acquisition as a conflict (locally
     *  and in `pipeline.cache.shard_conflicts`) when another thread
     *  already holds it. */
    template <typename T>
    std::unique_lock<std::mutex>
    lockShard(Shard<T> &shard)
    {
        std::unique_lock<std::mutex> lock(shard.mu, std::try_to_lock);
        if (!lock.owns_lock()) {
            shard.conflicts.fetch_add(1, std::memory_order_relaxed);
            obs::pipelineCacheShardConflicts().add();
            lock.lock();
        }
        return lock;
    }

    /**
     * Return the artifact for `key`, computing it with `fn` on a
     * miss. Ready entries are served lock-free; concurrent requests
     * for the same key wait (on that key's shard only) for the first
     * computation; `fn` runs with no lock held, so stages for
     * different keys (and nested upstream-stage calls) proceed in
     * parallel.
     */
    template <typename T, typename Fn>
    support::Result<std::shared_ptr<const T>>
    getOrCompute(Cache<T> &cache, Stage stage, const std::string &key,
                 Fn &&fn)
    {
        obs::StageMetrics &om =
            obs::pipelineStageMetrics(static_cast<size_t>(stage));
        om.lookups->add();
        StageLocal &local = counters[static_cast<size_t>(stage)];
        Shard<T> &shard = cache.shards[cacheShardOf(key)];

        // Fast path: a ready entry is immutable, so a hit is one
        // atomic snapshot load plus a shared_ptr copy — no mutex.
        if (std::shared_ptr<const Map<T>> snap =
                shard.snap.load(std::memory_order_acquire)) {
            auto it = snap->find(key);
            if (it != snap->end() &&
                it->second->ready.load(std::memory_order_acquire)) {
                local.hits.add();
                om.hits->add();
                return *it->second->result;
            }
        }

        std::shared_ptr<Slot<T>> slot;
        {
            std::unique_lock<std::mutex> lock = lockShard(shard);
            // `snap` only changes under `mu`, so this re-read is
            // stable for the duration of the critical section.
            std::shared_ptr<const Map<T>> snap =
                shard.snap.load(std::memory_order_relaxed);
            if (snap) {
                auto it = snap->find(key);
                if (it != snap->end())
                    slot = it->second;
            }
            if (slot) {
                if (!slot->ready.load(std::memory_order_acquire)) {
                    local.wait_blocks.add();
                    om.wait_blocks->add();
                    shard.cv.wait(lock, [&] {
                        return slot->ready.load(
                            std::memory_order_acquire);
                    });
                }
                local.hits.add();
                om.hits->add();
                return *slot->result;
            }
            slot = std::make_shared<Slot<T>>();
            auto next = snap ? std::make_shared<Map<T>>(*snap)
                             : std::make_shared<Map<T>>();
            (*next)[key] = slot;
            shard.snap.store(std::move(next),
                             std::memory_order_release);
        }

        // Registry mirror of the miss: counted on the throw path too,
        // so `lookups == hits + misses` holds even when a stage dies.
        Clock::time_point start = Clock::now();
        auto recordMiss = [&](double ms) {
            local.misses.add();
            local.miss_ns.add(static_cast<uint64_t>(ms * 1e6));
            om.misses->add();
            om.miss_us->add(static_cast<uint64_t>(ms * 1000.0));
            obs::pipelineStageMissMs().observe(ms);
        };
        support::Result<std::shared_ptr<const T>> result = [&] {
            obs::Span span(stageName(stage));
            try {
                return fn();
            } catch (...) {
                // Never leave waiters hung: publish an error, then
                // rethrow for the caller.
                recordMiss(msSince(start));
                {
                    std::unique_lock<std::mutex> lock =
                        lockShard(shard);
                    slot->result =
                        support::makeError("pipeline stage threw");
                    slot->ready.store(true, std::memory_order_release);
                }
                shard.cv.notify_all();
                throw;
            }
        }();
        recordMiss(msSince(start));
        {
            std::unique_lock<std::mutex> lock = lockShard(shard);
            slot->result = std::move(result);
            slot->ready.store(true, std::memory_order_release);
        }
        shard.cv.notify_all();
        return *slot->result;
    }

    template <typename T>
    void
    clearCache(Cache<T> &cache)
    {
        for (Shard<T> &s : cache.shards) {
            std::lock_guard<std::mutex> lock(s.mu);
            s.snap.store(nullptr, std::memory_order_release);
            s.conflicts.store(0, std::memory_order_relaxed);
        }
    }
};

Session::Session() : impl_(std::make_unique<Impl>()) {}
Session::~Session() = default;

PipelineStats
Session::stats() const
{
    PipelineStats s;
    for (size_t i = 0; i < kStageCount; ++i) {
        const Impl::StageLocal &c = impl_->counters[i];
        s.stage[i].hits = c.hits.value();
        s.stage[i].misses = c.misses.value();
        s.stage[i].wait_blocks = c.wait_blocks.value();
        s.stage[i].miss_ms =
            static_cast<double>(c.miss_ns.value()) / 1e6;
    }
    s.shard_conflicts = impl_->shardConflicts();
    return s;
}

void
Session::clear()
{
    impl_->clearCache(impl_->parse_cache);
    impl_->clearCache(impl_->compile_cache);
    impl_->clearCache(impl_->assemble_cache);
    impl_->clearCache(impl_->reorg_cache);
    impl_->clearCache(impl_->verify_cache);
    impl_->clearCache(impl_->tv_cache);
    impl_->clearCache(impl_->sim_cache);
    impl_->clearCache(impl_->cost_cache);
    impl_->clearCache(impl_->range_cache);
    for (Impl::StageLocal &c : impl_->counters) {
        c.hits.reset();
        c.misses.reset();
        c.wait_blocks.reset();
        c.miss_ns.reset();
    }
}

// ------------------------------------------------------------ stages

support::Result<ParseRef>
Session::parse(std::string_view source, plc::Layout layout)
{
    std::string key = strprintf("L%d\n", static_cast<int>(layout));
    key.append(source);
    return impl_->getOrCompute(
        impl_->parse_cache, Stage::PARSE, key,
        [&]() -> support::Result<ParseRef> {
            auto ast = plc::parseProgram(source);
            if (!ast.ok())
                return ast.error();
            auto artifact = std::make_shared<ParseArtifact>();
            artifact->ast = ast.take();
            auto sema = plc::analyze(artifact->ast, layout);
            if (!sema.ok())
                return sema.error();
            return ParseRef(artifact);
        });
}

support::Result<CompileRef>
Session::compile(std::string_view source, const StageOptions &options)
{
    std::string key = keyOf(options.compile) + "\n";
    key.append(source);
    return impl_->getOrCompute(
        impl_->compile_cache, Stage::COMPILE, key,
        [&]() -> support::Result<CompileRef> {
            auto compiled = plc::compile(source, options.compile);
            if (!compiled.ok())
                return compiled.error();
            auto artifact = std::make_shared<CompileArtifact>();
            artifact->unit = compiled.value().unit;
            artifact->asm_text = std::move(compiled.value().asm_text);
            artifact->legal_unit = std::move(compiled.value().unit);
            artifact->peephole =
                plc::eliminateRedundantLoads(&artifact->legal_unit);
            return CompileRef(artifact);
        });
}

support::Result<AssembleRef>
Session::assemble(std::string_view asm_text)
{
    std::string key(asm_text);
    return impl_->getOrCompute(
        impl_->assemble_cache, Stage::ASSEMBLE, key,
        [&]() -> support::Result<AssembleRef> {
            auto unit = assembler::parse(asm_text);
            if (!unit.ok())
                return unit.error();
            auto artifact = std::make_shared<AssembleArtifact>();
            artifact->unit = unit.take();
            return AssembleRef(artifact);
        });
}

support::Result<ReorgRef>
Session::reorganize(std::string_view source, const StageOptions &options)
{
    auto compiled = compile(source, options);
    if (!compiled.ok())
        return compiled.error();
    std::string key =
        keyOf(options.reorg) + "|" + keyOf(options.compile) + "\n";
    key.append(source);
    return impl_->getOrCompute(
        impl_->reorg_cache, Stage::REORGANIZE, key,
        [&]() -> support::Result<ReorgRef> {
            const CompileRef &dep = compiled.value();
            reorg::ReorgResult result =
                reorg::reorganize(dep->legal_unit, options.reorg);
            auto artifact = std::make_shared<ReorgArtifact>();
            artifact->compile = dep;
            artifact->stats = result.stats;
            artifact->hints = std::move(result.hints);
            artifact->final_unit = std::move(result.unit);
            auto program = assembler::link(artifact->final_unit);
            if (!program.ok())
                return program.error();
            artifact->program = program.take();
            return ReorgRef(artifact);
        });
}

support::Result<VerifyRef>
Session::hazardVerify(std::string_view source,
                      const StageOptions &options)
{
    auto reorg = reorganize(source, options);
    if (!reorg.ok())
        return reorg.error();
    std::string key = keyOf(options.verify) + "|" +
                      keyOf(options.reorg) + "|" +
                      keyOf(options.compile) + "\n";
    key.append(source);
    return impl_->getOrCompute(
        impl_->verify_cache, Stage::HAZARD_VERIFY, key,
        [&]() -> support::Result<VerifyRef> {
            const ReorgRef &dep = reorg.value();
            auto artifact = std::make_shared<VerifyArtifact>();
            artifact->reorg = dep;
            // Each computed unit feeds the verify.unit_ms histogram;
            // cache hits replay the artifact without re-verifying and
            // are deliberately not re-observed.
            Clock::time_point verify_start = Clock::now();
            artifact->report = verify::verifyReorganization(
                dep->compile->legal_unit, dep->final_unit,
                options.verify);
            obs::verifyUnitMs().observe(msSince(verify_start));
            return VerifyRef(artifact);
        });
}

support::Result<TvRef>
Session::translationValidate(std::string_view source,
                             const StageOptions &options)
{
    auto reorg = reorganize(source, options);
    if (!reorg.ok())
        return reorg.error();
    std::string key = strprintf("M%zu|", options.tv_limits.max_steps) +
                      keyOf(options.reorg) + "|" +
                      keyOf(options.compile) + "\n";
    key.append(source);
    return impl_->getOrCompute(
        impl_->tv_cache, Stage::TRANSLATION_VALIDATE, key,
        [&]() -> support::Result<TvRef> {
            const ReorgRef &dep = reorg.value();
            verify::TvOptions tvopts;
            tvopts.alias = options.reorg.alias;
            tvopts.limits = options.tv_limits;
            auto artifact = std::make_shared<TvArtifact>();
            artifact->reorg = dep;
            artifact->report = verify::validateTranslation(
                dep->compile->legal_unit, dep->final_unit, dep->hints,
                tvopts);
            return TvRef(artifact);
        });
}

support::Result<SimRef>
Session::simulate(std::string_view source, const StageOptions &options)
{
    auto reorg = reorganize(source, options);
    if (!reorg.ok())
        return reorg.error();
    std::string key = keyOf(options.sim) + "|" + keyOf(options.reorg) +
                      "|" + keyOf(options.compile) + "\n";
    key.append(source);
    return impl_->getOrCompute(
        impl_->sim_cache, Stage::SIMULATE, key,
        [&]() -> support::Result<SimRef> {
            const ReorgRef &dep = reorg.value();
            sim::Machine machine;
            machine.load(dep->program);
            machine.cpu().enableProfiling(options.sim.profile);
            auto artifact = std::make_shared<SimArtifact>();
            artifact->reorg = dep;
            artifact->stop = machine.cpu().run(options.sim.max_cycles);
            if (artifact->stop != sim::StopReason::HALT)
                artifact->error = machine.cpu().errorMessage();
            artifact->console = machine.memory().consoleOutput();
            artifact->cycles = machine.cpu().stats().cycles;
            artifact->free_data_cycles =
                machine.cpu().stats().free_data_cycles;
            if (options.sim.profile) {
                workload::accumulateRefs(dep->final_unit,
                                         dep->program.origin,
                                         machine.cpu(),
                                         &artifact->refs);
                artifact->exec_counts = machine.cpu().execCounts(
                    dep->program.origin, dep->final_unit.items.size());
            }
            // Fresh machine, one run: fold its counters into the
            // process-wide sim.* metrics (cache hits re-serve the
            // artifact without re-simulating, so nothing is counted
            // twice).
            sim::publishMetrics(machine);
            return SimRef(artifact);
        });
}

support::Result<CostRef>
Session::costModel(std::string_view source, const StageOptions &options)
{
    auto reorg = reorganize(source, options);
    if (!reorg.ok())
        return reorg.error();
    // The model is a pure function of the reorganized unit: no
    // verify/sim options in the key.
    std::string key = "cost|" + keyOf(options.reorg) + "|" +
                      keyOf(options.compile) + "\n";
    key.append(source);
    return impl_->getOrCompute(
        impl_->cost_cache, Stage::COST_MODEL, key,
        [&]() -> support::Result<CostRef> {
            const ReorgRef &dep = reorg.value();
            verify::DiagnosticEngine diags(&dep->final_unit);
            verify::Cfg cfg =
                verify::buildCfg(dep->final_unit, &diags);
            verify::CallGraph graph = verify::buildCallGraph(cfg);
            auto artifact = std::make_shared<CostArtifact>();
            artifact->reorg = dep;
            artifact->report = verify::computeCostModel(
                cfg, graph, "reorganized");
            verify::publishCostMetrics(artifact->report);
            return CostRef(artifact);
        });
}

support::Result<RangeRef>
Session::valueRange(std::string_view source, const StageOptions &options)
{
    auto reorg = reorganize(source, options);
    if (!reorg.ok())
        return reorg.error();
    // Pure function of the reorganized unit plus the range knobs: no
    // verify/sim options in the key.
    std::string key = "range|" + keyOf(options.range) + "|" +
                      keyOf(options.reorg) + "|" +
                      keyOf(options.compile) + "\n";
    key.append(source);
    return impl_->getOrCompute(
        impl_->range_cache, Stage::VALUE_RANGE, key,
        [&]() -> support::Result<RangeRef> {
            const ReorgRef &dep = reorg.value();
            verify::DiagnosticEngine diags(&dep->final_unit);
            verify::Cfg cfg =
                verify::buildCfg(dep->final_unit, &diags);
            verify::CallGraph graph = verify::buildCallGraph(cfg);
            auto artifact = std::make_shared<RangeArtifact>();
            artifact->reorg = dep;
            artifact->report = verify::checkMemorySafety(
                cfg, graph, options.range, "reorganized", &diags);
            artifact->diags = diags.diagnostics();
            verify::publishRangeMetrics(artifact->report);
            return RangeRef(artifact);
        });
}

Session &
sharedSession()
{
    static Session session;
    return session;
}

// --------------------------------------------------- batched chains

ChainSpec
fuzzOracleChain()
{
    ChainSpec spec;
    spec.reorganize = true;
    spec.hazard_verify = true;
    spec.translation_validate = true;
    spec.simulate = true;
    spec.cost_model = true;
    spec.value_range = true;
    return spec;
}

std::vector<ChainResult>
runAll(Session &session,
       const std::vector<workload::CorpusProgram> &corpus,
       const ChainSpec &stages, const StageOptions &options,
       unsigned jobs)
{
    BatchRunner runner(jobs);
    return runner.runAll(
        corpus,
        [&](const workload::CorpusProgram &program, size_t) {
            ChainResult r;
            r.name = program.name;
            obs::Span span("chain", program.name);
            Clock::time_point start = Clock::now();
            auto fail = [&](const support::Error &error) {
                r.error = error.str();
                r.elapsed_ms = msSince(start);
                return r;
            };

            auto compiled = session.compile(program.source, options);
            if (!compiled.ok())
                return fail(compiled.error());
            r.compile = compiled.value();

            bool need_reorg = stages.reorganize ||
                              stages.hazard_verify ||
                              stages.translation_validate ||
                              stages.simulate || stages.cost_model ||
                              stages.value_range;
            if (need_reorg) {
                auto reorg = session.reorganize(program.source, options);
                if (!reorg.ok())
                    return fail(reorg.error());
                r.reorg = reorg.value();
            }
            if (stages.hazard_verify) {
                auto v = session.hazardVerify(program.source, options);
                if (!v.ok())
                    return fail(v.error());
                r.verify = v.value();
            }
            if (stages.translation_validate) {
                auto tv = session.translationValidate(program.source,
                                                      options);
                if (!tv.ok())
                    return fail(tv.error());
                r.tv = tv.value();
            }
            if (stages.simulate) {
                auto sim = session.simulate(program.source, options);
                if (!sim.ok())
                    return fail(sim.error());
                r.sim = sim.value();
            }
            if (stages.cost_model) {
                auto cost = session.costModel(program.source, options);
                if (!cost.ok())
                    return fail(cost.error());
                r.cost = cost.value();
            }
            if (stages.value_range) {
                auto range = session.valueRange(program.source, options);
                if (!range.ok())
                    return fail(range.error());
                r.range = range.value();
            }
            r.elapsed_ms = msSince(start);
            return r;
        });
}

} // namespace mips::pipeline
