/**
 * @file
 * Pipeline sessions: the toolchain as composable, cached stages.
 *
 * Every multi-step consumer in this repo used to hand-roll the same
 * chain — `plc::compile` → peephole → `reorg::reorganize` → link →
 * verify / translation-validate / simulate — serially and from
 * scratch, once per experiment driver, bench binary, and CLI run. A
 * `Session` models that chain as explicitly-dependent stages
 *
 *   Parse → Compile → Assemble → Reorganize → HazardVerify
 *                                → TranslationValidate → Simulate
 *                                → CostModel → ValueRange
 *
 * each returning its artifact through a content-keyed cache (keyed on
 * the source text plus every stage option that can change the
 * artifact), so e.g. the Table 3 and Table 11 drivers compiling the
 * same corpus program share one compile result instead of recompiling
 * it per table. Artifacts are immutable and handed out as
 * `shared_ptr<const T>`; a cache hit is pointer-identical to the cold
 * run that produced it. Errors are cached too: recoverable input
 * failures (bad source) are remembered and replayed, never recomputed.
 *
 * Sessions are thread-safe and built not to serialize each other:
 * every stage cache is split into `kCacheShards` key-hash-indexed
 * shards, each cache-line aligned with its own mutex and condition
 * variable, and completed entries take a lock-free fast path — ready
 * artifacts are immutable, so a hit is an atomic snapshot load plus a
 * `shared_ptr` copy, no lock acquired. Concurrent requests for the
 * same key block on the first computation (per shard) instead of
 * duplicating it; requests for different keys compute in parallel
 * (no lock is ever held while a stage runs). `runAll` fans a corpus
 * out across a work-stealing `BatchRunner` thread pool with
 * deterministic, input-ordered result collection — parallel results
 * are element-wise identical to a serial run.
 *
 * Per-stage hit/miss counts and miss wall time are recorded in a
 * `PipelineStats`, renderable as a `support::TextTable` for the bench
 * binaries and CLI observability.
 */
#pragma once

#include <condition_variable>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "asm/assembler.h"
#include "asm/unit.h"
#include "plc/ast.h"
#include "plc/codegen.h"
#include "plc/optimize.h"
#include "reorg/reorganizer.h"
#include "sim/cpu.h"
#include "support/result.h"
#include "verify/costmodel.h"
#include "verify/memsafety.h"
#include "verify/tv.h"
#include "verify/verify.h"
#include "workload/analyzers.h"
#include "workload/corpus.h"

namespace mips::pipeline {

// ----------------------------------------------------------- options

/** Simulate-stage knobs. */
struct SimOptions
{
    uint64_t max_cycles = 200'000'000;
    /** Collect logical data-reference counts (Tables 7/8/10). */
    bool profile = false;
};

/**
 * The option bundle for one chain. Each stage keys its cache entry on
 * the sub-options that can change its artifact (plus those of every
 * stage it depends on), so toggling e.g. `reorg.pack` misses the
 * reorganize cache but still hits the compile cache.
 */
struct StageOptions
{
    plc::CompileOptions compile;
    reorg::ReorgOptions reorg;
    verify::VerifyOptions verify;
    /** Symbolic-execution limits for TranslationValidate (the alias
     *  discipline is taken from `reorg.alias`, which must match). */
    verify::SymLimits tv_limits;
    /** Value-range / memory-safety knobs for the ValueRange stage. */
    verify::RangeCheckOptions range;
    SimOptions sim;
};

// --------------------------------------------------------- artifacts

/** Parse: Pascal-like source → analyzed AST (Tables 1 and 4). */
struct ParseArtifact
{
    plc::ProgramAst ast; ///< analyzed in place under the keyed layout
};

/** Compile: Pascal-like source → legal code. */
struct CompileArtifact
{
    assembler::Unit unit;       ///< as emitted (pre-peephole)
    assembler::Unit legal_unit; ///< peephole-optimized legal code
    plc::PeepholeStats peephole;
    std::string asm_text;       ///< generated assembly source
};

/** Assemble: assembly text → parsed unit (no link; labels may be
 *  unresolved, which is itself a verifiable condition). */
struct AssembleArtifact
{
    assembler::Unit unit;
};

/** Reorganize: legal code → pipeline-correct unit + linked image. */
struct ReorgArtifact
{
    std::shared_ptr<const CompileArtifact> compile; ///< its input
    assembler::Unit final_unit;
    assembler::Program program; ///< linked, ready to load
    reorg::ReorgStats stats;
    std::vector<reorg::DupHint> hints; ///< scheme-2 provenance
};

/** HazardVerify: the software-interlock contract, statically. */
struct VerifyArtifact
{
    std::shared_ptr<const ReorgArtifact> reorg;
    verify::VerifyReport report;
};

/** TranslationValidate: symbolic proof of equivalence. */
struct TvArtifact
{
    std::shared_ptr<const ReorgArtifact> reorg;
    verify::VerifyReport report;
};

/** Simulate: one run on the pipeline machine. */
struct SimArtifact
{
    std::shared_ptr<const ReorgArtifact> reorg;
    sim::StopReason stop = sim::StopReason::RUNNING;
    std::string error;   ///< CPU error message when stop == SIM_ERROR
    std::string console;
    uint64_t cycles = 0;
    uint64_t free_data_cycles = 0;
    /** Logical data references (only when SimOptions::profile). */
    workload::RefPattern refs;
    /** Per-word issue counts over the linked image, indexed by item
     *  (only when SimOptions::profile). Feeds the cost-model parity
     *  oracle (verify::checkCostParity). */
    std::vector<uint64_t> exec_counts;

    /** Fraction of data bandwidth left idle. */
    double
    freeBandwidth() const
    {
        return cycles ? static_cast<double>(free_data_cycles) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** CostModel: call graph + static cycle-cost report for the
 *  reorganized unit (verify/costmodel.h). Static only — parity
 *  against a profiled SimArtifact is the caller's cross-check. */
struct CostArtifact
{
    std::shared_ptr<const ReorgArtifact> reorg;
    verify::CostReport report;
};

/** ValueRange: interval/alignment fixpoint + memory-safety report for
 *  the reorganized unit (verify/memsafety.h). The MS diagnostics land
 *  in `diags`; `report` carries the statistics and stack table. */
struct RangeArtifact
{
    std::shared_ptr<const ReorgArtifact> reorg;
    verify::RangeReport report;
    std::vector<verify::Diagnostic> diags;
};

using ParseRef = std::shared_ptr<const ParseArtifact>;
using CompileRef = std::shared_ptr<const CompileArtifact>;
using AssembleRef = std::shared_ptr<const AssembleArtifact>;
using ReorgRef = std::shared_ptr<const ReorgArtifact>;
using VerifyRef = std::shared_ptr<const VerifyArtifact>;
using TvRef = std::shared_ptr<const TvArtifact>;
using SimRef = std::shared_ptr<const SimArtifact>;
using CostRef = std::shared_ptr<const CostArtifact>;
using RangeRef = std::shared_ptr<const RangeArtifact>;

// ------------------------------------------------------------- stats

/** The cached stages, in dependency order. */
enum class Stage
{
    PARSE,
    COMPILE,
    ASSEMBLE,
    REORGANIZE,
    HAZARD_VERIFY,
    TRANSLATION_VALIDATE,
    SIMULATE,
    COST_MODEL,
    VALUE_RANGE,
};

constexpr size_t kStageCount = 9;

/** Stage name for tables and logs. */
const char *stageName(Stage stage);

/** Shards per stage cache (power of two). Distinct keys hash to
 *  independent shards, so unrelated lookups never contend on a lock
 *  — the same striping discipline as the obs::Registry cells. */
constexpr size_t kCacheShards = 16;

/** Shard index a cache key lands on (exposed for the shard
 *  distribution tests). */
size_t cacheShardOf(std::string_view key);

/** Counters for one stage of one session. The same counts are also
 *  mirrored into the process-wide obs::Registry under
 *  `pipeline.<stage>.*` (see docs/METRICS.md). */
struct StageCounters
{
    uint64_t hits = 0;        ///< artifact served from the cache
    uint64_t misses = 0;      ///< artifact computed (includes errors)
    uint64_t wait_blocks = 0; ///< hits that blocked on an in-flight miss
    double miss_ms = 0;       ///< wall time spent computing, milliseconds
};

/** Snapshot of a session's per-stage counters. */
struct PipelineStats
{
    StageCounters stage[kStageCount];
    /** Times a lookup found its cache shard's lock held by another
     *  thread (summed over every stage's shards). The sharded design
     *  keeps this near zero for distinct-key workloads. */
    uint64_t shard_conflicts = 0;

    uint64_t hits() const;
    uint64_t misses() const;
    double missMs() const;

    /** Render as a paper-style text table (support::TextTable). */
    std::string table() const;
};

// ----------------------------------------------------------- session

/**
 * One cached toolchain instance. Methods are safe to call from any
 * number of threads; artifacts are immutable once returned.
 */
class Session
{
  public:
    Session();
    ~Session();

    Session(const Session &) = delete;
    Session &operator=(const Session &) = delete;

    /** Parse + analyze Pascal-like source under a layout. */
    support::Result<ParseRef> parse(std::string_view source,
                                    plc::Layout layout);

    /** Compile Pascal-like source to (peephole-optimized) legal code. */
    support::Result<CompileRef>
    compile(std::string_view source,
            const StageOptions &options = StageOptions{});

    /** Parse assembly text into a unit (no link). */
    support::Result<AssembleRef> assemble(std::string_view asm_text);

    /** Compile, reorganize, and link. */
    support::Result<ReorgRef>
    reorganize(std::string_view source,
               const StageOptions &options = StageOptions{});

    /** Statically verify the reorganization (hazards + lints). */
    support::Result<VerifyRef>
    hazardVerify(std::string_view source,
                 const StageOptions &options = StageOptions{});

    /** Symbolically prove the reorganized unit equivalent. */
    support::Result<TvRef>
    translationValidate(std::string_view source,
                        const StageOptions &options = StageOptions{});

    /** Run the linked program on the pipeline machine. */
    support::Result<SimRef>
    simulate(std::string_view source,
             const StageOptions &options = StageOptions{});

    /** Build the call graph and static cycle-cost report for the
     *  reorganized unit. */
    support::Result<CostRef>
    costModel(std::string_view source,
              const StageOptions &options = StageOptions{});

    /** Run the value-range analysis and memory-safety checks over the
     *  reorganized unit. */
    support::Result<RangeRef>
    valueRange(std::string_view source,
               const StageOptions &options = StageOptions{});

    /** Snapshot the per-stage counters. */
    PipelineStats stats() const;

    /** Drop every cached artifact and zero the counters. */
    void clear();

  private:
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

/**
 * The process-wide session shared by the experiment drivers and the
 * bench binaries, so printing a table and then benchmarking it reuses
 * the same compile/simulate artifacts instead of redoing them.
 */
Session &sharedSession();

// -------------------------------------------------- batched chains

/** Which stages a chain run executes. Compile always runs; the
 *  verify/validate/simulate stages imply reorganize. */
struct ChainSpec
{
    bool reorganize = true;
    bool hazard_verify = false;
    bool translation_validate = false;
    bool simulate = false;
    bool cost_model = false;
    bool value_range = false;
};

/** Outcome of one program's chain. Refs are null for stages that
 *  were not requested or not reached. */
struct ChainResult
{
    std::string name;
    CompileRef compile;
    ReorgRef reorg;
    VerifyRef verify;
    TvRef tv;
    SimRef sim;
    CostRef cost;
    RangeRef range;
    /** First failing stage's message; empty on success. Note that a
     *  failing *report* (hazard or TV errors) is a successful chain —
     *  the artifact carries the diagnostics. */
    std::string error;
    double elapsed_ms = 0; ///< wall time of this chain's stage calls

    bool ok() const { return error.empty(); }
};

/**
 * The chain the differential fuzzer (src/fuzz) runs per matrix
 * configuration: every trust layer at once — hazard verify, strict
 * TV, simulation, cost parity, and value range. Callers may switch
 * individual oracles off afterwards (`DiffOptions`).
 */
ChainSpec fuzzOracleChain();

/**
 * Run every corpus program through the requested stages on a
 * fixed-size thread pool (`jobs`), collecting results in input order.
 * Deterministic: the result vector is element-wise identical to a
 * `jobs == 1` run (elapsed_ms aside).
 */
std::vector<ChainResult>
runAll(Session &session,
       const std::vector<workload::CorpusProgram> &corpus,
       const ChainSpec &stages, const StageOptions &options,
       unsigned jobs);

} // namespace mips::pipeline
