/**
 * @file
 * Abstract syntax for the Pascal-like language.
 *
 * The language is the slice of Pascal the paper's data set exercises:
 * integer/char/boolean scalars, (packed) arrays, constants,
 * procedures and functions with scalar value parameters, the usual
 * structured statements, and console-output builtins. Multiplication
 * and division lower to runtime routines (the hardware has only
 * multiply/divide *steps*, in keeping with the paper's minimal-ALU
 * stance).
 */
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "plc/token.h"

namespace mips::plc {

/** Scalar base types. */
enum class BaseType : uint8_t
{
    INTEGER,
    CHAR,
    BOOLEAN,
};

std::string baseTypeName(BaseType type);

/** A (possibly array) type. */
struct Type
{
    BaseType base = BaseType::INTEGER;
    bool is_array = false;
    bool packed = false; ///< `packed array`: always byte-allocated
    int32_t lo = 0;      ///< array index range, inclusive
    int32_t hi = 0;

    int32_t
    elementCount() const
    {
        return hi - lo + 1;
    }

    bool operator==(const Type &) const = default;
};

struct Symbol; // defined in sema.h

/** Expression node. */
struct Expr
{
    enum class Kind
    {
        INT_LIT,
        CHAR_LIT,
        BOOL_LIT,
        VAR,    ///< scalar variable or named constant
        INDEX,  ///< array[index]
        BINOP,  ///< lhs op rhs
        UNOP,   ///< op lhs (NOT, unary minus)
        CALL,   ///< function call (including ord/chr builtins)
    };

    Kind kind = Kind::INT_LIT;
    int line = 0;

    int32_t int_value = 0;  ///< INT_LIT
    char char_value = 0;    ///< CHAR_LIT
    bool bool_value = false;///< BOOL_LIT
    std::string name;       ///< VAR / INDEX / CALL
    Tok op = Tok::PLUS;     ///< BINOP / UNOP
    std::unique_ptr<Expr> lhs, rhs;
    std::vector<std::unique_ptr<Expr>> args; ///< CALL

    // Filled by semantic analysis.
    BaseType type = BaseType::INTEGER;
    const Symbol *symbol = nullptr; ///< VAR / INDEX / CALL target
};

using ExprPtr = std::unique_ptr<Expr>;

struct Stmt;

/** One arm of a CASE statement. */
struct CaseArm
{
    std::vector<ExprPtr> labels; ///< constant label expressions
    std::vector<std::unique_ptr<Stmt>> body;

    // Filled by semantic analysis.
    std::vector<int32_t> values; ///< resolved label constants
};

/** Statement node. */
struct Stmt
{
    enum class Kind
    {
        ASSIGN,  ///< name[index]? := value
        IF,
        WHILE,
        REPEAT,
        FOR,
        CASE,    ///< case selector of v: stmt; ... else ... end
        CALL,    ///< procedure call (including write builtins)
        EMPTY,
    };

    Kind kind = Kind::EMPTY;
    int line = 0;

    std::string name;   ///< ASSIGN target / FOR variable / CALL name
    ExprPtr index;      ///< ASSIGN to array element
    ExprPtr value;      ///< ASSIGN right-hand side
    ExprPtr cond;       ///< IF / WHILE / REPEAT(until)
    ExprPtr from, to;   ///< FOR bounds
    bool downto = false;
    std::vector<std::unique_ptr<Stmt>> body;
    std::vector<std::unique_ptr<Stmt>> else_body; ///< IF / CASE else
    std::vector<CaseArm> arms; ///< CASE
    std::vector<ExprPtr> args; ///< CALL

    // Filled by semantic analysis.
    const Symbol *symbol = nullptr; ///< ASSIGN/FOR/CALL target
};

using StmtPtr = std::unique_ptr<Stmt>;

/** Named constant declaration. */
struct ConstDecl
{
    std::string name;
    int32_t value = 0;
    bool is_char = false;
    int line = 0;
};

/** Variable declaration. */
struct VarDecl
{
    std::string name;
    Type type;
    int line = 0;
};

/** Scalar value parameter. */
struct Param
{
    std::string name;
    BaseType type = BaseType::INTEGER;
};

/** Procedure or function. */
struct Routine
{
    std::string name;
    bool is_function = false;
    BaseType return_type = BaseType::INTEGER;
    std::vector<Param> params;
    std::vector<ConstDecl> consts;
    std::vector<VarDecl> locals;
    std::vector<StmtPtr> body;
    int line = 0;
};

/** A whole program. */
struct ProgramAst
{
    std::string name;
    std::vector<ConstDecl> consts;
    std::vector<VarDecl> globals;
    std::vector<Routine> routines;
    std::vector<StmtPtr> body;
};

} // namespace mips::plc
