#include "plc/codegen.h"

#include <algorithm>
#include <map>

#include "asm/assembler.h"
#include "plc/parser.h"
#include "support/bits.h"
#include "support/logging.h"
#include "support/strings.h"

namespace mips::plc {

using support::Error;
using support::Result;
using support::strprintf;

namespace {

constexpr int kEvalBase = 1;  ///< first eval-stack register
constexpr int kEvalDepthMax = 8;
constexpr int kScratch = 9;   ///< r9
constexpr uint32_t kConsole = 0x000ff000;

struct GenFailure
{
};

class CodeGen
{
  public:
    CodeGen(const ProgramAst &program, const SemaResult &sema,
            const CompileOptions &options)
        : program_(program), sema_(sema), options_(options)
    {}

    Result<Compiled> run();

  private:
    [[noreturn]] void fail(int line, const std::string &message);

    // --- Emission ------------------------------------------------------
    void emit(const std::string &text);
    void emitRef(const std::string &text, uint8_t size, bool is_char);
    void emitLabel(const std::string &name);
    std::string freshLabel();

    // --- Register stack -------------------------------------------------
    std::string reg(int depth) const;
    int push(int line);
    void pop(int n = 1);

    // --- Helpers ---------------------------------------------------------
    void loadLiteral(int32_t value, const std::string &rd, int line);
    void addConst(const std::string &rs, int32_t value,
                  const std::string &rd, int line);
    int spillSlot(int index) const;
    void adjustSp(int delta_words, bool down);

    // --- Expressions -----------------------------------------------------
    void genExpr(const Expr &expr);
    void genScalarLoad(const Symbol &sym, const std::string &rd);
    void genScalarStore(const Symbol &sym, const std::string &rs);
    void genArrayBase(const Symbol &sym, const std::string &rd,
                      int line);
    void genIndexAdjust(const Symbol &sym, const std::string &ri,
                        int line);
    void genCall(const Expr &expr);
    isa::Cond relCond(Tok op, int line) const;

    // --- Conditions -------------------------------------------------------
    void genCondBranch(const Expr &expr, const std::string &label,
                       bool branch_if_true);
    void genRelBranch(const Expr &expr, const std::string &label,
                      bool branch_if_true);

    // --- Statements ---------------------------------------------------------
    void genStmts(const std::vector<StmtPtr> &body);
    void genStmt(const Stmt &stmt);
    void genRoutineCall(const std::string &fn_label,
                        const std::vector<ExprPtr> &args, bool has_result,
                        int line);

    void genRoutine(const Routine &routine, int index);
    void emitRuntime();
    void emitGlobals();

    const ProgramAst &program_;
    const SemaResult &sema_;
    const CompileOptions &options_;

    std::string text_;
    int line_no_ = 1;
    std::map<int, std::pair<uint8_t, bool>> annotations_;
    int depth_ = 0;
    int next_label_ = 0;
    const FrameInfo *frame_ = nullptr;
    int for_depth_ = 0;
    Error error_;
};

void
CodeGen::fail(int line, const std::string &message)
{
    error_ = Error{message, line, 0};
    throw GenFailure{};
}

void
CodeGen::emit(const std::string &text)
{
    text_ += "    " + text + "\n";
    ++line_no_;
}

void
CodeGen::emitRef(const std::string &text, uint8_t size, bool is_char)
{
    annotations_[line_no_] = {size, is_char};
    emit(text);
}

void
CodeGen::emitLabel(const std::string &name)
{
    text_ += name + ":\n";
    ++line_no_;
}

std::string
CodeGen::freshLabel()
{
    return strprintf("P$%d", next_label_++);
}

std::string
CodeGen::reg(int depth) const
{
    return strprintf("r%d", kEvalBase + depth - 1);
}

int
CodeGen::push(int line)
{
    if (depth_ >= kEvalDepthMax)
        fail(line, "expression too complex (evaluation stack overflow)");
    return ++depth_;
}

void
CodeGen::pop(int n)
{
    depth_ -= n;
    if (depth_ < 0)
        support::panic("CodeGen: evaluation stack underflow");
}

void
CodeGen::loadLiteral(int32_t value, const std::string &rd, int line)
{
    if (value >= 0 && value <= 15) {
        // add r0, #k is preferred over movi: the ADD form fits the
        // packed word format, giving the reorganizer more to pack.
        emit(strprintf("add r0, #%d, %s", value, rd.c_str()));
    } else if (value >= 0 && value <= 255) {
        emit(strprintf("movi #%d, %s", value, rd.c_str()));
    } else if (support::fitsSigned(value, isa::kLongImmBits)) {
        emit(strprintf("ldi #%d, %s", value, rd.c_str()));
    } else {
        fail(line, strprintf("constant %d too large for code "
                             "generation", value));
    }
}

void
CodeGen::addConst(const std::string &rs, int32_t value,
                  const std::string &rd, int line)
{
    if (value == 0) {
        if (rs != rd)
            emit(strprintf("mov %s, %s", rs.c_str(), rd.c_str()));
        return;
    }
    if (value > 0 && value <= 15) {
        emit(strprintf("add %s, #%d, %s", rs.c_str(), value,
                       rd.c_str()));
    } else if (value < 0 && value >= -15) {
        emit(strprintf("sub %s, #%d, %s", rs.c_str(), -value,
                       rd.c_str()));
    } else {
        loadLiteral(value, "r9", line);
        emit(strprintf("add %s, r9, %s", rs.c_str(), rd.c_str()));
    }
}

int
CodeGen::spillSlot(int index) const
{
    return frame_->temps_base + index;
}

void
CodeGen::adjustSp(int delta_words, bool down)
{
    const char *op = down ? "sub" : "add";
    if (delta_words <= 15) {
        emit(strprintf("%s r14, #%d, r14", op, delta_words));
    } else {
        loadLiteral(delta_words, "r9", 0);
        emit(strprintf("%s r14, r9, r14", op));
    }
}

isa::Cond
CodeGen::relCond(Tok op, int line) const
{
    switch (op) {
      case Tok::EQ: return isa::Cond::EQ;
      case Tok::NE: return isa::Cond::NE;
      case Tok::LT: return isa::Cond::LT;
      case Tok::LE: return isa::Cond::LE;
      case Tok::GT: return isa::Cond::GT;
      case Tok::GE: return isa::Cond::GE;
      default:
        break;
    }
    const_cast<CodeGen *>(this)->fail(line, "bad relational operator");
}

void
CodeGen::genScalarLoad(const Symbol &sym, const std::string &rd)
{
    bool is_char = sym.type.base == BaseType::CHAR;
    switch (sym.kind) {
      case SymKind::GLOBAL_VAR:
        emitRef(strprintf("ld @%s, %s", sym.label.c_str(), rd.c_str()),
                32, is_char);
        break;
      case SymKind::LOCAL_VAR:
      case SymKind::PARAM:
      case SymKind::RESULT:
        emitRef(strprintf("ld %d(r14), %s", sym.frame_offset,
                          rd.c_str()),
                32, is_char);
        break;
      default:
        support::panic("genScalarLoad: bad symbol kind");
    }
}

void
CodeGen::genScalarStore(const Symbol &sym, const std::string &rs)
{
    bool is_char = sym.type.base == BaseType::CHAR;
    switch (sym.kind) {
      case SymKind::GLOBAL_VAR:
        emitRef(strprintf("st %s, @%s", rs.c_str(), sym.label.c_str()),
                32, is_char);
        break;
      case SymKind::LOCAL_VAR:
      case SymKind::PARAM:
      case SymKind::RESULT:
        emitRef(strprintf("st %s, %d(r14)", rs.c_str(),
                          sym.frame_offset),
                32, is_char);
        break;
      default:
        support::panic("genScalarStore: bad symbol kind");
    }
}

void
CodeGen::genArrayBase(const Symbol &sym, const std::string &rd, int line)
{
    if (sym.kind == SymKind::GLOBAL_VAR) {
        emit(strprintf("la %s, %s", sym.label.c_str(), rd.c_str()));
    } else {
        // Local array: base = sp + offset.
        if (sym.frame_offset <= 15) {
            emit(strprintf("add r14, #%d, %s", sym.frame_offset,
                           rd.c_str()));
        } else {
            loadLiteral(sym.frame_offset, "r9", line);
            emit(strprintf("add r14, r9, %s", rd.c_str()));
        }
    }
}

void
CodeGen::genIndexAdjust(const Symbol &sym, const std::string &ri,
                        int line)
{
    if (sym.type.lo != 0)
        addConst(ri, -sym.type.lo, ri, line);
}

void
CodeGen::genExpr(const Expr &expr)
{
    switch (expr.kind) {
      case Expr::Kind::INT_LIT: {
        std::string rd = reg(push(expr.line));
        loadLiteral(expr.int_value, rd, expr.line);
        return;
      }
      case Expr::Kind::CHAR_LIT: {
        std::string rd = reg(push(expr.line));
        loadLiteral(static_cast<unsigned char>(expr.char_value), rd,
                    expr.line);
        return;
      }
      case Expr::Kind::BOOL_LIT: {
        std::string rd = reg(push(expr.line));
        loadLiteral(expr.bool_value ? 1 : 0, rd, expr.line);
        return;
      }

      case Expr::Kind::VAR: {
        const Symbol &sym = *expr.symbol;
        std::string rd = reg(push(expr.line));
        if (sym.kind == SymKind::CONSTANT)
            loadLiteral(sym.const_value, rd, expr.line);
        else
            genScalarLoad(sym, rd);
        return;
      }

      case Expr::Kind::INDEX: {
        const Symbol &sym = *expr.symbol;
        genExpr(*expr.lhs); // index
        std::string ri = reg(depth_);
        genIndexAdjust(sym, ri, expr.line);
        std::string rb = reg(push(expr.line));
        genArrayBase(sym, rb, expr.line);
        bool is_char = sym.type.base == BaseType::CHAR;
        if (sym.byte_packed) {
            // The paper's load-byte sequence.
            emitRef(strprintf("ld (%s+%s>>2), %s", rb.c_str(),
                              ri.c_str(), rb.c_str()),
                    8, is_char);
            emit(strprintf("xc %s, %s, %s", ri.c_str(), rb.c_str(),
                           ri.c_str()));
        } else {
            emitRef(strprintf("ld (%s+%s), %s", rb.c_str(), ri.c_str(),
                              ri.c_str()),
                    32, is_char);
        }
        pop(); // base register
        return;
      }

      case Expr::Kind::BINOP: {
        // Boolean and/or in value context and relations use flat
        // evaluation; arithmetic folds small right immediates.
        if (expr.op == Tok::PLUS || expr.op == Tok::MINUS) {
            genExpr(*expr.lhs);
            if (expr.rhs->kind == Expr::Kind::INT_LIT &&
                expr.rhs->int_value >= 0 &&
                expr.rhs->int_value <= 15) {
                std::string ra = reg(depth_);
                emit(strprintf("%s %s, #%d, %s",
                               expr.op == Tok::PLUS ? "add" : "sub",
                               ra.c_str(), expr.rhs->int_value,
                               ra.c_str()));
                return;
            }
            genExpr(*expr.rhs);
            std::string rb = reg(depth_);
            std::string ra = reg(depth_ - 1);
            emit(strprintf("%s %s, %s, %s",
                           expr.op == Tok::PLUS ? "add" : "sub",
                           ra.c_str(), rb.c_str(), ra.c_str()));
            pop();
            return;
        }
        if (expr.op == Tok::STAR || expr.op == Tok::KW_DIV ||
            expr.op == Tok::KW_MOD) {
            genExpr(*expr.lhs);
            genExpr(*expr.rhs);
            std::string rb = reg(depth_);
            std::string ra = reg(depth_ - 1);
            emit(strprintf("mov %s, r10", ra.c_str()));
            emit(strprintf("mov %s, r11", rb.c_str()));
            const char *fn = expr.op == Tok::STAR ? "$mul"
                : expr.op == Tok::KW_DIV ? "$div" : "$mod";
            emit(strprintf("call %s, r15", fn));
            emit(strprintf("mov r12, %s", ra.c_str()));
            pop();
            return;
        }
        if (expr.op == Tok::KW_AND || expr.op == Tok::KW_OR) {
            genExpr(*expr.lhs);
            genExpr(*expr.rhs);
            std::string rb = reg(depth_);
            std::string ra = reg(depth_ - 1);
            emit(strprintf("%s %s, %s, %s",
                           expr.op == Tok::KW_AND ? "and" : "or",
                           ra.c_str(), rb.c_str(), ra.c_str()));
            pop();
            return;
        }
        // Relational: the set-conditionally instruction (Figure 3).
        isa::Cond cond = relCond(expr.op, expr.line);
        genExpr(*expr.lhs);
        if (expr.rhs->kind == Expr::Kind::INT_LIT &&
            expr.rhs->int_value >= 0 && expr.rhs->int_value <= 15) {
            std::string ra = reg(depth_);
            emit(strprintf("set%s %s, #%d, %s",
                           isa::condName(cond).c_str(), ra.c_str(),
                           expr.rhs->int_value, ra.c_str()));
            return;
        }
        genExpr(*expr.rhs);
        std::string rb = reg(depth_);
        std::string ra = reg(depth_ - 1);
        emit(strprintf("set%s %s, %s, %s", isa::condName(cond).c_str(),
                       ra.c_str(), rb.c_str(), ra.c_str()));
        pop();
        return;
      }

      case Expr::Kind::UNOP: {
        genExpr(*expr.lhs);
        std::string ra = reg(depth_);
        if (expr.op == Tok::MINUS) {
            emit(strprintf("rsub %s, #0, %s", ra.c_str(), ra.c_str()));
        } else {
            emit(strprintf("xor %s, #1, %s", ra.c_str(), ra.c_str()));
        }
        return;
      }

      case Expr::Kind::CALL:
        genCall(expr);
        return;
    }
    support::panic("genExpr: bad kind");
}

void
CodeGen::genCall(const Expr &expr)
{
    const Symbol &sym = *expr.symbol;
    if (sym.routine_index < 0) {
        // ord/chr: the representation is already the value.
        genExpr(*expr.args[0]);
        return;
    }
    const Routine &routine =
        program_.routines[static_cast<size_t>(sym.routine_index)];
    std::vector<ExprPtr> const &args = expr.args;
    genRoutineCall("fn_" + routine.name, args, routine.is_function,
                   expr.line);
}

void
CodeGen::genRoutineCall(const std::string &fn_label,
                        const std::vector<ExprPtr> &args,
                        bool has_result, int line)
{
    int d = depth_;
    // Arguments stack on top of the live evaluation registers.
    for (const ExprPtr &arg : args)
        genExpr(*arg);

    // Spill the caller's live evaluation registers.
    for (int i = 1; i <= d; ++i) {
        emit(strprintf("st r%d, %d(r14)", kEvalBase + i - 1,
                       spillSlot(i - 1)));
    }
    // Slide the arguments down into r1..rn.
    for (size_t i = 0; i < args.size(); ++i) {
        int src = kEvalBase + d + static_cast<int>(i);
        int dst = kEvalBase + static_cast<int>(i);
        if (src != dst)
            emit(strprintf("mov r%d, r%d", src, dst));
    }
    emit(strprintf("call %s, r15", fn_label.c_str()));
    pop(static_cast<int>(args.size()));

    if (has_result && d > 0)
        emit("mov r1, r9");
    for (int i = 1; i <= d; ++i) {
        emit(strprintf("ld %d(r14), r%d", spillSlot(i - 1),
                       kEvalBase + i - 1));
    }
    if (has_result) {
        std::string rd = reg(push(line));
        if (d > 0)
            emit(strprintf("mov r9, %s", rd.c_str()));
        else if (rd != "r1")
            emit(strprintf("mov r1, %s", rd.c_str()));
    }
}

void
CodeGen::genRelBranch(const Expr &expr, const std::string &label,
                      bool branch_if_true)
{
    isa::Cond cond = relCond(expr.op, expr.line);
    if (!branch_if_true)
        cond = isa::negateCond(cond);

    genExpr(*expr.lhs);
    if (expr.rhs->kind == Expr::Kind::INT_LIT &&
        expr.rhs->int_value >= 0 && expr.rhs->int_value <= 15) {
        std::string ra = reg(depth_);
        emit(strprintf("b%s %s, #%d, %s", isa::condName(cond).c_str(),
                       ra.c_str(), expr.rhs->int_value, label.c_str()));
        pop();
        return;
    }
    genExpr(*expr.rhs);
    std::string rb = reg(depth_);
    std::string ra = reg(depth_ - 1);
    emit(strprintf("b%s %s, %s, %s", isa::condName(cond).c_str(),
                   ra.c_str(), rb.c_str(), label.c_str()));
    pop(2);
}

void
CodeGen::genCondBranch(const Expr &expr, const std::string &label,
                       bool branch_if_true)
{
    switch (expr.kind) {
      case Expr::Kind::BINOP:
        switch (expr.op) {
          case Tok::EQ: case Tok::NE: case Tok::LT:
          case Tok::LE: case Tok::GT: case Tok::GE:
            genRelBranch(expr, label, branch_if_true);
            return;
          case Tok::KW_AND:
            if (!branch_if_true) {
                // Early-out: false if either side is false.
                genCondBranch(*expr.lhs, label, false);
                genCondBranch(*expr.rhs, label, false);
            } else {
                std::string lfalse = freshLabel();
                genCondBranch(*expr.lhs, lfalse, false);
                genCondBranch(*expr.rhs, label, true);
                emitLabel(lfalse);
            }
            return;
          case Tok::KW_OR:
            if (branch_if_true) {
                genCondBranch(*expr.lhs, label, true);
                genCondBranch(*expr.rhs, label, true);
            } else {
                std::string ltrue = freshLabel();
                genCondBranch(*expr.lhs, ltrue, true);
                genCondBranch(*expr.rhs, label, false);
                emitLabel(ltrue);
            }
            return;
          default:
            break;
        }
        break;
      case Expr::Kind::UNOP:
        if (expr.op == Tok::KW_NOT) {
            genCondBranch(*expr.lhs, label, !branch_if_true);
            return;
        }
        break;
      default:
        break;
    }

    // General boolean value: materialise and compare with zero.
    genExpr(expr);
    std::string ra = reg(depth_);
    emit(strprintf("b%s %s, #0, %s", branch_if_true ? "ne" : "eq",
                   ra.c_str(), label.c_str()));
    pop();
}

void
CodeGen::genStmt(const Stmt &stmt)
{
    switch (stmt.kind) {
      case Stmt::Kind::EMPTY:
        genStmts(stmt.body);
        return;

      case Stmt::Kind::ASSIGN: {
        const Symbol &sym = *stmt.symbol;
        if (!stmt.index) {
            genExpr(*stmt.value);
            genScalarStore(sym, reg(depth_));
            pop();
            return;
        }
        // Array element assignment.
        genExpr(*stmt.value);
        std::string rv = reg(depth_);
        genExpr(*stmt.index);
        std::string ri = reg(depth_);
        genIndexAdjust(sym, ri, stmt.line);
        std::string rb = reg(push(stmt.line));
        genArrayBase(sym, rb, stmt.line);
        bool is_char = sym.type.base == BaseType::CHAR;
        if (sym.byte_packed) {
            // The paper's store-byte sequence (read-modify-write).
            emitRef(strprintf("ld (%s+%s>>2), r9", rb.c_str(),
                              ri.c_str()),
                    0, false);
            emit(strprintf("mtlo %s", ri.c_str()));
            emit(strprintf("ic %s, r9", rv.c_str()));
            emitRef(strprintf("st r9, (%s+%s>>2)", rb.c_str(),
                              ri.c_str()),
                    8, is_char);
        } else {
            emitRef(strprintf("st %s, (%s+%s)", rv.c_str(), rb.c_str(),
                              ri.c_str()),
                    32, is_char);
        }
        pop(3);
        return;
      }

      case Stmt::Kind::IF: {
        std::string lelse = freshLabel();
        genCondBranch(*stmt.cond, lelse, false);
        genStmts(stmt.body);
        if (stmt.else_body.empty()) {
            emitLabel(lelse);
        } else {
            std::string lend = freshLabel();
            emit(strprintf("bra %s", lend.c_str()));
            emitLabel(lelse);
            genStmts(stmt.else_body);
            emitLabel(lend);
        }
        return;
      }

      case Stmt::Kind::WHILE: {
        std::string ltop = freshLabel();
        std::string lend = freshLabel();
        emitLabel(ltop);
        genCondBranch(*stmt.cond, lend, false);
        genStmts(stmt.body);
        emit(strprintf("bra %s", ltop.c_str()));
        emitLabel(lend);
        return;
      }

      case Stmt::Kind::REPEAT: {
        std::string ltop = freshLabel();
        emitLabel(ltop);
        genStmts(stmt.body);
        genCondBranch(*stmt.cond, ltop, false);
        return;
      }

      case Stmt::Kind::FOR: {
        const Symbol &var = *stmt.symbol;
        int limit_slot = spillSlot(kEvalDepthMax + for_depth_);

        genExpr(*stmt.from);
        genScalarStore(var, reg(depth_));
        pop();
        genExpr(*stmt.to);
        emit(strprintf("st %s, %d(r14)", reg(depth_).c_str(),
                       limit_slot));
        pop();

        std::string ltop = freshLabel();
        std::string lend = freshLabel();
        emitLabel(ltop);
        int ri = push(stmt.line);
        genScalarLoad(var, reg(ri));
        int rl = push(stmt.line);
        emit(strprintf("ld %d(r14), %s", limit_slot,
                       reg(rl).c_str()));
        emit(strprintf("b%s %s, %s, %s", stmt.downto ? "lt" : "gt",
                       reg(ri).c_str(), reg(rl).c_str(),
                       lend.c_str()));
        pop(2);

        ++for_depth_;
        genStmts(stmt.body);
        --for_depth_;

        int rv = push(stmt.line);
        genScalarLoad(var, reg(rv));
        emit(strprintf("%s %s, #1, %s", stmt.downto ? "sub" : "add",
                       reg(rv).c_str(), reg(rv).c_str()));
        genScalarStore(var, reg(rv));
        pop();
        emit(strprintf("bra %s", ltop.c_str()));
        emitLabel(lend);
        return;
      }

      case Stmt::Kind::CASE: {
        genExpr(*stmt.cond);
        std::string ra = reg(depth_);
        std::string lend = freshLabel();
        std::string lelse = stmt.else_body.empty() ? lend
                                                   : freshLabel();

        // One landing label per arm; map each label value to it.
        std::vector<std::string> arm_labels;
        std::map<int32_t, std::string> targets;
        int32_t lo = 0, hi = 0;
        size_t count = 0;
        for (const CaseArm &arm : stmt.arms) {
            arm_labels.push_back(freshLabel());
            for (int32_t v : arm.values) {
                if (count == 0 || v < lo)
                    lo = v;
                if (count == 0 || v > hi)
                    hi = v;
                targets[v] = arm_labels.back();
                ++count;
            }
        }
        int64_t span = static_cast<int64_t>(hi) - lo + 1;

        // Dense selectors dispatch through a jump table; sparse (or
        // tiny) ones fall back to a compare-and-branch chain. This is
        // the size/speed knob the dispatch experiment turns.
        bool use_table = options_.jump_tables && count >= 4 &&
                         span <= 2 * static_cast<int64_t>(count) &&
                         span <= 256;
        if (use_table) {
            addConst(ra, -lo, ra, stmt.line);
            if (span <= 15) {
                emit(strprintf("bgeu %s, #%d, %s", ra.c_str(),
                               static_cast<int>(span),
                               lelse.c_str()));
            } else {
                loadLiteral(static_cast<int32_t>(span), "r9",
                            stmt.line);
                emit(strprintf("bgeu %s, r9, %s", ra.c_str(),
                               lelse.c_str()));
            }
            std::string tlab = freshLabel();
            std::string rb = reg(push(stmt.line));
            emit(strprintf("la %s, %s", tlab.c_str(), rb.c_str()));
            emit(strprintf("jtab (%s+%s), %s", rb.c_str(), ra.c_str(),
                           tlab.c_str()));
            pop(2);
            emitLabel(tlab);
            for (int64_t v = lo; v <= hi; ++v) {
                auto it = targets.find(static_cast<int32_t>(v));
                const std::string &entry =
                    it != targets.end() ? it->second : lelse;
                emit(strprintf(".word %s", entry.c_str()));
            }
        } else {
            for (const auto &[v, label] : targets) {
                if (v >= 0 && v <= 15) {
                    emit(strprintf("beq %s, #%d, %s", ra.c_str(), v,
                                   label.c_str()));
                } else {
                    loadLiteral(v, "r9", stmt.line);
                    emit(strprintf("beq %s, r9, %s", ra.c_str(),
                                   label.c_str()));
                }
            }
            emit(strprintf("bra %s", lelse.c_str()));
            pop();
        }

        for (size_t i = 0; i < stmt.arms.size(); ++i) {
            emitLabel(arm_labels[i]);
            genStmts(stmt.arms[i].body);
            emit(strprintf("bra %s", lend.c_str()));
        }
        if (!stmt.else_body.empty()) {
            emitLabel(lelse);
            genStmts(stmt.else_body);
        }
        emitLabel(lend);
        return;
      }

      case Stmt::Kind::CALL: {
        const Symbol &sym = *stmt.symbol;
        if (sym.routine_index < 0) {
            if (stmt.name == "writeint") {
                genExpr(*stmt.args[0]);
                emit(strprintf("mov %s, r10", reg(depth_).c_str()));
                emit("call $writeint, r15");
                pop();
                return;
            }
            if (stmt.name == "writechar") {
                genExpr(*stmt.args[0]);
                emit(strprintf("ldi #%u, r9", kConsole));
                emit(strprintf("st %s, (r9)", reg(depth_).c_str()));
                pop();
                return;
            }
            fail(stmt.line, "unknown builtin '" + stmt.name + "'");
        }
        const Routine &routine =
            program_.routines[static_cast<size_t>(sym.routine_index)];
        genRoutineCall("fn_" + routine.name, stmt.args, false,
                       stmt.line);
        return;
      }
    }
    support::panic("genStmt: bad kind");
}

void
CodeGen::genStmts(const std::vector<StmtPtr> &body)
{
    for (const StmtPtr &stmt : body)
        genStmt(*stmt);
}

void
CodeGen::genRoutine(const Routine &routine, int index)
{
    frame_ = &sema_.frames[static_cast<size_t>(index)];
    for_depth_ = 0;
    depth_ = 0;

    emitLabel("fn_" + routine.name);
    adjustSp(frame_->size, true);
    emit("st r15, 0(r14)");
    for (size_t i = 0; i < routine.params.size(); ++i) {
        // Parameters arrive in r1..r4; their slots follow the link.
        emit(strprintf("st r%d, %zu(r14)", kEvalBase + static_cast<int>(i),
                       i + 1));
    }
    genStmts(routine.body);
    if (routine.is_function) {
        // The result slot follows the params and locals.
        int result_offset = frame_->temps_base - 1;
        emit(strprintf("ld %d(r14), r1", result_offset));
    }
    emit("ld 0(r14), r15");
    adjustSp(frame_->size, false);
    emit("jmp (r15)");
}

void
CodeGen::emitRuntime()
{
    static const char *const kRuntime = R"(
$mul:
    movi #0, r12
$mul_loop:
    beq r11, #0, $mul_done
    bevn r11, #0, $mul_skip
    add r12, r10, r12
$mul_skip:
    sll r10, #1, r10
    srl r11, #1, r11
    bra $mul_loop
$mul_done:
    jmp (r15)
$divmod:
    mtlo r10
    movi #0, r12
    movi #32, r9
$dm_loop:
    dstep r11, r12
    sub r9, #1, r9
    bgt r9, #0, $dm_loop
    mflo r10
    jmp (r15)
$div:
    st r15, @$rt_save
    xor r10, r11, r13
    bge r10, #0, $div_a
    rsub r10, #0, r10
$div_a:
    bge r11, #0, $div_b
    rsub r11, #0, r11
$div_b:
    call $divmod, r15
    mov r10, r12
    bge r13, #0, $div_done
    rsub r12, #0, r12
$div_done:
    ld @$rt_save, r15
    jmp (r15)
$mod:
    st r15, @$rt_save
    mov r10, r13
    bge r10, #0, $mod_a
    rsub r10, #0, r10
$mod_a:
    bge r11, #0, $mod_b
    rsub r11, #0, r11
$mod_b:
    call $divmod, r15
    bge r13, #0, $mod_done
    rsub r12, #0, r12
$mod_done:
    ld @$rt_save, r15
    jmp (r15)
$writeint:
    st r15, @$wi_save
    ldi #1044480, r13
    bne r10, #0, $wi_nonzero
    movi #'0', r9
    st r9, (r13)
    bra $wi_return
$wi_nonzero:
    bge r10, #0, $wi_pos
    movi #'-', r9
    st r9, (r13)
    rsub r10, #0, r10
$wi_pos:
    movi #0, r12
    st r12, @$wi_n
$wi_loop:
    movi #10, r11
    call $divmod, r15
    ld @$wi_n, r11
    la $wi_buf, r9
    st r12, (r9+r11)
    add r11, #1, r11
    st r11, @$wi_n
    bne r10, #0, $wi_loop
$wi_out:
    ld @$wi_n, r11
    sub r11, #1, r11
    st r11, @$wi_n
    la $wi_buf, r9
    ld (r9+r11), r12
    movi #48, r10
    add r12, r10, r12
    st r12, (r13)
    ld @$wi_n, r11
    bgt r11, #0, $wi_out
$wi_return:
    ld @$wi_save, r15
    jmp (r15)
$rt_save: .word 0
$wi_save: .word 0
$wi_n: .word 0
$wi_buf: .space 12
)";
    for (std::string_view piece : support::split(kRuntime, '\n')) {
        text_ += std::string(piece) + "\n";
        ++line_no_;
    }
    // The leading blank line of the raw string adds one line; the
    // split also yields a trailing empty segment. Recount precisely.
    line_no_ = 1;
    for (char c : text_)
        if (c == '\n')
            ++line_no_;
}

void
CodeGen::emitGlobals()
{
    for (const Symbol &sym : sema_.symbols) {
        if (sym.kind == SymKind::GLOBAL_VAR) {
            emitLabel(sym.label);
            emit(strprintf(".space %d", sym.sizeWords()));
        }
    }
}

Result<Compiled>
CodeGen::run()
{
    try {
        // Entry: set up the stack, run the main body, halt.
        const FrameInfo &main_frame = sema_.frames.back();
        frame_ = &main_frame;
        emit(strprintf("li #%u, r14", options_.stack_top));
        adjustSp(main_frame.size, true);
        genStmts(program_.body);
        emit("halt");

        for (size_t i = 0; i < program_.routines.size(); ++i)
            genRoutine(program_.routines[i], static_cast<int>(i));

        emitRuntime();
        emitGlobals();

        auto unit = assembler::parse(text_);
        if (!unit.ok()) {
            support::panic("generated assembly failed to parse: %s\n%s",
                           unit.error().str().c_str(), text_.c_str());
        }

        Compiled out;
        out.unit = unit.take();
        out.asm_text = text_;

        // Apply the reference annotations by source line.
        for (assembler::Item &item : out.unit.items) {
            auto it = annotations_.find(item.source_line);
            if (it != annotations_.end()) {
                item.ref_size = it->second.first;
                item.ref_is_char = it->second.second;
            }
        }
        return out;
    } catch (const GenFailure &) {
        return error_;
    }
}

} // namespace

Result<Compiled>
generateCode(const ProgramAst &program, const SemaResult &sema,
             const CompileOptions &options)
{
    CodeGen gen(program, sema, options);
    return gen.run();
}

Result<Compiled>
compile(std::string_view source, const CompileOptions &options)
{
    auto ast = parseProgram(source);
    if (!ast.ok())
        return ast.error();
    ProgramAst program = ast.take();
    auto sema = analyze(program, options.layout);
    if (!sema.ok())
        return sema.error();
    return generateCode(program, sema.value(), options);
}

} // namespace mips::plc
