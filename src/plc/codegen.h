/**
 * @file
 * MIPS code generation for the Pascal-like language.
 *
 * The generator emits *legal code* (sequential semantics, one piece
 * per word): scheduling, packing, and delay-slot filling belong to the
 * reorganizer post-pass, exactly as the paper divides the work.
 *
 * Conventions:
 *  - r0 zero; r1..r8 expression evaluation stack; r9 code-generator
 *    scratch; r10..r13 runtime-routine arguments and scratch;
 *    r14 stack pointer; r15 link.
 *  - Frames grow downward; slot 0 holds the saved link, then
 *    parameters (stored from r1..r4 in the prologue), locals, the
 *    function-result slot, then spill/loop temporaries.
 *  - Multiplication, division, modulo, and decimal output lower to
 *    runtime routines ($mul, $div, $mod, $writeint) appended to every
 *    unit; division is built from the ISA's divide-step.
 *  - Byte-packed array elements use the paper's exact sequences:
 *    load: ld (base+i>>2) ; xc i — store: ld ; mtlo ; ic ; st.
 *  - Every load/store that implements a *logical* data reference
 *    carries a reference annotation (8- or 32-bit, character or not)
 *    used by the Table 7/8 experiments; helper accesses (the
 *    read-modify-write word load of a byte store, spills, address
 *    temporaries) are unannotated.
 */
#pragma once

#include "asm/unit.h"
#include "plc/sema.h"

namespace mips::plc {

/** Compilation options. */
struct CompileOptions
{
    Layout layout = Layout::WORD_ALLOCATED;
    /** Initial stack pointer (grows down). */
    uint32_t stack_top = 0x40000;
    /** Lower dense CASE statements to jump tables (`jtab`); when
     *  false every CASE becomes a branch chain. */
    bool jump_tables = true;
};

/** A compiled program (legal code; run the reorganizer before the
 *  pipeline machine). */
struct Compiled
{
    assembler::Unit unit;
    std::string asm_text; ///< the generated assembly source
};

/**
 * Generate code for an analyzed program. `sema` must come from
 * analyze() on the same (annotated) AST.
 */
support::Result<Compiled> generateCode(const ProgramAst &program,
                                       const SemaResult &sema,
                                       const CompileOptions &options);

/** Parse + analyze + generate in one call. */
support::Result<Compiled> compile(std::string_view source,
                                  const CompileOptions &options =
                                      CompileOptions{});

} // namespace mips::plc
