#include "plc/driver.h"

#include "plc/optimize.h"

namespace mips::plc {

support::Result<Executable>
buildExecutable(std::string_view source,
                const CompileOptions &compile_options,
                const reorg::ReorgOptions &reorg_options)
{
    auto compiled = compile(source, compile_options);
    if (!compiled.ok())
        return compiled.error();

    Executable exe;
    exe.asm_text = compiled.value().asm_text;
    exe.legal_unit = std::move(compiled.value().unit);
    exe.peephole = eliminateRedundantLoads(&exe.legal_unit);

    reorg::ReorgResult reorganized =
        reorg::reorganize(exe.legal_unit, reorg_options);
    exe.reorg_stats = reorganized.stats;
    exe.tv_hints = std::move(reorganized.hints);
    exe.final_unit = std::move(reorganized.unit);

    auto program = assembler::link(exe.final_unit);
    if (!program.ok())
        return program.error();
    exe.program = program.take();
    return exe;
}

} // namespace mips::plc
