/**
 * @file
 * One-call driver: Pascal-like source → reorganized, linked MIPS
 * executable, mirroring the paper's tool chain (compiler front end →
 * code generator → reorganizer post-pass → linked image).
 */
#pragma once

#include "asm/unit.h"
#include "plc/codegen.h"
#include "plc/optimize.h"
#include "reorg/reorganizer.h"

namespace mips::plc {

/** A ready-to-run program plus build metadata. */
struct Executable
{
    assembler::Program program;  ///< linked, pipeline-correct image
    assembler::Unit legal_unit;  ///< peephole-optimized legal code
    assembler::Unit final_unit;  ///< post-reorganization unit
    reorg::ReorgStats reorg_stats;
    /** Scheme-2 provenance, for the translation validator. */
    std::vector<reorg::DupHint> tv_hints;
    PeepholeStats peephole;
    std::string asm_text;        ///< generated assembly source
};

/** Compile, reorganize, and link. */
support::Result<Executable>
buildExecutable(std::string_view source,
                const CompileOptions &compile_options = CompileOptions{},
                const reorg::ReorgOptions &reorg_options =
                    reorg::ReorgOptions{});

} // namespace mips::plc
