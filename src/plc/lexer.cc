#include "plc/lexer.h"

#include <cctype>
#include <map>

#include "support/logging.h"
#include "support/strings.h"

namespace mips::plc {

std::string
tokName(Tok kind)
{
    switch (kind) {
      case Tok::END_OF_FILE: return "end of file";
      case Tok::IDENT:       return "identifier";
      case Tok::INT_LIT:     return "integer literal";
      case Tok::CHAR_LIT:    return "character literal";
      case Tok::KW_PROGRAM:  return "'program'";
      case Tok::KW_CONST:    return "'const'";
      case Tok::KW_VAR:      return "'var'";
      case Tok::KW_ARRAY:    return "'array'";
      case Tok::KW_OF:       return "'of'";
      case Tok::KW_PACKED:   return "'packed'";
      case Tok::KW_INTEGER:  return "'integer'";
      case Tok::KW_CHAR:     return "'char'";
      case Tok::KW_BOOLEAN:  return "'boolean'";
      case Tok::KW_PROCEDURE: return "'procedure'";
      case Tok::KW_FUNCTION: return "'function'";
      case Tok::KW_BEGIN:    return "'begin'";
      case Tok::KW_END:      return "'end'";
      case Tok::KW_IF:       return "'if'";
      case Tok::KW_THEN:     return "'then'";
      case Tok::KW_ELSE:     return "'else'";
      case Tok::KW_CASE:     return "'case'";
      case Tok::KW_WHILE:    return "'while'";
      case Tok::KW_DO:       return "'do'";
      case Tok::KW_REPEAT:   return "'repeat'";
      case Tok::KW_UNTIL:    return "'until'";
      case Tok::KW_FOR:      return "'for'";
      case Tok::KW_TO:       return "'to'";
      case Tok::KW_DOWNTO:   return "'downto'";
      case Tok::KW_AND:      return "'and'";
      case Tok::KW_OR:       return "'or'";
      case Tok::KW_NOT:      return "'not'";
      case Tok::KW_DIV:      return "'div'";
      case Tok::KW_MOD:      return "'mod'";
      case Tok::KW_TRUE:     return "'true'";
      case Tok::KW_FALSE:    return "'false'";
      case Tok::LPAREN:      return "'('";
      case Tok::RPAREN:      return "')'";
      case Tok::LBRACKET:    return "'['";
      case Tok::RBRACKET:    return "']'";
      case Tok::COMMA:       return "','";
      case Tok::SEMI:        return "';'";
      case Tok::COLON:       return "':'";
      case Tok::DOT:         return "'.'";
      case Tok::DOTDOT:      return "'..'";
      case Tok::ASSIGN:      return "':='";
      case Tok::PLUS:        return "'+'";
      case Tok::MINUS:       return "'-'";
      case Tok::STAR:        return "'*'";
      case Tok::EQ:          return "'='";
      case Tok::NE:          return "'<>'";
      case Tok::LT:          return "'<'";
      case Tok::LE:          return "'<='";
      case Tok::GT:          return "'>'";
      case Tok::GE:          return "'>='";
    }
    support::panic("tokName: bad token kind");
}

namespace {

const std::map<std::string, Tok> &
keywords()
{
    static const std::map<std::string, Tok> map = {
        {"program", Tok::KW_PROGRAM}, {"const", Tok::KW_CONST},
        {"var", Tok::KW_VAR}, {"array", Tok::KW_ARRAY},
        {"of", Tok::KW_OF}, {"packed", Tok::KW_PACKED},
        {"integer", Tok::KW_INTEGER}, {"char", Tok::KW_CHAR},
        {"boolean", Tok::KW_BOOLEAN},
        {"procedure", Tok::KW_PROCEDURE},
        {"function", Tok::KW_FUNCTION},
        {"begin", Tok::KW_BEGIN}, {"end", Tok::KW_END},
        {"if", Tok::KW_IF}, {"then", Tok::KW_THEN},
        {"else", Tok::KW_ELSE}, {"case", Tok::KW_CASE},
        {"while", Tok::KW_WHILE},
        {"do", Tok::KW_DO}, {"repeat", Tok::KW_REPEAT},
        {"until", Tok::KW_UNTIL}, {"for", Tok::KW_FOR},
        {"to", Tok::KW_TO}, {"downto", Tok::KW_DOWNTO},
        {"and", Tok::KW_AND}, {"or", Tok::KW_OR},
        {"not", Tok::KW_NOT}, {"div", Tok::KW_DIV},
        {"mod", Tok::KW_MOD}, {"true", Tok::KW_TRUE},
        {"false", Tok::KW_FALSE},
    };
    return map;
}

} // namespace

support::Result<std::vector<Token>>
lex(std::string_view src)
{
    std::vector<Token> out;
    int line = 1, column = 1;
    size_t i = 0;

    auto advance = [&](size_t n = 1) {
        for (size_t k = 0; k < n && i < src.size(); ++k) {
            if (src[i] == '\n') {
                ++line;
                column = 1;
            } else {
                ++column;
            }
            ++i;
        }
    };
    auto error = [&](const std::string &message) {
        return support::Error{message, line, column};
    };
    auto push = [&](Tok kind, int tok_line, int tok_col) -> Token & {
        Token t;
        t.kind = kind;
        t.line = tok_line;
        t.column = tok_col;
        out.push_back(t);
        return out.back();
    };

    while (i < src.size()) {
        char c = src[i];
        if (std::isspace(static_cast<unsigned char>(c))) {
            advance();
            continue;
        }
        // Comments.
        if (c == '{') {
            while (i < src.size() && src[i] != '}')
                advance();
            if (i == src.size())
                return error("unterminated { comment");
            advance();
            continue;
        }
        if (c == '(' && i + 1 < src.size() && src[i + 1] == '*') {
            advance(2);
            while (i + 1 < src.size() &&
                   !(src[i] == '*' && src[i + 1] == ')')) {
                advance();
            }
            if (i + 1 >= src.size())
                return error("unterminated (* comment");
            advance(2);
            continue;
        }

        int tok_line = line, tok_col = column;

        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string ident;
            while (i < src.size() &&
                   (std::isalnum(static_cast<unsigned char>(src[i])) ||
                    src[i] == '_')) {
                ident += static_cast<char>(
                    std::tolower(static_cast<unsigned char>(src[i])));
                advance();
            }
            auto it = keywords().find(ident);
            Token &t = push(it != keywords().end() ? it->second
                                                   : Tok::IDENT,
                            tok_line, tok_col);
            t.text = ident;
            continue;
        }

        if (std::isdigit(static_cast<unsigned char>(c))) {
            int64_t value = 0;
            while (i < src.size() &&
                   std::isdigit(static_cast<unsigned char>(src[i]))) {
                value = value * 10 + (src[i] - '0');
                if (value > 0x7fffffffLL)
                    return error("integer literal too large");
                advance();
            }
            Token &t = push(Tok::INT_LIT, tok_line, tok_col);
            t.int_value = static_cast<int32_t>(value);
            continue;
        }

        if (c == '\'') {
            if (i + 2 >= src.size() || src[i + 2] != '\'')
                return error("bad character literal");
            Token &t = push(Tok::CHAR_LIT, tok_line, tok_col);
            t.char_value = src[i + 1];
            advance(3);
            continue;
        }

        auto two = [&](char second) {
            return i + 1 < src.size() && src[i + 1] == second;
        };
        switch (c) {
          case '(': push(Tok::LPAREN, tok_line, tok_col); advance(); break;
          case ')': push(Tok::RPAREN, tok_line, tok_col); advance(); break;
          case '[': push(Tok::LBRACKET, tok_line, tok_col); advance(); break;
          case ']': push(Tok::RBRACKET, tok_line, tok_col); advance(); break;
          case ',': push(Tok::COMMA, tok_line, tok_col); advance(); break;
          case ';': push(Tok::SEMI, tok_line, tok_col); advance(); break;
          case '+': push(Tok::PLUS, tok_line, tok_col); advance(); break;
          case '-': push(Tok::MINUS, tok_line, tok_col); advance(); break;
          case '*': push(Tok::STAR, tok_line, tok_col); advance(); break;
          case '=': push(Tok::EQ, tok_line, tok_col); advance(); break;
          case ':':
            if (two('=')) {
                push(Tok::ASSIGN, tok_line, tok_col);
                advance(2);
            } else {
                push(Tok::COLON, tok_line, tok_col);
                advance();
            }
            break;
          case '.':
            if (two('.')) {
                push(Tok::DOTDOT, tok_line, tok_col);
                advance(2);
            } else {
                push(Tok::DOT, tok_line, tok_col);
                advance();
            }
            break;
          case '<':
            if (two('=')) {
                push(Tok::LE, tok_line, tok_col);
                advance(2);
            } else if (two('>')) {
                push(Tok::NE, tok_line, tok_col);
                advance(2);
            } else {
                push(Tok::LT, tok_line, tok_col);
                advance();
            }
            break;
          case '>':
            if (two('=')) {
                push(Tok::GE, tok_line, tok_col);
                advance(2);
            } else {
                push(Tok::GT, tok_line, tok_col);
                advance();
            }
            break;
          default:
            return error(support::strprintf("unexpected character '%c'",
                                            c));
        }
    }

    push(Tok::END_OF_FILE, line, column);
    return out;
}

} // namespace mips::plc
