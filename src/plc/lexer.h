/**
 * @file
 * Lexer for the Pascal-like source language.
 *
 * Comments are `{ ... }` or `(* ... *)`. Identifiers and keywords are
 * case-insensitive (folded to lower case). Character literals are
 * 'x'; '' inside a literal is not supported (the corpus does not need
 * it). Integer literals are decimal.
 */
#pragma once

#include <string_view>
#include <vector>

#include "plc/token.h"
#include "support/result.h"

namespace mips::plc {

/** Tokenize a whole source; the last token is END_OF_FILE. */
support::Result<std::vector<Token>> lex(std::string_view source);

} // namespace mips::plc
