#include "plc/optimize.h"

#include <map>
#include <optional>

#include "isa/instruction.h"

namespace mips::plc {

using assembler::Item;
using isa::MemMode;
using isa::Reg;

namespace {

/** A tracked memory location: frame/base slot or absolute/global. */
struct Location
{
    bool absolute = false;
    Reg base = 0;        ///< DISP base register
    int32_t disp = 0;    ///< displacement or absolute address
    std::string symbol;  ///< symbolic absolute target, if any

    bool
    operator<(const Location &other) const
    {
        return std::tie(absolute, base, disp, symbol) <
               std::tie(other.absolute, other.base, other.disp,
                        other.symbol);
    }
};

/** Extract a trackable location from a memory piece, if any. */
std::optional<Location>
locationOf(const Item &item)
{
    if (!item.inst.mem)
        return std::nullopt;
    const isa::MemPiece &m = *item.inst.mem;
    Location loc;
    switch (m.mode) {
      case MemMode::DISP:
        loc.base = m.base;
        loc.disp = m.imm;
        return loc;
      case MemMode::ABSOLUTE:
        loc.absolute = true;
        loc.disp = m.imm;
        loc.symbol = item.target;
        return loc;
      default:
        return std::nullopt; // indexed/shifted: address not static
    }
}

} // namespace

PeepholeStats
eliminateRedundantLoads(assembler::Unit *unit)
{
    PeepholeStats stats;

    // Known location -> register currently holding its value.
    std::map<Location, Reg> known;

    auto invalidateReg = [&known](Reg r) {
        if (r == isa::kZeroReg)
            return;
        for (auto it = known.begin(); it != known.end();) {
            if (it->second == r ||
                (!it->first.absolute && it->first.base == r)) {
                it = known.erase(it);
            } else {
                ++it;
            }
        }
    };

    for (Item &item : unit->items) {
        // Block and region boundaries reset all knowledge.
        if (!item.labels.empty() || item.is_data || item.no_reorder) {
            known.clear();
            if (item.is_data || item.no_reorder)
                continue;
        }
        if (item.inst.isControlTransfer()) {
            known.clear();
            continue;
        }
        isa::RegUse use = isa::regUse(item.inst);
        if (use.touches_system_state) {
            known.clear();
            continue;
        }

        // Try to satisfy a plain load from a known register. A packed
        // word's load shares the word with an ALU piece, so only
        // stand-alone loads are rewritten.
        if (item.inst.isLoad() && !item.inst.alu) {
            auto loc = locationOf(item);
            if (loc) {
                auto it = known.find(*loc);
                if (it != known.end()) {
                    Reg rd = item.inst.mem->rd;
                    isa::AluPiece copy;
                    copy.op = isa::AluOp::ADD;
                    copy.rs = it->second;
                    copy.src2 = isa::Src2::fromImm(0);
                    copy.rd = rd;
                    item.inst = isa::Instruction::makeAlu(copy);
                    item.target.clear();
                    item.ref_size = 0;
                    item.ref_is_char = false;
                    ++stats.loads_eliminated;
                    invalidateReg(rd);
                    if (rd != isa::kZeroReg && copy.rs != rd)
                        known[*loc] = rd;
                    continue;
                }
            }
        }

        // Record what this instruction teaches or destroys.
        if (item.inst.mem) {
            const isa::MemPiece &m = *item.inst.mem;
            auto loc = locationOf(item);
            if (m.is_store) {
                if (loc) {
                    // Another slot may alias only if its static
                    // address differs yet points to the same word —
                    // impossible for same-base displacements and for
                    // absolute addresses, but a store to base A may
                    // alias a tracked slot of base B. Be conservative:
                    // drop entries with a *different* base kind.
                    for (auto it = known.begin(); it != known.end();) {
                        bool same_family =
                            it->first.absolute == loc->absolute &&
                            (loc->absolute ||
                             it->first.base == loc->base);
                        if (!same_family || !(it->first < *loc ||
                                              *loc < it->first)) {
                            it = known.erase(it);
                        } else {
                            ++it;
                        }
                    }
                    known[*loc] = m.rd;
                } else {
                    known.clear(); // unknown store address
                }
            } else if (isa::memReferencesMemory(m)) {
                // A load teaches us the slot's value register.
                invalidateReg(m.rd);
                if (loc && m.rd != isa::kZeroReg)
                    known[*loc] = m.rd;
                // Fall through for the ALU piece of a packed word.
            } else {
                // LONG_IMM writes a register.
                invalidateReg(m.rd);
            }
        }
        if (item.inst.alu) {
            uint16_t writes = isa::regUseAlu(*item.inst.alu).gpr_writes;
            for (Reg r = 1; r < isa::kNumRegs; ++r)
                if ((writes >> r) & 1)
                    invalidateReg(r);
        }
    }
    return stats;
}

} // namespace mips::plc
