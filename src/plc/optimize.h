/**
 * @file
 * Machine-level peephole optimization on legal code.
 *
 * The code generator is deliberately naive (one statement at a time,
 * every variable reference a memory reference). This pass applies the
 * classic local cleanup a production compiler of the period performed:
 * *redundant load elimination* — a load from a location whose value is
 * already known to be in a register (because the block stored or
 * loaded it earlier with no intervening invalidation) becomes a
 * register copy. This is Section 4.2's "applying better compiler
 * technology": the cleanup costs one compile-time pass and removes
 * both memory traffic and the load-delay slots the reorganizer would
 * otherwise have to fill.
 *
 * The pass runs on legal (sequential-semantics) code before the
 * reorganizer.
 */
#pragma once

#include "asm/unit.h"

namespace mips::plc {

/** Statistics from one optimization run. */
struct PeepholeStats
{
    size_t loads_eliminated = 0;
};

/** Eliminate locally redundant loads in place. */
PeepholeStats eliminateRedundantLoads(assembler::Unit *unit);

} // namespace mips::plc
