#include "plc/parser.h"

#include "plc/lexer.h"
#include "support/logging.h"

namespace mips::plc {

namespace {

using support::Error;
using support::Result;

class Parser
{
  public:
    explicit Parser(std::vector<Token> tokens)
        : tokens_(std::move(tokens))
    {}

    Result<ProgramAst> run();

  private:
    const Token &peek(int ahead = 0) const;
    Token take();
    bool at(Tok kind) const { return peek().kind == kind; }
    bool accept(Tok kind);

    [[noreturn]] void fail(const std::string &message);
    void expect(Tok kind);
    std::string expectIdent();

    void parseConsts(std::vector<ConstDecl> *out);
    void parseVars(std::vector<VarDecl> *out);
    Type parseType();
    Routine parseRoutine();
    std::vector<StmtPtr> parseStmts(); // until 'end'/'until'
    StmtPtr parseStmt();
    ExprPtr parseExpr();
    ExprPtr parseSimple();
    ExprPtr parseTerm();
    ExprPtr parseFactor();
    std::vector<ExprPtr> parseArgs();

    std::vector<Token> tokens_;
    size_t pos_ = 0;
    Error error_;
};

// Parse failures unwind via exception to keep the descent readable;
// the exception never escapes run().
struct ParseFailure
{
};

const Token &
Parser::peek(int ahead) const
{
    size_t i = pos_ + static_cast<size_t>(ahead);
    if (i >= tokens_.size())
        i = tokens_.size() - 1; // END_OF_FILE sentinel
    return tokens_[i];
}

Token
Parser::take()
{
    Token t = peek();
    if (pos_ + 1 < tokens_.size())
        ++pos_;
    return t;
}

bool
Parser::accept(Tok kind)
{
    if (at(kind)) {
        take();
        return true;
    }
    return false;
}

void
Parser::fail(const std::string &message)
{
    error_ = Error{message, peek().line, peek().column};
    throw ParseFailure{};
}

void
Parser::expect(Tok kind)
{
    if (!at(kind))
        fail("expected " + tokName(kind) + ", found " +
             tokName(peek().kind));
    take();
}

std::string
Parser::expectIdent()
{
    if (!at(Tok::IDENT))
        fail("expected identifier, found " + tokName(peek().kind));
    return take().text;
}

void
Parser::parseConsts(std::vector<ConstDecl> *out)
{
    if (!accept(Tok::KW_CONST))
        return;
    while (at(Tok::IDENT)) {
        ConstDecl decl;
        decl.line = peek().line;
        decl.name = expectIdent();
        expect(Tok::EQ);
        bool negative = accept(Tok::MINUS);
        if (at(Tok::INT_LIT)) {
            decl.value = take().int_value;
            if (negative)
                decl.value = -decl.value;
        } else if (at(Tok::CHAR_LIT) && !negative) {
            decl.value = static_cast<unsigned char>(take().char_value);
            decl.is_char = true;
        } else {
            fail("expected constant value");
        }
        expect(Tok::SEMI);
        out->push_back(std::move(decl));
    }
}

Type
Parser::parseType()
{
    Type type;
    if (accept(Tok::KW_PACKED)) {
        type.packed = true;
        if (!at(Tok::KW_ARRAY))
            fail("'packed' must precede 'array'");
    }
    if (accept(Tok::KW_ARRAY)) {
        type.is_array = true;
        expect(Tok::LBRACKET);
        bool neg_lo = accept(Tok::MINUS);
        if (!at(Tok::INT_LIT))
            fail("expected array lower bound");
        type.lo = take().int_value * (neg_lo ? -1 : 1);
        expect(Tok::DOTDOT);
        bool neg_hi = accept(Tok::MINUS);
        if (!at(Tok::INT_LIT))
            fail("expected array upper bound");
        type.hi = take().int_value * (neg_hi ? -1 : 1);
        if (type.hi < type.lo)
            fail("array upper bound below lower bound");
        expect(Tok::RBRACKET);
        expect(Tok::KW_OF);
    }
    if (accept(Tok::KW_INTEGER))
        type.base = BaseType::INTEGER;
    else if (accept(Tok::KW_CHAR))
        type.base = BaseType::CHAR;
    else if (accept(Tok::KW_BOOLEAN))
        type.base = BaseType::BOOLEAN;
    else
        fail("expected type name");
    if (type.packed && type.base == BaseType::INTEGER)
        fail("packed arrays of integer are not supported");
    return type;
}

void
Parser::parseVars(std::vector<VarDecl> *out)
{
    if (!accept(Tok::KW_VAR))
        return;
    while (at(Tok::IDENT)) {
        std::vector<std::string> names;
        std::vector<int> lines;
        names.push_back(expectIdent());
        lines.push_back(peek().line);
        while (accept(Tok::COMMA)) {
            lines.push_back(peek().line);
            names.push_back(expectIdent());
        }
        expect(Tok::COLON);
        Type type = parseType();
        expect(Tok::SEMI);
        for (size_t i = 0; i < names.size(); ++i) {
            VarDecl decl;
            decl.name = names[i];
            decl.type = type;
            decl.line = lines[i];
            out->push_back(std::move(decl));
        }
    }
}

Routine
Parser::parseRoutine()
{
    Routine routine;
    routine.line = peek().line;
    routine.is_function = take().kind == Tok::KW_FUNCTION;
    routine.name = expectIdent();

    if (accept(Tok::LPAREN)) {
        while (!at(Tok::RPAREN)) {
            std::vector<std::string> names;
            names.push_back(expectIdent());
            while (accept(Tok::COMMA))
                names.push_back(expectIdent());
            expect(Tok::COLON);
            Type type = parseType();
            if (type.is_array)
                fail("array parameters are not supported");
            for (const std::string &name : names)
                routine.params.push_back(Param{name, type.base});
            if (!at(Tok::RPAREN))
                expect(Tok::SEMI);
        }
        expect(Tok::RPAREN);
    }
    if (routine.is_function) {
        expect(Tok::COLON);
        Type type = parseType();
        if (type.is_array)
            fail("functions must return scalars");
        routine.return_type = type.base;
    }
    expect(Tok::SEMI);

    parseConsts(&routine.consts);
    parseVars(&routine.locals);
    expect(Tok::KW_BEGIN);
    routine.body = parseStmts();
    expect(Tok::KW_END);
    expect(Tok::SEMI);
    return routine;
}

std::vector<StmtPtr>
Parser::parseStmts()
{
    std::vector<StmtPtr> out;
    while (!at(Tok::KW_END) && !at(Tok::KW_UNTIL)) {
        out.push_back(parseStmt());
        if (!accept(Tok::SEMI))
            break;
    }
    return out;
}

std::vector<ExprPtr>
Parser::parseArgs()
{
    std::vector<ExprPtr> args;
    expect(Tok::LPAREN);
    if (!at(Tok::RPAREN)) {
        args.push_back(parseExpr());
        while (accept(Tok::COMMA))
            args.push_back(parseExpr());
    }
    expect(Tok::RPAREN);
    return args;
}

StmtPtr
Parser::parseStmt()
{
    auto stmt = std::make_unique<Stmt>();
    stmt->line = peek().line;

    switch (peek().kind) {
      case Tok::IDENT: {
        stmt->name = take().text;
        if (accept(Tok::LBRACKET)) {
            stmt->kind = Stmt::Kind::ASSIGN;
            stmt->index = parseExpr();
            expect(Tok::RBRACKET);
            expect(Tok::ASSIGN);
            stmt->value = parseExpr();
        } else if (accept(Tok::ASSIGN)) {
            stmt->kind = Stmt::Kind::ASSIGN;
            stmt->value = parseExpr();
        } else if (at(Tok::LPAREN)) {
            stmt->kind = Stmt::Kind::CALL;
            stmt->args = parseArgs();
        } else {
            stmt->kind = Stmt::Kind::CALL; // argument-less call
        }
        return stmt;
      }
      case Tok::KW_IF: {
        take();
        stmt->kind = Stmt::Kind::IF;
        stmt->cond = parseExpr();
        expect(Tok::KW_THEN);
        stmt->body.push_back(parseStmt());
        if (accept(Tok::KW_ELSE))
            stmt->else_body.push_back(parseStmt());
        return stmt;
      }
      case Tok::KW_CASE: {
        take();
        stmt->kind = Stmt::Kind::CASE;
        stmt->cond = parseExpr();
        expect(Tok::KW_OF);
        while (!at(Tok::KW_END) && !at(Tok::KW_ELSE)) {
            CaseArm arm;
            arm.labels.push_back(parseExpr());
            while (accept(Tok::COMMA))
                arm.labels.push_back(parseExpr());
            expect(Tok::COLON);
            arm.body.push_back(parseStmt());
            stmt->arms.push_back(std::move(arm));
            if (!accept(Tok::SEMI))
                break;
        }
        if (accept(Tok::KW_ELSE))
            stmt->else_body = parseStmts();
        expect(Tok::KW_END);
        return stmt;
      }
      case Tok::KW_WHILE: {
        take();
        stmt->kind = Stmt::Kind::WHILE;
        stmt->cond = parseExpr();
        expect(Tok::KW_DO);
        stmt->body.push_back(parseStmt());
        return stmt;
      }
      case Tok::KW_REPEAT: {
        take();
        stmt->kind = Stmt::Kind::REPEAT;
        stmt->body = parseStmts();
        expect(Tok::KW_UNTIL);
        stmt->cond = parseExpr();
        return stmt;
      }
      case Tok::KW_FOR: {
        take();
        stmt->kind = Stmt::Kind::FOR;
        stmt->name = expectIdent();
        expect(Tok::ASSIGN);
        stmt->from = parseExpr();
        if (accept(Tok::KW_DOWNTO))
            stmt->downto = true;
        else
            expect(Tok::KW_TO);
        stmt->to = parseExpr();
        expect(Tok::KW_DO);
        stmt->body.push_back(parseStmt());
        return stmt;
      }
      case Tok::KW_BEGIN: {
        take();
        // Compound statements flatten into an EMPTY node with a body.
        stmt->kind = Stmt::Kind::EMPTY;
        stmt->body = parseStmts();
        expect(Tok::KW_END);
        return stmt;
      }
      case Tok::SEMI:
      case Tok::KW_END:
        stmt->kind = Stmt::Kind::EMPTY;
        return stmt;
      default:
        fail("expected a statement, found " + tokName(peek().kind));
    }
}

ExprPtr
Parser::parseExpr()
{
    ExprPtr lhs = parseSimple();
    Tok kind = peek().kind;
    if (kind == Tok::EQ || kind == Tok::NE || kind == Tok::LT ||
        kind == Tok::LE || kind == Tok::GT || kind == Tok::GE) {
        auto expr = std::make_unique<Expr>();
        expr->kind = Expr::Kind::BINOP;
        expr->line = peek().line;
        expr->op = take().kind;
        expr->lhs = std::move(lhs);
        expr->rhs = parseSimple();
        return expr;
    }
    return lhs;
}

ExprPtr
Parser::parseSimple()
{
    ExprPtr lhs;
    if (at(Tok::MINUS)) {
        auto expr = std::make_unique<Expr>();
        expr->kind = Expr::Kind::UNOP;
        expr->line = peek().line;
        expr->op = take().kind;
        expr->lhs = parseTerm();
        lhs = std::move(expr);
    } else {
        lhs = parseTerm();
    }
    while (at(Tok::PLUS) || at(Tok::MINUS) || at(Tok::KW_OR)) {
        auto expr = std::make_unique<Expr>();
        expr->kind = Expr::Kind::BINOP;
        expr->line = peek().line;
        expr->op = take().kind;
        expr->lhs = std::move(lhs);
        expr->rhs = parseTerm();
        lhs = std::move(expr);
    }
    return lhs;
}

ExprPtr
Parser::parseTerm()
{
    ExprPtr lhs = parseFactor();
    while (at(Tok::STAR) || at(Tok::KW_DIV) || at(Tok::KW_MOD) ||
           at(Tok::KW_AND)) {
        auto expr = std::make_unique<Expr>();
        expr->kind = Expr::Kind::BINOP;
        expr->line = peek().line;
        expr->op = take().kind;
        expr->lhs = std::move(lhs);
        expr->rhs = parseFactor();
        lhs = std::move(expr);
    }
    return lhs;
}

ExprPtr
Parser::parseFactor()
{
    auto expr = std::make_unique<Expr>();
    expr->line = peek().line;

    switch (peek().kind) {
      case Tok::INT_LIT:
        expr->kind = Expr::Kind::INT_LIT;
        expr->int_value = take().int_value;
        return expr;
      case Tok::CHAR_LIT:
        expr->kind = Expr::Kind::CHAR_LIT;
        expr->char_value = take().char_value;
        return expr;
      case Tok::KW_TRUE:
      case Tok::KW_FALSE:
        expr->kind = Expr::Kind::BOOL_LIT;
        expr->bool_value = take().kind == Tok::KW_TRUE;
        return expr;
      case Tok::KW_NOT:
        take();
        expr->kind = Expr::Kind::UNOP;
        expr->op = Tok::KW_NOT;
        expr->lhs = parseFactor();
        return expr;
      case Tok::LPAREN: {
        take();
        ExprPtr inner = parseExpr();
        expect(Tok::RPAREN);
        return inner;
      }
      case Tok::IDENT: {
        expr->name = take().text;
        if (accept(Tok::LBRACKET)) {
            expr->kind = Expr::Kind::INDEX;
            expr->lhs = parseExpr();
            expect(Tok::RBRACKET);
        } else if (at(Tok::LPAREN)) {
            expr->kind = Expr::Kind::CALL;
            expr->args = parseArgs();
        } else {
            expr->kind = Expr::Kind::VAR;
        }
        return expr;
      }
      default:
        fail("expected an expression, found " + tokName(peek().kind));
    }
}

Result<ProgramAst>
Parser::run()
{
    try {
        ProgramAst program;
        expect(Tok::KW_PROGRAM);
        program.name = expectIdent();
        expect(Tok::SEMI);
        parseConsts(&program.consts);
        parseVars(&program.globals);
        while (at(Tok::KW_PROCEDURE) || at(Tok::KW_FUNCTION))
            program.routines.push_back(parseRoutine());
        expect(Tok::KW_BEGIN);
        program.body = parseStmts();
        expect(Tok::KW_END);
        expect(Tok::DOT);
        return program;
    } catch (const ParseFailure &) {
        return error_;
    }
}

} // namespace

std::string
baseTypeName(BaseType type)
{
    switch (type) {
      case BaseType::INTEGER: return "integer";
      case BaseType::CHAR:    return "char";
      case BaseType::BOOLEAN: return "boolean";
    }
    support::panic("baseTypeName: bad type");
}

support::Result<ProgramAst>
parseProgram(std::string_view source)
{
    auto tokens = lex(source);
    if (!tokens.ok())
        return tokens.error();
    Parser parser(tokens.take());
    return parser.run();
}

} // namespace mips::plc
