/**
 * @file
 * Recursive-descent parser for the Pascal-like language.
 *
 * Grammar sketch (case-insensitive keywords):
 *
 *   program    := 'program' IDENT ';' block '.'
 *   block      := [consts] [vars] {routine} 'begin' stmts 'end'
 *   consts     := 'const' {IDENT '=' (INT|CHAR) ';'}
 *   vars       := 'var' {identlist ':' type ';'}
 *   type       := 'integer' | 'char' | 'boolean'
 *               | ['packed'] 'array' '[' INT '..' INT ']' 'of' scalar
 *   routine    := ('procedure'|'function') IDENT [params]
 *                 [':' scalar] ';' [consts] [vars]
 *                 'begin' stmts 'end' ';'
 *   stmt       := IDENT [':=' expr | '[' expr ']' ':=' expr | args]
 *               | 'if' expr 'then' stmt ['else' stmt]
 *               | 'while' expr 'do' stmt
 *               | 'repeat' stmts 'until' expr
 *               | 'for' IDENT ':=' expr ('to'|'downto') expr 'do' stmt
 *               | 'begin' stmts 'end'
 *   expr       := simple [relop simple]
 *   simple     := ['-'] term {('+'|'-'|'or') term}
 *   term       := factor {('*'|'div'|'mod'|'and') factor}
 *   factor     := INT | CHAR | 'true' | 'false' | IDENT ['[' expr ']'
 *               | '(' args ')'] | '(' expr ')' | 'not' factor
 */
#pragma once

#include <string_view>

#include "plc/ast.h"
#include "support/result.h"

namespace mips::plc {

/** Parse a whole program (no semantic analysis). */
support::Result<ProgramAst> parseProgram(std::string_view source);

} // namespace mips::plc
