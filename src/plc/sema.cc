#include "plc/sema.h"

#include <algorithm>
#include <set>

#include "support/logging.h"

namespace mips::plc {

using support::Error;
using support::Result;

/** Maximum scalar value parameters (they travel in r1..r4). */
constexpr int kMaxParams = 4;

/** Expression evaluation registers r1..r8: maximum tree depth. */
constexpr int kEvalDepth = 8;

bool
typeBytePacked(const Type &type, Layout layout)
{
    if (!type.is_array || type.base == BaseType::INTEGER)
        return false;
    return type.packed || layout == Layout::BYTE_ALLOCATED;
}

int32_t
typeSizeWords(const Type &type, Layout layout)
{
    if (!type.is_array)
        return 1;
    if (typeBytePacked(type, layout))
        return (type.elementCount() + 3) / 4;
    return type.elementCount();
}

int32_t
Symbol::sizeWords() const
{
    if (!type.is_array)
        return 1;
    if (byte_packed)
        return (type.elementCount() + 3) / 4;
    return type.elementCount();
}

namespace {

struct SemaFailure
{
};

class Analyzer
{
  public:
    Analyzer(ProgramAst &program, Layout layout)
        : program_(program), layout_(layout)
    {
        result_.layout = layout;
    }

    Result<SemaResult> run();

  private:
    [[noreturn]] void fail(int line, const std::string &message);

    Symbol *addSymbol(std::map<std::string, Symbol *> *scope,
                      Symbol sym, int line);
    Symbol *lookup(const std::string &name, int line);

    void declareBuiltins();
    void declareGlobals();
    void analyzeRoutine(Routine &routine, int routine_index);
    void analyzeBody(std::vector<StmtPtr> &body);
    void analyzeStmt(Stmt &stmt);
    BaseType analyzeExpr(Expr &expr, int depth);
    int32_t constCaseLabel(Expr &expr, BaseType selector);
    void checkScalar(const Symbol *sym, int line);

    ProgramAst &program_;
    Layout layout_;
    SemaResult result_;
    Error error_;

    std::map<std::string, Symbol *> *local_scope_ = nullptr;
    std::map<std::string, Symbol *> locals_;
    const Routine *current_routine_ = nullptr;
    Symbol *current_result_ = nullptr;
    int for_temps_ = 0; ///< FOR-limit slots used in current routine
    int max_for_temps_ = 0;
};

void
Analyzer::fail(int line, const std::string &message)
{
    error_ = Error{message, line, 0};
    throw SemaFailure{};
}

Symbol *
Analyzer::addSymbol(std::map<std::string, Symbol *> *scope, Symbol sym,
                    int line)
{
    if (scope->count(sym.name))
        fail(line, "duplicate declaration of '" + sym.name + "'");
    result_.symbols.push_back(std::move(sym));
    Symbol *stored = &result_.symbols.back();
    (*scope)[stored->name] = stored;
    return stored;
}

Symbol *
Analyzer::lookup(const std::string &name, int line)
{
    if (local_scope_) {
        auto it = local_scope_->find(name);
        if (it != local_scope_->end())
            return it->second;
    }
    auto it = result_.global_scope.find(name);
    if (it == result_.global_scope.end())
        fail(line, "undeclared identifier '" + name + "'");
    return it->second;
}

void
Analyzer::declareBuiltins()
{
    auto builtin = [this](const std::string &name, BaseType ret) {
        Symbol sym;
        sym.kind = SymKind::ROUTINE;
        sym.name = name;
        sym.routine_index = -1;
        sym.type.base = ret;
        result_.symbols.push_back(std::move(sym));
        result_.global_scope[name] = &result_.symbols.back();
    };
    builtin("writeint", BaseType::INTEGER);
    builtin("writechar", BaseType::INTEGER);
    builtin("ord", BaseType::INTEGER);
    builtin("chr", BaseType::CHAR);
}

void
Analyzer::declareGlobals()
{
    for (const ConstDecl &decl : program_.consts) {
        Symbol sym;
        sym.kind = SymKind::CONSTANT;
        sym.name = decl.name;
        sym.type.base = decl.is_char ? BaseType::CHAR
                                     : BaseType::INTEGER;
        sym.const_value = decl.value;
        addSymbol(&result_.global_scope, std::move(sym), decl.line);
    }
    for (const VarDecl &decl : program_.globals) {
        Symbol sym;
        sym.kind = SymKind::GLOBAL_VAR;
        sym.name = decl.name;
        sym.type = decl.type;
        sym.byte_packed = typeBytePacked(decl.type, layout_);
        sym.label = "g_" + decl.name;
        addSymbol(&result_.global_scope, std::move(sym), decl.line);
        result_.global_words +=
            result_.global_scope[decl.name]->sizeWords();
    }
    for (size_t i = 0; i < program_.routines.size(); ++i) {
        const Routine &routine = program_.routines[i];
        if (routine.params.size() > kMaxParams) {
            fail(routine.line,
                 support::strprintf("more than %d parameters",
                                    kMaxParams));
        }
        Symbol sym;
        sym.kind = SymKind::ROUTINE;
        sym.name = routine.name;
        sym.routine_index = static_cast<int>(i);
        sym.type.base = routine.return_type;
        addSymbol(&result_.global_scope, std::move(sym), routine.line);
    }
}

void
Analyzer::checkScalar(const Symbol *sym, int line)
{
    if (sym->type.is_array)
        fail(line, "'" + sym->name + "' is an array");
}

BaseType
Analyzer::analyzeExpr(Expr &expr, int depth)
{
    if (depth > kEvalDepth)
        fail(expr.line, "expression too deeply nested");

    switch (expr.kind) {
      case Expr::Kind::INT_LIT:
        return expr.type = BaseType::INTEGER;
      case Expr::Kind::CHAR_LIT:
        return expr.type = BaseType::CHAR;
      case Expr::Kind::BOOL_LIT:
        return expr.type = BaseType::BOOLEAN;

      case Expr::Kind::VAR: {
        Symbol *sym = lookup(expr.name, expr.line);
        if (sym->kind == SymKind::ROUTINE)
            fail(expr.line, "routine '" + expr.name +
                 "' used as a variable");
        checkScalar(sym, expr.line);
        expr.symbol = sym;
        return expr.type = sym->type.base;
      }

      case Expr::Kind::INDEX: {
        Symbol *sym = lookup(expr.name, expr.line);
        if (!sym->type.is_array)
            fail(expr.line, "'" + expr.name + "' is not an array");
        expr.symbol = sym;
        if (analyzeExpr(*expr.lhs, depth) != BaseType::INTEGER)
            fail(expr.line, "array index must be an integer");
        return expr.type = sym->type.base;
      }

      case Expr::Kind::BINOP: {
        BaseType lt = analyzeExpr(*expr.lhs, depth);
        BaseType rt = analyzeExpr(*expr.rhs, depth + 1);
        switch (expr.op) {
          case Tok::PLUS:
          case Tok::MINUS:
          case Tok::STAR:
          case Tok::KW_DIV:
          case Tok::KW_MOD:
            if (lt != BaseType::INTEGER || rt != BaseType::INTEGER)
                fail(expr.line, "arithmetic needs integer operands");
            return expr.type = BaseType::INTEGER;
          case Tok::KW_AND:
          case Tok::KW_OR:
            if (lt != BaseType::BOOLEAN || rt != BaseType::BOOLEAN)
                fail(expr.line, "and/or need boolean operands");
            return expr.type = BaseType::BOOLEAN;
          case Tok::EQ:
          case Tok::NE:
          case Tok::LT:
          case Tok::LE:
          case Tok::GT:
          case Tok::GE:
            if (lt != rt)
                fail(expr.line, "comparison of mixed types");
            return expr.type = BaseType::BOOLEAN;
          default:
            fail(expr.line, "bad binary operator");
        }
      }

      case Expr::Kind::UNOP: {
        BaseType t = analyzeExpr(*expr.lhs, depth);
        if (expr.op == Tok::MINUS) {
            if (t != BaseType::INTEGER)
                fail(expr.line, "unary minus needs an integer");
            return expr.type = BaseType::INTEGER;
        }
        if (t != BaseType::BOOLEAN)
            fail(expr.line, "'not' needs a boolean");
        return expr.type = BaseType::BOOLEAN;
      }

      case Expr::Kind::CALL: {
        Symbol *sym = lookup(expr.name, expr.line);
        if (sym->kind != SymKind::ROUTINE)
            fail(expr.line, "'" + expr.name + "' is not a function");
        expr.symbol = sym;
        if (sym->routine_index < 0) {
            // Builtins: ord/chr are functions of one scalar.
            if (expr.name == "ord" || expr.name == "chr") {
                if (expr.args.size() != 1)
                    fail(expr.line, expr.name + " needs one argument");
                analyzeExpr(*expr.args[0], depth + 1);
                return expr.type = expr.name == "ord"
                    ? BaseType::INTEGER : BaseType::CHAR;
            }
            fail(expr.line, "'" + expr.name +
                 "' cannot be used in an expression");
        }
        const Routine &routine =
            program_.routines[static_cast<size_t>(sym->routine_index)];
        if (!routine.is_function)
            fail(expr.line, "procedure '" + expr.name +
                 "' used in an expression");
        if (expr.args.size() != routine.params.size())
            fail(expr.line, "wrong number of arguments");
        for (size_t i = 0; i < expr.args.size(); ++i) {
            BaseType t = analyzeExpr(*expr.args[i],
                                     depth + static_cast<int>(i) + 1);
            if (t != routine.params[i].type)
                fail(expr.line, support::strprintf(
                    "argument %zu has the wrong type", i + 1));
        }
        return expr.type = routine.return_type;
      }
    }
    support::panic("analyzeExpr: bad kind");
}

/**
 * Evaluate a case label to its constant value, checking that its type
 * matches the selector. Accepts literals, named constants, and a
 * unary minus over an integer literal.
 */
int32_t
Analyzer::constCaseLabel(Expr &expr, BaseType selector)
{
    switch (expr.kind) {
      case Expr::Kind::INT_LIT:
        expr.type = BaseType::INTEGER;
        if (selector != BaseType::INTEGER)
            fail(expr.line, "case label type does not match selector");
        return expr.int_value;

      case Expr::Kind::CHAR_LIT:
        expr.type = BaseType::CHAR;
        if (selector != BaseType::CHAR)
            fail(expr.line, "case label type does not match selector");
        return static_cast<unsigned char>(expr.char_value);

      case Expr::Kind::VAR: {
        Symbol *sym = lookup(expr.name, expr.line);
        if (sym->kind != SymKind::CONSTANT)
            fail(expr.line, "case label must be a constant");
        expr.symbol = sym;
        expr.type = sym->type.base;
        if (expr.type != selector)
            fail(expr.line, "case label type does not match selector");
        return sym->const_value;
      }

      case Expr::Kind::UNOP:
        if (expr.op == Tok::MINUS &&
            expr.lhs->kind == Expr::Kind::INT_LIT) {
            expr.type = BaseType::INTEGER;
            if (selector != BaseType::INTEGER)
                fail(expr.line,
                     "case label type does not match selector");
            return -expr.lhs->int_value;
        }
        break;

      default:
        break;
    }
    fail(expr.line, "case label must be a constant");
}

void
Analyzer::analyzeStmt(Stmt &stmt)
{
    switch (stmt.kind) {
      case Stmt::Kind::EMPTY:
        analyzeBody(stmt.body);
        return;

      case Stmt::Kind::ASSIGN: {
        Symbol *sym = lookup(stmt.name, stmt.line);
        // Function-result assignment: `name := e` inside `name`.
        if (sym->kind == SymKind::ROUTINE) {
            if (!current_routine_ || current_routine_->name != stmt.name)
                fail(stmt.line, "cannot assign to routine '" +
                     stmt.name + "'");
            sym = current_result_;
        }
        stmt.symbol = sym;
        if (sym->kind == SymKind::CONSTANT)
            fail(stmt.line, "cannot assign to constant '" +
                 stmt.name + "'");
        BaseType target;
        if (stmt.index) {
            if (!sym->type.is_array)
                fail(stmt.line, "'" + stmt.name + "' is not an array");
            if (analyzeExpr(*stmt.index, 1) != BaseType::INTEGER)
                fail(stmt.line, "array index must be an integer");
            target = sym->type.base;
        } else {
            checkScalar(sym, stmt.line);
            target = sym->type.base;
        }
        if (analyzeExpr(*stmt.value, stmt.index ? 2 : 1) != target)
            fail(stmt.line, "assignment of mixed types");
        return;
      }

      case Stmt::Kind::IF:
      case Stmt::Kind::WHILE:
        if (analyzeExpr(*stmt.cond, 1) != BaseType::BOOLEAN)
            fail(stmt.line, "condition must be boolean");
        analyzeBody(stmt.body);
        analyzeBody(stmt.else_body);
        return;

      case Stmt::Kind::REPEAT:
        analyzeBody(stmt.body);
        if (analyzeExpr(*stmt.cond, 1) != BaseType::BOOLEAN)
            fail(stmt.line, "until condition must be boolean");
        return;

      case Stmt::Kind::FOR: {
        Symbol *sym = lookup(stmt.name, stmt.line);
        checkScalar(sym, stmt.line);
        if (sym->type.base != BaseType::INTEGER ||
            sym->kind == SymKind::CONSTANT) {
            fail(stmt.line, "for-loop variable must be an integer "
                 "variable");
        }
        stmt.symbol = sym;
        if (analyzeExpr(*stmt.from, 1) != BaseType::INTEGER ||
            analyzeExpr(*stmt.to, 2) != BaseType::INTEGER) {
            fail(stmt.line, "for-loop bounds must be integers");
        }
        ++for_temps_;
        max_for_temps_ = std::max(max_for_temps_, for_temps_);
        analyzeBody(stmt.body);
        --for_temps_;
        return;
      }

      case Stmt::Kind::CASE: {
        BaseType sel = analyzeExpr(*stmt.cond, 1);
        if (sel != BaseType::INTEGER && sel != BaseType::CHAR)
            fail(stmt.line, "case selector must be an integer or char");
        if (stmt.arms.empty())
            fail(stmt.line, "case statement has no arms");
        std::set<int32_t> seen;
        for (CaseArm &arm : stmt.arms) {
            for (ExprPtr &label : arm.labels) {
                int32_t v = constCaseLabel(*label, sel);
                if (!seen.insert(v).second)
                    fail(label->line, support::strprintf(
                        "duplicate case label %d", v));
                arm.values.push_back(v);
            }
            analyzeBody(arm.body);
        }
        analyzeBody(stmt.else_body);
        return;
      }

      case Stmt::Kind::CALL: {
        Symbol *sym = lookup(stmt.name, stmt.line);
        if (sym->kind != SymKind::ROUTINE)
            fail(stmt.line, "'" + stmt.name + "' is not a procedure");
        stmt.symbol = sym;
        if (sym->routine_index < 0) {
            if (stmt.name == "writeint" || stmt.name == "writechar") {
                if (stmt.args.size() != 1)
                    fail(stmt.line, stmt.name + " needs one argument");
                BaseType t = analyzeExpr(*stmt.args[0], 1);
                if (stmt.name == "writechar" && t != BaseType::CHAR)
                    fail(stmt.line, "writechar needs a char");
                if (stmt.name == "writeint" && t != BaseType::INTEGER)
                    fail(stmt.line, "writeint needs an integer");
                return;
            }
            fail(stmt.line, "'" + stmt.name +
                 "' cannot be called as a procedure");
        }
        const Routine &routine =
            program_.routines[static_cast<size_t>(sym->routine_index)];
        if (stmt.args.size() != routine.params.size())
            fail(stmt.line, "wrong number of arguments");
        for (size_t i = 0; i < stmt.args.size(); ++i) {
            BaseType t = analyzeExpr(*stmt.args[i],
                                     static_cast<int>(i) + 1);
            if (t != routine.params[i].type)
                fail(stmt.line, support::strprintf(
                    "argument %zu has the wrong type", i + 1));
        }
        return;
      }
    }
    support::panic("analyzeStmt: bad kind");
}

void
Analyzer::analyzeBody(std::vector<StmtPtr> &body)
{
    for (StmtPtr &stmt : body)
        analyzeStmt(*stmt);
}

void
Analyzer::analyzeRoutine(Routine &routine, int routine_index)
{
    locals_.clear();
    local_scope_ = &locals_;
    current_routine_ = routine_index >= 0 ? &routine : nullptr;
    current_result_ = nullptr;
    for_temps_ = 0;
    max_for_temps_ = 0;

    // Frame: [0] saved link, then params, locals, result, temps.
    int offset = 1;
    for (const Param &param : routine.params) {
        Symbol sym;
        sym.kind = SymKind::PARAM;
        sym.name = param.name;
        sym.type.base = param.type;
        sym.frame_offset = offset++;
        addSymbol(&locals_, std::move(sym), routine.line);
    }
    for (const ConstDecl &decl : routine.consts) {
        Symbol sym;
        sym.kind = SymKind::CONSTANT;
        sym.name = decl.name;
        sym.type.base = decl.is_char ? BaseType::CHAR
                                     : BaseType::INTEGER;
        sym.const_value = decl.value;
        addSymbol(&locals_, std::move(sym), decl.line);
    }
    for (const VarDecl &decl : routine.locals) {
        Symbol sym;
        sym.kind = SymKind::LOCAL_VAR;
        sym.name = decl.name;
        sym.type = decl.type;
        sym.byte_packed = typeBytePacked(decl.type, layout_);
        sym.frame_offset = offset;
        offset += sym.sizeWords();
        addSymbol(&locals_, std::move(sym), decl.line);
    }
    if (routine.is_function && routine_index >= 0) {
        Symbol sym;
        sym.kind = SymKind::RESULT;
        sym.name = "$result";
        sym.type.base = routine.return_type;
        sym.frame_offset = offset++;
        result_.symbols.push_back(std::move(sym));
        current_result_ = &result_.symbols.back();
    }

    analyzeBody(routine.body);

    FrameInfo frame;
    frame.temps_base = offset;
    // Eval-stack spill slots (one per register) plus FOR-limit slots.
    frame.temps_count = kEvalDepth + max_for_temps_;
    frame.size = offset + frame.temps_count;
    result_.frames[static_cast<size_t>(routine_index >= 0
        ? routine_index : static_cast<int>(program_.routines.size()))] =
        frame;

    local_scope_ = nullptr;
    current_routine_ = nullptr;
    current_result_ = nullptr;
}

Result<SemaResult>
Analyzer::run()
{
    try {
        declareBuiltins();
        declareGlobals();
        result_.frames.resize(program_.routines.size() + 1);
        for (size_t i = 0; i < program_.routines.size(); ++i)
            analyzeRoutine(program_.routines[i], static_cast<int>(i));

        // The main body is analyzed as a parameterless routine.
        Routine main_routine;
        main_routine.name = "$main";
        main_routine.body = std::move(program_.body);
        analyzeRoutine(main_routine, -1);
        program_.body = std::move(main_routine.body);

        return std::move(result_);
    } catch (const SemaFailure &) {
        return error_;
    }
}

} // namespace

Result<SemaResult>
analyze(ProgramAst &program, Layout layout)
{
    Analyzer analyzer(program, layout);
    return analyzer.run();
}

} // namespace mips::plc
