/**
 * @file
 * Semantic analysis: name resolution, type checking, and storage
 * layout.
 *
 * Layout is where the paper's word-vs-byte experiment plugs in
 * (Section 4.1, Tables 7/8): under WORD_ALLOCATED, "all objects are
 * allocated as words unless they occur in a packed structure"; under
 * BYTE_ALLOCATED, every char/boolean array is byte-packed (four
 * elements per 32-bit word, accessed with the insert/extract-byte
 * sequences). Scalars always occupy a word of their own — what
 * changes between the modes is how array elements are packed and
 * therefore how many logical references are byte-sized.
 */
#pragma once

#include <deque>
#include <map>
#include <string>
#include <vector>

#include "plc/ast.h"
#include "support/result.h"

namespace mips::plc {

/** The two allocation policies of Tables 7 and 8. */
enum class Layout
{
    WORD_ALLOCATED,
    BYTE_ALLOCATED,
};

/** Where a symbol lives. */
enum class SymKind : uint8_t
{
    GLOBAL_VAR,
    LOCAL_VAR,  ///< frame slot(s)
    PARAM,      ///< frame slot, filled from an argument register
    CONSTANT,
    ROUTINE,
    RESULT,     ///< the function-result pseudo-variable
};

/** A resolved symbol. */
struct Symbol
{
    SymKind kind = SymKind::GLOBAL_VAR;
    std::string name;
    Type type;
    int32_t const_value = 0; ///< CONSTANT

    /** True when this (array) symbol is byte-packed under the active
     *  layout; element accesses use the byte sequences. */
    bool byte_packed = false;

    /** GLOBAL_VAR: assembler label. */
    std::string label;

    /** LOCAL_VAR / PARAM / RESULT: word offset within the frame. */
    int frame_offset = 0;

    /** ROUTINE: index into ProgramAst::routines, or -1 for builtins
     *  and -2 for the main body. */
    int routine_index = -1;

    /** Words this symbol occupies in its storage area. */
    int32_t sizeWords() const;
};

/** Per-routine layout summary. */
struct FrameInfo
{
    /** Total frame words: link + params + locals + result + temps. */
    int size = 0;
    /** First of the expression-spill/loop-temp slots. */
    int temps_base = 0;
    /** Number of temp slots (eval-stack spills and FOR limits). */
    int temps_count = 0;
};

/** Result of semantic analysis, consumed by the code generator. */
struct SemaResult
{
    Layout layout = Layout::WORD_ALLOCATED;

    /** Stable symbol storage; AST nodes point into it. */
    std::deque<Symbol> symbols;

    /** Global scope (program consts, globals, routines, builtins). */
    std::map<std::string, Symbol *> global_scope;

    /** Frame layout per routine index; index routines.size() is the
     *  main body. */
    std::vector<FrameInfo> frames;

    /** Total words of global variable storage. */
    int32_t global_words = 0;
};

/**
 * Analyze `program` in place (annotating Expr::symbol/type and
 * Stmt::symbol) and compute layout under `layout`.
 */
support::Result<SemaResult> analyze(ProgramAst &program, Layout layout);

/** Number of words an object of `type` occupies under `layout`. */
int32_t typeSizeWords(const Type &type, Layout layout);

/** True when array elements of `type` are byte-packed under `layout`. */
bool typeBytePacked(const Type &type, Layout layout);

} // namespace mips::plc
