/**
 * @file
 * Tokens of the Pascal-like source language.
 */
#pragma once

#include <cstdint>
#include <string>

namespace mips::plc {

/** Token kinds. Keywords are folded case-insensitively. */
enum class Tok
{
    END_OF_FILE,
    IDENT,
    INT_LIT,
    CHAR_LIT,

    // Keywords.
    KW_PROGRAM, KW_CONST, KW_VAR, KW_ARRAY, KW_OF, KW_PACKED,
    KW_INTEGER, KW_CHAR, KW_BOOLEAN,
    KW_PROCEDURE, KW_FUNCTION,
    KW_BEGIN, KW_END, KW_IF, KW_THEN, KW_ELSE, KW_CASE,
    KW_WHILE, KW_DO, KW_REPEAT, KW_UNTIL, KW_FOR, KW_TO, KW_DOWNTO,
    KW_AND, KW_OR, KW_NOT, KW_DIV, KW_MOD,
    KW_TRUE, KW_FALSE,

    // Punctuation and operators.
    LPAREN, RPAREN, LBRACKET, RBRACKET,
    COMMA, SEMI, COLON, DOT, DOTDOT,
    ASSIGN,   // :=
    PLUS, MINUS, STAR,
    EQ, NE, LT, LE, GT, GE,
};

/** One token with its source position. */
struct Token
{
    Tok kind = Tok::END_OF_FILE;
    std::string text;    ///< identifier spelling (lowercased)
    int32_t int_value = 0;
    char char_value = 0;
    int line = 0;
    int column = 0;
};

/** Printable token-kind name for diagnostics. */
std::string tokName(Tok kind);

} // namespace mips::plc
