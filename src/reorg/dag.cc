#include "reorg/dag.h"

#include <algorithm>

#include "isa/instruction.h"

namespace mips::reorg {

using assembler::Item;
using isa::MemMode;
using isa::MemPiece;
using isa::RegUse;

bool
Dag::mayAlias(const MemPiece &a, const MemPiece &b, uint16_t block_written,
              const AliasOptions &alias)
{
    if (!isa::memReferencesMemory(a) || !isa::memReferencesMemory(b))
        return false;

    auto isVolatile = [&alias](const MemPiece &m) {
        return m.mode == MemMode::ABSOLUTE &&
               static_cast<uint32_t>(m.imm) >= alias.volatile_base;
    };
    if (isVolatile(a) || isVolatile(b))
        return true;

    // Distinct absolute addresses never alias.
    if (a.mode == MemMode::ABSOLUTE && b.mode == MemMode::ABSOLUTE)
        return a.imm == b.imm;

    // Same never-redefined base with distinct displacements cannot
    // alias; everything else is conservatively assumed to.
    if (a.mode == MemMode::DISP && b.mode == MemMode::DISP &&
        a.base == b.base &&
        ((block_written >> a.base) & 1) == 0) {
        return a.imm == b.imm;
    }
    return true;
}

Dag::Dag(const std::vector<Item> &items, const AliasOptions &alias,
         bool assume_no_alias)
{
    nodes_.reserve(items.size());
    for (const Item &item : items)
        nodes_.push_back(DagNode{item, {}, 0, false});

    // Registers written anywhere in the block (for alias analysis).
    uint16_t block_written = 0;
    std::vector<RegUse> uses;
    uses.reserve(items.size());
    for (const Item &item : items) {
        uses.push_back(item.is_data ? RegUse{}
                                    : isa::regUse(item.inst));
        block_written |= uses.back().gpr_writes;
    }

    for (int j = 0; j < static_cast<int>(items.size()); ++j) {
        for (int i = 0; i < j; ++i) {
            const RegUse &u = uses[i];
            const RegUse &v = uses[j];
            bool dep = false;

            // Data items are immovable relative to everything.
            if (items[i].is_data || items[j].is_data)
                dep = true;

            // Register dependences: RAW, WAR, WAW.
            if ((u.gpr_writes & v.gpr_reads) ||
                (u.gpr_reads & v.gpr_writes) ||
                (u.gpr_writes & v.gpr_writes)) {
                dep = true;
            }

            // The LO byte selector behaves like a register.
            if ((u.writes_lo && (v.reads_lo || v.writes_lo)) ||
                (u.reads_lo && v.writes_lo)) {
                dep = true;
            }

            // System state is a full barrier.
            if (u.touches_system_state || v.touches_system_state)
                dep = true;

            // Memory: conservative aliasing, stores never commute.
            if (!dep && !assume_no_alias && items[i].inst.mem &&
                items[j].inst.mem) {
                bool either_store = items[i].inst.mem->is_store ||
                                    items[j].inst.mem->is_store;
                if (either_store &&
                    mayAlias(*items[i].inst.mem, *items[j].inst.mem,
                             block_written, alias)) {
                    dep = true;
                }
            }

            // A table-dispatch jump loads its target word through the
            // data interface but carries no MemPiece to compare, so
            // every store is conservatively ordered against it (a
            // store moved into its delay slots would commit after the
            // table fetch).
            auto tableJump = [](const Item &it) {
                return !it.is_data && it.inst.jump &&
                       isa::jumpIsTable(it.inst.jump->kind);
            };
            if (!dep &&
                ((tableJump(items[i]) && items[j].inst.isStore()) ||
                 (tableJump(items[j]) && items[i].inst.isStore()))) {
                dep = true;
            }

            // Everything before a control transfer that it depends on
            // is covered above; additionally a transfer must not move
            // before anything (it is the terminator), which the
            // scheduler enforces positionally.

            if (dep)
                addEdge(i, j);
        }
    }
}

void
Dag::addEdge(int from, int to)
{
    auto &succs = nodes_[from].succs;
    if (std::find(succs.begin(), succs.end(), to) == succs.end()) {
        succs.push_back(to);
        ++nodes_[to].pred_count;
    }
}

bool
Dag::hasEdge(int from, int to) const
{
    const auto &succs = nodes_[from].succs;
    return std::find(succs.begin(), succs.end(), to) != succs.end();
}

} // namespace mips::reorg
