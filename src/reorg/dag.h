/**
 * @file
 * Machine-level dependence DAG over one basic block.
 *
 * "Read in a basic block and create a machine-level dag that
 * represents the dependencies between individual instruction pieces"
 * (Section 4.2.1). Edges order pairs of instructions whose exchange
 * would change sequential semantics: register RAW/WAR/WAW, the LO byte
 * selector, system state (surprise/segmentation registers, traps), and
 * loads/stores that might be aliased.
 */
#pragma once

#include <cstdint>
#include <vector>

#include "asm/unit.h"

namespace mips::reorg {

/** One DAG node: an input item plus dependence bookkeeping. */
struct DagNode
{
    assembler::Item item;
    std::vector<int> succs;   ///< nodes that must come after this one
    int pred_count = 0;       ///< unscheduled-predecessor counter
    bool scheduled = false;
};

/** Alias-analysis configuration. */
struct AliasOptions
{
    /**
     * Absolute addresses at or above this are treated as volatile
     * (device registers): they conflict with every other memory
     * reference. Matches the simulator's MMIO window by default.
     */
    uint32_t volatile_base = 0x000ff000;
};

/** The DAG for one basic block. */
class Dag
{
  public:
    /**
     * Build from the block's items (terminator included, if any).
     * `assume_no_alias` drops every memory-alias edge — test-only
     * fault injection (ReorgBugs::alias_blind); never set otherwise.
     */
    Dag(const std::vector<assembler::Item> &items,
        const AliasOptions &alias = AliasOptions{},
        bool assume_no_alias = false);

    std::vector<DagNode> &nodes() { return nodes_; }
    const std::vector<DagNode> &nodes() const { return nodes_; }

    /** True if `from` must precede `to` (direct edge). */
    bool hasEdge(int from, int to) const;

    /**
     * True if the two memory pieces might reference the same location
     * (at least one being a store is the caller's concern).
     * `block_written` is the set of GPRs written anywhere in the block
     * (as a bitmask); displacement-based disambiguation is only sound
     * when the shared base register is never redefined.
     */
    static bool mayAlias(const isa::MemPiece &a, const isa::MemPiece &b,
                         uint16_t block_written,
                         const AliasOptions &alias);

  private:
    void addEdge(int from, int to);

    std::vector<DagNode> nodes_;
};

} // namespace mips::reorg
