#include "reorg/reorganizer.h"

#include <algorithm>
#include <map>
#include <optional>

#include "isa/instruction.h"
#include "support/logging.h"

namespace mips::reorg {

using assembler::Item;
using assembler::Unit;
using isa::Cond;
using isa::Instruction;
using isa::JumpKind;
using isa::RegUse;

namespace {

// ------------------------------------------------------------ Blocks

/** A basic block of input (later: output) items. */
struct Block
{
    std::vector<Item> items;
    std::vector<std::string> labels; ///< labels at block entry
    bool no_reorder = false;
    bool is_data = false;

    /** Terminating control transfer, if the block ends with one. */
    const Item *
    terminator() const
    {
        if (!items.empty() && !items.back().is_data &&
            items.back().inst.isControlTransfer()) {
            return &items.back();
        }
        return nullptr;
    }
};

/** Delay slots a terminator exposes on the pipeline (0 for traps,
 *  RFE and HALT, which redirect without executing successors). */
int
delaySlots(const Item &term)
{
    if (term.inst.branch)
        return isa::kBranchDelay;
    if (term.inst.jump)
        return isa::jumpDelay(term.inst.jump->kind);
    return 0;
}

/** Split a unit into basic blocks. */
std::vector<Block>
splitBlocks(const Unit &unit)
{
    std::vector<Block> blocks;
    bool force_new = true;
    for (const Item &item : unit.items) {
        bool starts_new = force_new || !item.labels.empty();
        if (!blocks.empty()) {
            const Block &prev = blocks.back();
            if (prev.no_reorder != item.no_reorder ||
                prev.is_data != item.is_data) {
                starts_new = true;
            }
        }
        if (starts_new || blocks.empty()) {
            Block b;
            b.labels = item.labels;
            b.no_reorder = item.no_reorder;
            b.is_data = item.is_data;
            blocks.push_back(std::move(b));
        }
        Item copy = item;
        copy.labels.clear();
        blocks.back().items.push_back(std::move(copy));
        force_new = !item.is_data && item.inst.isControlTransfer();
    }
    return blocks;
}

/** Map from label to the index of the block it starts. */
std::map<std::string, size_t>
labelMap(const std::vector<Block> &blocks)
{
    std::map<std::string, size_t> map;
    for (size_t i = 0; i < blocks.size(); ++i)
        for (const std::string &label : blocks[i].labels)
            map[label] = i;
    return map;
}

// ---------------------------------------------------------- Liveness

constexpr uint16_t kAllRegs = 0xfffe; // r0 excluded (never live)

/** Per-block liveness state. */
struct Liveness
{
    std::vector<uint16_t> live_in;
    std::vector<uint16_t> live_out;
};

/**
 * Compute GPR liveness over the block graph. Conservative: any edge
 * the analysis cannot follow (indirect jumps, numeric targets, calls,
 * traps, falling off the unit) contributes an all-live live-out.
 */
Liveness
computeLiveness(const std::vector<Block> &blocks,
                const std::map<std::string, size_t> &labels)
{
    size_t n = blocks.size();
    std::vector<uint16_t> use(n, 0), def(n, 0);
    std::vector<std::vector<size_t>> succs(n);
    std::vector<bool> unknown_succ(n, false);

    for (size_t i = 0; i < n; ++i) {
        const Block &b = blocks[i];
        if (b.is_data || b.no_reorder) {
            // Untouched regions: treat as using everything.
            use[i] = kAllRegs;
        } else {
            for (const Item &item : b.items) {
                RegUse u = isa::regUse(item.inst);
                use[i] |= u.gpr_reads & ~def[i];
                def[i] |= u.gpr_writes;
            }
        }

        const Item *term = b.terminator();
        auto addLabelSucc = [&](const std::string &target) {
            auto it = labels.find(target);
            if (it != labels.end())
                succs[i].push_back(it->second);
            else
                unknown_succ[i] = true;
        };
        auto addFallThrough = [&] {
            if (i + 1 < n)
                succs[i].push_back(i + 1);
            else
                unknown_succ[i] = true;
        };

        if (!term) {
            addFallThrough();
        } else if (term->inst.branch) {
            Cond c = term->inst.branch->cond;
            if (term->target.empty())
                unknown_succ[i] = true; // numeric target
            else if (c != Cond::NEVER)
                addLabelSucc(term->target);
            if (c != Cond::ALWAYS)
                addFallThrough();
        } else if (term->inst.jump) {
            const isa::JumpPiece &j = *term->inst.jump;
            if (isa::jumpIsCall(j.kind)) {
                // The callee may use and define anything.
                unknown_succ[i] = true;
            } else if (j.kind == JumpKind::DIRECT) {
                if (term->target.empty())
                    unknown_succ[i] = true;
                else
                    addLabelSucc(term->target);
            } else {
                unknown_succ[i] = true; // indirect
            }
        } else if (term->inst.special) {
            switch (term->inst.special->op) {
              case isa::SpecialOp::HALT:
                break; // no successors: nothing live
              default:
                // TRAP continues after the handler; RFE goes anywhere.
                unknown_succ[i] = true;
                break;
            }
        }
    }

    Liveness lv;
    lv.live_in.assign(n, 0);
    lv.live_out.assign(n, 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t ri = n; ri-- > 0;) {
            uint16_t out = unknown_succ[ri] ? kAllRegs : 0;
            for (size_t s : succs[ri])
                out |= lv.live_in[s];
            uint16_t in = use[ri] | (out & ~def[ri]);
            if (out != lv.live_out[ri] || in != lv.live_in[ri]) {
                lv.live_out[ri] = out;
                lv.live_in[ri] = in;
                changed = true;
            }
        }
    }
    return lv;
}

// ------------------------------------------------------ Scheduling

/** GPRs written by load pieces of a word (the delayed writes). */
uint16_t
loadDelayWrites(const Item &item)
{
    if (item.is_data || !item.inst.isLoad() ||
        item.inst.mem->rd == isa::kZeroReg) {
        return 0;
    }
    return static_cast<uint16_t>(1u << item.inst.mem->rd);
}

/** True if `cand` placed right after `prev` would read a stale value. */
bool
loadHazard(const Item &prev, const RegUse &cand_use)
{
    return (loadDelayWrites(prev) & cand_use.gpr_reads) != 0;
}

Item
makeNopItem()
{
    Item item;
    item.inst = Instruction::makeNop();
    return item;
}

bool
isNopItem(const Item &item)
{
    return !item.is_data && item.inst.isNop();
}

/** Per-block scheduler (see reorganizer.h for the contract). */
class BlockScheduler
{
  public:
    BlockScheduler(const Block &block, const ReorgOptions &opts,
                   ReorgStats *stats)
        : block_(block), opts_(opts), stats_(stats)
    {}

    std::vector<Item> run();

  private:
    void emitNop();
    void emitNode(int id);
    bool tryPack(int id);
    bool hazardFreeAtEnd(const RegUse &use) const;
    void scheduleBody(Dag &dag);
    void fillSlotsByMoving(Dag &dag, int term_id, int nslots);

    const Block &block_;
    const ReorgOptions &opts_;
    ReorgStats *stats_;

    std::vector<Item> out_;
    /** DAG node ids per output word (empty for inserted no-ops). */
    std::vector<std::vector<int>> out_nodes_;
    Dag *dag_ = nullptr;
    std::vector<int> ready_;
    std::vector<int> height_;
};

bool
BlockScheduler::hazardFreeAtEnd(const RegUse &use) const
{
    if (out_.empty())
        return true;
    return !loadHazard(out_.back(), use);
}

void
BlockScheduler::emitNop()
{
    out_.push_back(makeNopItem());
    out_nodes_.emplace_back();
    ++stats_->noops_inserted;
}

void
BlockScheduler::emitNode(int id)
{
    DagNode &node = dag_->nodes()[id];
    node.scheduled = true;
    out_.push_back(node.item);
    out_nodes_.push_back({id});
    for (int succ : node.succs) {
        if (--dag_->nodes()[succ].pred_count == 0)
            ready_.push_back(succ);
    }
    ready_.erase(std::remove(ready_.begin(), ready_.end(), id),
                 ready_.end());
}

/**
 * Try to merge node `id` into the last emitted word (packing). The
 * merge is legal when the formats combine, there is no dependence from
 * the resident node to the candidate, and the candidate has no load
 * hazard at the *last word's* position.
 */
bool
BlockScheduler::tryPack(int id)
{
    if (!opts_.pack || out_.empty() || out_nodes_.back().size() != 1)
        return false;
    const Item &last = out_.back();
    const Item &cand = dag_->nodes()[id].item;
    if (last.is_data || cand.is_data || !cand.target.empty())
        return false;

    const Instruction &a = last.inst;
    const Instruction &b = cand.inst;
    std::optional<isa::AluPiece> alu;
    std::optional<isa::MemPiece> mem;
    if (a.alu && !a.mem && b.mem && !b.alu && !b.branch && !b.jump &&
        !b.special) {
        alu = a.alu;
        mem = b.mem;
    } else if (a.mem && !a.alu && b.alu && !b.mem && !b.branch &&
               !b.jump && !b.special) {
        alu = b.alu;
        mem = a.mem;
    } else {
        return false;
    }
    if (!isa::canPack(*alu, *mem))
        return false;

    int resident = out_nodes_.back()[0];
    if (!opts_.bugs.pack_dependent && dag_->hasEdge(resident, id))
        return false;

    // The candidate now executes one position earlier: recheck the
    // load hazard against the word before the last one.
    RegUse use = isa::regUse(cand.inst);
    if (out_.size() >= 2 && loadHazard(out_[out_.size() - 2], use))
        return false;

    Item merged = last;
    merged.inst = Instruction::makePacked(*alu, *mem);
    // The reference annotation travels with the memory piece.
    const Item &mem_item = a.mem ? last : cand;
    merged.ref_size = mem_item.ref_size;
    merged.ref_is_char = mem_item.ref_is_char;
    out_.back() = merged;
    out_nodes_.back().push_back(id);

    DagNode &node = dag_->nodes()[id];
    node.scheduled = true;
    for (int succ : node.succs) {
        if (--dag_->nodes()[succ].pred_count == 0)
            ready_.push_back(succ);
    }
    ready_.erase(std::remove(ready_.begin(), ready_.end(), id),
                 ready_.end());
    ++stats_->packed_words;
    return true;
}

void
BlockScheduler::scheduleBody(Dag &dag)
{
    auto &nodes = dag.nodes();
    int term_id = block_.terminator()
        ? static_cast<int>(nodes.size()) - 1 : -1;

    // Longest-path heights for the critical-path heuristic.
    height_.assign(nodes.size(), 1);
    for (int i = static_cast<int>(nodes.size()) - 1; i >= 0; --i)
        for (int succ : nodes[i].succs)
            height_[i] = std::max(height_[i], 1 + height_[succ]);

    ready_.clear();
    for (size_t i = 0; i < nodes.size(); ++i)
        if (nodes[i].pred_count == 0)
            ready_.push_back(static_cast<int>(i));

    size_t body_remaining = nodes.size() - (term_id >= 0 ? 1 : 0);
    while (body_remaining > 0) {
        // Packing first: it is free.
        bool packed = false;
        for (int id : ready_) {
            if (id != term_id && tryPack(id)) {
                packed = true;
                --body_remaining;
                break;
            }
        }
        if (packed)
            continue;

        int best = -1;
        auto better = [&](int a, int b) {
            // Critical path first; then fan-out (nodes with more
            // dependents unblock more of the block, and in particular
            // schedule loads consumed by the terminator early enough
            // to keep the delay slots fillable); then stability.
            if (height_[a] != height_[b])
                return height_[a] > height_[b];
            if (nodes[a].succs.size() != nodes[b].succs.size())
                return nodes[a].succs.size() > nodes[b].succs.size();
            return a < b;
        };
        for (int id : ready_) {
            if (id == term_id)
                continue;
            RegUse use = isa::regUse(nodes[id].item.inst);
            if (!hazardFreeAtEnd(use))
                continue;
            if (best < 0 || better(id, best))
                best = id;
        }
        if (best < 0 && opts_.bugs.drop_load_noop) {
            // Fault injection: emit the best *hazardous* candidate
            // instead of covering the load delay with a no-op.
            for (int id : ready_) {
                if (id != term_id && (best < 0 || better(id, best)))
                    best = id;
            }
        }
        if (best < 0) {
            emitNop();
            continue;
        }
        emitNode(best);
        --body_remaining;
    }
}

/** Scheme 1: move trailing independent words into the delay slots. */
void
BlockScheduler::fillSlotsByMoving(Dag &dag, int term_id, int nslots)
{
    // The terminator is the last emitted word; candidates sit just
    // before it. Each successful move relocates one word after the
    // terminator (preserving their mutual order).
    for (int filled = 0; filled < nslots; ++filled) {
        // Position of the terminator word in out_.
        size_t term_pos = out_.size() - 1 - static_cast<size_t>(filled);
        if (term_pos == 0)
            break;

        // Search backward for a movable word (the paper's scheme 1).
        // A candidate at position p may hop over the words between it
        // and the terminator only if it has no dependence edge to any
        // of them.
        size_t found = term_pos; // sentinel: nothing found
        size_t lowest = term_pos > 8 ? term_pos - 8 : 0;
        if (opts_.bugs.slot_overwritten_def) {
            // Fault injection: take the *first* plausible word from
            // the front, hopping it over later dependent words.
            for (size_t p = lowest; p < term_pos; ++p) {
                const Item &cand = out_[p];
                if (isNopItem(cand) || cand.is_data)
                    continue;
                if (loadDelayWrites(cand) != 0)
                    continue;
                found = p;
                break;
            }
            if (found == term_pos)
                break;
            std::rotate(out_.begin() + static_cast<long>(found),
                        out_.begin() + static_cast<long>(found) + 1,
                        out_.end());
            std::rotate(out_nodes_.begin() + static_cast<long>(found),
                        out_nodes_.begin() + static_cast<long>(found) + 1,
                        out_nodes_.end());
            ++stats_->slots_filled_move;
            continue;
        }
        for (size_t p = term_pos; p-- > lowest;) {
            const Item &cand = out_[p];
            if (isNopItem(cand) || cand.is_data)
                continue;
            if (loadDelayWrites(cand) != 0)
                continue; // loads never sit in delay slots
            // The move hops the candidate over everything after it —
            // the intervening words, the terminator, and any slot
            // words already placed — so it must have no dependence
            // edge to any of them.
            bool dep = false;
            for (int node_id : out_nodes_[p]) {
                for (size_t q = p + 1; q < out_.size() && !dep; ++q)
                    for (int other : out_nodes_[q])
                        dep = dep || dag.hasEdge(node_id, other);
            }
            (void)term_id;
            if (dep)
                continue;
            // Removing the candidate creates two new adjacencies:
            // out_[p-1] with out_[p+1], and (when adjacent to the
            // terminator) the terminator with its new predecessor.
            if (p > 0) {
                const Item &next = out_[p + 1];
                RegUse next_use = isa::regUse(next.inst);
                if (loadHazard(out_[p - 1], next_use))
                    continue;
            }
            found = p;
            break;
        }
        if (found == term_pos)
            break;

        std::rotate(out_.begin() + static_cast<long>(found),
                    out_.begin() + static_cast<long>(found) + 1,
                    out_.end());
        std::rotate(out_nodes_.begin() + static_cast<long>(found),
                    out_nodes_.begin() + static_cast<long>(found) + 1,
                    out_nodes_.end());
        ++stats_->slots_filled_move;
    }
}

std::vector<Item>
BlockScheduler::run()
{
    // Untouchable blocks pass through verbatim.
    if (block_.no_reorder || block_.is_data)
        return block_.items;

    const Item *term = block_.terminator();

    if (!opts_.reorder) {
        // No reorganizer at all: the code generator knows nothing
        // about the pipeline, so the only safe lowering pads every
        // load with a delay no-op and every transfer with its delay
        // slots. Removing the unnecessary ones requires dependence
        // analysis — which is exactly the reorganization stage.
        for (const Item &item : block_.items) {
            out_.push_back(item);
            if (loadDelayWrites(item) != 0) {
                out_.push_back(makeNopItem());
                ++stats_->noops_inserted;
            }
        }
        if (term) {
            int nslots = delaySlots(*term);
            for (int i = 0; i < nslots; ++i) {
                out_.push_back(makeNopItem());
                ++stats_->noops_inserted;
            }
        }
        return out_;
    }

    Dag dag(block_.items, opts_.alias, opts_.bugs.alias_blind);
    dag_ = &dag;
    int term_id = term ? static_cast<int>(dag.nodes().size()) - 1 : -1;

    scheduleBody(dag);

    if (term) {
        RegUse term_use = isa::regUse(term->inst);
        if (!hazardFreeAtEnd(term_use) && !opts_.bugs.drop_load_noop)
            emitNop();
        emitNode(term_id);

        int nslots = delaySlots(*term);
        size_t before = stats_->slots_filled_move;
        if (opts_.fill_delay)
            fillSlotsByMoving(dag, term_id, nslots);
        int filled = static_cast<int>(stats_->slots_filled_move - before);
        if (opts_.bugs.drop_branch_noop && filled < nslots)
            ++filled; // fault injection: one slot no-op dropped
        for (int i = filled; i < nslots; ++i)
            emitNop();
    }
    return out_;
}

// ------------------------------------------- Cross-block slot filling

/** True when `item` is safe as a delay-slot occupant. */
bool
slotSafe(const Item &item)
{
    if (item.is_data || isNopItem(item))
        return false;
    if (item.inst.isControlTransfer())
        return false;
    if (loadDelayWrites(item) != 0 || item.inst.isLoad())
        return false;
    return true;
}

/**
 * Scheme 2: for an unconditional direct transfer whose slot is still a
 * no-op, duplicate the first instruction of the target block into the
 * slot and retarget the transfer past it.
 */
void
fillSlotsByDuplication(std::vector<Block> &blocks,
                       std::map<std::string, size_t> &labels,
                       const ReorgOptions &opts, ReorgStats *stats,
                       std::vector<DupHint> *hints)
{
    int fresh = 0;
    for (Block &b : blocks) {
        if (b.no_reorder || b.is_data || b.items.size() < 2)
            continue;
        // Terminator followed by exactly one no-op slot.
        size_t slot = b.items.size() - 1;
        if (!isNopItem(b.items[slot]))
            continue;
        const Item &term = b.items[slot - 1];
        if (term.is_data || term.target.empty())
            continue;
        bool unconditional =
            (term.inst.branch && term.inst.branch->cond == Cond::ALWAYS) ||
            (term.inst.jump &&
             (term.inst.jump->kind == JumpKind::DIRECT ||
              term.inst.jump->kind == JumpKind::CALL_DIRECT));
        if (!unconditional || delaySlots(term) != 1)
            continue;

        auto it = labels.find(term.target);
        if (it == labels.end())
            continue;
        Block &target = blocks[it->second];
        if (target.no_reorder || target.is_data || target.items.size() < 2)
            continue;
        const Item &w = target.items.front();
        if (!slotSafe(w) || w.inst.isStore())
            continue;

        Item copy = w;
        copy.labels.clear();

        if (opts.bugs.retarget_same_target) {
            // Fault injection: fill the slot but keep the original
            // target, so the duplicated word executes twice.
            b.items[slot] = std::move(copy);
            ++stats->slots_filled_dup;
            continue;
        }

        // Retarget past the duplicated instruction(s). With the
        // dup_skip_second fault injected, the retarget skips one word
        // more than was duplicated.
        size_t skip = opts.bugs.dup_skip_second ? 2u : 1u;
        if (target.items.size() <= skip)
            continue;
        std::string orig_label = term.target;
        std::string new_label;
        if (!target.items[skip].labels.empty()) {
            new_label = target.items[skip].labels.front();
        } else {
            new_label = support::strprintf("L$dup%d", fresh++);
            target.items[skip].labels.push_back(new_label);
            // Note: target.items[skip] now begins a block conceptually;
            // the final reassembly honours per-item labels.
        }
        b.items[slot] = std::move(copy);
        b.items[slot - 1].target = new_label;
        if (hints)
            hints->push_back(DupHint{orig_label, new_label, 1});
        ++stats->slots_filled_dup;
    }
}

/**
 * Scheme 3: for a conditional branch whose slot is still a no-op,
 * hoist the fall-through successor's first instruction into the slot
 * when its results are dead on the taken path.
 */
void
fillSlotsByHoisting(std::vector<Block> &blocks,
                    const std::map<std::string, size_t> &labels,
                    const Liveness &lv, const ReorgOptions &opts,
                    ReorgStats *stats)
{
    for (size_t i = 0; i + 1 < blocks.size(); ++i) {
        Block &b = blocks[i];
        if (b.no_reorder || b.is_data || b.items.size() < 2)
            continue;
        size_t slot = b.items.size() - 1;
        if (!isNopItem(b.items[slot]))
            continue;
        const Item &term = b.items[slot - 1];
        if (term.is_data || !term.inst.branch || term.target.empty())
            continue;
        Cond c = term.inst.branch->cond;
        if (c == Cond::ALWAYS || c == Cond::NEVER)
            continue;

        Block &next = blocks[i + 1];
        if (next.no_reorder || next.is_data || !next.labels.empty() ||
            next.items.empty()) {
            continue; // must be a pure fall-through block
        }
        const Item &w = next.items.front();
        if (!slotSafe(w) || !w.inst.alu || w.inst.mem)
            continue; // ALU-only: no memory effects on the taken path
        RegUse use = isa::regUse(w.inst);
        if (use.writes_lo || use.touches_system_state)
            continue;

        auto it = labels.find(term.target);
        if (it == labels.end())
            continue;
        uint16_t live_at_target = lv.live_in[it->second];
        if (!opts.bugs.hoist_blind &&
            (use.gpr_writes & live_at_target) != 0) {
            continue; // visible on the taken path
        }

        Item moved = w;
        moved.labels.clear();
        b.items[slot] = std::move(moved);
        next.items.erase(next.items.begin());
        ++stats->slots_filled_hoist;
    }
}

} // namespace

std::vector<std::pair<size_t, uint16_t>>
blockLiveIn(const Unit &unit)
{
    std::vector<Block> blocks = splitBlocks(unit);
    auto labels = labelMap(blocks);
    Liveness lv = computeLiveness(blocks, labels);
    std::vector<std::pair<size_t, uint16_t>> out;
    size_t index = 0;
    for (size_t i = 0; i < blocks.size(); ++i) {
        out.emplace_back(index, lv.live_in[i]);
        index += blocks[i].items.size();
    }
    return out;
}

ReorgResult
reorganize(const Unit &legal, const ReorgOptions &opts)
{
    // Symbolic-target requirement (code motion invalidates numeric
    // branch offsets).
    for (const Item &item : legal.items) {
        if (!item.is_data && !item.no_reorder && item.inst.branch &&
            item.target.empty() && item.inst.branch->offset != 0) {
            support::panic("reorganize: branch at source line %d has a "
                           "numeric target; use a label",
                           item.source_line);
        }
    }

    std::vector<Block> blocks = splitBlocks(legal);
    auto labels = labelMap(blocks);
    Liveness lv = computeLiveness(blocks, labels);

    ReorgResult result;
    result.stats.input_words = legal.items.size();

    // Per-block scheduling (covers scheme 1 when filling is enabled).
    std::vector<Block> scheduled;
    scheduled.reserve(blocks.size());
    for (const Block &b : blocks) {
        Block out = b;
        out.items = BlockScheduler(b, opts, &result.stats).run();
        scheduled.push_back(std::move(out));
    }

    if (opts.fill_delay) {
        auto scheduled_labels = labelMap(scheduled);
        fillSlotsByDuplication(scheduled, scheduled_labels, opts,
                               &result.stats, &result.hints);
        fillSlotsByHoisting(scheduled, scheduled_labels, lv, opts,
                            &result.stats);
    }

    // Cross-block load-delay fixup: a fall-through block whose last
    // word is a load needs a no-op when the next block's first word
    // reads the loaded register.
    for (size_t i = 0; i + 1 < scheduled.size(); ++i) {
        Block &b = scheduled[i];
        if (b.items.empty() || b.terminator())
            continue;
        uint16_t delayed = loadDelayWrites(b.items.back());
        if (!delayed)
            continue;
        const Block &next = scheduled[i + 1];
        if (next.items.empty() || next.items.front().is_data)
            continue;
        RegUse use = isa::regUse(next.items.front().inst);
        if (delayed & use.gpr_reads) {
            b.items.push_back(makeNopItem());
            ++result.stats.noops_inserted;
        }
    }

    // Reassemble.
    Unit &out = result.unit;
    out.origin = legal.origin;
    out.trailing_labels = legal.trailing_labels;
    for (Block &b : scheduled) {
        if (b.items.empty()) {
            // Emptied by hoisting; it had no labels by construction.
            continue;
        }
        for (size_t i = 0; i < b.items.size(); ++i) {
            Item item = std::move(b.items[i]);
            if (i == 0) {
                item.labels.insert(item.labels.begin(),
                                   b.labels.begin(), b.labels.end());
            }
            out.items.push_back(std::move(item));
        }
    }
    result.stats.output_words = out.items.size();
    return result;
}

} // namespace mips::reorg
