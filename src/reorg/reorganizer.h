/**
 * @file
 * The code reorganizer: the paper's software replacement for pipeline
 * interlock hardware (Section 4.2.1).
 *
 * Input is *legal code*: a Unit whose instructions assume sequential
 * (interlocked-machine) semantics — every instruction sees the results
 * of all earlier ones and control transfers act immediately. Output is
 * a Unit that executes equivalently on the interlock-free pipeline:
 *
 *  1. **Reorganization** — within each basic block, instructions are
 *     list-scheduled over a dependence DAG so that load-delay hazards
 *     are covered by useful instructions where possible; no-ops are
 *     inserted only when nothing can be moved.
 *  2. **Packing** — an ALU piece and a memory piece with no dependence
 *     between them share one 32-bit word when the packed format allows.
 *  3. **Branch-delay filling** — the three schemes of Section 4.2.1:
 *     (1) move an independent instruction from before the branch into
 *     the slot; (2) for an unconditional branch, duplicate the target
 *     instruction and retarget past it; (3) for a conditional branch,
 *     hoist the fall-through successor into the slot when its results
 *     are dead on the taken path (computed by a global liveness pass).
 *
 * Each stage can be toggled independently, which is how the Table 11
 * experiment measures the cumulative improvements. `.noreorder`
 * regions pass through untouched ("the front end ... emits a pseudo-op
 * which tells the reorganizer that this sequence is not to be
 * touched").
 *
 * Correctness contract (tested differentially): for any legal unit U,
 * running link(U) on the functional machine and link(reorganize(U))
 * on the pipeline machine yields the same architectural results.
 */
#pragma once

#include "asm/unit.h"
#include "reorg/dag.h"

namespace mips::reorg {

/** Which stages run; defaults are the full reorganizer. */
struct ReorgOptions
{
    bool reorder = true;    ///< schedule instead of pure no-op insertion
    bool pack = true;       ///< ALU/memory piece packing
    bool fill_delay = true; ///< branch-delay schemes 1-3
    AliasOptions alias;     ///< memory disambiguation configuration
};

/** Static counters describing one reorganization. */
struct ReorgStats
{
    size_t input_words = 0;
    size_t output_words = 0;
    size_t noops_inserted = 0;       ///< no-ops present in the output
    size_t packed_words = 0;         ///< words carrying two pieces
    size_t slots_filled_move = 0;    ///< scheme 1
    size_t slots_filled_dup = 0;     ///< scheme 2
    size_t slots_filled_hoist = 0;   ///< scheme 3

    /** Static improvement over `baseline` output size. */
    double
    improvementOver(const ReorgStats &baseline) const
    {
        if (baseline.output_words == 0)
            return 0.0;
        return 1.0 - static_cast<double>(output_words) /
                     static_cast<double>(baseline.output_words);
    }
};

/** Output of the reorganizer. */
struct ReorgResult
{
    assembler::Unit unit;
    ReorgStats stats;
};

/**
 * Reorganize a legal-code unit for the interlock-free pipeline.
 *
 * All control transfers in `legal` must use symbolic targets (the
 * reorganizer moves code, so pre-resolved numeric branch offsets
 * cannot be preserved); violations panic.
 */
ReorgResult reorganize(const assembler::Unit &legal,
                       const ReorgOptions &opts = ReorgOptions{});

/**
 * Per-register liveness at block granularity, exposed for tests.
 * Returns, for each item index that *starts* a basic block, the GPR
 * live-in mask of that block (conservatively all-ones for blocks
 * reached by indirect control flow or falling off the unit).
 */
std::vector<std::pair<size_t, uint16_t>>
blockLiveIn(const assembler::Unit &unit);

} // namespace mips::reorg
