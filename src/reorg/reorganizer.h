/**
 * @file
 * The code reorganizer: the paper's software replacement for pipeline
 * interlock hardware (Section 4.2.1).
 *
 * Input is *legal code*: a Unit whose instructions assume sequential
 * (interlocked-machine) semantics — every instruction sees the results
 * of all earlier ones and control transfers act immediately. Output is
 * a Unit that executes equivalently on the interlock-free pipeline:
 *
 *  1. **Reorganization** — within each basic block, instructions are
 *     list-scheduled over a dependence DAG so that load-delay hazards
 *     are covered by useful instructions where possible; no-ops are
 *     inserted only when nothing can be moved.
 *  2. **Packing** — an ALU piece and a memory piece with no dependence
 *     between them share one 32-bit word when the packed format allows.
 *  3. **Branch-delay filling** — the three schemes of Section 4.2.1:
 *     (1) move an independent instruction from before the branch into
 *     the slot; (2) for an unconditional branch, duplicate the target
 *     instruction and retarget past it; (3) for a conditional branch,
 *     hoist the fall-through successor into the slot when its results
 *     are dead on the taken path (computed by a global liveness pass).
 *
 * Each stage can be toggled independently, which is how the Table 11
 * experiment measures the cumulative improvements. `.noreorder`
 * regions pass through untouched ("the front end ... emits a pseudo-op
 * which tells the reorganizer that this sequence is not to be
 * touched").
 *
 * Correctness contract (tested differentially): for any legal unit U,
 * running link(U) on the functional machine and link(reorganize(U))
 * on the pipeline machine yields the same architectural results.
 */
#pragma once

#include <string>
#include <vector>

#include "asm/unit.h"
#include "reorg/dag.h"

namespace mips::reorg {

/**
 * Test-only fault-injection switches. Each flag, when set, disables
 * exactly one safety check inside one reorganizer stage, turning it
 * into a known-buggy reorganizer. The translation-validation mutation
 * suite (tests/tv_test.cc) flips each flag on a program designed to
 * trigger it and asserts the validator reports a TV0xx error. All
 * flags default to off; production callers never set them.
 */
struct ReorgBugs
{
    /** Packing ignores the resident→candidate dependence edge. */
    bool pack_dependent = false;
    /** Scheme 3 hoists without checking taken-path liveness. */
    bool hoist_blind = false;
    /** The dependence DAG assumes no two memory references alias. */
    bool alias_blind = false;
    /** Scheme 1 moves a word into the slot ignoring dependences. */
    bool slot_overwritten_def = false;
    /** The scheduler drops the no-op that covers a load delay. */
    bool drop_load_noop = false;
    /** The scheduler drops a branch-delay-slot no-op outright. */
    bool drop_branch_noop = false;
    /** Scheme 2 fills the slot but forgets to retarget the branch. */
    bool retarget_same_target = false;
    /** Scheme 2 retargets past *two* words while duplicating one. */
    bool dup_skip_second = false;

    bool
    any() const
    {
        return pack_dependent || hoist_blind || alias_blind ||
               slot_overwritten_def || drop_load_noop ||
               drop_branch_noop || retarget_same_target ||
               dup_skip_second;
    }
};

/** Which stages run; defaults are the full reorganizer. */
struct ReorgOptions
{
    bool reorder = true;    ///< schedule instead of pure no-op insertion
    bool pack = true;       ///< ALU/memory piece packing
    bool fill_delay = true; ///< branch-delay schemes 1-3
    AliasOptions alias;     ///< memory disambiguation configuration
    ReorgBugs bugs;         ///< test-only fault injection (see above)
};

/**
 * Provenance record for one scheme-2 duplication: the transfer that
 * used to target `orig_label` now targets `dup_label`, and the
 * `words` output words starting at `orig_label` were duplicated into
 * the delay slot. The translation validator consumes these hints to
 * prove retargeted exits equivalent (it replays the words between the
 * two labels on the input side and compares full states).
 */
struct DupHint
{
    std::string orig_label; ///< the original transfer target
    std::string dup_label;  ///< the new target, past the duplication
    size_t words = 1;       ///< duplicated word count (currently 1)
};

/** Static counters describing one reorganization. */
struct ReorgStats
{
    size_t input_words = 0;
    size_t output_words = 0;
    size_t noops_inserted = 0;       ///< no-ops present in the output
    size_t packed_words = 0;         ///< words carrying two pieces
    size_t slots_filled_move = 0;    ///< scheme 1
    size_t slots_filled_dup = 0;     ///< scheme 2
    size_t slots_filled_hoist = 0;   ///< scheme 3

    /** Static improvement over `baseline` output size. */
    double
    improvementOver(const ReorgStats &baseline) const
    {
        if (baseline.output_words == 0)
            return 0.0;
        return 1.0 - static_cast<double>(output_words) /
                     static_cast<double>(baseline.output_words);
    }
};

/** Output of the reorganizer. */
struct ReorgResult
{
    assembler::Unit unit;
    ReorgStats stats;
    /** Scheme-2 provenance, for the translation validator. */
    std::vector<DupHint> hints;
};

/**
 * Reorganize a legal-code unit for the interlock-free pipeline.
 *
 * All control transfers in `legal` must use symbolic targets (the
 * reorganizer moves code, so pre-resolved numeric branch offsets
 * cannot be preserved); violations panic.
 */
ReorgResult reorganize(const assembler::Unit &legal,
                       const ReorgOptions &opts = ReorgOptions{});

/**
 * Per-register liveness at block granularity, exposed for tests.
 * Returns, for each item index that *starts* a basic block, the GPR
 * live-in mask of that block (conservatively all-ones for blocks
 * reached by indirect control flow or falling off the unit).
 */
std::vector<std::pair<size_t, uint16_t>>
blockLiveIn(const assembler::Unit &unit);

} // namespace mips::reorg
