#include "sim/cpu.h"

#include "isa/disasm.h"
#include "isa/encoding.h"
#include "support/logging.h"

namespace mips::sim {

using isa::AluPiece;
using isa::Instruction;
using isa::MemMode;
using isa::Reg;

Cpu::Cpu(PhysMemory &memory, MappingUnit &mapping)
    : mem_(memory), map_(mapping)
{
    decode_tags_.assign(kDecodeCacheSize, kNoTag);
    decode_hot_.assign(kDecodeCacheSize, HotEntry{}); // K_GENERIC
    decode_cache_.assign(kDecodeCacheSize, DecodeEntry{});
    // Any store that changes memory contents — our own, another bus
    // master's, or a host-side poke/loadImage — must drop the stale
    // predecoded entry, or self-modifying code would run old words.
    // The memory invalidates our shared tag array in place.
    mem_.attachDecodeTags(decode_tags_.data(), kDecodeCacheSize - 1,
                          kNoTag);
    // CYCLES_LO pulls the count on demand instead of the CPU pushing
    // it into the device every cycle.
    mem_.setCycleSource(&stats_.cycles);
    reset();
}

Cpu::~Cpu()
{
    mem_.attachDecodeTags(nullptr, 0, 0);
    mem_.setCycleSource(nullptr);
}

void
Cpu::reset(uint32_t pc)
{
    regs_.fill(0);
    lo_ = 0;
    sr_ = Surprise{};
    sr_.cause = Cause::RESET;
    ra_.fill(0);
    load_pending_ = false;
    shadow_ = 0;
    halted_ = false;
    error_.clear();
    exec_dense_.clear();
    exec_sparse_.clear();
    fault_events_.clear();
    // The predecode cache survives reset: it is keyed by physical
    // address and every write that changes memory contents invalidates
    // it in place, so its entries stay accurate across resets — a
    // reloaded (unchanged) program starts with a warm cache.
    map_.flushTlb(); // reset disables mapping
    setPc(pc);
}

void
Cpu::setReg(Reg r, uint32_t value)
{
    if (r != isa::kZeroReg)
        regs_[r] = value;
}

void
Cpu::setPc(uint32_t pc)
{
    stream_ = {pc, pc + 1, pc + 2};
}

void
Cpu::redirectStream(int delay, uint32_t target)
{
    stream_[delay] = target;
    for (int i = delay + 1; i < 3; ++i)
        stream_[i] = stream_[i - 1] + 1;
}

void
Cpu::enableFastPath(bool on)
{
    fast_path_ = on;
    map_.setTlbEnabled(on);
    // The predecode cache needs no flush here: writes keep it coherent
    // whether or not the fast path consults it, so toggling modes (the
    // benchmark does, per run) cannot expose a stale entry.
}

uint8_t
Cpu::classifyWord(const Instruction &inst)
{
    // Unexpected combinations (the encoder never emits them, but the
    // classifier must not assume validity) fall back to K_GENERIC,
    // which runs the reference execution path on the cached decode.
    if (inst.alu) {
        if (inst.branch || inst.jump || inst.special)
            return K_GENERIC;
        if (!inst.mem)
            return K_ALU;
        return inst.mem->mode == MemMode::LONG_IMM ? K_GENERIC : K_PACKED;
    }
    if (inst.mem) {
        if (inst.branch || inst.jump || inst.special)
            return K_GENERIC;
        if (inst.mem->mode == MemMode::LONG_IMM)
            return K_LONGIMM;
        return inst.mem->is_store ? K_STORE : K_LOAD;
    }
    if (inst.branch)
        return (inst.jump || inst.special) ? K_GENERIC : K_BRANCH;
    if (inst.jump) {
        // Table dispatch fetches its target over the data interface;
        // the generic path has the translate/privilege machinery.
        return (inst.special || isa::jumpIsTable(inst.jump->kind))
                   ? K_GENERIC : K_JUMP;
    }
    if (inst.special)
        return K_GENERIC;
    return K_NOP;
}

Cpu::MemLite
Cpu::memLite(const isa::MemPiece &m)
{
    MemLite l{};
    l.ea_base_mask = m.mode != MemMode::ABSOLUTE ? ~0u : 0u;
    l.ea_index_mask = (m.mode == MemMode::BASE_INDEX ||
                       m.mode == MemMode::BASE_SHIFT) ? ~0u : 0u;
    l.ea_imm = (m.mode == MemMode::ABSOLUTE || m.mode == MemMode::DISP)
                   ? static_cast<uint32_t>(m.imm) : 0u;
    l.ea_shift = m.mode == MemMode::BASE_SHIFT ? m.shift : 0;
    l.base = m.base;
    l.index = m.index;
    l.rd = m.rd;
    return l;
}

void
Cpu::fillHot(HotEntry *h, const Instruction &inst)
{
    h->kind = classifyWord(inst);
    h->mem_is_store = false;
    switch (h->kind) {
      case K_ALU:
        h->u.alu = *inst.alu;
        break;
      case K_LONGIMM:
        h->u.mem = MemLite{};
        h->u.mem.ea_imm = static_cast<uint32_t>(inst.mem->imm);
        h->u.mem.rd = inst.mem->rd;
        break;
      case K_LOAD:
      case K_STORE:
        h->u.mem = memLite(*inst.mem);
        h->mem_is_store = inst.mem->is_store;
        break;
      case K_PACKED:
        h->u.packed.alu = *inst.alu;
        h->u.packed.mem = memLite(*inst.mem);
        h->mem_is_store = inst.mem->is_store;
        break;
      case K_BRANCH:
        h->u.branch = *inst.branch;
        break;
      case K_JUMP:
        h->u.jump = *inst.jump;
        break;
      default: // K_NOP / K_GENERIC carry no parameters
        break;
    }
}

__attribute__((noinline)) void
Cpu::recordExec(uint32_t pc)
{
    if (pc < kProfileDenseLimit) {
        if (pc >= exec_dense_.size())
            exec_dense_.resize(((pc >> kPageBits) + 1) << kPageBits, 0);
        ++exec_dense_[pc];
    } else {
        ++exec_sparse_[pc];
    }
}

uint64_t
Cpu::execCount(uint32_t pc) const
{
    if (pc < exec_dense_.size())
        return exec_dense_[pc];
    auto it = exec_sparse_.find(pc);
    return it == exec_sparse_.end() ? 0 : it->second;
}

std::vector<uint64_t>
Cpu::execCounts(uint32_t base, size_t n) const
{
    std::vector<uint64_t> counts(n);
    for (size_t i = 0; i < n; ++i)
        counts[i] = execCount(base + static_cast<uint32_t>(i));
    return counts;
}

// The noinline attributes below mark the cold exits of step(). run()
// flattens step() into its loop; letting these bodies inline there too
// wrecks the register allocation of the hot path (measured ~20% of the
// fast-path throughput), so they stay real calls.
__attribute__((noinline)) StopReason
Cpu::simError(std::string message)
{
    error_ = std::move(message);
    halted_ = true;
    return StopReason::SIM_ERROR;
}

__attribute__((noinline)) void
Cpu::enter(Cause cause, uint16_t detail,
           const std::array<uint32_t, 3> &ras)
{
    ++stats_.exceptions;
    // Per-cause fault accounting for the static value-range oracle:
    // count (and log the first kMaxFaultEvents of) the fault classes
    // the analysis predicts. ras[0] is the offender's restart address.
    switch (cause) {
      case Cause::OVERFLOW: ++stats_.overflow_traps; break;
      case Cause::PAGE_FAULT: ++stats_.page_faults; break;
      case Cause::ADDRESS_ERROR: ++stats_.address_errors; break;
      default: break;
    }
    if ((cause == Cause::OVERFLOW || cause == Cause::PAGE_FAULT ||
         cause == Cause::ADDRESS_ERROR) &&
        fault_events_.size() < kMaxFaultEvents) {
        fault_events_.push_back(
            {cause, ras[0],
             cause == Cause::OVERFLOW ? 0 : fault_addr_});
    }
    ra_ = ras;
    sr_.enterException(cause, detail);
    map_.flushTlb(); // mapping off + privilege swap
    setPc(0);
    shadow_ = 0;
    // The offender's own shadow state dies with it; the saved
    // three-address stream reproduces any control transfer.
}

__attribute__((noinline)) void
Cpu::faultAt(uint32_t cur, Cause cause, uint16_t detail)
{
    enter(cause, detail, {cur, stream_[0], stream_[1]});
}

__attribute__((noinline)) void
Cpu::interruptNow(Cause cause, uint16_t detail)
{
    enter(cause, detail, {stream_[0], stream_[1], stream_[2]});
}

// Out of line for the same reason as the fault helpers above: with
// 95%+ hit rates the fill path is cold, and the big Instruction copy
// plus the classifier would otherwise be inlined into the stepping
// loop by run()'s flatten.
__attribute__((noinline)) bool
Cpu::fillDecodeSlot(uint32_t fetch_phys, uint32_t slot,
                    const HotEntry **h, const DecodeEntry **e)
{
    ++decode_misses_;
    uint32_t word = mem_.read(fetch_phys);
    auto decoded = isa::decode(word);
    if (!decoded.ok())
        return false; // caller raises the ILLEGAL fault
    DecodeEntry *fe;
    HotEntry *fh;
    if (mem_.isMmio(fetch_phys)) {
        fe = &mmio_entry_; // scratch pair; never tagged valid
        fh = &mmio_hot_;
    } else {
        decode_tags_[slot] = fetch_phys;
        fe = &decode_cache_[slot];
        fh = &decode_hot_[slot];
    }
    fe->word = word;
    fe->inst = decoded.take();
    fe->uses_data_port = fe->inst.referencesMemory();
    fe->is_nop = fe->inst.isNop();
    fillHot(fh, fe->inst);
    *h = fh;
    *e = fe;
    return true;
}

bool
Cpu::translateOrFault(uint32_t cur, uint32_t vaddr, bool is_write,
                      bool is_fetch, uint32_t *phys)
{
    if (!sr_.map_enable) {
        if (vaddr >= mem_.size()) {
            fault_addr_ = vaddr;
            faultAt(cur, Cause::ADDRESS_ERROR,
                    is_fetch ? kDetailIfetch : kDetailData);
            return false;
        }
        *phys = vaddr;
        return true;
    }
    Translation t = map_.translate(vaddr, is_write);
    if (!t.ok) {
        fault_addr_ = t.cause == Cause::PAGE_FAULT ? t.fault_sva
                                                   : t.fault_vaddr;
        faultAt(cur, t.cause, is_fetch ? kDetailIfetch : kDetailData);
        return false;
    }
    if (t.phys >= mem_.size()) {
        fault_addr_ = t.phys;
        faultAt(cur, Cause::ADDRESS_ERROR,
                is_fetch ? kDetailIfetch : kDetailData);
        return false;
    }
    *phys = t.phys;
    return true;
}

StopReason
Cpu::step()
{
    if (halted_) [[unlikely]]
        return error_.empty() ? StopReason::HALT : StopReason::SIM_ERROR;
    return stepInner();
}

// Every return of a halt/error reason sets halted_, and run() exits
// its loop on any non-RUNNING reason, so the inner step never needs
// the halted check the public step() makes per call.
StopReason
Cpu::stepInner()
{
    // External interrupt: a single line onto the chip, sampled at
    // instruction boundaries when enabled. Nothing has issued yet, so
    // the resume stream is the pending stream itself.
    if (sr_.int_enable && mem_.interruptPending()) [[unlikely]]
        interruptNow(Cause::INTERRUPT, 0);

    uint32_t cur = stream_[0];
    stream_[0] = stream_[1];
    stream_[1] = stream_[2];
    stream_[2] = stream_[2] + 1; // beyond [2] is always sequential

    bool in_shadow = shadow_ > 0;
    if (in_shadow)
        --shadow_;

    ++stats_.cycles;
    if (profiling_)
        recordExec(cur);

    auto commitPendingLoad = [this] {
        if (load_pending_) {
            setReg(load_reg_, load_value_);
            load_pending_ = false;
        }
    };

    // ---- Fetch -------------------------------------------------------
    // Unmapped in-range fetches — the whole benchmark corpus and all
    // supervisor code — skip the translate call outright.
    uint32_t fetch_phys = cur;
    if (sr_.map_enable || cur >= mem_.size()) {
        if (!translateOrFault(cur, cur, false, true, &fetch_phys)) {
            commitPendingLoad(); // earlier instructions complete
            ++stats_.free_data_cycles;
            return StopReason::RUNNING;
        }
    }

    // ---- Decode ------------------------------------------------------
    // Fast path: the direct-mapped predecode cache turns the common
    // fetch+decode into one tag compare, and the precomputed execution
    // shape (Kind) dispatches straight to a specialized handler. A
    // miss (or the reference path) reads the word and runs the full
    // decoder; MMIO words are never cached because devices may return
    // different words per read.
    const Instruction *instp = nullptr;
    bool uses_data_port, is_nop;
    if (fast_path_) {
        uint32_t slot = fetch_phys & (kDecodeCacheSize - 1);
        const HotEntry *h = &decode_hot_[slot];
        const DecodeEntry *e = &decode_cache_[slot];
        if (decode_tags_[slot] == fetch_phys) [[likely]] {
            ++decode_hits_;
        } else if (!fillDecodeSlot(fetch_phys, slot, &h, &e)) {
            commitPendingLoad();
            ++stats_.free_data_cycles;
            faultAt(cur, Cause::ILLEGAL, 0);
            return StopReason::RUNNING;
        }

        // ---- Specialized execution by shape ---------------------------
        // Each case replicates the generic path below exactly — operand
        // reads happen before the pending load commits, the memory
        // reference commits before any register write of the same word,
        // faults inhibit the same writes — it just skips the
        // piece-presence tests the shape already answers. Anything
        // unusual (specials, malformed packings) breaks out to the
        // generic path on the cached decode.
        switch (h->kind) {
          case K_NOP:
            ++stats_.free_data_cycles;
            ++stats_.nops;
            commitPendingLoad();
            return StopReason::RUNNING;

          case K_ALU: {
            const AluPiece &a = h->u.alu;
            ++stats_.free_data_cycles;
            ++stats_.alu_pieces;
            isa::AluInputs in;
            in.rs = regs_[a.rs];
            in.src2 = a.src2.is_imm ? a.src2.imm4 : regs_[a.src2.reg];
            in.rd_old = regs_[a.rd];
            in.lo = lo_;
            commitPendingLoad();
            isa::AluOutputs out = isa::evalAlu(a, in);
            if (out.overflow && sr_.ovf_enable) {
                faultAt(cur, Cause::OVERFLOW, 0);
                return StopReason::RUNNING;
            }
            if (out.writes_rd)
                setReg(a.rd, out.rd);
            if (out.writes_lo)
                lo_ = out.lo;
            return StopReason::RUNNING;
          }

          case K_LONGIMM: {
            ++stats_.free_data_cycles;
            commitPendingLoad();
            ++stats_.long_immediates;
            setReg(h->u.mem.rd, h->u.mem.ea_imm);
            return StopReason::RUNNING;
          }

          case K_LOAD: {
            const MemLite &m = h->u.mem;
            uint32_t base = regs_[m.base];
            uint32_t index = regs_[m.index];
            commitPendingLoad();
            uint32_t ea = (base & m.ea_base_mask) +
                          ((index >> m.ea_shift) & m.ea_index_mask) +
                          m.ea_imm;
            uint32_t phys = ea;
            if (sr_.map_enable || ea >= mem_.size()) {
                if (!translateOrFault(cur, ea, false, false, &phys))
                    return StopReason::RUNNING;
            }
            if (mem_.isMmio(phys)) {
                if (!sr_.supervisor) {
                    faultAt(cur, Cause::PRIVILEGE, 0);
                    return StopReason::RUNNING;
                }
                ++stats_.loads;
                load_value_ = mem_.read(phys);
            } else {
                ++stats_.loads;
                load_value_ = mem_.ram(phys);
            }
            load_reg_ = m.rd;
            load_pending_ = true;
            return StopReason::RUNNING;
          }

          case K_STORE: {
            const MemLite &m = h->u.mem;
            uint32_t base = regs_[m.base];
            uint32_t index = regs_[m.index];
            uint32_t data = regs_[m.rd];
            commitPendingLoad();
            uint32_t ea = (base & m.ea_base_mask) +
                          ((index >> m.ea_shift) & m.ea_index_mask) +
                          m.ea_imm;
            uint32_t phys = ea;
            if (sr_.map_enable || ea >= mem_.size()) {
                if (!translateOrFault(cur, ea, true, false, &phys))
                    return StopReason::RUNNING;
            }
            if (mem_.isMmio(phys)) {
                if (!sr_.supervisor) {
                    faultAt(cur, Cause::PRIVILEGE, 0);
                    return StopReason::RUNNING;
                }
                ++stats_.stores;
                mem_.write(phys, data);
            } else {
                ++stats_.stores;
                mem_.ramWrite(phys, data);
            }
            return StopReason::RUNNING;
          }

          case K_PACKED: {
            const AluPiece &a = h->u.packed.alu;
            const MemLite &m = h->u.packed.mem;
            bool is_store = h->mem_is_store;
            ++stats_.alu_pieces;
            ++stats_.packed_words;
            isa::AluInputs in;
            in.rs = regs_[a.rs];
            in.src2 = a.src2.is_imm ? a.src2.imm4 : regs_[a.src2.reg];
            in.rd_old = regs_[a.rd];
            in.lo = lo_;
            uint32_t base = regs_[m.base];
            uint32_t index = regs_[m.index];
            uint32_t data = regs_[m.rd];
            commitPendingLoad();
            isa::AluOutputs out = isa::evalAlu(a, in);
            if (out.overflow && sr_.ovf_enable) {
                faultAt(cur, Cause::OVERFLOW, 0);
                return StopReason::RUNNING;
            }
            uint32_t ea = (base & m.ea_base_mask) +
                          ((index >> m.ea_shift) & m.ea_index_mask) +
                          m.ea_imm;
            uint32_t phys = ea;
            if (sr_.map_enable || ea >= mem_.size()) {
                if (!translateOrFault(cur, ea, is_store, false, &phys))
                    return StopReason::RUNNING;
            }
            bool is_mmio = mem_.isMmio(phys);
            if (is_mmio && !sr_.supervisor) {
                faultAt(cur, Cause::PRIVILEGE, 0);
                return StopReason::RUNNING;
            }
            bool issued_load = false;
            uint32_t lval = 0;
            if (is_store) {
                ++stats_.stores;
                if (is_mmio)
                    mem_.write(phys, data);
                else
                    mem_.ramWrite(phys, data);
            } else {
                ++stats_.loads;
                issued_load = true;
                lval = is_mmio ? mem_.read(phys) : mem_.ram(phys);
            }
            if (out.writes_rd)
                setReg(a.rd, out.rd);
            if (out.writes_lo)
                lo_ = out.lo;
            if (issued_load) {
                load_pending_ = true;
                load_reg_ = m.rd;
                load_value_ = lval;
            }
            return StopReason::RUNNING;
          }

          case K_BRANCH: {
            const isa::BranchPiece &b = h->u.branch;
            ++stats_.free_data_cycles;
            ++stats_.branches;
            uint32_t rs = regs_[b.rs];
            uint32_t src2 =
                b.src2.is_imm ? b.src2.imm4 : regs_[b.src2.reg];
            commitPendingLoad();
            if (isa::evalCond(b.cond, rs, src2)) {
                ++stats_.branches_taken;
                if (in_shadow) {
                    return simError(support::strprintf(
                        "taken branch at %u inside the delay shadow of "
                        "another transfer (architecturally undefined)",
                        cur));
                }
                redirectStream(isa::kBranchDelay,
                               cur + 1 + static_cast<uint32_t>(b.offset));
                shadow_ = isa::kBranchDelay;
            }
            return StopReason::RUNNING;
          }

          case K_JUMP: {
            const isa::JumpPiece &j = h->u.jump;
            ++stats_.free_data_cycles;
            uint32_t target_val = regs_[j.target_reg];
            commitPendingLoad();
            ++stats_.jumps;
            if (in_shadow) {
                return simError(support::strprintf(
                    "jump at %u inside the delay shadow of another "
                    "transfer (architecturally undefined)", cur));
            }
            int delay = isa::jumpDelay(j.kind);
            uint32_t target = isa::jumpIsIndirect(j.kind) ? target_val
                                                          : j.target_addr;
            if (isa::jumpIsCall(j.kind))
                setReg(j.link, cur + 1 + static_cast<uint32_t>(delay));
            redirectStream(delay, target);
            shadow_ = delay;
            return StopReason::RUNNING;
          }

          default: // K_GENERIC: specials and unusual packings
            break;
        }
        instp = &e->inst;
        uses_data_port = e->uses_data_port;
        is_nop = e->is_nop;
    } else {
        uint32_t word = mem_.read(fetch_phys);
        auto decoded = isa::decode(word);
        if (!decoded.ok()) {
            commitPendingLoad();
            ++stats_.free_data_cycles;
            faultAt(cur, Cause::ILLEGAL, 0);
            return StopReason::RUNNING;
        }
        slow_inst_ = decoded.take();
        instp = &slow_inst_;
        uses_data_port = slow_inst_.referencesMemory();
        is_nop = slow_inst_.isNop();
    }
    const Instruction &inst = *instp;

    // Branchless: these predicates vary instruction to instruction, so
    // plain adds beat four data-dependent branches.
    bool has_alu = inst.alu.has_value();
    bool has_mem = inst.mem.has_value();
    stats_.free_data_cycles += !uses_data_port;
    stats_.nops += is_nop;
    stats_.alu_pieces += has_alu;
    stats_.packed_words += has_alu & has_mem;

    // ---- Operand read (register file + bypass view) -------------------
    // All source operands are read *before* the pending load commits:
    // the instruction in a load's delay slot sees the old value. ALU
    // results of the previous instruction are already in regs_ (full
    // bypass), so only loads expose a delay.
    isa::AluInputs alu_in;
    if (inst.alu) {
        const AluPiece &a = *inst.alu;
        alu_in.rs = regs_[a.rs];
        alu_in.src2 = a.src2.is_imm ? a.src2.imm4 : regs_[a.src2.reg];
        alu_in.rd_old = regs_[a.rd];
        alu_in.lo = lo_;
    }
    uint32_t mem_base = 0, mem_index = 0, mem_data = 0;
    if (inst.mem) {
        mem_base = regs_[inst.mem->base];
        mem_index = regs_[inst.mem->index];
        mem_data = regs_[inst.mem->rd];
    }
    uint32_t br_rs = 0, br_src2 = 0;
    if (inst.branch) {
        br_rs = regs_[inst.branch->rs];
        br_src2 = inst.branch->src2.is_imm ? inst.branch->src2.imm4
                                           : regs_[inst.branch->src2.reg];
    }
    uint32_t jump_target_val = 0, jump_index_val = 0;
    if (inst.jump) {
        jump_target_val = regs_[inst.jump->target_reg];
        jump_index_val = regs_[inst.jump->index];
    }
    uint32_t special_val = 0;
    if (inst.special)
        special_val = regs_[inst.special->reg];

    // The previous instruction's load lands now, after this
    // instruction's reads and before the next instruction's.
    commitPendingLoad();

    // ---- Execute: ALU piece -------------------------------------------
    isa::AluOutputs alu_out;
    if (inst.alu) {
        alu_out = isa::evalAlu(*inst.alu, alu_in);
        if (alu_out.overflow && sr_.ovf_enable) {
            // Enabled overflow inhibits all of this word's effects.
            faultAt(cur, Cause::OVERFLOW, 0);
            return StopReason::RUNNING;
        }
    }

    // ---- Execute: memory piece ----------------------------------------
    // The memory reference must commit before any register write of
    // the same word ("an instruction that calls for a memory reference
    // [must] not allow register writes to take place until after the
    // reference has been committed"), so a data fault inhibits the ALU
    // piece too.
    bool load_issued = false;
    Reg load_rd = 0;
    uint32_t load_val = 0;
    if (inst.mem) {
        const isa::MemPiece &m = *inst.mem;
        if (m.mode == MemMode::LONG_IMM) {
            // The constant is in the instruction word: no memory
            // reference and no load delay.
            ++stats_.long_immediates;
            setReg(m.rd, static_cast<uint32_t>(m.imm));
        } else {
            uint32_t ea = isa::memEffectiveAddress(m, mem_base, mem_index);
            uint32_t phys = 0;
            if (!translateOrFault(cur, ea, m.is_store, false, &phys))
                return StopReason::RUNNING;
            if (mem_.isMmio(phys) && !sr_.supervisor) {
                // Peripherals on the bus are protected from user-level
                // processes (Section 3.2).
                faultAt(cur, Cause::PRIVILEGE, 0);
                return StopReason::RUNNING;
            }
            if (m.is_store) {
                ++stats_.stores;
                mem_.write(phys, mem_data);
            } else {
                ++stats_.loads;
                load_issued = true;
                load_rd = m.rd;
                load_val = mem_.read(phys);
            }
        }
    }

    // ---- Commit: ALU piece ---------------------------------------------
    if (inst.alu) {
        if (alu_out.writes_rd)
            setReg(inst.alu->rd, alu_out.rd);
        if (alu_out.writes_lo)
            lo_ = alu_out.lo;
    }
    if (load_issued) {
        // Commits after the *next* instruction's operand read.
        load_pending_ = true;
        load_reg_ = load_rd;
        load_value_ = load_val;
    }

    // ---- Control transfer ------------------------------------------------
    if (inst.branch) {
        ++stats_.branches;
        if (isa::evalCond(inst.branch->cond, br_rs, br_src2)) {
            ++stats_.branches_taken;
            if (in_shadow) {
                return simError(support::strprintf(
                    "taken branch at %u inside the delay shadow of "
                    "another transfer (architecturally undefined)",
                    cur));
            }
            uint32_t target = cur + 1 +
                static_cast<uint32_t>(inst.branch->offset);
            redirectStream(isa::kBranchDelay, target);
            shadow_ = isa::kBranchDelay;
        }
    } else if (inst.jump) {
        ++stats_.jumps;
        if (in_shadow) {
            return simError(support::strprintf(
                "jump at %u inside the delay shadow of another "
                "transfer (architecturally undefined)", cur));
        }
        const isa::JumpPiece &j = *inst.jump;
        int delay = isa::jumpDelay(j.kind);
        uint32_t target;
        if (isa::jumpIsTable(j.kind)) {
            // The dispatch target comes from memory: a data-port word
            // load at base + index, with the same translation and
            // peripheral-protection rules as any data reference.
            uint32_t ea = jump_target_val + jump_index_val;
            uint32_t phys = 0;
            if (!translateOrFault(cur, ea, false, false, &phys))
                return StopReason::RUNNING;
            if (mem_.isMmio(phys) && !sr_.supervisor) {
                faultAt(cur, Cause::PRIVILEGE, 0);
                return StopReason::RUNNING;
            }
            ++stats_.loads;
            target = mem_.read(phys);
        } else {
            target = isa::jumpIsIndirect(j.kind) ? jump_target_val
                                                 : j.target_addr;
        }
        if (isa::jumpIsCall(j.kind))
            setReg(j.link, cur + 1 + static_cast<uint32_t>(delay));
        redirectStream(delay, target);
        shadow_ = delay;
    } else if (inst.special) {
        const isa::SpecialPiece &p = *inst.special;
        if (isa::specialRequiresPrivilege(p) && !sr_.supervisor) {
            faultAt(cur, Cause::PRIVILEGE, 0);
            return StopReason::RUNNING;
        }
        switch (p.op) {
          case isa::SpecialOp::NOP:
            break;
          case isa::SpecialOp::TRAP:
            ++stats_.traps;
            // The trap itself completes; execution resumes after it.
            interruptNow(Cause::TRAP, p.trap_code);
            break;
          case isa::SpecialOp::RFE:
            sr_.returnFromException();
            map_.flushTlb(); // privilege/mapping state swapped back
            // Resume the saved three-address stream: offender, its
            // successor, then the (possibly non-sequential) third.
            stream_ = {ra_[0], ra_[1], ra_[2]};
            break;
          case isa::SpecialOp::MFS:
            switch (p.sreg) {
              case isa::SpecialReg::LO:
                setReg(p.reg, lo_);
                break;
              case isa::SpecialReg::SURPRISE:
                setReg(p.reg, sr_.pack());
                break;
              case isa::SpecialReg::SEG_BITS:
                setReg(p.reg, map_.segBits());
                break;
              case isa::SpecialReg::SEG_PID:
                setReg(p.reg, map_.pid());
                break;
              case isa::SpecialReg::RA0:
              case isa::SpecialReg::RA1:
              case isa::SpecialReg::RA2:
                setReg(p.reg, ra_[static_cast<int>(p.sreg) -
                                  static_cast<int>(isa::SpecialReg::RA0)]);
                break;
              case isa::SpecialReg::FAULT:
                setReg(p.reg, fault_addr_);
                break;
            }
            break;
          case isa::SpecialOp::MTS:
            switch (p.sreg) {
              case isa::SpecialReg::LO:
                lo_ = special_val;
                break;
              case isa::SpecialReg::SURPRISE:
                sr_ = Surprise::unpack(special_val);
                map_.flushTlb(); // may swap privilege / toggle mapping
                break;
              case isa::SpecialReg::SEG_BITS: {
                uint8_t nbits = static_cast<uint8_t>(
                    special_val > 8 ? 8 : special_val);
                uint32_t pid = nbits == 0
                    ? 0 : (map_.pid() & ((1u << nbits) - 1));
                map_.configure(nbits, pid);
                break;
              }
              case isa::SpecialReg::SEG_PID: {
                uint8_t nbits = map_.segBits();
                uint32_t pid = nbits == 0
                    ? 0 : (special_val & ((1u << nbits) - 1));
                map_.configure(nbits, pid);
                break;
              }
              case isa::SpecialReg::RA0:
              case isa::SpecialReg::RA1:
              case isa::SpecialReg::RA2:
                ra_[static_cast<int>(p.sreg) -
                    static_cast<int>(isa::SpecialReg::RA0)] = special_val;
                break;
              case isa::SpecialReg::FAULT:
                fault_addr_ = special_val;
                break;
            }
            break;
          case isa::SpecialOp::HALT:
            halted_ = true;
            return StopReason::HALT;
        }
    }

    return StopReason::RUNNING;
}

// Flattening step() into the driver loop drops the 100M-iteration call
// overhead and lets the compiler keep the hot working set (stream,
// stats, the tag probe) in registers across the dispatch.
__attribute__((flatten)) StopReason
Cpu::run(uint64_t max_cycles)
{
    // The inner loop stays in the fast path (cached decode + micro-TLB
    // inside step()) until something interesting happens; step()
    // already returns a non-RUNNING reason for halts and errors, and
    // exceptions simply redirect the stream without leaving the loop.
    if (halted_) [[unlikely]]
        return error_.empty() ? StopReason::HALT : StopReason::SIM_ERROR;
    uint64_t budget = max_cycles;
    while (budget-- > 0) {
        StopReason reason = stepInner();
        if (reason != StopReason::RUNNING)
            return reason;
    }
    return StopReason::CYCLE_LIMIT;
}

} // namespace mips::sim
