#include "sim/cpu.h"

#include "isa/disasm.h"
#include "isa/encoding.h"
#include "support/logging.h"

namespace mips::sim {

using isa::AluPiece;
using isa::Instruction;
using isa::MemMode;
using isa::Reg;

Cpu::Cpu(PhysMemory &memory, MappingUnit &mapping)
    : mem_(memory), map_(mapping)
{
    reset();
}

void
Cpu::reset(uint32_t pc)
{
    regs_.fill(0);
    lo_ = 0;
    sr_ = Surprise{};
    sr_.cause = Cause::RESET;
    ra_.fill(0);
    load_pending_ = false;
    shadow_ = 0;
    halted_ = false;
    error_.clear();
    setPc(pc);
}

void
Cpu::setReg(Reg r, uint32_t value)
{
    if (r != isa::kZeroReg)
        regs_[r] = value;
}

void
Cpu::setPc(uint32_t pc)
{
    stream_.clear();
    stream_.push_back(pc);
    refillStream();
}

void
Cpu::refillStream()
{
    while (stream_.size() < 4)
        stream_.push_back(stream_.back() + 1);
}

StopReason
Cpu::simError(std::string message)
{
    error_ = std::move(message);
    halted_ = true;
    return StopReason::SIM_ERROR;
}

void
Cpu::enter(Cause cause, uint16_t detail,
           const std::array<uint32_t, 3> &ras)
{
    ++stats_.exceptions;
    ra_ = ras;
    sr_.enterException(cause, detail);
    setPc(0);
    shadow_ = 0;
    // The offender's own shadow state dies with it; the saved
    // three-address stream reproduces any control transfer.
}

void
Cpu::faultAt(uint32_t cur, Cause cause, uint16_t detail)
{
    enter(cause, detail, {cur, stream_[0], stream_[1]});
}

void
Cpu::interruptNow(Cause cause, uint16_t detail)
{
    enter(cause, detail, {stream_[0], stream_[1], stream_[2]});
}

bool
Cpu::translateOrFault(uint32_t cur, uint32_t vaddr, bool is_write,
                      bool is_fetch, uint32_t *phys)
{
    uint16_t detail = is_fetch ? kDetailIfetch : kDetailData;
    if (!sr_.map_enable) {
        if (vaddr >= mem_.size()) {
            fault_addr_ = vaddr;
            faultAt(cur, Cause::ADDRESS_ERROR, detail);
            return false;
        }
        *phys = vaddr;
        return true;
    }
    Translation t = map_.translate(vaddr, is_write);
    if (!t.ok) {
        fault_addr_ = t.cause == Cause::PAGE_FAULT ? t.fault_sva
                                                   : t.fault_vaddr;
        faultAt(cur, t.cause, detail);
        return false;
    }
    if (t.phys >= mem_.size()) {
        fault_addr_ = t.phys;
        faultAt(cur, Cause::ADDRESS_ERROR, detail);
        return false;
    }
    *phys = t.phys;
    return true;
}

StopReason
Cpu::step()
{
    if (halted_)
        return error_.empty() ? StopReason::HALT : StopReason::SIM_ERROR;

    // External interrupt: a single line onto the chip, sampled at
    // instruction boundaries when enabled. Nothing has issued yet, so
    // the resume stream is the pending stream itself.
    if (sr_.int_enable && mem_.interruptPending())
        interruptNow(Cause::INTERRUPT, 0);

    uint32_t cur = stream_.front();
    stream_.pop_front();
    refillStream();

    bool in_shadow = shadow_ > 0;
    if (in_shadow)
        --shadow_;

    ++stats_.cycles;
    mem_.setCycleCounter(stats_.cycles);
    if (profiling_)
        ++exec_counts_[cur];

    auto commitPendingLoad = [this] {
        if (load_pending_) {
            setReg(load_reg_, load_value_);
            load_pending_ = false;
        }
    };

    // ---- Fetch -------------------------------------------------------
    uint32_t fetch_phys = 0;
    if (!translateOrFault(cur, cur, false, true, &fetch_phys)) {
        commitPendingLoad(); // earlier instructions complete
        ++stats_.free_data_cycles;
        return StopReason::RUNNING;
    }
    uint32_t word = mem_.read(fetch_phys);

    // ---- Decode ------------------------------------------------------
    auto decoded = isa::decode(word);
    if (!decoded.ok()) {
        commitPendingLoad();
        ++stats_.free_data_cycles;
        faultAt(cur, Cause::ILLEGAL, 0);
        return StopReason::RUNNING;
    }
    const Instruction inst = decoded.take();

    bool uses_data_port = inst.referencesMemory();
    if (!uses_data_port)
        ++stats_.free_data_cycles;
    if (inst.isNop())
        ++stats_.nops;
    if (inst.alu)
        ++stats_.alu_pieces;
    if (inst.alu && inst.mem)
        ++stats_.packed_words;

    // ---- Operand read (register file + bypass view) -------------------
    // All source operands are read *before* the pending load commits:
    // the instruction in a load's delay slot sees the old value. ALU
    // results of the previous instruction are already in regs_ (full
    // bypass), so only loads expose a delay.
    isa::AluInputs alu_in;
    if (inst.alu) {
        const AluPiece &a = *inst.alu;
        alu_in.rs = regs_[a.rs];
        alu_in.src2 = a.src2.is_imm ? a.src2.imm4 : regs_[a.src2.reg];
        alu_in.rd_old = regs_[a.rd];
        alu_in.lo = lo_;
    }
    uint32_t mem_base = 0, mem_index = 0, mem_data = 0;
    if (inst.mem) {
        mem_base = regs_[inst.mem->base];
        mem_index = regs_[inst.mem->index];
        mem_data = regs_[inst.mem->rd];
    }
    uint32_t br_rs = 0, br_src2 = 0;
    if (inst.branch) {
        br_rs = regs_[inst.branch->rs];
        br_src2 = inst.branch->src2.is_imm ? inst.branch->src2.imm4
                                           : regs_[inst.branch->src2.reg];
    }
    uint32_t jump_target_val = 0;
    if (inst.jump)
        jump_target_val = regs_[inst.jump->target_reg];
    uint32_t special_val = 0;
    if (inst.special)
        special_val = regs_[inst.special->reg];

    // The previous instruction's load lands now, after this
    // instruction's reads and before the next instruction's.
    commitPendingLoad();

    // ---- Execute: ALU piece -------------------------------------------
    isa::AluOutputs alu_out;
    if (inst.alu) {
        alu_out = isa::evalAlu(*inst.alu, alu_in);
        if (alu_out.overflow && sr_.ovf_enable) {
            // Enabled overflow inhibits all of this word's effects.
            faultAt(cur, Cause::OVERFLOW, 0);
            return StopReason::RUNNING;
        }
    }

    // ---- Execute: memory piece ----------------------------------------
    // The memory reference must commit before any register write of
    // the same word ("an instruction that calls for a memory reference
    // [must] not allow register writes to take place until after the
    // reference has been committed"), so a data fault inhibits the ALU
    // piece too.
    bool load_issued = false;
    Reg load_rd = 0;
    uint32_t load_val = 0;
    if (inst.mem) {
        const isa::MemPiece &m = *inst.mem;
        if (m.mode == MemMode::LONG_IMM) {
            // The constant is in the instruction word: no memory
            // reference and no load delay.
            ++stats_.long_immediates;
            setReg(m.rd, static_cast<uint32_t>(m.imm));
        } else {
            uint32_t ea = isa::memEffectiveAddress(m, mem_base, mem_index);
            uint32_t phys = 0;
            if (!translateOrFault(cur, ea, m.is_store, false, &phys))
                return StopReason::RUNNING;
            if (mem_.isMmio(phys) && !sr_.supervisor) {
                // Peripherals on the bus are protected from user-level
                // processes (Section 3.2).
                faultAt(cur, Cause::PRIVILEGE, 0);
                return StopReason::RUNNING;
            }
            if (m.is_store) {
                ++stats_.stores;
                mem_.write(phys, mem_data);
            } else {
                ++stats_.loads;
                load_issued = true;
                load_rd = m.rd;
                load_val = mem_.read(phys);
            }
        }
    }

    // ---- Commit: ALU piece ---------------------------------------------
    if (inst.alu) {
        if (alu_out.writes_rd)
            setReg(inst.alu->rd, alu_out.rd);
        if (alu_out.writes_lo)
            lo_ = alu_out.lo;
    }
    if (load_issued) {
        // Commits after the *next* instruction's operand read.
        load_pending_ = true;
        load_reg_ = load_rd;
        load_value_ = load_val;
    }

    // ---- Control transfer ------------------------------------------------
    if (inst.branch) {
        ++stats_.branches;
        if (isa::evalCond(inst.branch->cond, br_rs, br_src2)) {
            ++stats_.branches_taken;
            if (in_shadow) {
                return simError(support::strprintf(
                    "taken branch at %u inside the delay shadow of "
                    "another transfer (architecturally undefined)",
                    cur));
            }
            uint32_t target = cur + 1 +
                static_cast<uint32_t>(inst.branch->offset);
            stream_.resize(isa::kBranchDelay);
            stream_.push_back(target);
            refillStream();
            shadow_ = isa::kBranchDelay;
        }
    } else if (inst.jump) {
        ++stats_.jumps;
        if (in_shadow) {
            return simError(support::strprintf(
                "jump at %u inside the delay shadow of another "
                "transfer (architecturally undefined)", cur));
        }
        const isa::JumpPiece &j = *inst.jump;
        int delay = isa::jumpDelay(j.kind);
        uint32_t target = isa::jumpIsIndirect(j.kind) ? jump_target_val
                                                      : j.target_addr;
        if (isa::jumpIsCall(j.kind))
            setReg(j.link, cur + 1 + static_cast<uint32_t>(delay));
        stream_.resize(static_cast<size_t>(delay));
        stream_.push_back(target);
        refillStream();
        shadow_ = delay;
    } else if (inst.special) {
        const isa::SpecialPiece &p = *inst.special;
        if (isa::specialRequiresPrivilege(p) && !sr_.supervisor) {
            faultAt(cur, Cause::PRIVILEGE, 0);
            return StopReason::RUNNING;
        }
        switch (p.op) {
          case isa::SpecialOp::NOP:
            break;
          case isa::SpecialOp::TRAP:
            ++stats_.traps;
            // The trap itself completes; execution resumes after it.
            interruptNow(Cause::TRAP, p.trap_code);
            break;
          case isa::SpecialOp::RFE:
            sr_.returnFromException();
            // Resume the saved three-address stream: offender, its
            // successor, then the (possibly non-sequential) third.
            stream_.clear();
            stream_.push_back(ra_[0]);
            stream_.push_back(ra_[1]);
            stream_.push_back(ra_[2]);
            refillStream();
            break;
          case isa::SpecialOp::MFS:
            switch (p.sreg) {
              case isa::SpecialReg::LO:
                setReg(p.reg, lo_);
                break;
              case isa::SpecialReg::SURPRISE:
                setReg(p.reg, sr_.pack());
                break;
              case isa::SpecialReg::SEG_BITS:
                setReg(p.reg, map_.segBits());
                break;
              case isa::SpecialReg::SEG_PID:
                setReg(p.reg, map_.pid());
                break;
              case isa::SpecialReg::RA0:
              case isa::SpecialReg::RA1:
              case isa::SpecialReg::RA2:
                setReg(p.reg, ra_[static_cast<int>(p.sreg) -
                                  static_cast<int>(isa::SpecialReg::RA0)]);
                break;
              case isa::SpecialReg::FAULT:
                setReg(p.reg, fault_addr_);
                break;
            }
            break;
          case isa::SpecialOp::MTS:
            switch (p.sreg) {
              case isa::SpecialReg::LO:
                lo_ = special_val;
                break;
              case isa::SpecialReg::SURPRISE:
                sr_ = Surprise::unpack(special_val);
                break;
              case isa::SpecialReg::SEG_BITS: {
                uint8_t nbits = static_cast<uint8_t>(
                    special_val > 8 ? 8 : special_val);
                uint32_t pid = nbits == 0
                    ? 0 : (map_.pid() & ((1u << nbits) - 1));
                map_.configure(nbits, pid);
                break;
              }
              case isa::SpecialReg::SEG_PID: {
                uint8_t nbits = map_.segBits();
                uint32_t pid = nbits == 0
                    ? 0 : (special_val & ((1u << nbits) - 1));
                map_.configure(nbits, pid);
                break;
              }
              case isa::SpecialReg::RA0:
              case isa::SpecialReg::RA1:
              case isa::SpecialReg::RA2:
                ra_[static_cast<int>(p.sreg) -
                    static_cast<int>(isa::SpecialReg::RA0)] = special_val;
                break;
              case isa::SpecialReg::FAULT:
                fault_addr_ = special_val;
                break;
            }
            break;
          case isa::SpecialOp::HALT:
            halted_ = true;
            return StopReason::HALT;
        }
    }

    return StopReason::RUNNING;
}

StopReason
Cpu::run(uint64_t max_cycles)
{
    uint64_t budget = max_cycles;
    while (budget-- > 0) {
        StopReason reason = step();
        if (reason != StopReason::RUNNING)
            return reason;
    }
    return StopReason::CYCLE_LIMIT;
}

} // namespace mips::sim
