/**
 * @file
 * The pipeline-semantics CPU: a cycle-level simulator of the paper's
 * five-stage, interlock-free machine.
 *
 * "All instructions execute in exactly five pipe stages" and there is
 * *no interlock hardware* (Section 4.2.1), so the simulator runs one
 * instruction per cycle and exposes the raw pipeline semantics to
 * software:
 *
 *  - **Load delay.** The register written by a load is not visible to
 *    the immediately following instruction; that instruction reads the
 *    *old* value (there is nothing to stall it). The reorganizer must
 *    schedule around this or insert a no-op.
 *  - **Delayed branches.** A taken branch executes exactly one
 *    following instruction before control transfers; indirect jumps
 *    execute two ("indirect jumps, which have a branch delay of two").
 *    A taken transfer inside the shadow of another taken transfer is
 *    architecturally undefined and stops the simulation with an error.
 *  - **ALU bypass.** ALU results are forwarded, so an ALU result *is*
 *    visible to the next instruction.
 *
 * Exceptions follow Section 3.3: instructions logically before the
 * offender complete; the offender's writes are inhibited (including
 * the ALU piece of a packed word whose memory piece faults); the
 * three return addresses needed to restart an instruction stream in
 * the shadow of an indirect jump are captured; the surprise register
 * swaps to supervisor state; and the PC is zeroed onto the dispatch
 * ROM. RFE resumes the saved three-address stream.
 *
 * The dual instruction/data memory interface is modelled by counting,
 * each cycle, whether the data port was used; idle data cycles are the
 * paper's *free memory cycles* (Section 3.1).
 *
 * **Host fast path.** Cycle-level fidelity does not require paying
 * host-side decode and hash-lookup costs every cycle. The simulator
 * keeps a direct-mapped *predecoded instruction cache* of
 * {physical address, word, Instruction} entries consulted before
 * isa::decode(), invalidated per word on every memory write (CPU
 * stores, host poke()/loadImage() — PhysMemory holds the shared tag
 * array and clears the matching tag in place, see attachDecodeTags)
 * and wholesale on reset(); together with the MappingUnit micro-TLB it
 * makes the common step() a handful of array accesses. The fast path
 * is behaviour-preserving by construction; enableFastPath(false)
 * forces the reference slow path (full decode + hash translate every
 * cycle) so tests can assert bit-identical statistics.
 */
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "isa/instruction.h"
#include "sim/mapping.h"
#include "sim/memory.h"
#include "sim/surprise.h"

namespace mips::sim {

/** Why the CPU stopped (or did not). */
enum class StopReason
{
    RUNNING,     ///< step() completed, more to do
    HALT,        ///< HALT instruction retired
    CYCLE_LIMIT, ///< run() exhausted its budget
    SIM_ERROR,   ///< architecturally undefined behaviour detected
};

/**
 * Execution statistics, including the free-memory-cycle accounting.
 *
 * `cycles` counts every issued instruction word, one per machine
 * cycle — *including* the cycles spent in exception dispatch and
 * handler code, since the machine issues those words too. Metrics
 * derived from `cycles` (freeBandwidth() in particular) therefore
 * reflect whole-machine behaviour, not just the user program.
 */
struct CpuStats
{
    uint64_t cycles = 0;          ///< instructions issued (see above)
    uint64_t alu_pieces = 0;
    uint64_t loads = 0;           ///< memory-referencing loads
    uint64_t stores = 0;
    uint64_t long_immediates = 0;
    uint64_t branches = 0;
    uint64_t branches_taken = 0;
    uint64_t jumps = 0;
    uint64_t nops = 0;            ///< words with no pieces at all
    uint64_t packed_words = 0;    ///< words carrying ALU + memory
    uint64_t traps = 0;
    uint64_t exceptions = 0;      ///< all causes, including traps
    uint64_t free_data_cycles = 0;///< cycles with the data port idle
    /** Per-cause fault accounting (read-only export for the static
     *  value-range oracle, verify/memsafety.h): how many exceptions
     *  were overflow traps, mapping page faults, and address errors.
     *  All three are included in `exceptions` above. */
    uint64_t overflow_traps = 0;
    uint64_t page_faults = 0;
    uint64_t address_errors = 0;

    /**
     * Fraction of data-memory bandwidth left unused: the Section 3.1
     * "free memory cycles" ratio, free_data_cycles / cycles. This is
     * the one canonical place the ratio is computed; report code
     * should call it rather than re-deriving it from the fields.
     */
    double
    freeBandwidth() const
    {
        return cycles ? static_cast<double>(free_data_cycles) /
                        static_cast<double>(cycles) : 0.0;
    }

    bool operator==(const CpuStats &) const = default;
};

/** The simulated processor. */
class Cpu
{
  public:
    Cpu(PhysMemory &memory, MappingUnit &mapping);
    ~Cpu();

    Cpu(const Cpu &) = delete;
    Cpu &operator=(const Cpu &) = delete;

    /** Reset: supervisor, unmapped, PC = `pc`, registers cleared.
     *  Also clears the profiling counts. The predecode cache survives:
     *  write-driven invalidation keeps it coherent across resets. */
    void reset(uint32_t pc = 0);

    /** Execute one instruction (one cycle). */
    StopReason step();

    /** Run until HALT, an error, or `max_cycles` cycles. */
    StopReason run(uint64_t max_cycles = 10'000'000);

    // --- Architectural state -------------------------------------------

    uint32_t reg(isa::Reg r) const { return regs_[r]; }
    void setReg(isa::Reg r, uint32_t value);
    uint32_t lo() const { return lo_; }
    void setLo(uint32_t value) { lo_ = value; }

    /** Address of the next instruction to execute. */
    uint32_t pc() const { return stream_[0]; }
    void setPc(uint32_t pc);

    Surprise &surprise() { return sr_; }
    const Surprise &surprise() const { return sr_; }

    uint32_t returnAddress(int i) const { return ra_.at(i); }

    /** Faulting address captured by the last page fault/address error. */
    uint32_t faultAddress() const { return fault_addr_; }

    const CpuStats &stats() const { return stats_; }
    void clearStats() { stats_ = CpuStats{}; }

    /**
     * One observed fault event (overflow trap, page fault, or address
     * error). `pc` is the restart address of the offending word —
     * for the static oracle this maps back onto a unit item as
     * `pc - origin`. `addr` is the faulting data/virtual address
     * (0 for overflow traps, which have none).
     */
    struct FaultEvent
    {
        Cause cause = Cause::NONE;
        uint32_t pc = 0;
        uint32_t addr = 0;
    };

    /** The first kMaxFaultEvents fault events since the last reset(),
     *  in order. A handler-less program restarts at the dispatch ROM
     *  and may fault in a loop, so the log is bounded; the per-cause
     *  CpuStats counters keep exact totals. */
    static constexpr size_t kMaxFaultEvents = 64;
    const std::vector<FaultEvent> &faultEvents() const
    {
        return fault_events_;
    }

    // --- Profiling ------------------------------------------------------

    /** Record per-PC execution counts (used by the reference-pattern
     *  experiments); off by default. Counts are dense per-page arrays,
     *  not a hash map, so profiled runs stay fast. */
    void enableProfiling(bool on) { profiling_ = on; }

    /** Times the instruction at `pc` issued since the last reset(). */
    uint64_t execCount(uint32_t pc) const;

    /** Dense harvest: execCount for `n` consecutive words starting at
     *  `base` (counts[i] == execCount(base + i)). Used by the static
     *  cost model's parity oracle. */
    std::vector<uint64_t> execCounts(uint32_t base, size_t n) const;

    // --- Host fast path -------------------------------------------------

    /**
     * Enable/disable the simulator fast path (predecoded instruction
     * cache here plus the MappingUnit micro-TLB). On by default;
     * disabling forces the reference decode/translate path on every
     * cycle. Results are identical either way — the switch exists so
     * benchmarks can measure the speedup and tests can assert parity.
     */
    void enableFastPath(bool on);
    bool fastPathEnabled() const { return fast_path_; }

    /** Predecode-cache hit/miss counters (host-side, not simulated). */
    uint64_t decodeCacheHits() const { return decode_hits_; }
    uint64_t decodeCacheMisses() const { return decode_misses_; }

    /** Description of the last SIM_ERROR. */
    const std::string &errorMessage() const { return error_; }

  private:
    /** Translate for fetch/data; false and takes the exception on fault.
     *  `cur` is the address of the (restartable) offending word. */
    bool translateOrFault(uint32_t cur, uint32_t vaddr, bool is_write,
                          bool is_fetch, uint32_t *phys);

    /** Take an exception whose restart point is the *current*
     *  (not completed) instruction at `cur`. */
    void faultAt(uint32_t cur, Cause cause, uint16_t detail);

    /** Take an exception that resumes with the not-yet-popped stream
     *  (traps and interrupts: the offender completed / nothing ran). */
    void interruptNow(Cause cause, uint16_t detail);

    /** Shared exception entry: capture RAs and redirect to ROM. */
    void enter(Cause cause, uint16_t detail,
               const std::array<uint32_t, 3> &ras);

    /** Redirect the stream: keep the first `delay` upcoming addresses
     *  (the transfer's delay slots), then continue at `target`. */
    void redirectStream(int delay, uint32_t target);

    StopReason simError(std::string message);

    /** Bump the execution count for `pc` (profiling enabled). */
    void recordExec(uint32_t pc);

    /** Compute the execution shape (Kind) of a decoded word. */
    static uint8_t classifyWord(const isa::Instruction &inst);

    PhysMemory &mem_;
    MappingUnit &map_;

    std::array<uint32_t, isa::kNumRegs> regs_{};
    uint32_t lo_ = 0;
    Surprise sr_;
    std::array<uint32_t, 3> ra_{};
    uint32_t fault_addr_ = 0;

    /** The next three instruction addresses; [0] is the next to run.
     *  Always full — a fixed array, not a deque, because this is
     *  touched every simulated cycle. Three entries suffice: no
     *  transfer has more than two delay slots, so the stream beyond
     *  [2] is always sequential ([2]+1, [2]+2, ...). */
    std::array<uint32_t, 3> stream_{};

    /** Pending load write (commits after the next instruction reads). */
    bool load_pending_ = false;
    isa::Reg load_reg_ = 0;
    uint32_t load_value_ = 0;

    /** Taken-transfer shadow countdown for undefined-behaviour checks. */
    int shadow_ = 0;

    bool halted_ = false;
    std::string error_;

    CpuStats stats_;
    std::vector<FaultEvent> fault_events_;

    // Profiling state: dense counters for the PCs real programs use,
    // with a hash-map overflow for pathological (wild-jump) addresses.
    static constexpr uint32_t kProfileDenseLimit = 1u << 22;
    bool profiling_ = false;
    std::vector<uint64_t> exec_dense_;
    std::unordered_map<uint32_t, uint64_t> exec_sparse_;

    // Predecoded instruction cache: direct-mapped, keyed by physical
    // address. An entry is valid iff tag == address (kNoTag never
    // matches a fetchable address). MMIO fetches are never cached.
    // Besides the decoded pieces, an entry carries the per-word
    // predicates step() needs every cycle, precomputed once at fill,
    // and the word's execution *shape* so the fast path can dispatch
    // straight to a specialized handler instead of re-discovering
    // which pieces are present every cycle.
    enum Kind : uint8_t
    {
        K_GENERIC = 0, ///< anything unusual: specials, odd packings
        K_NOP,
        K_ALU,     ///< ALU piece only
        K_LONGIMM, ///< long-immediate load (no memory reference)
        K_LOAD,    ///< memory-referencing load, no ALU piece
        K_STORE,   ///< store, no ALU piece
        K_PACKED,  ///< ALU + memory-referencing load/store in one word
        K_BRANCH,
        K_JUMP,
    };
    struct DecodeEntry
    {
        uint32_t word;
        bool uses_data_port;
        bool is_nop;
        isa::Instruction inst;
    };

    /** Memory-piece parameters compacted for the dispatch cases,
     *  including the branchless effective-address formula precomputed
     *  at fill:
     *    ea = (base & ea_base_mask)
     *       + ((index >> ea_shift) & ea_index_mask)
     *       + ea_imm
     *  covering all four referencing modes without the per-cycle
     *  mode switch. */
    struct MemLite
    {
        uint32_t ea_base_mask;
        uint32_t ea_index_mask;
        uint32_t ea_imm;
        uint8_t ea_shift;
        uint8_t base;  ///< base register number
        uint8_t index; ///< index register number
        uint8_t rd;    ///< data register number
    };

    /** Hot predecoded entry: exactly what the specialized dispatch
     *  reads per cycle, packed into 28 bytes. The full DecodeEntry
     *  above carries a 72-byte Instruction, which pushes the payload
     *  working set of a few-hundred-word program out of L1; the hot
     *  array keeps it resident. Full entries are only touched by the
     *  fill path and by K_GENERIC words (specials, odd packings). */
    struct HotEntry
    {
        uint8_t kind = K_GENERIC;
        bool mem_is_store = false; ///< K_STORE / K_PACKED store piece
        union U
        {
            isa::AluPiece alu;       ///< K_ALU
            MemLite mem;             ///< K_LOAD / K_STORE / K_LONGIMM
            struct
            {
                isa::AluPiece alu;
                MemLite mem;
            } packed;                ///< K_PACKED
            isa::BranchPiece branch; ///< K_BRANCH
            isa::JumpPiece jump;     ///< K_JUMP

            U() : alu{} {}
        } u;
    };

    /** Compact a memory piece for the dispatch cases. */
    static MemLite memLite(const isa::MemPiece &m);

    /** Classify `inst` and fill `h` with its dispatch parameters. */
    static void fillHot(HotEntry *h, const isa::Instruction &inst);

    /** step() without the halted check; run() guards once up front. */
    StopReason stepInner();

    /** Decode-cache miss: read the word, decode, fill the slot (or the
     *  MMIO scratch pair) and point *h / *e at it. False if the word is
     *  illegal — the caller raises the fault. */
    bool fillDecodeSlot(uint32_t fetch_phys, uint32_t slot,
                        const HotEntry **h, const DecodeEntry **e);
    static constexpr uint32_t kNoTag = 0xffffffffu;
    static constexpr uint32_t kDecodeCacheSize = 1u << 12; ///< power of 2

    bool fast_path_ = true;
    /** Tags live apart from the payloads: the 16 KB tag array stays
     *  L1-resident, so the per-fetch probe and the per-store
     *  invalidation check never touch the big payload array unless
     *  they actually hit. decode_tags_[i] owns the validity of
     *  decode_cache_[i]. */
    std::vector<uint32_t> decode_tags_;
    std::vector<HotEntry> decode_hot_;
    std::vector<DecodeEntry> decode_cache_;
    uint64_t decode_hits_ = 0;
    uint64_t decode_misses_ = 0;
    isa::Instruction slow_inst_; ///< decode target when not caching
    DecodeEntry mmio_entry_;     ///< scratch for uncacheable MMIO fetches
    HotEntry mmio_hot_;          ///< dispatch scratch for MMIO fetches
};

} // namespace mips::sim
