/**
 * @file
 * The pipeline-semantics CPU: a cycle-level simulator of the paper's
 * five-stage, interlock-free machine.
 *
 * "All instructions execute in exactly five pipe stages" and there is
 * *no interlock hardware* (Section 4.2.1), so the simulator runs one
 * instruction per cycle and exposes the raw pipeline semantics to
 * software:
 *
 *  - **Load delay.** The register written by a load is not visible to
 *    the immediately following instruction; that instruction reads the
 *    *old* value (there is nothing to stall it). The reorganizer must
 *    schedule around this or insert a no-op.
 *  - **Delayed branches.** A taken branch executes exactly one
 *    following instruction before control transfers; indirect jumps
 *    execute two ("indirect jumps, which have a branch delay of two").
 *    A taken transfer inside the shadow of another taken transfer is
 *    architecturally undefined and stops the simulation with an error.
 *  - **ALU bypass.** ALU results are forwarded, so an ALU result *is*
 *    visible to the next instruction.
 *
 * Exceptions follow Section 3.3: instructions logically before the
 * offender complete; the offender's writes are inhibited (including
 * the ALU piece of a packed word whose memory piece faults); the
 * three return addresses needed to restart an instruction stream in
 * the shadow of an indirect jump are captured; the surprise register
 * swaps to supervisor state; and the PC is zeroed onto the dispatch
 * ROM. RFE resumes the saved three-address stream.
 *
 * The dual instruction/data memory interface is modelled by counting,
 * each cycle, whether the data port was used; idle data cycles are the
 * paper's *free memory cycles* (Section 3.1).
 */
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "isa/instruction.h"
#include "sim/mapping.h"
#include "sim/memory.h"
#include "sim/surprise.h"

namespace mips::sim {

/** Why the CPU stopped (or did not). */
enum class StopReason
{
    RUNNING,     ///< step() completed, more to do
    HALT,        ///< HALT instruction retired
    CYCLE_LIMIT, ///< run() exhausted its budget
    SIM_ERROR,   ///< architecturally undefined behaviour detected
};

/** Execution statistics, including the free-memory-cycle accounting. */
struct CpuStats
{
    uint64_t cycles = 0;          ///< == instructions issued
    uint64_t alu_pieces = 0;
    uint64_t loads = 0;           ///< memory-referencing loads
    uint64_t stores = 0;
    uint64_t long_immediates = 0;
    uint64_t branches = 0;
    uint64_t branches_taken = 0;
    uint64_t jumps = 0;
    uint64_t nops = 0;            ///< words with no pieces at all
    uint64_t packed_words = 0;    ///< words carrying ALU + memory
    uint64_t traps = 0;
    uint64_t exceptions = 0;      ///< all causes, including traps
    uint64_t free_data_cycles = 0;///< cycles with the data port idle

    /** Fraction of data-memory bandwidth left unused. */
    double
    freeBandwidth() const
    {
        return cycles ? static_cast<double>(free_data_cycles) /
                        static_cast<double>(cycles) : 0.0;
    }
};

/** The simulated processor. */
class Cpu
{
  public:
    Cpu(PhysMemory &memory, MappingUnit &mapping);

    /** Reset: supervisor, unmapped, PC = `pc`, registers cleared. */
    void reset(uint32_t pc = 0);

    /** Execute one instruction (one cycle). */
    StopReason step();

    /** Run until HALT, an error, or `max_cycles` cycles. */
    StopReason run(uint64_t max_cycles = 10'000'000);

    // --- Architectural state -------------------------------------------

    uint32_t reg(isa::Reg r) const { return regs_[r]; }
    void setReg(isa::Reg r, uint32_t value);
    uint32_t lo() const { return lo_; }
    void setLo(uint32_t value) { lo_ = value; }

    /** Address of the next instruction to execute. */
    uint32_t pc() const { return stream_.front(); }
    void setPc(uint32_t pc);

    Surprise &surprise() { return sr_; }
    const Surprise &surprise() const { return sr_; }

    uint32_t returnAddress(int i) const { return ra_.at(i); }

    /** Faulting address captured by the last page fault/address error. */
    uint32_t faultAddress() const { return fault_addr_; }

    const CpuStats &stats() const { return stats_; }
    void clearStats() { stats_ = CpuStats{}; }

    /** Record per-PC execution counts (used by the reference-pattern
     *  experiments); off by default. */
    void enableProfiling(bool on) { profiling_ = on; }
    const std::unordered_map<uint32_t, uint64_t> &
    execCounts() const
    {
        return exec_counts_;
    }

    /** Description of the last SIM_ERROR. */
    const std::string &errorMessage() const { return error_; }

  private:
    /** Translate for fetch/data; false and takes the exception on fault.
     *  `cur` is the address of the (restartable) offending word. */
    bool translateOrFault(uint32_t cur, uint32_t vaddr, bool is_write,
                          bool is_fetch, uint32_t *phys);

    /** Take an exception whose restart point is the *current*
     *  (not completed) instruction at `cur`. */
    void faultAt(uint32_t cur, Cause cause, uint16_t detail);

    /** Take an exception that resumes with the not-yet-popped stream
     *  (traps and interrupts: the offender completed / nothing ran). */
    void interruptNow(Cause cause, uint16_t detail);

    /** Shared exception entry: capture RAs and redirect to ROM. */
    void enter(Cause cause, uint16_t detail,
               const std::array<uint32_t, 3> &ras);

    /** Keep at least three known upcoming PCs in the stream. */
    void refillStream();

    StopReason simError(std::string message);

    PhysMemory &mem_;
    MappingUnit &map_;

    std::array<uint32_t, isa::kNumRegs> regs_{};
    uint32_t lo_ = 0;
    Surprise sr_;
    std::array<uint32_t, 3> ra_{};
    uint32_t fault_addr_ = 0;

    /** Upcoming instruction addresses; front() is the next to run. */
    std::deque<uint32_t> stream_;

    /** Pending load write (commits after the next instruction reads). */
    bool load_pending_ = false;
    isa::Reg load_reg_ = 0;
    uint32_t load_value_ = 0;

    /** Taken-transfer shadow countdown for undefined-behaviour checks. */
    int shadow_ = 0;

    bool halted_ = false;
    std::string error_;

    CpuStats stats_;
    bool profiling_ = false;
    std::unordered_map<uint32_t, uint64_t> exec_counts_;
};

} // namespace mips::sim
