#include "sim/functional.h"

#include "isa/encoding.h"
#include "support/logging.h"

namespace mips::sim {

using isa::Instruction;
using isa::MemMode;
using isa::Reg;

FunctionalCpu::FunctionalCpu(PhysMemory &memory) : mem_(memory)
{
}

void
FunctionalCpu::reset(uint32_t pc)
{
    regs_.fill(0);
    lo_ = 0;
    pc_ = pc;
    halted_ = false;
    instructions_ = 0;
    overflows_ = 0;
    error_.clear();
}

void
FunctionalCpu::setReg(Reg r, uint32_t value)
{
    if (r != isa::kZeroReg)
        regs_[r] = value;
}

StopReason
FunctionalCpu::step()
{
    if (halted_)
        return error_.empty() ? StopReason::HALT : StopReason::SIM_ERROR;

    if (pc_ >= mem_.size()) {
        error_ = support::strprintf("fetch out of range at %u", pc_);
        halted_ = true;
        return StopReason::SIM_ERROR;
    }

    auto decoded = isa::decode(mem_.read(pc_));
    if (!decoded.ok()) {
        error_ = support::strprintf("illegal instruction at %u", pc_);
        halted_ = true;
        return StopReason::SIM_ERROR;
    }
    const Instruction inst = decoded.take();
    ++instructions_;
    uint32_t next_pc = pc_ + 1;

    if (inst.alu) {
        const isa::AluPiece &a = *inst.alu;
        isa::AluInputs in;
        in.rs = regs_[a.rs];
        in.src2 = a.src2.is_imm ? a.src2.imm4 : regs_[a.src2.reg];
        in.rd_old = regs_[a.rd];
        in.lo = lo_;
        isa::AluOutputs out = isa::evalAlu(a, in);
        if (out.overflow)
            ++overflows_;
        if (out.writes_rd)
            setReg(a.rd, out.rd);
        if (out.writes_lo)
            lo_ = out.lo;
    }

    if (inst.mem) {
        const isa::MemPiece &m = *inst.mem;
        if (m.mode == MemMode::LONG_IMM) {
            setReg(m.rd, static_cast<uint32_t>(m.imm));
        } else {
            uint32_t ea = isa::memEffectiveAddress(m, regs_[m.base],
                                                   regs_[m.index]);
            if (ea >= mem_.size()) {
                error_ = support::strprintf(
                    "data reference out of range at %u (ea %u)", pc_, ea);
                halted_ = true;
                return StopReason::SIM_ERROR;
            }
            if (m.is_store)
                mem_.write(ea, regs_[m.rd]);
            else
                setReg(m.rd, mem_.read(ea));
        }
    }

    if (inst.branch) {
        const isa::BranchPiece &b = *inst.branch;
        uint32_t src2 = b.src2.is_imm ? b.src2.imm4 : regs_[b.src2.reg];
        if (isa::evalCond(b.cond, regs_[b.rs], src2))
            next_pc = pc_ + 1 + static_cast<uint32_t>(b.offset);
    } else if (inst.jump) {
        const isa::JumpPiece &j = *inst.jump;
        if (isa::jumpIsCall(j.kind))
            setReg(j.link, pc_ + 1);
        if (isa::jumpIsTable(j.kind)) {
            // The target comes from memory: one data-port access at
            // base + index, exactly like a word load.
            uint32_t ea = regs_[j.target_reg] + regs_[j.index];
            if (ea >= mem_.size()) {
                error_ = support::strprintf(
                    "jump-table reference out of range at %u (ea %u)",
                    pc_, ea);
                halted_ = true;
                return StopReason::SIM_ERROR;
            }
            next_pc = mem_.read(ea);
        } else {
            next_pc = isa::jumpIsIndirect(j.kind) ? regs_[j.target_reg]
                                                  : j.target_addr;
        }
    } else if (inst.special) {
        switch (inst.special->op) {
          case isa::SpecialOp::TRAP:
            if (!trap_handler_ || !trap_handler_(inst.special->trap_code)) {
                halted_ = true;
                pc_ = next_pc;
                return StopReason::HALT;
            }
            break;
          case isa::SpecialOp::HALT:
            halted_ = true;
            return StopReason::HALT;
          case isa::SpecialOp::MFS:
            if (inst.special->sreg == isa::SpecialReg::LO)
                setReg(inst.special->reg, lo_);
            break;
          case isa::SpecialOp::MTS:
            if (inst.special->sreg == isa::SpecialReg::LO)
                lo_ = regs_[inst.special->reg];
            break;
          default:
            // System instructions have no meaning on the reference
            // machine; they execute as no-ops.
            break;
        }
    }

    pc_ = next_pc;
    return StopReason::RUNNING;
}

StopReason
FunctionalCpu::run(uint64_t max_cycles)
{
    uint64_t budget = max_cycles;
    while (budget-- > 0) {
        StopReason reason = step();
        if (reason != StopReason::RUNNING)
            return reason;
    }
    return StopReason::CYCLE_LIMIT;
}

} // namespace mips::sim
