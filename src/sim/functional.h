/**
 * @file
 * Functional reference executor: the *interlocked* machine.
 *
 * The paper frames pipelining as "an optimization implemented by
 * hardware ... subject to the interlocks which prevent illegal
 * optimizations", which "allows the compiler ... to make simple
 * assumptions about the execution of individual machine instructions".
 * This executor implements exactly those simple assumptions:
 *
 *  - every instruction sees the results of all earlier instructions
 *    (loads have no visible delay), and
 *  - control transfers take effect immediately (no delay slots;
 *    a call links the very next address).
 *
 * Code straight out of a code generator ("legal code") is correct on
 * this machine; the reorganizer's job is to transform it into code
 * that is correct on the interlock-free pipeline Cpu. Differential
 * tests between the two are the executable form of the paper's
 * central hardware/software trade.
 */
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>

#include "isa/instruction.h"
#include "sim/cpu.h"
#include "sim/memory.h"

namespace mips::sim {

/** The sequential-semantics executor. */
class FunctionalCpu
{
  public:
    explicit FunctionalCpu(PhysMemory &memory);

    /** Reset to PC = `pc` with cleared registers. */
    void reset(uint32_t pc = 0);

    /** Execute one instruction. */
    StopReason step();

    /** Run until HALT, an error, or the cycle budget is exhausted. */
    StopReason run(uint64_t max_cycles = 10'000'000);

    uint32_t reg(isa::Reg r) const { return regs_[r]; }
    void setReg(isa::Reg r, uint32_t value);
    uint32_t lo() const { return lo_; }
    uint32_t pc() const { return pc_; }
    void setPc(uint32_t pc) { pc_ = pc; }

    /** Instructions executed. */
    uint64_t instructions() const { return instructions_; }

    /** Signed-overflow events observed (never trap here). */
    uint64_t overflows() const { return overflows_; }

    /**
     * Hook invoked on TRAP with the trap code; return true to continue
     * after the trap, false to stop (default: stop).
     */
    void
    setTrapHandler(std::function<bool(uint16_t)> handler)
    {
        trap_handler_ = std::move(handler);
    }

    const std::string &errorMessage() const { return error_; }

  private:
    PhysMemory &mem_;
    std::array<uint32_t, isa::kNumRegs> regs_{};
    uint32_t lo_ = 0;
    uint32_t pc_ = 0;
    bool halted_ = false;
    uint64_t instructions_ = 0;
    uint64_t overflows_ = 0;
    std::string error_;
    std::function<bool(uint16_t)> trap_handler_;
};

} // namespace mips::sim
