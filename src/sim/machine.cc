#include "sim/machine.h"

namespace mips::sim {

FunctionalRun
runFunctional(const assembler::Program &program, uint64_t max_cycles,
              uint32_t mem_words)
{
    FunctionalRun run;
    run.memory = std::make_unique<PhysMemory>(mem_words);
    run.memory->loadImage(program.origin, program.image);
    run.cpu = std::make_unique<FunctionalCpu>(*run.memory);
    run.cpu->reset(program.origin);
    run.reason = run.cpu->run(max_cycles);
    return run;
}

} // namespace mips::sim
