/**
 * @file
 * Convenience wrapper assembling a complete simulated system: physical
 * memory, mapping unit, and the pipeline CPU, with program loading.
 */
#pragma once

#include <memory>

#include "asm/unit.h"
#include "sim/cpu.h"
#include "sim/functional.h"
#include "sim/mapping.h"
#include "sim/memory.h"

namespace mips::sim {

/** A whole machine: memory + mapping + CPU. */
class Machine
{
  public:
    explicit Machine(uint32_t mem_words = kDefaultPhysWords)
        : memory_(mem_words), cpu_(memory_, mapping_)
    {
        // The off-chip mapping unit lives on the bus: supervisor
        // stores to the MAP_* device registers program it.
        memory_.setMapHook([this](bool install, uint32_t sva,
                                  uint32_t frame) {
            if (install)
                mapping_.installPage(sva, frame);
            else
                mapping_.evictPage(sva);
        });
    }

    /** Load a linked program and point the CPU at its origin. */
    void
    load(const assembler::Program &program)
    {
        memory_.loadImage(program.origin, program.image);
        cpu_.reset(program.origin);
    }

    PhysMemory &memory() { return memory_; }
    const PhysMemory &memory() const { return memory_; }
    MappingUnit &mapping() { return mapping_; }
    const MappingUnit &mapping() const { return mapping_; }
    Cpu &cpu() { return cpu_; }
    const Cpu &cpu() const { return cpu_; }

  private:
    PhysMemory memory_;
    MappingUnit mapping_;
    Cpu cpu_;
};

/**
 * Run a linked program on the *functional* (interlocked) machine in a
 * fresh memory; returns the executor for state inspection.
 */
struct FunctionalRun
{
    std::unique_ptr<PhysMemory> memory;
    std::unique_ptr<FunctionalCpu> cpu;
    StopReason reason = StopReason::RUNNING;
};

FunctionalRun runFunctional(const assembler::Program &program,
                            uint64_t max_cycles = 10'000'000,
                            uint32_t mem_words = kDefaultPhysWords);

} // namespace mips::sim
