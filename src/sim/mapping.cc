#include "sim/mapping.h"

#include "support/bits.h"
#include "support/logging.h"

namespace mips::sim {

void
MappingUnit::configure(uint8_t seg_bits, uint32_t pid)
{
    if (seg_bits > 8)
        support::panic("MappingUnit: seg_bits %d > 8", seg_bits);
    if (seg_bits < 32 && pid >= (1u << seg_bits) && seg_bits > 0)
        support::panic("MappingUnit: pid %u does not fit %d bits",
                       pid, seg_bits);
    if (seg_bits == 0 && pid != 0)
        support::panic("MappingUnit: pid must be 0 with seg_bits 0");
    seg_bits_ = seg_bits;
    pid_ = pid;
    flushTlb();
}

void
MappingUnit::flushTlb()
{
    ++tlb_flushes_;
    for (TlbEntry &e : tlb_)
        e = TlbEntry{};
}

void
MappingUnit::setTlbEnabled(bool on)
{
    tlb_enabled_ = on;
    flushTlb();
}

uint32_t
MappingUnit::halfWindowWords() const
{
    // Process space is 2^(24-n) words; two equal halves.
    return (1u << (kVirtualBits - seg_bits_)) / 2;
}

std::optional<uint32_t>
MappingUnit::fold(uint32_t program_addr) const
{
    uint32_t half = halfWindowWords();
    bool low_half = program_addr < half;
    bool high_half = program_addr >= (0u - half); // top of 32-bit space
    if (!low_half && !high_half)
        return std::nullopt;
    uint32_t window_mask = (half << 1) - 1; // 2^(24-n) - 1
    uint32_t offset = program_addr & window_mask;
    return (pid_ << (kVirtualBits - seg_bits_)) | offset;
}

Translation
MappingUnit::translateSlow(uint32_t program_addr, bool is_write)
{
    ++translations_;
    Translation t;
    t.fault_vaddr = program_addr;

    auto sva = fold(program_addr);
    if (!sva) {
        // "Any attempt to reference a word between the two valid
        // regions is treated as a page fault" — we distinguish it as
        // an address error in the detail field; the OS may grow the
        // segment or kill the process.
        ++faults_;
        t.cause = Cause::ADDRESS_ERROR;
        return t;
    }
    t.fault_sva = *sva;

    uint32_t page = *sva >> kPageBits;
    auto it = pages_.find(page);
    if (it == pages_.end() || !it->second.resident ||
        (is_write && !it->second.writable)) {
        ++faults_;
        t.cause = Cause::PAGE_FAULT;
        return t;
    }

    it->second.referenced = true;
    if (is_write)
        it->second.dirty = true;
    t.ok = true;
    t.phys = (it->second.frame << kPageBits) |
             (*sva & (kPageWords - 1));

    if (tlb_enabled_) {
        // A program page maps to one sva page (the segment window is a
        // whole number of pages), so caching by program page is sound.
        // PageEntry pointers are stable: pages_ never erases nodes.
        uint32_t vpage = program_addr >> kPageBits;
        TlbEntry &e = tlb_[vpage & (kTlbSize - 1)];
        e.tag = vpage;
        e.phys_base = it->second.frame << kPageBits;
        e.writable = it->second.writable;
        e.dirty_done = is_write; // this walk just set dirty iff writing
        e.entry = &it->second;
    }
    return t;
}

void
MappingUnit::installPage(uint32_t sva, uint32_t phys_frame, bool resident,
                         bool writable)
{
    PageEntry entry;
    entry.frame = phys_frame;
    entry.resident = resident;
    entry.writable = writable;
    pages_[sva >> kPageBits] = entry;
    flushTlb();
}

void
MappingUnit::evictPage(uint32_t sva)
{
    auto it = pages_.find(sva >> kPageBits);
    if (it != pages_.end())
        it->second.resident = false;
    flushTlb();
}

const PageEntry *
MappingUnit::findPage(uint32_t sva) const
{
    auto it = pages_.find(sva >> kPageBits);
    return it == pages_.end() ? nullptr : &it->second;
}

void
MappingUnit::clearUsageBits()
{
    for (auto &[page, entry] : pages_) {
        entry.referenced = false;
        entry.dirty = false;
    }
    // Live TLB entries assume referenced/dirty are already recorded;
    // flush so the next reference re-walks and re-sets them.
    flushTlb();
}

} // namespace mips::sim
