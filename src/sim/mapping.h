/**
 * @file
 * Memory mapping: on-chip segmentation plus the optional off-chip
 * page-level mapping unit (Section 3.1 of the paper).
 *
 * The on-chip unit "divides the virtual address space into a variable
 * number of variably sized segments ... by masking out the top n bits
 * of every address and inserting an n-bit process identification
 * number". A process sees a 32-bit program address space whose valid
 * words are "split into two halves: one residing at the top of the
 * program's virtual 32-bit address space, and the other at the
 * bottom"; anything in between is an address error that the operating
 * system treats like a page fault.
 *
 * The folded (PID-inserted) address is a *system virtual address*
 * inside the machine-wide 16M-word (24-bit) virtual space, which the
 * off-chip page map translates to physical page frames with demand
 * paging.
 *
 * A host-side **micro-TLB** sits in front of the fold + page-map hash
 * lookup: a small direct-mapped array of {program page, frame,
 * writable} entries, so the common translate is a mask-and-compare
 * instead of a hash-map probe. It is purely a simulation fast path —
 * hit and miss paths produce identical translations, fault causes,
 * referenced/dirty bits, and translation/fault counters. The TLB is
 * flushed on every page-map mutation (installPage/evictPage) and on
 * reconfiguration (configure); the CPU additionally flushes it on
 * mapping enable/disable and supervisor/user swaps (exception entry,
 * RFE, and surprise-register writes).
 */
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <unordered_map>

#include "sim/surprise.h"

namespace mips::sim {

/** Width of the machine-wide virtual word-address space (16M words). */
constexpr int kVirtualBits = 24;

/** Words per page of the off-chip map (1K words). */
constexpr int kPageBits = 10;
constexpr uint32_t kPageWords = 1u << kPageBits;

/** Result of a translation attempt. */
struct Translation
{
    bool ok = false;
    uint32_t phys = 0;      ///< valid when ok
    Cause cause = Cause::NONE; ///< PAGE_FAULT or ADDRESS_ERROR when !ok
    uint32_t fault_vaddr = 0;  ///< program address that faulted
    uint32_t fault_sva = 0;    ///< folded system virtual address
};

/** One page-map entry of the off-chip unit. */
struct PageEntry
{
    uint32_t frame = 0;    ///< physical page frame number
    bool resident = false; ///< demand paging: false => page fault
    bool writable = true;
    bool referenced = false;
    bool dirty = false;
};

/**
 * The complete mapping path. The CPU consults it on every reference
 * when mapping is enabled; when disabled, addresses are physical.
 */
class MappingUnit
{
  public:
    /**
     * Configure the on-chip segmentation. `seg_bits` (n, 0..8) is the
     * number of masked top bits; the process space is 2^(24-n) words
     * split into two halves. `pid` must fit in n bits.
     */
    void configure(uint8_t seg_bits, uint32_t pid);

    uint8_t segBits() const { return seg_bits_; }
    uint32_t pid() const { return pid_; }

    /** Words in each half of the process address space. */
    uint32_t halfWindowWords() const;

    /**
     * Fold a 32-bit program address into a system virtual address, or
     * nullopt if it falls between the two valid halves.
     */
    std::optional<uint32_t> fold(uint32_t program_addr) const;

    /** Translate a program address through segmentation + page map.
     *  On the CPU's per-reference critical path: the micro-TLB hit is
     *  fully inline; misses fall out of line to the fold + hash-map
     *  reference walk. Hit and miss are side-effect-identical (same
     *  counters, same referenced/dirty updates). */
    Translation
    translate(uint32_t program_addr, bool is_write)
    {
        if (tlb_enabled_) {
            uint32_t vpage = program_addr >> kPageBits;
            TlbEntry &e = tlb_[vpage & (kTlbSize - 1)];
            // Write access through a read-only entry falls through so
            // the reference walk raises the fault.
            if (e.tag == vpage && (!is_write || e.writable)) [[likely]] {
                ++translations_;
                ++tlb_hits_;
                // referenced was set when the entry was filled and
                // clearUsageBits() flushes the TLB, so a live entry
                // implies the bit is already up to date; dirty is
                // propagated once per entry lifetime.
                if (is_write && !e.dirty_done) {
                    e.entry->dirty = true;
                    e.dirty_done = true;
                }
                Translation hit;
                hit.ok = true;
                hit.phys = e.phys_base | (program_addr & (kPageWords - 1));
                return hit;
            }
            ++tlb_misses_;
        }
        return translateSlow(program_addr, is_write);
    }

    // --- Page-map management (what the OS would do) --------------------

    /** Install a page-map entry for the page containing `sva`. */
    void installPage(uint32_t sva, uint32_t phys_frame,
                     bool resident = true, bool writable = true);

    /** Mark the page containing `sva` non-resident (page it out). */
    void evictPage(uint32_t sva);

    /** Entry for the page containing `sva`, if present. */
    const PageEntry *findPage(uint32_t sva) const;

    /** Clear referenced/dirty bits (page-replacement bookkeeping).
     *  Flushes the micro-TLB: cached entries assume the bits of a live
     *  entry are already set, so the next reference must re-walk. */
    void clearUsageBits();

    /** Number of installed (resident or not) page entries. */
    size_t pageCount() const { return pages_.size(); }

    /** Total translations and faults, for the experiment harness. */
    uint64_t translations() const { return translations_; }
    uint64_t faults() const { return faults_; }

    // --- Micro-TLB (simulation fast path) -------------------------------

    /** Drop every cached translation. Correct-by-construction callers:
     *  page-map mutation, reconfiguration, mapping enable/disable,
     *  usage-bit clearing, and privilege swaps. */
    void flushTlb();

    /** Enable/disable the micro-TLB (disabling also flushes). The
     *  reference (`--no-fastpath`) runs disable it to prove parity. */
    void setTlbEnabled(bool on);
    bool tlbEnabled() const { return tlb_enabled_; }

    uint64_t tlbHits() const { return tlb_hits_; }
    uint64_t tlbMisses() const { return tlb_misses_; }
    uint64_t tlbFlushes() const { return tlb_flushes_; }

  private:
    /** TLB-missing translate: fold + page-map walk, then refill. */
    Translation translateSlow(uint32_t program_addr, bool is_write);

    /** Direct-mapped micro-TLB entry, keyed by program page number. */
    struct TlbEntry
    {
        uint32_t tag = kInvalidTlbTag; ///< program-address page number
        uint32_t phys_base = 0;        ///< frame << kPageBits
        bool writable = false;
        bool dirty_done = false;       ///< page dirty bit already set
        PageEntry *entry = nullptr;    ///< for dirty propagation
    };

    static constexpr uint32_t kInvalidTlbTag = 0xffffffffu;
    static constexpr uint32_t kTlbSize = 16; ///< power of two

    uint8_t seg_bits_ = 0;
    uint32_t pid_ = 0;
    std::unordered_map<uint32_t, PageEntry> pages_; ///< by sva page no.
    uint64_t translations_ = 0;
    uint64_t faults_ = 0;

    std::array<TlbEntry, kTlbSize> tlb_{};
    bool tlb_enabled_ = true;
    uint64_t tlb_hits_ = 0;
    uint64_t tlb_misses_ = 0;
    uint64_t tlb_flushes_ = 0;
};

} // namespace mips::sim
