#include "sim/memory.h"

#include "support/logging.h"

namespace mips::sim {

PhysMemory::PhysMemory(uint32_t size_words)
    : size_words_(size_words), words_(size_words, 0)
{
}

void
PhysMemory::outOfRange(const char *op, uint32_t addr) const
{
    support::panic("PhysMemory::%s out of range: 0x%x", op, addr);
}

uint32_t
PhysMemory::readMmio(uint32_t addr)
{
    switch (static_cast<MmioReg>(addr - kMmioBase)) {
      case MmioReg::CONSOLE_STATUS:
        return 1;
      case MmioReg::INT_SOURCE:
        return highestPendingDevice();
      case MmioReg::CYCLES_LO:
        return static_cast<uint32_t>(cycle_source_ ? *cycle_source_
                                                   : cycles_);
      default:
        return 0;
    }
}

void
PhysMemory::writeMmio(uint32_t addr, uint32_t value)
{
    switch (static_cast<MmioReg>(addr - kMmioBase)) {
      case MmioReg::CONSOLE_OUT:
        console_.push_back(static_cast<char>(value & 0xff));
        break;
      case MmioReg::INT_ACK:
        if (value < 32)
            pending_devices_ &= ~(1u << value);
        break;
      case MmioReg::MAP_SVA:
        map_sva_ = value;
        break;
      case MmioReg::MAP_INSTALL:
        if (map_hook_)
            map_hook_(true, map_sva_, value);
        break;
      case MmioReg::MAP_EVICT:
        if (map_hook_)
            map_hook_(false, map_sva_, value);
        break;
      default:
        break;
    }
}

uint32_t
PhysMemory::peek(uint32_t addr) const
{
    if (!valid(addr))
        support::panic("PhysMemory::peek out of range: 0x%x", addr);
    return words_[addr];
}

void
PhysMemory::poke(uint32_t addr, uint32_t value)
{
    if (!valid(addr))
        support::panic("PhysMemory::poke out of range: 0x%x", addr);
    ramWrite(addr, value);
}

void
PhysMemory::loadImage(uint32_t base, const std::vector<uint32_t> &image)
{
    for (size_t i = 0; i < image.size(); ++i)
        poke(base + static_cast<uint32_t>(i), image[i]);
}

void
PhysMemory::raiseDevice(uint32_t device_id)
{
    if (device_id == 0 || device_id >= 32)
        support::panic("raiseDevice: bad device id %u", device_id);
    pending_devices_ |= 1u << device_id;
}

uint32_t
PhysMemory::highestPendingDevice() const
{
    for (uint32_t id = 1; id < 32; ++id)
        if (pending_devices_ & (1u << id))
            return id;
    return 0;
}

} // namespace mips::sim
