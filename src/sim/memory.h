/**
 * @file
 * Physical word-addressed memory with memory-mapped devices.
 *
 * The memory is an array of 32-bit words (there is deliberately no
 * byte access path — Section 4.1 of the paper). A small MMIO window at
 * the top of the physical space hosts the console and the external
 * interrupt-prioritization logic the paper's global interrupt handler
 * queries ("the global interrupt handler queries any external
 * prioritization logic to determine which device was requesting
 * service").
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

namespace mips::sim {

/** Default physical memory size in words (4 MB). */
constexpr uint32_t kDefaultPhysWords = 1u << 20;

/** First word of the MMIO window (within the default size). */
constexpr uint32_t kMmioBase = 0x000ff000;

/** Words in the MMIO window. */
constexpr uint32_t kMmioWindowWords = 16;

/** MMIO registers (word offsets from kMmioBase). */
enum class MmioReg : uint32_t
{
    CONSOLE_OUT = 0,   ///< write: emit low byte to the console
    CONSOLE_STATUS = 1,///< read: 1 (always ready)
    INT_SOURCE = 2,    ///< read: id of highest-priority pending device
    INT_ACK = 3,       ///< write: acknowledge (clear) device id
    CYCLES_LO = 4,     ///< read: low word of the cycle counter
    MAP_SVA = 5,       ///< write: latch system virtual address
    MAP_INSTALL = 6,   ///< write frame number: install page for MAP_SVA
    MAP_EVICT = 7,     ///< write anything: evict the MAP_SVA page
};

/**
 * Physical memory plus devices. Word granularity only.
 */
class PhysMemory
{
  public:
    explicit PhysMemory(uint32_t size_words = kDefaultPhysWords);

    /** Number of addressable words. */
    uint32_t size() const { return size_words_; }

    /** True if `addr` is a valid physical word address. */
    bool valid(uint32_t addr) const { return addr < size_words_; }

    /** True if `addr` falls in the MMIO window. */
    bool
    isMmio(uint32_t addr) const
    {
        // Unsigned wrap: one compare for [kMmioBase, kMmioBase + 16).
        return addr - kMmioBase < kMmioWindowWords && addr < size_words_;
    }

    /** Read a word; MMIO reads consult the devices. On the CPU's
     *  critical path — the common (RAM) case is fully inline. */
    uint32_t
    read(uint32_t addr)
    {
        if (addr >= size_words_)
            outOfRange("read", addr);
        if (addr - kMmioBase < kMmioWindowWords)
            return readMmio(addr);
        return words_[addr];
    }

    /** Write a word; MMIO writes drive the devices. On the CPU's
     *  critical path — the common (RAM) case is fully inline. */
    void
    write(uint32_t addr, uint32_t value)
    {
        if (addr >= size_words_)
            outOfRange("write", addr);
        if (addr - kMmioBase < kMmioWindowWords) {
            writeMmio(addr, value);
            return;
        }
        ramWrite(addr, value);
    }

    /**
     * Unchecked RAM word access for callers that have already proven
     * `addr` in range and outside the MMIO window (the CPU fast path:
     * the translate step bounds-checks and the MMIO test is explicit
     * there). ramWrite keeps the predecode tags coherent like write().
     */
    uint32_t ram(uint32_t addr) const { return words_[addr]; }

    void
    ramWrite(uint32_t addr, uint32_t value)
    {
        // Value-aware invalidation: a store that leaves the word's
        // contents unchanged cannot stale a predecoded entry, so e.g.
        // reloading the same program image keeps the cache warm.
        uint32_t old = words_[addr];
        words_[addr] = value;
        if (old != value)
            notifyWrite(addr);
    }

    /** Raw (device-free) access for loaders and tests. */
    uint32_t peek(uint32_t addr) const;
    void poke(uint32_t addr, uint32_t value);

    /** Copy a program image into memory at `base`. */
    void loadImage(uint32_t base, const std::vector<uint32_t> &image);

    // --- Devices -------------------------------------------------------

    /** Everything written to CONSOLE_OUT so far. */
    const std::string &consoleOutput() const { return console_; }

    /** Assert a device interrupt request (device ids 1..31). */
    void raiseDevice(uint32_t device_id);

    /** True if any device request is pending (drives the single
     *  interrupt line onto the chip). */
    bool interruptPending() const { return pending_devices_ != 0; }

    /** Highest-priority (lowest id) pending device, 0 if none. */
    uint32_t highestPendingDevice() const;

    /** Cycle-counter value surfaced through CYCLES_LO (set by hosts
     *  without a live CPU attached; the CPU registers a source below). */
    void setCycleCounter(uint64_t cycles) { cycles_ = cycles; }

    /** Register a live counter read on demand by CYCLES_LO, so the CPU
     *  does not have to push the count into the device every cycle.
     *  Pass nullptr to detach (falls back to setCycleCounter's value). */
    void setCycleSource(const uint64_t *source) { cycle_source_ = source; }

    /**
     * Hook for the MAP_* registers: the exterior mapping unit sits on
     * the bus ("an off-chip page map", Section 3.1), so the OS
     * programs it through stores. Machine wires this to MappingUnit.
     * Called as hook(install_or_evict, sva, frame).
     */
    void
    setMapHook(std::function<void(bool, uint32_t, uint32_t)> hook)
    {
        map_hook_ = std::move(hook);
    }

    // --- Write observation ---------------------------------------------

    /**
     * Predecode-cache coherence: the CPU shares its direct-mapped tag
     * array so that every store that changes memory contents — CPU
     * stores, host poke()/loadImage(), any bus write — invalidates a
     * stale predecoded entry *in place*, with no indirect call on the
     * store path. `mask` must be (size of tag array - 1), a power of
     * two minus one; a store to word `addr` clears tags[addr & mask]
     * when it equals addr. Pass tags = nullptr to detach.
     */
    void
    attachDecodeTags(uint32_t *tags, uint32_t mask, uint32_t invalid)
    {
        decode_tags_ = tags;
        decode_tags_mask_ = mask;
        decode_tags_invalid_ = invalid;
    }

    /** Predecoded entries actually invalidated by writes (stores that
     *  hit a live tag; the common store misses every tag and costs
     *  nothing extra). */
    uint64_t decodeInvalidations() const { return decode_invalidations_; }

  private:
    /** Out-of-line slow paths for the inline read()/write() above. */
    [[noreturn]] void outOfRange(const char *op, uint32_t addr) const;
    uint32_t readMmio(uint32_t addr);
    void writeMmio(uint32_t addr, uint32_t value);

    void
    notifyWrite(uint32_t addr)
    {
        // Drop the predecoded entry covering this word, if any. Only
        // the tag is cleared — the CPU may be mid-step holding a
        // pointer into the matching payload.
        if (decode_tags_ != nullptr) {
            uint32_t idx = addr & decode_tags_mask_;
            if (decode_tags_[idx] == addr) {
                decode_tags_[idx] = decode_tags_invalid_;
                ++decode_invalidations_;
            }
        }
    }

    uint32_t size_words_ = 0;
    std::vector<uint32_t> words_;
    std::string console_;
    uint32_t pending_devices_ = 0; ///< bitmask of requesting devices
    uint64_t cycles_ = 0;
    const uint64_t *cycle_source_ = nullptr;
    uint32_t map_sva_ = 0;
    std::function<void(bool, uint32_t, uint32_t)> map_hook_;
    uint32_t *decode_tags_ = nullptr;
    uint32_t decode_tags_mask_ = 0;
    uint32_t decode_tags_invalid_ = 0;
    uint64_t decode_invalidations_ = 0;
};

} // namespace mips::sim
