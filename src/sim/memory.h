/**
 * @file
 * Physical word-addressed memory with memory-mapped devices.
 *
 * The memory is an array of 32-bit words (there is deliberately no
 * byte access path — Section 4.1 of the paper). A small MMIO window at
 * the top of the physical space hosts the console and the external
 * interrupt-prioritization logic the paper's global interrupt handler
 * queries ("the global interrupt handler queries any external
 * prioritization logic to determine which device was requesting
 * service").
 */
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace mips::sim {

/** Default physical memory size in words (4 MB). */
constexpr uint32_t kDefaultPhysWords = 1u << 20;

/** First word of the MMIO window (within the default size). */
constexpr uint32_t kMmioBase = 0x000ff000;

/** MMIO registers (word offsets from kMmioBase). */
enum class MmioReg : uint32_t
{
    CONSOLE_OUT = 0,   ///< write: emit low byte to the console
    CONSOLE_STATUS = 1,///< read: 1 (always ready)
    INT_SOURCE = 2,    ///< read: id of highest-priority pending device
    INT_ACK = 3,       ///< write: acknowledge (clear) device id
    CYCLES_LO = 4,     ///< read: low word of the cycle counter
    MAP_SVA = 5,       ///< write: latch system virtual address
    MAP_INSTALL = 6,   ///< write frame number: install page for MAP_SVA
    MAP_EVICT = 7,     ///< write anything: evict the MAP_SVA page
};

/**
 * Physical memory plus devices. Word granularity only.
 */
class PhysMemory
{
  public:
    explicit PhysMemory(uint32_t size_words = kDefaultPhysWords);

    /** Number of addressable words. */
    uint32_t size() const { return static_cast<uint32_t>(words_.size()); }

    /** True if `addr` is a valid physical word address. */
    bool valid(uint32_t addr) const { return addr < words_.size(); }

    /** True if `addr` falls in the MMIO window. */
    bool isMmio(uint32_t addr) const;

    /** Read a word; MMIO reads consult the devices. */
    uint32_t read(uint32_t addr);

    /** Write a word; MMIO writes drive the devices. */
    void write(uint32_t addr, uint32_t value);

    /** Raw (device-free) access for loaders and tests. */
    uint32_t peek(uint32_t addr) const;
    void poke(uint32_t addr, uint32_t value);

    /** Copy a program image into memory at `base`. */
    void loadImage(uint32_t base, const std::vector<uint32_t> &image);

    // --- Devices -------------------------------------------------------

    /** Everything written to CONSOLE_OUT so far. */
    const std::string &consoleOutput() const { return console_; }

    /** Assert a device interrupt request (device ids 1..31). */
    void raiseDevice(uint32_t device_id);

    /** True if any device request is pending (drives the single
     *  interrupt line onto the chip). */
    bool interruptPending() const { return pending_devices_ != 0; }

    /** Highest-priority (lowest id) pending device, 0 if none. */
    uint32_t highestPendingDevice() const;

    /** Cycle-counter value surfaced through CYCLES_LO (set by the CPU). */
    void setCycleCounter(uint64_t cycles) { cycles_ = cycles; }

    /**
     * Hook for the MAP_* registers: the exterior mapping unit sits on
     * the bus ("an off-chip page map", Section 3.1), so the OS
     * programs it through stores. Machine wires this to MappingUnit.
     * Called as hook(install_or_evict, sva, frame).
     */
    void
    setMapHook(std::function<void(bool, uint32_t, uint32_t)> hook)
    {
        map_hook_ = std::move(hook);
    }

  private:
    std::vector<uint32_t> words_;
    std::string console_;
    uint32_t pending_devices_ = 0; ///< bitmask of requesting devices
    uint64_t cycles_ = 0;
    uint32_t map_sva_ = 0;
    std::function<void(bool, uint32_t, uint32_t)> map_hook_;
};

} // namespace mips::sim
