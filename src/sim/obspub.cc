#include "sim/obspub.h"

#include "obs/catalog.h"
#include "sim/machine.h"

namespace mips::sim {

void
publishMetrics(const Machine &machine)
{
    const Cpu &cpu = machine.cpu();
    const MappingUnit &map = machine.mapping();
    const CpuStats &st = cpu.stats();
    obs::SimMetrics &m = obs::simMetrics();

    m.runs->add();
    m.instructions->add(st.cycles);
    m.free_data_cycles->add(st.free_data_cycles);
    m.alu_pieces->add(st.alu_pieces);
    m.loads->add(st.loads);
    m.stores->add(st.stores);
    m.long_immediates->add(st.long_immediates);
    m.branches->add(st.branches);
    m.branches_taken->add(st.branches_taken);
    m.jumps->add(st.jumps);
    m.nops->add(st.nops);
    m.packed_words->add(st.packed_words);
    m.traps->add(st.traps);
    m.exceptions->add(st.exceptions);
    m.decode_hits->add(cpu.decodeCacheHits());
    m.decode_misses->add(cpu.decodeCacheMisses());
    m.decode_invalidations->add(machine.memory().decodeInvalidations());
    m.tlb_hits->add(map.tlbHits());
    m.tlb_misses->add(map.tlbMisses());
    m.tlb_flushes->add(map.tlbFlushes());
    m.map_translations->add(map.translations());
    m.map_faults->add(map.faults());
}

} // namespace mips::sim
