/**
 * @file
 * Bridge from the simulator's native counters to the obs registry.
 *
 * The cycle loop keeps its counters as plain struct fields (CpuStats,
 * the decode-cache and micro-TLB hit/miss counts) — the hot path must
 * not pay even a relaxed atomic per cycle, and the instrumentation
 * overhead budget for the whole observability layer is <= 2% on
 * bench_throughput. Instead, `publishMetrics` folds a machine's
 * counters into the process-wide `sim.*` metrics once, after a run.
 *
 * Contract: the machine's counters are *cumulative over its lifetime*
 * (clearStats() resets CpuStats but not the host-side cache counters),
 * so publish a given Machine at most once, after its last run —
 * publishing twice double-counts. The pipeline simulate stage and the
 * bench harnesses both follow this pattern: fresh machine → run →
 * publish.
 */
#pragma once

namespace mips::sim {

class Machine;

/** Fold `machine`'s execution counters into the `sim.*` metrics of
 *  obs::Registry::instance(). Call once per machine, post-run. */
void publishMetrics(const Machine &machine);

} // namespace mips::sim
