#include "sim/surprise.h"

#include "support/bits.h"
#include "support/logging.h"

namespace mips::sim {

using support::bits;
using support::insertBits;

std::string
causeName(Cause cause)
{
    switch (cause) {
      case Cause::NONE:          return "none";
      case Cause::RESET:         return "reset";
      case Cause::INTERRUPT:     return "interrupt";
      case Cause::TRAP:          return "trap";
      case Cause::OVERFLOW:      return "overflow";
      case Cause::PAGE_FAULT:    return "page-fault";
      case Cause::ADDRESS_ERROR: return "address-error";
      case Cause::PRIVILEGE:     return "privilege-violation";
      case Cause::ILLEGAL:       return "illegal-instruction";
    }
    support::panic("causeName: bad cause %d", static_cast<int>(cause));
}

uint32_t
Surprise::pack() const
{
    uint32_t w = 0;
    w = insertBits(w, 0, 0, supervisor);
    w = insertBits(w, 1, 1, prev_supervisor);
    w = insertBits(w, 2, 2, int_enable);
    w = insertBits(w, 3, 3, prev_int_enable);
    w = insertBits(w, 4, 4, ovf_enable);
    w = insertBits(w, 5, 5, prev_ovf_enable);
    w = insertBits(w, 6, 6, map_enable);
    w = insertBits(w, 7, 7, prev_map_enable);
    w = insertBits(w, 15, 12, static_cast<uint32_t>(cause));
    w = insertBits(w, 27, 16, detail);
    return w;
}

Surprise
Surprise::unpack(uint32_t w)
{
    Surprise s;
    s.supervisor = bits(w, 0, 0);
    s.prev_supervisor = bits(w, 1, 1);
    s.int_enable = bits(w, 2, 2);
    s.prev_int_enable = bits(w, 3, 3);
    s.ovf_enable = bits(w, 4, 4);
    s.prev_ovf_enable = bits(w, 5, 5);
    s.map_enable = bits(w, 6, 6);
    s.prev_map_enable = bits(w, 7, 7);
    s.cause = static_cast<Cause>(bits(w, 15, 12));
    s.detail = static_cast<uint16_t>(bits(w, 27, 16));
    return s;
}

void
Surprise::enterException(Cause new_cause, uint16_t new_detail)
{
    prev_supervisor = supervisor;
    prev_int_enable = int_enable;
    prev_ovf_enable = ovf_enable;
    prev_map_enable = map_enable;
    supervisor = true;
    int_enable = false;
    map_enable = false;
    cause = new_cause;
    detail = new_detail;
}

void
Surprise::returnFromException()
{
    supervisor = prev_supervisor;
    int_enable = prev_int_enable;
    ovf_enable = prev_ovf_enable;
    map_enable = prev_map_enable;
    cause = Cause::NONE;
    detail = 0;
}

} // namespace mips::sim
