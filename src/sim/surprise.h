/**
 * @file
 * The surprise register: "all the miscellaneous state of the processor
 * is encapsulated into a single surprise register -- the MIPS
 * equivalent of a processor status word. The surprise register
 * includes the current and previous privilege levels, and enable bits
 * for interrupts, overflow traps and memory mapping. Finally, there
 * are two fields that specify the exact nature of the last exception."
 *
 * Bit layout of the packed 32-bit form (this rendition):
 *
 *   [0]      current privilege (1 = supervisor)
 *   [1]      previous privilege
 *   [2]      interrupt enable
 *   [3]      previous interrupt enable
 *   [4]      overflow trap enable
 *   [5]      previous overflow trap enable
 *   [6]      memory mapping enable
 *   [7]      previous mapping enable
 *   [15:12]  exception cause (major field)
 *   [27:16]  exception detail (minor field; holds the full 12-bit
 *            trap code for monitor calls)
 *   [31:28]  reserved, read as zero
 *
 * On an exception the "previous" bits capture the "current" bits and
 * the processor enters supervisor mode with interrupts and mapping
 * off; RFE restores from the previous bits. The dispatch routine at
 * address zero extracts the two cause fields "from the top of the
 * surprise register" and indexes a jump table with them.
 */
#pragma once

#include <cstdint>
#include <string>

namespace mips::sim {

/** Major exception-cause codes (the first surprise field). */
enum class Cause : uint8_t
{
    NONE = 0,
    RESET = 1,
    INTERRUPT = 2,      ///< external interrupt line
    TRAP = 3,           ///< software trap (monitor call)
    OVERFLOW = 4,       ///< enabled arithmetic overflow
    PAGE_FAULT = 5,     ///< mapping miss (detail: 0 ifetch, 1 data)
    ADDRESS_ERROR = 6,  ///< reference between the two valid segments
    PRIVILEGE = 7,      ///< privileged instruction in user mode
    ILLEGAL = 8,        ///< undecodable instruction word
};

/** Human-readable cause name. */
std::string causeName(Cause cause);

/** Detail codes for PAGE_FAULT / ADDRESS_ERROR. */
constexpr uint8_t kDetailIfetch = 0;
constexpr uint8_t kDetailData = 1;

/** Unpacked surprise-register state. */
struct Surprise
{
    bool supervisor = true;       ///< boot in supervisor mode
    bool prev_supervisor = true;
    bool int_enable = false;
    bool prev_int_enable = false;
    bool ovf_enable = false;
    bool prev_ovf_enable = false;
    bool map_enable = false;
    bool prev_map_enable = false;
    Cause cause = Cause::RESET;
    uint16_t detail = 0;          ///< trap code / fault detail (12 bits)

    /** Pack into the architectural 32-bit form. */
    uint32_t pack() const;

    /** Unpack from the architectural 32-bit form. */
    static Surprise unpack(uint32_t word);

    /**
     * Take an exception: capture current bits into previous bits,
     * enter supervisor mode with interrupts and mapping disabled,
     * record the cause fields.
     */
    void enterException(Cause new_cause, uint16_t new_detail);

    /** RFE: restore current bits from previous bits. */
    void returnFromException();

    bool operator==(const Surprise &) const = default;
};

} // namespace mips::sim
