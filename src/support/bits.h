/**
 * @file
 * Bit-manipulation helpers for instruction encoding and the simulator.
 *
 * All helpers operate on explicit bit positions; `first` is the most
 * significant bit of the field and `last` the least significant, matching
 * the usual hardware-manual convention (e.g. bits(word, 31, 28) is the
 * top nibble).
 */
#pragma once

#include <cstdint>

#include "support/logging.h"

namespace mips::support {

/** Mask with the low `nbits` bits set. */
constexpr uint64_t
mask(int nbits)
{
    return nbits >= 64 ? ~0ULL : (1ULL << nbits) - 1;
}

/** Extract bits [first:last] (inclusive, first >= last). */
constexpr uint64_t
bits(uint64_t val, int first, int last)
{
    return (val >> last) & mask(first - last + 1);
}

/** Return `val` with bits [first:last] replaced by `field`. */
constexpr uint64_t
insertBits(uint64_t val, int first, int last, uint64_t field)
{
    uint64_t m = mask(first - last + 1) << last;
    return (val & ~m) | ((field << last) & m);
}

/** Sign-extend the low `nbits` bits of `val` to 64 bits. */
constexpr int64_t
sext(uint64_t val, int nbits)
{
    uint64_t m = 1ULL << (nbits - 1);
    uint64_t v = val & mask(nbits);
    return static_cast<int64_t>((v ^ m) - m);
}

/** True if `val` fits in `nbits` as an unsigned field. */
constexpr bool
fitsUnsigned(uint64_t val, int nbits)
{
    return val <= mask(nbits);
}

/** True if `val` fits in `nbits` as a signed (two's complement) field. */
constexpr bool
fitsSigned(int64_t val, int nbits)
{
    int64_t lo = -(1LL << (nbits - 1));
    int64_t hi = (1LL << (nbits - 1)) - 1;
    return val >= lo && val <= hi;
}

/** 32-bit two's-complement addition with signed-overflow detection. */
inline uint32_t
addOverflow(uint32_t a, uint32_t b, bool *overflow)
{
    uint32_t sum = a + b;
    // Signed overflow: operands agree in sign, result differs.
    *overflow = (~(a ^ b) & (a ^ sum)) >> 31;
    return sum;
}

/** 32-bit two's-complement subtraction with signed-overflow detection. */
inline uint32_t
subOverflow(uint32_t a, uint32_t b, bool *overflow)
{
    uint32_t diff = a - b;
    *overflow = ((a ^ b) & (a ^ diff)) >> 31;
    return diff;
}

} // namespace mips::support
