/**
 * @file
 * Status-message and fatal-error helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (a bug in this library), fatal() is for unrecoverable
 * user-level errors (bad input, bad configuration). inform() and warn()
 * are purely advisory and never stop execution.
 */
#pragma once

#include <cstdarg>
#include <string>

namespace mips::support {

/** Print an informational message to stderr ("info: ..."). */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a warning message to stderr ("warn: ..."). */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/**
 * Report an unrecoverable user-level error and exit(1).
 * Use for bad input or configuration, not for internal bugs.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation and abort().
 * Use only for conditions that indicate a bug in this library.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string vstrprintf(const char *fmt, va_list ap);

/** printf-style formatting into a std::string. */
std::string strprintf(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace mips::support
