/**
 * @file
 * A minimal expected-style result type for recoverable errors.
 *
 * Used by the assembler, the Pascal-like compiler front end, and other
 * components that must report malformed *input* without terminating the
 * process. Internal invariant violations still use panic().
 */
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <variant>

#include "support/logging.h"

namespace mips::support {

/** A recoverable error: message plus optional source position. */
struct Error
{
    std::string message;
    /** 1-based line in the offending source, or 0 if not applicable. */
    int line = 0;
    /** 1-based column in the offending source, or 0 if not applicable. */
    int column = 0;

    /** Render "line:col: message" (or just the message). */
    std::string
    str() const
    {
        if (line == 0)
            return message;
        if (column == 0)
            return strprintf("%d: %s", line, message.c_str());
        return strprintf("%d:%d: %s", line, column, message.c_str());
    }
};

/**
 * Result<T>: either a value or an Error.
 *
 * Deliberately tiny: value(), error(), ok(), and a panicking unwrap for
 * tests and examples where failure indicates a bug.
 */
template <typename T>
class Result
{
  public:
    Result(T value) : data_(std::move(value)) {}
    Result(Error error) : data_(std::move(error)) {}

    bool ok() const { return std::holds_alternative<T>(data_); }

    const T &
    value() const
    {
        if (!ok())
            panic("Result::value() on error: %s", error().str().c_str());
        return std::get<T>(data_);
    }

    T &
    value()
    {
        if (!ok())
            panic("Result::value() on error: %s", error().str().c_str());
        return std::get<T>(data_);
    }

    /** Move the value out (Result must hold a value). */
    T
    take()
    {
        if (!ok())
            panic("Result::take() on error: %s", error().str().c_str());
        return std::move(std::get<T>(data_));
    }

    const Error &
    error() const
    {
        if (ok())
            panic("Result::error() on value");
        return std::get<Error>(data_);
    }

  private:
    std::variant<T, Error> data_;
};

/** Convenience maker for error results. */
inline Error
makeError(std::string message, int line = 0, int column = 0)
{
    return Error{std::move(message), line, column};
}

} // namespace mips::support
