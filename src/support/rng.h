/**
 * @file
 * Deterministic pseudo-random number generator for workload synthesis.
 *
 * A fixed-seed xorshift64* generator keeps every experiment reproducible
 * bit-for-bit across runs and platforms; std::mt19937 would also work but
 * this is smaller and its output is pinned by our own tests.
 */
#pragma once

#include <cstdint>

namespace mips::support {

/** xorshift64* PRNG; deterministic and platform independent. */
class Rng
{
  public:
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state_(seed ? seed : 1)
    {}

    /** Next raw 64-bit value. */
    uint64_t
    next()
    {
        uint64_t x = state_;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state_ = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** Uniform integer in [0, bound) (bound > 0). */
    uint64_t
    below(uint64_t bound)
    {
        return next() % bound;
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t
    range(int64_t lo, int64_t hi)
    {
        return lo + static_cast<int64_t>(
            below(static_cast<uint64_t>(hi - lo + 1)));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with probability p. */
    bool chance(double p) { return uniform() < p; }

  private:
    uint64_t state_;
};

} // namespace mips::support
