#include "support/stats.h"

#include "support/logging.h"

namespace mips::support {

BucketDist::BucketDist(std::vector<std::string> bucket_names)
    : names_(std::move(bucket_names))
{
    for (const std::string &n : names_)
        counts_[n] = 0;
}

void
BucketDist::add(const std::string &name, uint64_t weight)
{
    auto it = counts_.find(name);
    if (it == counts_.end())
        panic("BucketDist: unknown bucket '%s'", name.c_str());
    it->second += weight;
    total_ += weight;
}

uint64_t
BucketDist::count(const std::string &name) const
{
    auto it = counts_.find(name);
    if (it == counts_.end())
        panic("BucketDist: unknown bucket '%s'", name.c_str());
    return it->second;
}

double
BucketDist::fraction(const std::string &name) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(count(name)) / static_cast<double>(total_);
}

} // namespace mips::support
