/**
 * @file
 * Counter and distribution helpers used by the analyzers and simulator.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace mips::support {

/**
 * A distribution over named buckets, in insertion order.
 *
 * Used for the paper's categorical tables (constant magnitudes,
 * reference-size classes, boolean-expression shapes, ...).
 */
class BucketDist
{
  public:
    /** Declare the buckets up front so fractions cover empty ones too. */
    explicit BucketDist(std::vector<std::string> bucket_names);

    /** Add `weight` to bucket `name` (which must have been declared). */
    void add(const std::string &name, uint64_t weight = 1);

    /** Total weight across all buckets. */
    uint64_t total() const { return total_; }

    /** Raw count for a bucket. */
    uint64_t count(const std::string &name) const;

    /** Fraction of the total in a bucket (0 when total is 0). */
    double fraction(const std::string &name) const;

    /** Bucket names in declaration order. */
    const std::vector<std::string> &names() const { return names_; }

  private:
    std::vector<std::string> names_;
    std::map<std::string, uint64_t> counts_;
    uint64_t total_ = 0;
};

/** Running mean over added samples. */
class Mean
{
  public:
    void
    add(double sample, double weight = 1.0)
    {
        sum_ += sample * weight;
        weight_ += weight;
    }

    double value() const { return weight_ > 0 ? sum_ / weight_ : 0.0; }
    double weight() const { return weight_; }

  private:
    double sum_ = 0.0;
    double weight_ = 0.0;
};

} // namespace mips::support
