#include "support/strings.h"

#include <cctype>

namespace mips::support {

std::string_view
trim(std::string_view s)
{
    size_t b = 0;
    while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    size_t e = s.size();
    while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1])))
        --e;
    return s.substr(b, e - b);
}

std::vector<std::string_view>
split(std::string_view s, char delim)
{
    std::vector<std::string_view> out;
    size_t start = 0;
    for (size_t i = 0; i <= s.size(); ++i) {
        if (i == s.size() || s[i] == delim) {
            out.push_back(s.substr(start, i - start));
            start = i + 1;
        }
    }
    return out;
}

std::vector<std::string_view>
splitWhitespace(std::string_view s)
{
    std::vector<std::string_view> out;
    size_t i = 0;
    while (i < s.size()) {
        while (i < s.size() &&
               std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        size_t start = i;
        while (i < s.size() &&
               !std::isspace(static_cast<unsigned char>(s[i])))
            ++i;
        if (i > start)
            out.push_back(s.substr(start, i - start));
    }
    return out;
}

std::string
toLower(std::string_view s)
{
    std::string out(s);
    for (char &c : out)
        c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
    return out;
}

bool
startsWith(std::string_view s, std::string_view prefix)
{
    return s.size() >= prefix.size() &&
           s.substr(0, prefix.size()) == prefix;
}

std::string
join(const std::vector<std::string> &parts, std::string_view sep)
{
    std::string out;
    for (size_t i = 0; i < parts.size(); ++i) {
        if (i > 0)
            out += sep;
        out += parts[i];
    }
    return out;
}

} // namespace mips::support
