/**
 * @file
 * Small string utilities shared by the assembler and the compiler.
 */
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace mips::support {

/** Strip leading and trailing whitespace. */
std::string_view trim(std::string_view s);

/** Split on a single-character delimiter; empty fields are preserved. */
std::vector<std::string_view> split(std::string_view s, char delim);

/** Split into non-empty whitespace-separated tokens. */
std::vector<std::string_view> splitWhitespace(std::string_view s);

/** ASCII lowercase copy. */
std::string toLower(std::string_view s);

/** True if `s` begins with `prefix`. */
bool startsWith(std::string_view s, std::string_view prefix);

/** Join the elements with `sep` between them. */
std::string join(const std::vector<std::string> &parts,
                 std::string_view sep);

} // namespace mips::support
