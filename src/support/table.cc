#include "support/table.h"

#include <algorithm>

#include "support/logging.h"

namespace mips::support {

void
TextTable::setHeader(std::vector<std::string> header)
{
    header_ = std::move(header);
}

void
TextTable::addRow(std::vector<std::string> row)
{
    rows_.push_back(Row{false, std::move(row)});
    ++numDataRows_;
}

void
TextTable::addSeparator()
{
    rows_.push_back(Row{true, {}});
}

std::string
TextTable::pct(double fraction, int decimals)
{
    return strprintf("%.*f%%", decimals, fraction * 100.0);
}

std::string
TextTable::num(double value, int decimals)
{
    return strprintf("%.*f", decimals, value);
}

std::string
TextTable::render() const
{
    // Column widths across header and all rows.
    size_t ncols = header_.size();
    for (const Row &r : rows_)
        ncols = std::max(ncols, r.cells.size());

    std::vector<size_t> widths(ncols, 0);
    auto account = [&](const std::vector<std::string> &cells) {
        for (size_t i = 0; i < cells.size(); ++i)
            widths[i] = std::max(widths[i], cells[i].size());
    };
    account(header_);
    for (const Row &r : rows_)
        if (!r.separator)
            account(r.cells);

    size_t total = 0;
    for (size_t w : widths)
        total += w + 2;
    if (total >= 2)
        total -= 2;

    auto renderCells = [&](const std::vector<std::string> &cells) {
        std::string line;
        for (size_t i = 0; i < ncols; ++i) {
            std::string cell = i < cells.size() ? cells[i] : "";
            line += cell;
            if (i + 1 < ncols)
                line += std::string(widths[i] - cell.size() + 2, ' ');
        }
        // Strip trailing spaces.
        while (!line.empty() && line.back() == ' ')
            line.pop_back();
        return line + "\n";
    };

    std::string out;
    if (!title_.empty()) {
        out += title_ + "\n";
        out += std::string(std::max(title_.size(), total), '=') + "\n";
    }
    if (!header_.empty()) {
        out += renderCells(header_);
        out += std::string(total, '-') + "\n";
    }
    for (const Row &r : rows_) {
        if (r.separator)
            out += std::string(total, '-') + "\n";
        else
            out += renderCells(r.cells);
    }
    return out;
}

} // namespace mips::support
