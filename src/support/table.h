/**
 * @file
 * Plain-text table renderer used by the benchmark harness to print
 * paper-style tables (rows of labelled values, optionally with a
 * "paper" column next to the "measured" column).
 */
#pragma once

#include <string>
#include <vector>

namespace mips::support {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   TextTable t("Table 1: Constant distribution");
 *   t.setHeader({"Absolute value", "Paper", "Measured"});
 *   t.addRow({"0", "24.8%", "23.1%"});
 *   std::cout << t.render();
 * @endcode
 */
class TextTable
{
  public:
    explicit TextTable(std::string title = "") : title_(std::move(title)) {}

    /** Set the (optional) header row. */
    void setHeader(std::vector<std::string> header);

    /** Append a data row; short rows are padded with empty cells. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the whole table, trailing newline included. */
    std::string render() const;

    /** Number of data rows added so far (separators excluded). */
    size_t rowCount() const { return numDataRows_; }

    /** Format a double as a percentage string like "24.8%". */
    static std::string pct(double fraction, int decimals = 1);

    /** Format a double with fixed decimals. */
    static std::string num(double value, int decimals = 2);

  private:
    struct Row
    {
        bool separator = false;
        std::vector<std::string> cells;
    };

    std::string title_;
    std::vector<std::string> header_;
    std::vector<Row> rows_;
    size_t numDataRows_ = 0;
};

} // namespace mips::support
