#include "verify/cfg.h"

#include <algorithm>

#include "isa/branch.h"
#include "support/strings.h"

namespace mips::verify {

using assembler::Item;
using assembler::Unit;
using isa::Cond;
using isa::JumpKind;

namespace {

/** Terminator classification used while wiring edges. */
struct Transfer
{
    bool is_transfer = false;
    int delay = 0;           ///< delay slots exposed (0: immediate)
    bool conditional = false;///< fall-through also possible
    bool target_known = false;
    size_t target = kNoItem; ///< item index when target_known
    bool to_unknown = false; ///< callee / indirect / trap / RFE
    /** Table-dispatch successor set (one per table entry). */
    std::vector<size_t> multi_targets;
    ShadowKind shadow = ShadowKind::NONE;
};

/** Resolve a label or numeric control-transfer target to an item
 *  index. Returns kNoItem when it cannot be resolved statically
 *  (undefined label was already reported, or address outside the
 *  unit). `next` is the address of the word after the transfer. */
size_t
resolveIndex(const Cfg &cfg, int64_t index)
{
    if (index < 0 || index >= static_cast<int64_t>(cfg.size()))
        return kNoItem;
    return static_cast<size_t>(index);
}

/** Classify item `i`'s control behaviour. */
Transfer
classify(const Cfg &cfg, size_t i, DiagnosticEngine *diags)
{
    const Item &item = cfg.unit->items[i];
    Transfer t;
    if (item.is_data)
        return t;

    auto lookupLabel = [&](const std::string &label) -> size_t {
        auto it = cfg.labels.find(label);
        if (it != cfg.labels.end())
            return it->second;
        if (diags) {
            diags->report(Code::VF002, Severity::ERROR, i,
                          support::strprintf(
                              "undefined label '%s'", label.c_str()));
        }
        return kNoItem;
    };

    if (item.inst.branch) {
        const isa::BranchPiece &b = *item.inst.branch;
        if (b.cond == Cond::NEVER)
            return t; // never taken: plain fall-through word
        t.is_transfer = true;
        t.delay = isa::kBranchDelay;
        t.conditional = b.cond != Cond::ALWAYS;
        t.shadow = ShadowKind::BRANCH;
        size_t target = item.target.empty()
            ? resolveIndex(cfg, static_cast<int64_t>(i) + 1 + b.offset)
            : lookupLabel(item.target);
        t.target_known = target != kNoItem;
        t.target = target;
        if (!t.target_known)
            t.to_unknown = true;
        return t;
    }
    if (item.inst.jump) {
        const isa::JumpPiece &j = *item.inst.jump;
        t.is_transfer = true;
        t.delay = isa::jumpDelay(j.kind);
        t.shadow = isa::jumpIsIndirect(j.kind) || isa::jumpIsTable(j.kind)
                       ? ShadowKind::INDIRECT
                       : ShadowKind::BRANCH;
        if (isa::jumpIsTable(j.kind)) {
            // The successor set comes from the recovered table (built
            // before classification); a dispatch whose table could not
            // be recovered goes anywhere.
            auto it = cfg.tables.find(i);
            if (it == cfg.tables.end())
                t.to_unknown = true;
            else
                t.multi_targets = it->second.targets;
            return t;
        }
        if (isa::jumpIsCall(j.kind) || isa::jumpIsIndirect(j.kind)) {
            // Callee or register target: not statically followable
            // (calls also because the callee may go anywhere before
            // returning past the delay slots).
            if (!item.target.empty() && j.kind == JumpKind::CALL_DIRECT)
                lookupLabel(item.target); // still check it resolves
            t.to_unknown = true;
            return t;
        }
        size_t target = item.target.empty()
            ? resolveIndex(cfg, static_cast<int64_t>(j.target_addr) -
                                    cfg.unit->origin)
            : lookupLabel(item.target);
        t.target_known = target != kNoItem;
        t.target = target;
        if (!t.target_known)
            t.to_unknown = true;
        return t;
    }
    if (item.inst.special) {
        switch (item.inst.special->op) {
          case isa::SpecialOp::TRAP:
          case isa::SpecialOp::RFE:
            // Redirect with no delay slots into the handler / the
            // saved stream: the next executed word is unknown.
            t.is_transfer = true;
            t.delay = 0;
            t.to_unknown = true;
            return t;
          case isa::SpecialOp::HALT:
            t.is_transfer = true;
            t.delay = 0;
            return t; // no successors at all
          default:
            break;
        }
    }
    return t;
}

/**
 * Recover every table dispatch's jump table from the unit: the label
 * the `jtab` names must start a contiguous run of `.word LABEL` data
 * items, each relocating to an instruction word in the unit. Only
 * fully well-formed tables enter `cfg.tables`; the rest are reported
 * (VF003 for a missing/malformed table, VF004 per escaping entry) and
 * their dispatches fall back to an unknown successor.
 */
void
resolveTables(Cfg &cfg, DiagnosticEngine *diags)
{
    const Unit &unit = *cfg.unit;
    size_t n = unit.items.size();
    for (size_t i = 0; i < n; ++i) {
        const Item &item = unit.items[i];
        if (item.is_data || !item.inst.jump ||
            !isa::jumpIsTable(item.inst.jump->kind))
            continue;
        if (item.target.empty()) {
            if (diags) {
                diags->report(Code::VF003, Severity::ERROR, i,
                              "table-dispatch jump names no table "
                              "label; its successors are unknown");
            }
            continue;
        }
        auto lit = cfg.labels.find(item.target);
        if (lit == cfg.labels.end()) {
            if (diags) {
                diags->report(Code::VF002, Severity::ERROR, i,
                              support::strprintf(
                                  "undefined label '%s'",
                                  item.target.c_str()));
            }
            continue;
        }
        JumpTable tbl;
        tbl.first_entry = lit->second;
        bool bad_entry = false;
        for (size_t e = lit->second;
             e != kNoItem && e < n && unit.items[e].is_data &&
             !unit.items[e].target.empty();
             ++e) {
            tbl.entries.push_back(e);
            const std::string &arm = unit.items[e].target;
            auto ait = cfg.labels.find(arm);
            if (ait == cfg.labels.end()) {
                if (diags) {
                    diags->report(Code::VF002, Severity::ERROR, e,
                                  support::strprintf(
                                      "undefined label '%s'",
                                      arm.c_str()));
                }
                bad_entry = true;
            } else if (ait->second == kNoItem ||
                       unit.items[ait->second].is_data) {
                if (diags) {
                    diags->report(
                        Code::VF004, Severity::ERROR, e,
                        support::strprintf(
                            "jump-table entry '%s' resolves outside "
                            "the unit's code", arm.c_str()));
                }
                bad_entry = true;
            } else {
                tbl.targets.push_back(ait->second);
            }
        }
        if (tbl.entries.empty()) {
            if (diags) {
                diags->report(
                    Code::VF003, Severity::ERROR, i,
                    support::strprintf(
                        "table label '%s' does not start a run of "
                        ".word entries", item.target.c_str()));
            }
            continue;
        }
        if (bad_entry)
            continue;
        cfg.tables.emplace(i, std::move(tbl));
    }
}

} // namespace

Cfg
buildCfg(const Unit &unit, DiagnosticEngine *diags)
{
    Cfg cfg;
    cfg.unit = &unit;
    size_t n = unit.items.size();
    cfg.nodes.resize(n);

    for (size_t i = 0; i < n; ++i)
        for (const std::string &label : unit.items[i].labels)
            cfg.labels.emplace(label, i);
    for (const std::string &label : unit.trailing_labels)
        cfg.labels.emplace(label, kNoItem); // defined, but past the end

    // Jump-table recovery (before classification, which consumes it).
    resolveTables(cfg, diags);

    // Structural validation and label-operand resolution for
    // non-transfer label uses (ld @sym / st @sym / li @sym).
    for (size_t i = 0; i < n; ++i) {
        const Item &item = unit.items[i];
        if (item.is_data)
            continue;
        std::string err = isa::validate(item.inst);
        if (!err.empty() && diags) {
            diags->report(Code::VF001, Severity::ERROR, i,
                          "invalid instruction word: " + err);
        }
        if (!item.target.empty() && item.inst.mem && diags &&
            !cfg.labels.count(item.target)) {
            diags->report(Code::VF002, Severity::ERROR, i,
                          support::strprintf("undefined label '%s'",
                                             item.target.c_str()));
        }
    }

    // Default sequential edges, then transfer overrides hung off each
    // transfer's last delay slot.
    std::vector<bool> overridden(n, false);
    for (size_t i = 0; i < n; ++i) {
        CfgNode &node = cfg.nodes[i];
        const Item &item = unit.items[i];
        if (item.is_data) {
            // Falling into data executes an unpredictable decode.
            node.unknown_succ = true;
            continue;
        }
        Transfer t = classify(cfg, i, diags);
        if (t.is_transfer && t.delay == 0) {
            // TRAP / RFE / HALT: redirect immediately.
            node.unknown_succ = t.to_unknown;
            continue;
        }
        if (i + 1 < n)
            node.succs.push_back(i + 1);
        else
            node.unknown_succ = true; // falls off the unit
    }
    for (size_t i = 0; i < n; ++i) {
        const Item &item = unit.items[i];
        if (item.is_data)
            continue;
        Transfer t = classify(cfg, i, nullptr);
        if (!t.is_transfer || t.delay == 0)
            continue;

        // Mark the delay shadow.
        for (int d = 1; d <= t.delay && i + d < n; ++d) {
            CfgNode &slot = cfg.nodes[i + d];
            if (slot.shadow == ShadowKind::NONE) {
                slot.shadow = t.shadow;
                slot.shadow_owner = i;
            }
        }

        // The transfer resolves after its last slot.
        size_t last_slot = i + static_cast<size_t>(t.delay);
        if (last_slot >= n)
            continue; // slots fall off the unit; already unknown_succ
        CfgNode &slot = cfg.nodes[last_slot];
        if (!overridden[last_slot]) {
            overridden[last_slot] = true;
            if (!t.conditional) {
                slot.succs.clear();
                slot.unknown_succ = false;
            }
        }
        if (t.to_unknown)
            slot.unknown_succ = true;
        else if (t.target_known)
            slot.succs.push_back(t.target);
        for (size_t arm : t.multi_targets)
            slot.succs.push_back(arm);

        // A call returns past its delay slots: that resume point can
        // be entered from the callee's indirect jump.
        if (item.inst.jump && isa::jumpIsCall(item.inst.jump->kind) &&
            last_slot + 1 < n) {
            cfg.nodes[last_slot + 1].unknown_pred = true;
        }
    }

    // Classify every label reference so labeled items whose label is
    // *only* the target of resolved local branches / direct jumps do
    // not have to be treated as reachable from unknown code. A label
    // is "locally resolved" when it has at least one reference, every
    // reference is a branch or non-call direct jump whose edge was
    // actually wired above (delay slots inside the unit), and no
    // reference takes its address (mem operand) or calls it.
    struct LabelRefs
    {
        size_t safe_refs = 0;
        bool unsafe = false;
    };
    std::map<std::string, LabelRefs> label_refs;
    for (size_t i = 0; i < n; ++i) {
        const Item &item = unit.items[i];
        if (item.is_data || item.target.empty())
            continue;
        LabelRefs &refs = label_refs[item.target];
        if (item.inst.mem) {
            refs.unsafe = true; // address taken (li/ld/st @label)
        } else if (item.inst.branch) {
            bool wired = item.inst.branch->cond != Cond::NEVER &&
                         i + isa::kBranchDelay < n &&
                         cfg.labels.count(item.target) &&
                         cfg.labels[item.target] != kNoItem;
            if (wired)
                ++refs.safe_refs;
            else
                refs.unsafe = true;
        } else if (item.inst.jump &&
                   item.inst.jump->kind == JumpKind::DIRECT &&
                   i + isa::kBranchDelay < n &&
                   cfg.labels.count(item.target) &&
                   cfg.labels[item.target] != kNoItem) {
            ++refs.safe_refs;
        } else {
            refs.unsafe = true; // call target, indirect, or off-unit
        }
    }
    auto locallyResolved = [&](size_t i) {
        for (const std::string &label : unit.items[i].labels) {
            auto it = label_refs.find(label);
            if (it == label_refs.end() || it->second.unsafe ||
                it->second.safe_refs == 0)
                return false;
            // A duplicate definition means references resolve to the
            // other item; keep this one conservative.
            if (cfg.labels[label] != i)
                return false;
        }
        return true;
    };

    // Unknown-predecessor marking: entry, labeled items (their address
    // can be taken or reached indirectly) unless every label on the
    // item is locally resolved, and trap resume points.
    if (n > 0)
        cfg.nodes[0].unknown_pred = true;
    for (size_t i = 0; i < n; ++i) {
        if (!unit.items[i].labels.empty() &&
            (i == 0 || !locallyResolved(i)))
            cfg.nodes[i].unknown_pred = true;
        const Item &item = unit.items[i];
        if (!item.is_data && item.inst.special &&
            item.inst.special->op == isa::SpecialOp::TRAP &&
            i + 1 < n) {
            cfg.nodes[i + 1].unknown_pred = true; // handler resumes here
        }
    }

    // Dedup successor lists (overlapping overrides on erroneous code
    // can double up) and invert into predecessor lists.
    for (size_t i = 0; i < n; ++i) {
        auto &s = cfg.nodes[i].succs;
        std::sort(s.begin(), s.end());
        s.erase(std::unique(s.begin(), s.end()), s.end());
        for (size_t succ : s)
            cfg.nodes[succ].preds.push_back(i);
    }
    return cfg;
}

} // namespace mips::verify
