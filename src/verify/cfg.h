/**
 * @file
 * Delay-slot-aware control-flow graph over an assembled Unit.
 *
 * The pipeline transfers control only *after* a taken branch or jump
 * has executed its delay slots (one for branches and direct jumps, two
 * for indirect jumps — Section 4.2.1 / 3.3 of the paper). The graph
 * therefore hangs a transfer's outgoing edges off its **last delay
 * slot**, not off the transfer word itself: node i's successors are
 * exactly the words that can execute on the cycle after word i. That
 * is the edge relation every hazard check needs, because the load
 * delay and the taken-transfer shadow are both expressed in *cycles*,
 * not in static program order.
 *
 * Edges the analysis cannot follow (indirect jumps, calls, traps, RFE,
 * falling off the unit) are recorded as `unknown_succ` rather than
 * dropped, so downstream dataflow stays conservative.
 */
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "asm/unit.h"
#include "verify/diagnostics.h"

namespace mips::verify {

/** What kind of delay shadow covers an item, if any. */
enum class ShadowKind : uint8_t
{
    NONE = 0,
    BRANCH,   ///< slot of a branch or direct jump/call (1 slot)
    INDIRECT, ///< shadow of an indirect jump/call (2 slots)
};

/** Per-item CFG node. */
struct CfgNode
{
    /** Items that can execute on the next cycle. */
    std::vector<size_t> succs;
    /** Items that can execute on the previous cycle. */
    std::vector<size_t> preds;
    /** The next executed word is statically unknown (call/indirect
     *  target, trap handler, or execution fell off the unit). */
    bool unknown_succ = false;
    /** Control can arrive here from statically unknown code (the item
     *  is labeled and not every reference is a resolved local branch,
     *  follows a call's delay slots, or follows a trap). */
    bool unknown_pred = false;
    /** Delay shadow this item sits in (for the no-transfer-in-slot
     *  rule); owner is the transfer word that created the shadow. */
    ShadowKind shadow = ShadowKind::NONE;
    size_t shadow_owner = kNoItem;
};

/** One recovered jump table (the successor set of a table dispatch).
 *  Entries are the contiguous `.word LABEL` data items starting at the
 *  label the `jtab` names; targets are the arm items they relocate to. */
struct JumpTable
{
    size_t first_entry = kNoItem; ///< item index of the first entry
    std::vector<size_t> entries;  ///< entry item indices, in order
    std::vector<size_t> targets;  ///< resolved arm item indices
};

/** The graph plus label resolution for one unit. */
struct Cfg
{
    const assembler::Unit *unit = nullptr;
    std::vector<CfgNode> nodes;
    std::map<std::string, size_t> labels; ///< label -> item index
    /** Well-formed jump tables, keyed by the dispatch item's index.
     *  A table dispatch absent from this map could not be recovered
     *  (VF003/VF004) and contributes `unknown_succ` instead. */
    std::map<size_t, JumpTable> tables;

    size_t size() const { return nodes.size(); }
};

/**
 * Build the execution CFG. Structural problems found along the way —
 * invalid instruction words (VF001), undefined label operands
 * (VF002), malformed jump tables (VF003), and table entries that
 * escape the unit's code (VF004) — are reported to `diags` (which may
 * be null to skip them); the offending edges become `unknown_succ`.
 * A table dispatch whose table is well formed contributes one edge
 * per entry instead of an unknown successor.
 */
Cfg buildCfg(const assembler::Unit &unit, DiagnosticEngine *diags);

} // namespace mips::verify
