#include "verify/costmodel.h"

#include <algorithm>

#include "isa/branch.h"
#include "isa/instruction.h"
#include "isa/special.h"
#include "obs/catalog.h"
#include "support/strings.h"

namespace mips::verify {

using assembler::Item;
using assembler::Unit;

namespace {

/** Saturating add keeps pathological rollups from wrapping. */
uint64_t
satAdd(uint64_t a, uint64_t b)
{
    uint64_t s = a + b;
    return s < a ? UINT64_MAX : s;
}

/** Delay slots this item exposes (0 for non-transfers and for
 *  immediate redirects like TRAP/RFE/HALT). */
int
transferDelay(const Item &item)
{
    if (item.is_data)
        return 0;
    if (item.inst.branch)
        return item.inst.branch->cond == isa::Cond::NEVER
            ? 0 : isa::kBranchDelay;
    if (item.inst.jump)
        return isa::jumpDelay(item.inst.jump->kind);
    return 0;
}

/** True when the block containing this item may be left early by an
 *  exception redirect (TRAP) or may re-enter another stream (RFE). */
bool
breaksUniformity(const Item &item)
{
    if (item.is_data || !item.inst.special)
        return false;
    return item.inst.special->op == isa::SpecialOp::TRAP ||
           item.inst.special->op == isa::SpecialOp::RFE;
}

/**
 * True when item i starts a new block: data boundaries, labels,
 * unknown predecessors, and any edge shape other than "the single
 * fall-through from the single previous word". Within a block every
 * consecutive pair is then connected by exactly that edge, which is
 * what makes per-entry cost == word count exact.
 */
bool
isLeader(const Cfg &cfg, size_t i)
{
    const Unit &unit = *cfg.unit;
    if (unit.items[i].is_data)
        return false; // data is outside every block
    if (i == 0 || unit.items[i - 1].is_data)
        return true;
    if (!unit.items[i].labels.empty() || cfg.nodes[i].unknown_pred)
        return true;
    const CfgNode &prev = cfg.nodes[i - 1];
    if (prev.unknown_succ || prev.succs.size() != 1 ||
        prev.succs[0] != i)
        return true;
    const CfgNode &node = cfg.nodes[i];
    return node.preds.size() != 1 || node.preds[0] != i - 1;
}

} // namespace

double
CostReport::nopOverhead() const
{
    return totals.words
        ? static_cast<double>(totals.nops) / totals.words : 0.0;
}

double
CostReport::fillRate() const
{
    return totals.delay_slots
        ? static_cast<double>(totals.filled_slots) / totals.delay_slots
        : 1.0;
}

double
CostReport::packedDensity() const
{
    return totals.instructions
        ? static_cast<double>(totals.packed) / totals.instructions
        : 0.0;
}

CostReport
computeCostModel(const Cfg &cfg, const CallGraph &graph,
                 const std::string &unit_name)
{
    const Unit &unit = *cfg.unit;
    size_t n = unit.items.size();
    CostReport report;
    report.unit = unit_name;

    // Blocks: maximal straight-line runs.
    for (size_t i = 0; i < n; ++i) {
        if (!isLeader(cfg, i))
            continue;
        BlockCost block;
        block.first = i;
        block.pc = unit.origin + static_cast<uint32_t>(i);
        block.function = graph.function_of[i];
        size_t j = i;
        do {
            const Item &item = unit.items[j];
            ++block.count;
            if (item.inst.isNop())
                ++block.nops;
            else
                ++block.instructions;
            if (item.inst.alu && item.inst.mem)
                ++block.packed;
            if (item.inst.jump &&
                isa::jumpIsTable(item.inst.jump->kind))
                ++block.dispatches;
            int delay = transferDelay(item);
            for (int d = 1; d <= delay && j + d < n; ++d) {
                ++block.delay_slots;
                if (!unit.items[j + d].inst.isNop())
                    ++block.filled_slots;
            }
            if (breaksUniformity(item))
                block.straight_line = false;
            ++j;
        } while (j < n && !unit.items[j].is_data && !isLeader(cfg, j));
        report.blocks.push_back(block);
    }

    // Per-function sums.
    report.functions.resize(graph.functions.size());
    for (size_t f = 0; f < graph.functions.size(); ++f) {
        FunctionCost &fc = report.functions[f];
        fc.function = f;
        fc.name = graph.functions[f].name;
        fc.recursive = graph.functions[f].recursive;
    }
    for (const BlockCost &b : report.blocks) {
        report.totals.words += b.count;
        report.totals.instructions += b.instructions;
        report.totals.nops += b.nops;
        report.totals.packed += b.packed;
        report.totals.delay_slots += b.delay_slots;
        report.totals.filled_slots += b.filled_slots;
        report.totals.dispatches += b.dispatches;
        if (b.dispatches)
            report.totals.dispatch_words += b.count;
        if (b.function == kNoFunc)
            continue;
        FunctionCost &fc = report.functions[b.function];
        ++fc.blocks;
        fc.words += b.count;
        fc.instructions += b.instructions;
        fc.nops += b.nops;
        fc.packed += b.packed;
        fc.delay_slots += b.delay_slots;
        fc.filled_slots += b.filled_slots;
        fc.dispatches += b.dispatches;
    }

    // Call-graph rollup, callee-first. Tarjan assigned SCC ids in
    // callee-first pop order, so ascending SCC id is a topological
    // order of the condensation with callees before callers.
    std::vector<size_t> order(report.functions.size());
    for (size_t f = 0; f < order.size(); ++f)
        order[f] = f;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        return graph.functions[a].scc < graph.functions[b].scc;
    });
    for (size_t f : order) {
        FunctionCost &fc = report.functions[f];
        fc.rollup_words = fc.words;
        if (fc.recursive)
            continue; // the cycle cannot be priced; body only
        for (size_t si : graph.functions[f].sites) {
            const CallSite &s = graph.sites[si];
            if (!s.resolved()) {
                ++fc.unresolved_calls;
                continue;
            }
            if (graph.functions[s.callee].scc ==
                graph.functions[f].scc)
                continue; // same SCC: already counted as recursion
            fc.rollup_words = satAdd(
                fc.rollup_words,
                report.functions[s.callee].rollup_words);
        }
    }
    return report;
}

CostParity
checkCostParity(const CostReport &report,
                const std::vector<uint64_t> &exec_counts,
                double tolerance)
{
    CostParity parity;
    obs::CostMetrics &metrics = obs::costMetrics();
    for (const BlockCost &b : report.blocks) {
        if (b.first + b.count > exec_counts.size()) {
            ++parity.violations;
            parity.notes.push_back(support::strprintf(
                "block @%u: %zu words but only %zu dynamic counts",
                b.pc, b.count, exec_counts.size()));
            continue;
        }
        ++parity.checked;
        uint64_t entries = exec_counts[b.first];
        if (b.straight_line) {
            bool ok = true;
            for (size_t k = 0; k < b.count && ok; ++k) {
                if (exec_counts[b.first + k] != entries) {
                    ok = false;
                    parity.notes.push_back(support::strprintf(
                        "block @%u: word %u executed %llu times, "
                        "but the block was entered %llu times",
                        b.pc, b.pc + static_cast<uint32_t>(k),
                        static_cast<unsigned long long>(
                            exec_counts[b.first + k]),
                        static_cast<unsigned long long>(entries)));
                }
            }
            if (ok)
                ++parity.exact;
            else
                ++parity.violations;
        } else {
            uint64_t expect = entries * b.count;
            uint64_t actual = 0;
            for (size_t k = 0; k < b.count; ++k)
                actual += exec_counts[b.first + k];
            double bound =
                tolerance * std::max<double>(
                                1.0, static_cast<double>(expect));
            double diff = actual >= expect
                ? static_cast<double>(actual - expect)
                : static_cast<double>(expect - actual);
            if (diff <= bound) {
                ++parity.bounded;
            } else {
                ++parity.violations;
                parity.notes.push_back(support::strprintf(
                    "block @%u (TRAP/RFE): %llu dynamic cycles vs "
                    "%llu expected, outside tolerance %.3f",
                    b.pc, static_cast<unsigned long long>(actual),
                    static_cast<unsigned long long>(expect),
                    tolerance));
            }
        }
    }
    metrics.parity_checks->add(parity.checked);
    metrics.parity_violations->add(parity.violations);
    return parity;
}

std::string
costText(const CostReport &report)
{
    std::string out = support::strprintf(
        "%s: static cycle-cost model\n", report.unit.c_str());
    out += "  function              blocks  words  instr   nops"
           " packed  slots filled  rollup\n";
    for (const FunctionCost &f : report.functions) {
        std::string name = f.name;
        if (f.recursive)
            name += " (rec)";
        if (f.unresolved_calls)
            name += support::strprintf(" (+%zu?)", f.unresolved_calls);
        out += support::strprintf(
            "  %-21s %6zu %6llu %6llu %6llu %6llu %6llu %6llu %7llu\n",
            name.c_str(), f.blocks,
            static_cast<unsigned long long>(f.words),
            static_cast<unsigned long long>(f.instructions),
            static_cast<unsigned long long>(f.nops),
            static_cast<unsigned long long>(f.packed),
            static_cast<unsigned long long>(f.delay_slots),
            static_cast<unsigned long long>(f.filled_slots),
            static_cast<unsigned long long>(f.rollup_words));
    }
    out += support::strprintf(
        "  totals: %llu words, %llu instructions, %llu interlock "
        "nops (%.1f%%), packed density %.1f%%, delay-slot fill "
        "%llu/%llu (%.1f%%)\n",
        static_cast<unsigned long long>(report.totals.words),
        static_cast<unsigned long long>(report.totals.instructions),
        static_cast<unsigned long long>(report.totals.nops),
        100.0 * report.nopOverhead(),
        100.0 * report.packedDensity(),
        static_cast<unsigned long long>(report.totals.filled_slots),
        static_cast<unsigned long long>(report.totals.delay_slots),
        100.0 * report.fillRate());
    if (report.totals.dispatches) {
        out += support::strprintf(
            "  table dispatch: %llu jtab word(s), %llu word(s) in "
            "dispatch blocks\n",
            static_cast<unsigned long long>(report.totals.dispatches),
            static_cast<unsigned long long>(
                report.totals.dispatch_words));
    }
    return out;
}

std::string
costJson(const CostReport &report, const CostParity *parity)
{
    std::string out = "{\n  \"schema\": 1,\n";
    out += support::strprintf("  \"unit\": \"%s\",\n",
                              report.unit.c_str());
    out += support::strprintf(
        "  \"totals\": {\"words\": %llu, \"instructions\": %llu, "
        "\"nops\": %llu, \"packed\": %llu, \"delay_slots\": %llu, "
        "\"filled_slots\": %llu, \"dispatches\": %llu, "
        "\"dispatch_words\": %llu},\n",
        static_cast<unsigned long long>(report.totals.words),
        static_cast<unsigned long long>(report.totals.instructions),
        static_cast<unsigned long long>(report.totals.nops),
        static_cast<unsigned long long>(report.totals.packed),
        static_cast<unsigned long long>(report.totals.delay_slots),
        static_cast<unsigned long long>(report.totals.filled_slots),
        static_cast<unsigned long long>(report.totals.dispatches),
        static_cast<unsigned long long>(report.totals.dispatch_words));
    out += support::strprintf(
        "  \"nop_overhead\": %.4f, \"packed_density\": %.4f, "
        "\"fill_rate\": %.4f,\n",
        report.nopOverhead(), report.packedDensity(),
        report.fillRate());
    out += "  \"functions\": [";
    for (size_t i = 0; i < report.functions.size(); ++i) {
        const FunctionCost &f = report.functions[i];
        out += i ? ",\n    " : "\n    ";
        out += support::strprintf(
            "{\"name\": \"%s\", \"blocks\": %zu, \"words\": %llu, "
            "\"instructions\": %llu, \"nops\": %llu, "
            "\"packed\": %llu, \"delay_slots\": %llu, "
            "\"filled_slots\": %llu, \"dispatches\": %llu, "
            "\"rollup_words\": %llu, "
            "\"unresolved_calls\": %zu, \"recursive\": %s}",
            f.name.c_str(), f.blocks,
            static_cast<unsigned long long>(f.words),
            static_cast<unsigned long long>(f.instructions),
            static_cast<unsigned long long>(f.nops),
            static_cast<unsigned long long>(f.packed),
            static_cast<unsigned long long>(f.delay_slots),
            static_cast<unsigned long long>(f.filled_slots),
            static_cast<unsigned long long>(f.dispatches),
            static_cast<unsigned long long>(f.rollup_words),
            f.unresolved_calls, f.recursive ? "true" : "false");
    }
    out += report.functions.empty() ? "],\n" : "\n  ],\n";
    out += "  \"blocks\": [";
    for (size_t i = 0; i < report.blocks.size(); ++i) {
        const BlockCost &b = report.blocks[i];
        out += i ? ",\n    " : "\n    ";
        out += support::strprintf(
            "{\"pc\": %u, \"words\": %zu, \"instructions\": %llu, "
            "\"nops\": %llu, \"packed\": %llu, \"delay_slots\": %llu, "
            "\"filled_slots\": %llu, \"dispatches\": %llu, "
            "\"straight_line\": %s}",
            b.pc, b.count,
            static_cast<unsigned long long>(b.instructions),
            static_cast<unsigned long long>(b.nops),
            static_cast<unsigned long long>(b.packed),
            static_cast<unsigned long long>(b.delay_slots),
            static_cast<unsigned long long>(b.filled_slots),
            static_cast<unsigned long long>(b.dispatches),
            b.straight_line ? "true" : "false");
    }
    out += report.blocks.empty() ? "]" : "\n  ]";
    if (parity) {
        out += support::strprintf(
            ",\n  \"parity\": {\"checked\": %zu, \"exact\": %zu, "
            "\"bounded\": %zu, \"violations\": %zu, \"notes\": [",
            parity->checked, parity->exact, parity->bounded,
            parity->violations);
        for (size_t i = 0; i < parity->notes.size(); ++i) {
            out += i ? ", " : "";
            std::string escaped;
            for (char c : parity->notes[i]) {
                if (c == '"' || c == '\\')
                    escaped += '\\';
                escaped += c;
            }
            out += "\"" + escaped + "\"";
        }
        out += "]}";
    }
    out += "\n}\n";
    return out;
}

void
publishCostMetrics(const CostReport &report)
{
    obs::CostMetrics &metrics = obs::costMetrics();
    metrics.reports->add(1);
    metrics.functions->add(report.functions.size());
    metrics.blocks->add(report.blocks.size());
    metrics.static_cycles->add(report.totals.words);
    metrics.interlock_nops->add(report.totals.nops);
    metrics.dispatches->add(report.totals.dispatches);
    metrics.dispatch_words->add(report.totals.dispatch_words);
}

} // namespace mips::verify
