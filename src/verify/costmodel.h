/**
 * @file
 * Static cycle-cost model, validated against the simulator.
 *
 * The machine issues exactly one instruction word per cycle (the
 * paper's software-interlock design: nops and delay slots are real
 * words, so schedule quality is *visible* in the static code). The
 * cost model exploits that: it partitions a unit into maximal
 * straight-line blocks — runs of words where every word executes
 * exactly as often as the block is entered — and prices one entry of
 * a block at exactly its word count. Per-block static quality
 * metrics (base instructions, software-interlock nops, delay-slot
 * fill, packed-piece density) roll up per function and via the call
 * graph (callee costs folded into callers, recursion flagged).
 *
 * The model is an *oracle*, not an estimate: checkCostParity()
 * compares every straight-line block's static cost against the
 * simulator's dynamic per-word execution counts and demands exact
 * agreement (blocks containing TRAP/RFE may diverge within a
 * declared tolerance — an exception may leave the block early).
 * scripts/check.sh gates the whole corpus on it.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/interproc.h"

namespace mips::verify {

/** Static cost of one maximal straight-line block. */
struct BlockCost
{
    size_t first = 0;          ///< first item of the block
    size_t count = 0;          ///< words; static cycles per entry
    uint32_t pc = 0;           ///< address of `first`
    size_t function = kNoFunc; ///< owning function id
    uint64_t instructions = 0; ///< non-nop words
    uint64_t nops = 0;         ///< software-interlock nop words
    uint64_t packed = 0;       ///< words with both ALU and mem pieces
    uint64_t delay_slots = 0;  ///< delay-slot words after transfers
    uint64_t filled_slots = 0; ///< delay slots holding real work
    uint64_t dispatches = 0;   ///< table-dispatch (jtab) words
    /** Exact parity expected: every word executes once per entry.
     *  False when the block contains TRAP/RFE (an exception may
     *  leave the block early); such blocks are tolerance-bounded. */
    bool straight_line = true;
};

/** Static cost of one function (sum over its blocks). */
struct FunctionCost
{
    size_t function = kNoFunc;
    std::string name;
    size_t blocks = 0;
    uint64_t words = 0; ///< static cycles for one sweep of the body
    uint64_t instructions = 0;
    uint64_t nops = 0;
    uint64_t packed = 0;
    uint64_t delay_slots = 0;
    uint64_t filled_slots = 0;
    uint64_t dispatches = 0; ///< table-dispatch (jtab) words
    /** Call-graph rollup: own words plus every resolved call site's
     *  callee rollup (a static lower bound; saturating). Recursive
     *  functions contribute their own body only. */
    uint64_t rollup_words = 0;
    size_t unresolved_calls = 0; ///< sites the rollup cannot price
    bool recursive = false;
};

/** Unit-wide totals (data words excluded throughout). */
struct CostTotals
{
    uint64_t words = 0;
    uint64_t instructions = 0;
    uint64_t nops = 0;
    uint64_t packed = 0;
    uint64_t delay_slots = 0;
    uint64_t filled_slots = 0;
    uint64_t dispatches = 0;     ///< table-dispatch (jtab) words
    uint64_t dispatch_words = 0; ///< words in blocks with a dispatch
};

/** The full report for one unit. */
struct CostReport
{
    std::string unit;
    std::vector<BlockCost> blocks;
    std::vector<FunctionCost> functions;
    CostTotals totals;

    /** Fraction of words that are software-interlock nops. */
    double nopOverhead() const;
    /** Fraction of delay slots holding real work (1.0 when none). */
    double fillRate() const;
    /** Fraction of non-nop words carrying packed ALU+mem pieces. */
    double packedDensity() const;
};

/** Compute the model over a built CFG + call graph. */
CostReport computeCostModel(const Cfg &cfg, const CallGraph &graph,
                            const std::string &unit_name);

/** Result of a static-vs-dynamic comparison sweep. */
struct CostParity
{
    size_t checked = 0;    ///< blocks compared (entered or not)
    size_t exact = 0;      ///< straight-line blocks, exact agreement
    size_t bounded = 0;    ///< tolerance blocks within the bound
    size_t violations = 0; ///< blocks where the model was wrong
    std::vector<std::string> notes; ///< one line per violation
};

/**
 * Compare the model against dynamic per-word execution counts
 * (exec_counts[i] = times item i issued; from Cpu profiling). A
 * straight-line block must agree exactly: every word's count equals
 * the block's entry count. A TRAP/RFE block's total issue count must
 * stay within `tolerance` (relative) of entries x words.
 */
CostParity checkCostParity(const CostReport &report,
                           const std::vector<uint64_t> &exec_counts,
                           double tolerance);

/** Human rendering: per-function table plus unit totals. */
std::string costText(const CostReport &report);

/**
 * Machine rendering (`"schema": 1`): unit name, totals, derived
 * rates, per-function and per-block arrays; when `parity` is
 * non-null, a `parity` object with the sweep counters and notes.
 */
std::string costJson(const CostReport &report,
                     const CostParity *parity = nullptr);

/** Publish verify.cost.* report counters for one computed report. */
void publishCostMetrics(const CostReport &report);

} // namespace mips::verify
