#include "verify/dataflow.h"

#include "isa/instruction.h"
#include "support/logging.h"

namespace mips::verify {

namespace {

/** All GPRs except the hardwired-zero register. */
constexpr uint16_t kAllRegs = 0xfffe;

inline uint16_t
meetOp(Meet meet, uint16_t a, uint16_t b)
{
    return meet == Meet::UNION ? static_cast<uint16_t>(a | b)
                               : static_cast<uint16_t>(a & b);
}

/** Identity of the meet: folding it in changes nothing. */
inline uint16_t
meetIdentity(Meet meet)
{
    return meet == Meet::UNION ? 0 : 0xffff;
}

} // namespace

DataflowSolution
solve(const Cfg &cfg, const DataflowProblem &problem)
{
    size_t n = cfg.size();
    if (problem.gen.size() != n || problem.kill.size() != n) {
        support::panic("dataflow: gen/kill size %zu/%zu != cfg size %zu",
                       problem.gen.size(), problem.kill.size(), n);
    }
    DataflowSolution sol;
    uint16_t init = meetIdentity(problem.meet);
    sol.in.assign(n, init);
    sol.out.assign(n, init);

    bool forward = problem.direction == Direction::FORWARD;
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t k = 0; k < n; ++k) {
            size_t i = forward ? k : n - 1 - k;
            const CfgNode &node = cfg.nodes[i];
            uint16_t edge = meetIdentity(problem.meet);
            if (forward) {
                for (size_t p : node.preds)
                    edge = meetOp(problem.meet, edge, sol.out[p]);
                if (node.unknown_pred) {
                    edge = meetOp(problem.meet, edge,
                                  i == 0 ? problem.entry
                                         : problem.boundary);
                }
            } else {
                for (size_t s : node.succs)
                    edge = meetOp(problem.meet, edge, sol.in[s]);
                if (node.unknown_succ)
                    edge = meetOp(problem.meet, edge, problem.boundary);
            }
            uint16_t before = static_cast<uint16_t>(
                (edge & ~problem.kill[i]) | problem.gen[i]);
            uint16_t *edge_slot = forward ? &sol.in[i] : &sol.out[i];
            uint16_t *xfer_slot = forward ? &sol.out[i] : &sol.in[i];
            if (*edge_slot != edge || *xfer_slot != before) {
                *edge_slot = edge;
                *xfer_slot = before;
                changed = true;
            }
        }
    }
    return sol;
}

DataflowSolution
liveness(const Cfg &cfg)
{
    DataflowProblem p;
    p.direction = Direction::BACKWARD;
    p.meet = Meet::UNION;
    p.boundary = kAllRegs; // unknown code may read anything
    size_t n = cfg.size();
    p.gen.assign(n, 0);
    p.kill.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        const assembler::Item &item = cfg.unit->items[i];
        if (item.is_data)
            continue;
        isa::RegUse use = isa::regUse(item.inst);
        p.gen[i] = use.gpr_reads;
        p.kill[i] = use.gpr_writes;
    }
    return solve(cfg, p);
}

DataflowSolution
definiteAssignment(const Cfg &cfg, uint16_t assumed)
{
    DataflowProblem p;
    p.direction = Direction::FORWARD;
    p.meet = Meet::INTERSECT;
    p.boundary = 0xffff; // unknown callers may have set up anything
    p.entry = assumed | 1; // r0 always reads as a defined zero
    size_t n = cfg.size();
    p.gen.assign(n, 0);
    p.kill.assign(n, 0);
    for (size_t i = 0; i < n; ++i) {
        const assembler::Item &item = cfg.unit->items[i];
        if (item.is_data)
            continue;
        p.gen[i] = isa::regUse(item.inst).gpr_writes;
    }
    return solve(cfg, p);
}

} // namespace mips::verify
