/**
 * @file
 * A small reusable dataflow framework over the execution CFG.
 *
 * Problems are expressed per item as gen/kill masks over the 16 GPRs
 * (bit r set = fact holds for register r) plus a direction and a meet
 * operator; solve() runs a worklist to the fixpoint. Edges the CFG
 * could not follow (`unknown_succ` / `unknown_pred`) contribute the
 * problem's `boundary` value, which keeps every instantiation
 * conservative by construction.
 *
 * Two standard instantiations are provided:
 *
 *  - liveness() — backward, meet = union, boundary = all registers
 *    (anything may be read by unknown code);
 *  - definiteAssignment() — forward, meet = intersection (a register
 *    is only *definitely* written if it is written on every path),
 *    boundary = all registers (unknown callers are assumed to have
 *    set up anything).
 */
#pragma once

#include <cstdint>
#include <vector>

#include "verify/cfg.h"

namespace mips::verify {

/** Which way facts propagate. */
enum class Direction : uint8_t
{
    FORWARD,  ///< facts flow from predecessors
    BACKWARD, ///< facts flow from successors
};

/** How facts from multiple edges combine. */
enum class Meet : uint8_t
{
    UNION,     ///< may-analysis
    INTERSECT, ///< must-analysis
};

/** One dataflow problem over 16-bit register masks. */
struct DataflowProblem
{
    Direction direction = Direction::BACKWARD;
    Meet meet = Meet::UNION;
    /** Contribution of edges from/to statically unknown code. */
    uint16_t boundary = 0;
    /** Value at the unit entry (forward) — item 0's external edge. */
    uint16_t entry = 0;
    /** Per-item transfer: out = (in & ~kill) | gen. */
    std::vector<uint16_t> gen;
    std::vector<uint16_t> kill;
};

/** Fixpoint solution: one (in, out) mask pair per item. For backward
 *  problems `in` is the fact *before* the item in execution order and
 *  `out` the fact after it, same as forward. */
struct DataflowSolution
{
    std::vector<uint16_t> in;
    std::vector<uint16_t> out;
};

/** Run the worklist to the fixpoint. gen/kill must match cfg.size(). */
DataflowSolution solve(const Cfg &cfg, const DataflowProblem &problem);

/** GPR liveness: in[i] = registers whose value may still be read
 *  at item i; out[i] = after item i executes. */
DataflowSolution liveness(const Cfg &cfg);

/** Definite assignment: in[i] = registers written on *every* path
 *  reaching item i. `assumed` seeds the unit entry (r0 plus any
 *  ABI registers the caller guarantees). */
DataflowSolution definiteAssignment(const Cfg &cfg, uint16_t assumed);

} // namespace mips::verify
