#include "verify/diagnostics.h"

#include <algorithm>

#include "isa/disasm.h"
#include "support/logging.h"
#include "support/strings.h"

namespace mips::verify {

const char *
codeName(Code code)
{
    switch (code) {
      case Code::HZ001: return "HZ001";
      case Code::HZ002: return "HZ002";
      case Code::HZ003: return "HZ003";
      case Code::HZ004: return "HZ004";
      case Code::HZ005: return "HZ005";
      case Code::HZ006: return "HZ006";
      case Code::LT001: return "LT001";
      case Code::LT002: return "LT002";
      case Code::LT003: return "LT003";
      case Code::VF001: return "VF001";
      case Code::VF002: return "VF002";
      case Code::TV001: return "TV001";
      case Code::TV002: return "TV002";
      case Code::TV003: return "TV003";
      case Code::TV004: return "TV004";
      case Code::TV005: return "TV005";
      case Code::TV006: return "TV006";
      case Code::TV090: return "TV-UNKNOWN";
      case Code::CC001: return "CC001";
      case Code::CC002: return "CC002";
      case Code::CC003: return "CC003";
      case Code::CC004: return "CC004";
      case Code::LT004: return "LT004";
      case Code::MS001: return "MS001";
      case Code::MS002: return "MS002";
      case Code::MS003: return "MS003";
      case Code::MS004: return "MS004";
      case Code::MS005: return "MS005";
      case Code::MS006: return "MS006";
      case Code::VF003: return "VF003";
      case Code::VF004: return "VF004";
      case Code::HZ007: return "HZ007";
      case Code::MS007: return "MS007";
      case Code::TV007: return "TV007";
      case Code::TV008: return "TV008";
    }
    support::panic("codeName: bad code %d", static_cast<int>(code));
}

const char *
codeDescription(Code code)
{
    switch (code) {
      case Code::HZ001:
        return "an instruction reads a register in the delay slot of "
               "the load that writes it (the pipeline has no interlock: "
               "it reads the stale value)";
      case Code::HZ002:
        return "a control transfer sits in the delay slot of a branch "
               "or direct jump (architecturally undefined when the "
               "outer transfer is taken)";
      case Code::HZ003:
        return "a control transfer sits in the two-slot delay shadow "
               "of an indirect jump (architecturally undefined)";
      case Code::HZ004:
        return "the ALU and memory pieces packed into one word depend "
               "on each other; packed pieces execute simultaneously "
               "and must be independent";
      case Code::HZ005:
        return "a .noreorder region was altered by the reorganizer "
               "(pseudo-op contract: such sequences pass through "
               "verbatim)";
      case Code::HZ006:
        return "a load's delay slot falls into statically unknown code "
               "(end of unit, call target, or indirect-jump target); "
               "the consumer cannot be checked";
      case Code::LT001:
        return "a register is read on a path where no instruction has "
               "written it";
      case Code::LT002:
        return "a computed result is overwritten or dropped on every "
               "path before any instruction reads it";
      case Code::LT003:
        return "instructions that no execution path reaches";
      case Code::VF001:
        return "the instruction word violates the encoding rules";
      case Code::VF002:
        return "a label operand names no label defined in the unit";
      case Code::TV001:
        return "symbolic execution proves the reorganized unit leaves "
               "different values in the general registers than the "
               "legal input unit at a paired region exit";
      case Code::TV002:
        return "symbolic execution proves the reorganized unit's "
               "memory state (ordered store log modulo provably "
               "disjoint reordering) diverges from the legal input "
               "unit at a paired region exit";
      case Code::TV003:
        return "a paired region exit transfers control to a different "
               "target (or a different kind of exit) than the legal "
               "input unit";
      case Code::TV004:
        return "a paired conditional exit branches on a provably "
               "different condition than the legal input unit";
      case Code::TV005:
        return "the validator cannot pair regions of the input and "
               "output units (missing label, mismatched fenced-region "
               "structure, or mismatched exit counts)";
      case Code::TV006:
        return "symbolic execution proves the LO special register or "
               "the ordered system-state effect log diverges at a "
               "paired region exit";
      case Code::TV090:
        return "translation validation was inconclusive for a region "
               "(expression budget exhausted or an unsupported "
               "construct); the region is NOT proven equivalent";
      case Code::CC001:
        return "a function returns while a register the configured "
               "calling convention declares callee-saved may still "
               "hold a value the function wrote (clobbered without a "
               "matching restore load)";
      case Code::CC002:
        return "a function overwrites the link register after entry "
               "(a nested call or an explicit write) and reaches an "
               "indirect return through it without restoring the saved "
               "return address first";
      case Code::CC003:
        return "a function provably returns with a non-zero net stack-"
               "pointer adjustment, or paths with provably different "
               "adjustments join at a call or return (frames must "
               "balance across every call edge)";
      case Code::CC004:
        return "a call target reads an argument register on entry, "
               "but no definition of that register reaches the call "
               "site in the caller";
      case Code::LT004:
        return "a function (or labeled region that is never fallen "
               "into) is unreachable through the whole-program call "
               "graph: never called, never branched to, and its "
               "address is never taken";
      case Code::MS001:
        return "the value-range analysis proves (error/MUST) or cannot "
               "exclude on a narrowed range (warning/MAY) that a load "
               "or store's effective word address lies outside physical "
               "memory [0, mem_words)";
      case Code::MS002:
        return "a base-shifted word access discards provably non-zero "
               "low bits of its byte index: the hardware silently reads "
               "the containing word, so a word-sized object accessed "
               "through an unaligned byte pointer is truncated";
      case Code::MS003:
        return "with memory mapping enabled, a reference's system-"
               "virtual address falls in the gap between the two valid "
               "segments (the hardware raises ADDRESS_ERROR)";
      case Code::MS004:
        return "an ADD/SUB/RSUB provably (error/MUST) or possibly on a "
               "narrowed range (warning/MAY) overflows signed 32-bit "
               "arithmetic while overflow traps are enabled";
      case Code::MS005:
        return "the worst-case stack depth, rolled up over the call "
               "graph, exceeds the configured --stack-budget (recursive "
               "call-graph cycles make the depth unbounded)";
      case Code::MS006:
        return "every execution path from the unit entry to an exit "
               "passes through an instruction that must fault: the "
               "program cannot complete without taking an exception";
      case Code::VF003:
        return "a table-dispatch jump carries no table label, or its "
               "label does not start a contiguous run of relocated "
               ".word entries inside the unit (the successor set "
               "cannot be recovered statically)";
      case Code::VF004:
        return "a jump-table entry relocates to an address outside the "
               "unit's code (or onto a data word): dispatching through "
               "it executes an unpredictable decode";
      case Code::HZ007:
        return "a store sits in the two-slot delay shadow of a "
               "table-dispatch jump; the table fetch overlaps the "
               "shadow on the data port, so a store that may alias the "
               "table makes the fetched target undefined";
      case Code::MS007:
        return "the value-range analysis proves (error/MUST) or cannot "
               "exclude on a narrowed range (warning/MAY) that a "
               "table-dispatch fetch at base + index reads outside the "
               "jump table named by the instruction";
      case Code::TV007:
        return "symbolic execution proves a paired table-dispatch exit "
               "fetches its target from a different address (or a "
               "different table) than the legal input unit";
      case Code::TV008:
        return "the jump tables named by a paired table-dispatch exit "
               "resolve to different entry-label sequences, so some "
               "case arm dispatches to a different target";
    }
    support::panic("codeDescription: bad code %d",
                   static_cast<int>(code));
}

const char *
severityName(Severity severity)
{
    switch (severity) {
      case Severity::NOTE: return "note";
      case Severity::WARNING: return "warning";
      case Severity::ERROR: return "error";
    }
    support::panic("severityName: bad severity %d",
                   static_cast<int>(severity));
}

void
DiagnosticEngine::report(Code code, Severity severity, size_t item_index,
                         std::string message)
{
    Diagnostic d;
    d.code = code;
    d.severity = severity;
    d.item_index = item_index;
    if (unit_ && item_index != kNoItem &&
        item_index < unit_->items.size()) {
        d.pc = unit_->origin + static_cast<uint32_t>(item_index);
        d.source_line = unit_->items[item_index].source_line;
    }
    d.message = std::move(message);
    ++counts_[static_cast<int>(severity)];
    diags_.push_back(std::move(d));
}

void
DiagnosticEngine::sort()
{
    std::stable_sort(diags_.begin(), diags_.end(),
                     [](const Diagnostic &a, const Diagnostic &b) {
                         if (a.item_index != b.item_index)
                             return a.item_index < b.item_index;
                         return static_cast<int>(a.code) <
                                static_cast<int>(b.code);
                     });
}

std::string
renderText(const std::vector<Diagnostic> &diags,
           const assembler::Unit *unit, const std::string &name)
{
    std::string out;
    for (const Diagnostic &d : diags) {
        std::string loc = name;
        if (d.item_index != kNoItem) {
            loc += support::strprintf(":%u", d.pc);
            if (d.source_line > 0)
                loc += support::strprintf(" (line %d)", d.source_line);
        }
        out += support::strprintf("%s: %s: %s: %s", loc.c_str(),
                                  severityName(d.severity),
                                  codeName(d.code), d.message.c_str());
        if (unit && d.item_index != kNoItem &&
            d.item_index < unit->items.size()) {
            const assembler::Item &item = unit->items[d.item_index];
            if (item.is_data) {
                out += support::strprintf("  [.word %u]",
                                          item.data_value);
            } else {
                out += "  [" + isa::disasm(item.inst, d.pc) + "]";
            }
        }
        out += "\n";
    }
    return out;
}

namespace {

/** Minimal JSON string escaping (quotes, backslash, control chars). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += support::strprintf("\\u%04x", c);
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

} // namespace

std::string
renderJson(const std::vector<Diagnostic> &diags, const std::string &name,
           double elapsed_ms)
{
    size_t errors = 0, warnings = 0, notes = 0;
    size_t per_code[kNumCodes] = {};
    for (const Diagnostic &d : diags) {
        switch (d.severity) {
          case Severity::ERROR: ++errors; break;
          case Severity::WARNING: ++warnings; break;
          case Severity::NOTE: ++notes; break;
        }
        ++per_code[static_cast<int>(d.code)];
    }
    std::string out = "{\n";
    out += "  \"schema\": 1,\n";
    out += support::strprintf("  \"unit\": \"%s\",\n",
                              jsonEscape(name).c_str());
    if (elapsed_ms >= 0.0)
        out += support::strprintf("  \"elapsed_ms\": %.3f,\n", elapsed_ms);
    out += support::strprintf(
        "  \"errors\": %zu,\n  \"warnings\": %zu,\n  \"notes\": %zu,\n",
        errors, warnings, notes);
    out += "  \"summary\": {";
    bool first_code = true;
    for (int c = 0; c < kNumCodes; ++c) {
        if (!per_code[c])
            continue;
        out += support::strprintf("%s\"%s\": %zu",
                                  first_code ? "" : ", ",
                                  codeName(static_cast<Code>(c)),
                                  per_code[c]);
        first_code = false;
    }
    out += "},\n";
    out += "  \"diagnostics\": [";
    for (size_t i = 0; i < diags.size(); ++i) {
        const Diagnostic &d = diags[i];
        out += (i ? ",\n    " : "\n    ");
        out += support::strprintf(
            "{\"code\": \"%s\", \"severity\": \"%s\", ",
            codeName(d.code), severityName(d.severity));
        if (d.item_index == kNoItem) {
            out += "\"pc\": null, \"item\": null, ";
        } else {
            out += support::strprintf("\"pc\": %u, \"item\": %zu, ",
                                      d.pc, d.item_index);
        }
        out += support::strprintf(
            "\"source_line\": %d, \"message\": \"%s\"}", d.source_line,
            jsonEscape(d.message).c_str());
    }
    out += diags.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

} // namespace mips::verify
