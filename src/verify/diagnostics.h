/**
 * @file
 * Structured diagnostics for the static verifier.
 *
 * Every finding carries a stable code (HZ* for hazard-contract
 * violations, LT* for lint findings, VF* for structural problems,
 * CC* for calling-convention violations, MS* for memory-safety
 * findings from the value-range analysis), a
 * severity, and a location (item index / word address / source line),
 * so that tools can filter and tests can assert on exact findings.
 * Rendering is split from collection: the engine accumulates plain
 * data, and renderText()/renderJson() produce the human and
 * machine-readable forms.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "asm/unit.h"

namespace mips::verify {

/** Diagnostic severity, ordered from least to most serious. */
enum class Severity : uint8_t
{
    NOTE = 0,    ///< well-defined but worth a look (e.g. .noreorder
                 ///< code that deliberately reads a stale value)
    WARNING = 1, ///< suspicious or unprovable; execution is defined
    ERROR = 2,   ///< violates the software-interlock contract
};

/** Stable diagnostic codes. Codes are append-only: never renumber. */
enum class Code : uint8_t
{
    HZ001 = 0, ///< load-delay violation: stale register read
    HZ002,     ///< control transfer in a branch/direct-jump delay slot
    HZ003,     ///< control transfer in an indirect-jump delay shadow
    HZ004,     ///< dependent pieces packed into one word
    HZ005,     ///< .noreorder region altered by the reorganizer
    HZ006,     ///< load delay escapes into statically unknown code
    LT001,     ///< read of a possibly uninitialized register
    LT002,     ///< dead store: result never readable
    LT003,     ///< unreachable code
    VF001,     ///< invalid instruction word
    VF002,     ///< undefined label operand
    TV001,     ///< translation validation: register state divergence
    TV002,     ///< translation validation: memory store-log divergence
    TV003,     ///< translation validation: exit kind/target divergence
    TV004,     ///< translation validation: exit condition divergence
    TV005,     ///< translation validation: region pairing failure
    TV006,     ///< translation validation: LO/system-state divergence
    TV090,     ///< translation validation inconclusive (TV-UNKNOWN)
    CC001,     ///< clobbered callee-saved register at a return
    CC002,     ///< return-address overwrite before use
    CC003,     ///< mismatched stack adjustment across call edges
    CC004,     ///< argument register read without reaching definition
    LT004,     ///< interprocedurally-dead function
    MS001,     ///< out-of-bounds load/store (outside physical memory)
    MS002,     ///< misaligned word access via byte-pointer arithmetic
    MS003,     ///< reference into the unmapped segmentation gap
    MS004,     ///< provable signed overflow with traps enabled
    MS005,     ///< worst-case stack depth exceeds the budget
    MS006,     ///< a fault lies on every path to exit
    VF003,     ///< table-dispatch jump without a well-formed table
    VF004,     ///< jump-table entry resolves outside the unit's code
    HZ007,     ///< store in the delay shadow of a table-dispatch jump
    MS007,     ///< table-dispatch fetch may read outside its table
    TV007,     ///< translation validation: table dispatch divergence
    TV008,     ///< translation validation: table entry divergence
};

/** Number of distinct diagnostic codes. */
constexpr int kNumCodes = static_cast<int>(Code::TV008) + 1;

/** Stable textual name of a code, e.g. "HZ001". */
const char *codeName(Code code);

/** One-line contract description of a code (for --explain output). */
const char *codeDescription(Code code);

/** Severity name, e.g. "error". */
const char *severityName(Severity severity);

/** Sentinel for diagnostics not attached to a particular item. */
constexpr size_t kNoItem = static_cast<size_t>(-1);

/** One finding. */
struct Diagnostic
{
    Code code = Code::HZ001;
    Severity severity = Severity::ERROR;
    /** Index into Unit::items, or kNoItem for unit-wide findings. */
    size_t item_index = kNoItem;
    /** Word address (origin + index); 0 when item_index == kNoItem. */
    uint32_t pc = 0;
    /** 1-based source line of the item, 0 when unknown/synthesized. */
    int source_line = 0;
    std::string message;
};

/**
 * Collects diagnostics for one verification run. Reporting helpers
 * fill in the location fields from the unit being verified.
 */
class DiagnosticEngine
{
  public:
    explicit DiagnosticEngine(const assembler::Unit *unit = nullptr)
        : unit_(unit)
    {}

    /** Report a finding at `item_index` (or kNoItem). */
    void report(Code code, Severity severity, size_t item_index,
                std::string message);

    const std::vector<Diagnostic> &diagnostics() const { return diags_; }

    size_t errorCount() const { return counts_[2]; }
    size_t warningCount() const { return counts_[1]; }
    size_t noteCount() const { return counts_[0]; }

    /** Sort by (item index, code) for stable golden output. */
    void sort();

  private:
    const assembler::Unit *unit_;
    std::vector<Diagnostic> diags_;
    size_t counts_[3] = {0, 0, 0};
};

/**
 * Human rendering, one line per finding:
 *   <name>:<pc>: error: HZ001: <message>   [<listing of the word>]
 * `unit` may be null (no listing column then).
 */
std::string renderText(const std::vector<Diagnostic> &diags,
                       const assembler::Unit *unit,
                       const std::string &name);

/**
 * Machine-readable rendering: one JSON object (`"schema": 1`) with
 * the unit name, per-severity totals, a per-code `summary` count
 * block ({"HZ001": 2, ...}, codes in enum order, present codes
 * only), and a `diagnostics` array carrying code, severity, pc,
 * item index, source line, and message. When `elapsed_ms` is
 * non-negative it is included as an `elapsed_ms` field (per-unit
 * wall time, so CI can see what the gate costs).
 */
std::string renderJson(const std::vector<Diagnostic> &diags,
                       const std::string &name,
                       double elapsed_ms = -1.0);

} // namespace mips::verify
