/**
 * @file
 * The hazard-contract checks: everything the interlock-free pipeline
 * demands of its code (see verify.h for the catalogue).
 */
#include "isa/branch.h"
#include "isa/disasm.h"
#include "isa/registers.h"
#include "support/strings.h"
#include "verify/passes.h"

namespace mips::verify {

using assembler::Item;

namespace {

/** Delayed register write of an item's load piece (0 when none). */
uint16_t
loadDelayWrites(const Item &item)
{
    if (item.is_data || !item.inst.isLoad() ||
        item.inst.mem->rd == isa::kZeroReg) {
        return 0;
    }
    return static_cast<uint16_t>(1u << item.inst.mem->rd);
}

/** Render "r3" / "r3, r5" for a register mask. */
std::string
maskNames(uint16_t mask)
{
    std::string out;
    for (int r = 0; r < isa::kNumRegs; ++r) {
        if ((mask >> r) & 1) {
            if (!out.empty())
                out += ", ";
            out += isa::regName(static_cast<isa::Reg>(r));
        }
    }
    return out;
}

/** HZ001 / HZ006: every dynamically-next word of a load must not read
 *  the register whose write is still in flight. */
void
checkLoadDelays(const Cfg &cfg, DiagnosticEngine *diags)
{
    const auto &items = cfg.unit->items;
    for (size_t i = 0; i < cfg.size(); ++i) {
        uint16_t delayed = loadDelayWrites(items[i]);
        if (!delayed)
            continue;
        const CfgNode &node = cfg.nodes[i];
        for (size_t s : node.succs) {
            if (items[s].is_data)
                continue;
            uint16_t stale =
                isa::regUse(items[s].inst).gpr_reads & delayed;
            if (!stale)
                continue;
            // Inside a .noreorder region the front end owns the
            // schedule and the stale read is well defined — assume it
            // is deliberate and only note it.
            bool fenced = items[i].no_reorder && items[s].no_reorder;
            diags->report(
                Code::HZ001,
                fenced ? Severity::NOTE : Severity::ERROR, s,
                support::strprintf(
                    "reads %s in the delay slot of the load at %u "
                    "(the pipeline serves the stale value)",
                    maskNames(stale).c_str(),
                    cfg.unit->origin + static_cast<uint32_t>(i)));
        }
        if (node.unknown_succ) {
            diags->report(
                Code::HZ006, Severity::WARNING, i,
                support::strprintf(
                    "load delay of %s escapes into statically unknown "
                    "code; its first consumer cannot be verified",
                    maskNames(delayed).c_str()));
        }
    }
}

/** HZ002 / HZ003: no control transfer inside a delay shadow. */
void
checkShadows(const Cfg &cfg, DiagnosticEngine *diags)
{
    const auto &items = cfg.unit->items;
    for (size_t i = 0; i < cfg.size(); ++i) {
        const CfgNode &node = cfg.nodes[i];
        if (node.shadow == ShadowKind::NONE || items[i].is_data)
            continue;
        const isa::Instruction &inst = items[i].inst;
        bool transfers =
            (inst.branch && inst.branch->cond != isa::Cond::NEVER) ||
            inst.jump.has_value();
        if (!transfers)
            continue;
        Code code = node.shadow == ShadowKind::INDIRECT ? Code::HZ003
                                                        : Code::HZ002;
        diags->report(
            code, Severity::ERROR, i,
            support::strprintf(
                "control transfer in the delay %s of the transfer at "
                "%u (architecturally undefined when both are taken)",
                node.shadow == ShadowKind::INDIRECT ? "shadow" : "slot",
                cfg.unit->origin +
                    static_cast<uint32_t>(node.shadow_owner)));
    }
}

/** HZ007: no store inside the delay shadow of a table dispatch. The
 *  table fetch overlaps the shadow on the data port, so a store there
 *  races the fetch and the dispatched target is undefined. */
void
checkTableShadows(const Cfg &cfg, DiagnosticEngine *diags)
{
    const auto &items = cfg.unit->items;
    for (size_t i = 0; i < cfg.size(); ++i) {
        const CfgNode &node = cfg.nodes[i];
        if (node.shadow != ShadowKind::INDIRECT || items[i].is_data ||
            node.shadow_owner == kNoItem)
            continue;
        const Item &owner = items[node.shadow_owner];
        if (owner.is_data || !owner.inst.jump ||
            !isa::jumpIsTable(owner.inst.jump->kind))
            continue;
        if (!items[i].inst.isStore())
            continue;
        bool fenced = owner.no_reorder && items[i].no_reorder;
        diags->report(
            Code::HZ007, fenced ? Severity::NOTE : Severity::ERROR, i,
            support::strprintf(
                "store in the delay shadow of the table dispatch at %u "
                "races the table fetch on the data port",
                cfg.unit->origin +
                    static_cast<uint32_t>(node.shadow_owner)));
    }
}

/** HZ004: the two pieces of a packed word must be independent — they
 *  execute simultaneously, so neither sequential order is honoured
 *  for a register one piece writes and the other touches. */
void
checkPackedWords(const Cfg &cfg, DiagnosticEngine *diags)
{
    const auto &items = cfg.unit->items;
    for (size_t i = 0; i < cfg.size(); ++i) {
        const Item &item = items[i];
        if (item.is_data || !item.inst.alu || !item.inst.mem)
            continue;
        isa::RegUse alu = isa::regUseAlu(*item.inst.alu);
        isa::RegUse mem = isa::regUseMem(*item.inst.mem);
        uint16_t conflict = static_cast<uint16_t>(
            (alu.gpr_writes & (mem.gpr_reads | mem.gpr_writes)) |
            (mem.gpr_writes & (alu.gpr_reads | alu.gpr_writes)));
        if (!conflict)
            continue;
        diags->report(
            Code::HZ004,
            item.no_reorder ? Severity::NOTE : Severity::ERROR, i,
            support::strprintf(
                "packed pieces are not independent: %s is touched by "
                "both the ALU piece and the memory piece",
                maskNames(conflict).c_str()));
    }
}

} // namespace

void
checkHazards(const Cfg &cfg, DiagnosticEngine *diags)
{
    checkLoadDelays(cfg, diags);
    checkShadows(cfg, diags);
    checkTableShadows(cfg, diags);
    checkPackedWords(cfg, diags);
}

void
checkNoreorderIntegrity(const assembler::Unit &input,
                        const assembler::Unit &output,
                        DiagnosticEngine *diags)
{
    // Maximal runs of .noreorder items, in program order.
    auto extractRuns = [](const assembler::Unit &unit) {
        std::vector<std::pair<size_t, size_t>> runs; // [first, last]
        for (size_t i = 0; i < unit.items.size(); ++i) {
            if (!unit.items[i].no_reorder)
                continue;
            if (!runs.empty() && runs.back().second + 1 == i)
                runs.back().second = i;
            else
                runs.emplace_back(i, i);
        }
        return runs;
    };
    auto in_runs = extractRuns(input);
    auto out_runs = extractRuns(output);

    if (in_runs.size() != out_runs.size()) {
        diags->report(
            Code::HZ005, Severity::ERROR, kNoItem,
            support::strprintf(
                "input has %zu .noreorder region(s) but the output has "
                "%zu; fenced regions must pass through untouched",
                in_runs.size(), out_runs.size()));
        return;
    }
    for (size_t r = 0; r < in_runs.size(); ++r) {
        size_t in_len = in_runs[r].second - in_runs[r].first + 1;
        size_t out_len = out_runs[r].second - out_runs[r].first + 1;
        if (in_len != out_len) {
            diags->report(
                Code::HZ005, Severity::ERROR, out_runs[r].first,
                support::strprintf(
                    ".noreorder region %zu changed length: %zu word(s) "
                    "in, %zu out", r, in_len, out_len));
            continue;
        }
        for (size_t k = 0; k < in_len; ++k) {
            const Item &a = input.items[in_runs[r].first + k];
            const Item &b = output.items[out_runs[r].first + k];
            bool same = a.is_data == b.is_data && a.target == b.target;
            if (same && a.is_data)
                same = a.data_value == b.data_value;
            if (same && !a.is_data)
                same = a.inst == b.inst;
            if (!same) {
                diags->report(
                    Code::HZ005, Severity::ERROR,
                    out_runs[r].first + k,
                    support::strprintf(
                        ".noreorder region %zu word %zu was altered by "
                        "the reorganizer", r, k));
            }
        }
    }
}

} // namespace mips::verify
