#include "verify/interproc.h"

#include <algorithm>
#include <optional>
#include <set>

#include "isa/branch.h"
#include "isa/instruction.h"
#include "support/strings.h"

namespace mips::verify {

using assembler::Item;
using assembler::Unit;
using isa::JumpKind;

namespace {

/** "r3, r7"-style list for a register mask. */
std::string
maskNames(uint16_t mask)
{
    std::string out;
    for (int r = 0; r < isa::kNumRegs; ++r) {
        if ((mask >> r) & 1) {
            if (!out.empty())
                out += ", ";
            out += isa::regName(static_cast<isa::Reg>(r));
        }
    }
    return out;
}

/**
 * Find the unique local definition of `reg` visible at item `i` by a
 * backward straight-line scan. Fails (kNoItem) at joins (labels),
 * control transfers, and data: past any of those the definition is
 * not provably the one that executes.
 */
size_t
localDefBefore(const Cfg &cfg, size_t i, isa::Reg reg)
{
    const auto &items = cfg.unit->items;
    if (!items[i].labels.empty())
        return kNoItem; // control may land here past any local def
    for (size_t j = i; j-- > 0;) {
        const Item &it = items[j];
        if (it.is_data)
            return kNoItem;
        if (isa::regUse(it.inst).writesGpr(reg))
            return j;
        if (it.inst.branch || it.inst.jump || it.inst.special)
            return kNoItem;
        if (!it.labels.empty())
            return kNoItem;
    }
    return kNoItem;
}

/** The constant `reg` provably holds at item `i`, from a straight-line
 *  MOVI8 or non-symbolic long-immediate load. */
std::optional<int32_t>
constBefore(const Cfg &cfg, size_t i, isa::Reg reg)
{
    size_t d = localDefBefore(cfg, i, reg);
    if (d == kNoItem)
        return std::nullopt;
    const Item &def = cfg.unit->items[d];
    if (def.inst.mem && !def.inst.mem->is_store &&
        def.inst.mem->rd == reg) {
        if (def.inst.mem->mode == isa::MemMode::LONG_IMM &&
            def.target.empty())
            return def.inst.mem->imm;
        return std::nullopt; // memory load: value unknown
    }
    if (def.inst.alu && def.inst.alu->rd == reg &&
        def.inst.alu->op == isa::AluOp::MOVI8)
        return static_cast<int32_t>(def.inst.alu->imm8);
    return std::nullopt;
}

/** Resolve a call site's target to an item index (kNoItem when not
 *  provable). Direct calls resolve by label or absolute address;
 *  indirect calls by a straight-line `li @fn, rN` definition of the
 *  target register. */
size_t
resolveCallTarget(const Cfg &cfg, size_t i)
{
    const Item &item = cfg.unit->items[i];
    const isa::JumpPiece &j = *item.inst.jump;
    if (j.kind == JumpKind::CALL_DIRECT) {
        if (!item.target.empty()) {
            auto it = cfg.labels.find(item.target);
            return it == cfg.labels.end() ? kNoItem : it->second;
        }
        int64_t index = static_cast<int64_t>(j.target_addr) -
                        cfg.unit->origin;
        if (index < 0 || index >= static_cast<int64_t>(cfg.size()))
            return kNoItem;
        return static_cast<size_t>(index);
    }
    size_t d = localDefBefore(cfg, i, j.target_reg);
    if (d == kNoItem)
        return kNoItem;
    const Item &def = cfg.unit->items[d];
    if (!def.inst.mem || def.inst.mem->is_store ||
        def.inst.mem->mode != isa::MemMode::LONG_IMM ||
        def.inst.mem->rd != j.target_reg || def.target.empty())
        return kNoItem;
    auto it = cfg.labels.find(def.target);
    return it == cfg.labels.end() ? kNoItem : it->second;
}

/** Escape a name for a quoted Graphviz string. */
std::string
dotEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    return out;
}

// ------------------------------------------------- per-function edges

/**
 * Edge view of one function: for each region item, the in-region CFG
 * predecessors plus (for call resume points) the last delay slot of
 * the call the control returns past. The resume edge is the resolved
 * interprocedural edge the base CFG leaves unknown: the convention
 * says the callee eventually returns to it with callee-owned state
 * restored, which is exactly what each analysis below assumes (and
 * what CC001-CC003 verify on the callee side).
 */
struct FuncEdges
{
    size_t begin = 0, end = 0;
    /** Per region item: in-region predecessor items. */
    std::vector<std::vector<size_t>> preds;
    /** Per region item: feeding call's last slot, or kNoItem. */
    std::vector<size_t> resume_from;

    size_t local(size_t item) const { return item - begin; }
};

FuncEdges
makeFuncEdges(const CallGraph &g, const FunctionInfo &f)
{
    const Cfg &cfg = *g.cfg;
    FuncEdges e;
    e.begin = f.begin;
    e.end = f.end;
    size_t n = f.end - f.begin;
    e.preds.resize(n);
    e.resume_from.assign(n, kNoItem);
    for (size_t i = f.begin; i < f.end; ++i)
        for (size_t p : cfg.nodes[i].preds)
            if (p >= f.begin && p < f.end)
                e.preds[i - f.begin].push_back(p);
    for (size_t si : f.sites) {
        const CallSite &s = g.sites[si];
        if (s.resume != kNoItem && s.resume < f.end)
            e.resume_from[s.resume - f.begin] = s.last_slot;
    }
    return e;
}

// ----------------------------------- may-dirty masks (CC001 / CC002)

/** True if the ALU piece provably writes rd's own value back (the
 *  reorganizer emits `add rX, #0, rX` self-moves when packing): such
 *  a write preserves the register and must not mark it dirty. */
bool
identityMove(const isa::AluPiece &p)
{
    if (p.rd != p.rs)
        return false;
    bool zero2 = p.src2.is_imm ? p.src2.imm4 == 0
                               : p.src2.reg == isa::kZeroReg;
    switch (p.op) {
    case isa::AluOp::ADD:
    case isa::AluOp::SUB:
    case isa::AluOp::OR:
    case isa::AluOp::XOR:
    case isa::AluOp::SLL:
    case isa::AluOp::SRL:
    case isa::AluOp::SRA:
        return zero2;
    default:
        return false;
    }
}

/** Forward may-analysis: which registers may have been overwritten
 *  (by anything but a memory-referencing load, the restore idiom)
 *  since function entry. Union meet; unknown edges contribute
 *  nothing, keeping the analysis silent rather than alarmist. */
struct MaskSolution
{
    std::vector<uint16_t> in, out;
};

MaskSolution
solveMayDirty(const CallGraph &g, const FunctionInfo &f,
              const FuncEdges &e)
{
    const Cfg &cfg = *g.cfg;
    size_t n = f.end - f.begin;
    MaskSolution sol;
    sol.in.assign(n, 0);
    sol.out.assign(n, 0);
    std::vector<uint16_t> gen(n, 0), kill(n, 0);
    for (size_t i = f.begin; i < f.end; ++i) {
        const Item &item = cfg.unit->items[i];
        if (item.is_data)
            continue;
        size_t k = i - f.begin;
        if (item.inst.mem && !item.inst.mem->is_store &&
            isa::memReferencesMemory(*item.inst.mem))
            kill[k] = static_cast<uint16_t>(1u << item.inst.mem->rd);
        gen[k] = isa::regUse(item.inst).gpr_writes & ~kill[k];
        if (item.inst.alu && identityMove(*item.inst.alu)) {
            isa::Instruction rest = item.inst;
            rest.alu.reset();
            gen[k] &= static_cast<uint16_t>(
                ~(isa::regUseAlu(*item.inst.alu).gpr_writes &
                  ~isa::regUse(rest).gpr_writes));
        }
    }
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t k = 0; k < n; ++k) {
            uint16_t edge = 0;
            for (size_t p : e.preds[k])
                edge |= sol.out[p - f.begin];
            if (e.resume_from[k] != kNoItem)
                edge |= sol.out[e.resume_from[k] - f.begin];
            uint16_t after =
                static_cast<uint16_t>((edge & ~kill[k]) | gen[k]);
            if (sol.in[k] != edge || sol.out[k] != after) {
                sol.in[k] = edge;
                sol.out[k] = after;
                changed = true;
            }
        }
    }
    return sol;
}

// ------------------------------------------ stack-delta lattice (CC003)

/** Net stack-pointer adjustment since function entry. */
struct Delta
{
    enum Kind : uint8_t
    {
        TOP,      ///< no path reaches here yet
        VAL,      ///< provably `d` words
        MISMATCH, ///< two provable but different adjustments joined
        GIVEUP,   ///< an untracked stack-pointer write: stay silent
    };
    Kind kind = TOP;
    int32_t d = 0;

    bool
    operator==(const Delta &o) const
    {
        return kind == o.kind && (kind != VAL || d == o.d);
    }
};

Delta
meetDelta(const Delta &a, const Delta &b)
{
    if (a.kind == Delta::GIVEUP || b.kind == Delta::GIVEUP)
        return {Delta::GIVEUP, 0};
    if (a.kind == Delta::TOP)
        return b;
    if (b.kind == Delta::TOP)
        return a;
    if (a.kind == Delta::MISMATCH || b.kind == Delta::MISMATCH)
        return {Delta::MISMATCH, 0};
    if (a.d != b.d)
        return {Delta::MISMATCH, 0};
    return a;
}

/**
 * Correction a call's resume edge applies between the last delay slot
 * and the resume point: the callee's provable net effect on the
 * caller's stack delta. SHIFT adds a known constant (zero for a
 * balanced callee entered at its primary entry; the skipped-prologue
 * adjustment for a retargeted call), SKIP drops the edge (the callee
 * provably never returns), GIVEUP poisons it (nothing provable).
 */
struct ResumeFix
{
    enum Kind : uint8_t
    {
        SKIP,
        GIVEUP,
        SHIFT,
    };
    Kind kind = GIVEUP;
    int32_t d = 0;
};

/** In/out stack-delta values for every item of one region. */
struct DeltaSolution
{
    std::vector<Delta> in, out;
};

Delta
transferDelta(const Cfg &cfg, size_t i, const Delta &in)
{
    const Item &item = cfg.unit->items[i];
    if (item.is_data || in.kind == Delta::TOP)
        return in;
    if (!isa::regUse(item.inst).writesGpr(isa::kStackReg))
        return in;
    if (in.kind == Delta::GIVEUP)
        return in;
    const auto &alu = item.inst.alu;
    bool tracked = alu && alu->rd == isa::kStackReg &&
                   alu->rs == isa::kStackReg &&
                   (alu->op == isa::AluOp::ADD ||
                    alu->op == isa::AluOp::SUB) &&
                   !(item.inst.mem && !item.inst.mem->is_store &&
                     item.inst.mem->rd == isa::kStackReg);
    if (!tracked)
        return {Delta::GIVEUP, 0};
    std::optional<int32_t> k;
    if (alu->src2.is_imm)
        k = static_cast<int32_t>(alu->src2.imm4);
    else
        k = constBefore(cfg, i, alu->src2.reg);
    if (!k)
        return {Delta::GIVEUP, 0};
    if (in.kind == Delta::MISMATCH)
        return in; // still divergent after a uniform adjustment
    int32_t step = alu->op == isa::AluOp::ADD ? *k : -*k;
    return {Delta::VAL, in.d + step};
}

DeltaSolution
solveStackDelta(const CallGraph &g, const FunctionInfo &f,
                const FuncEdges &e, const std::vector<ResumeFix> &fix)
{
    const Cfg &cfg = *g.cfg;
    size_t n = f.end - f.begin;
    DeltaSolution sol;
    sol.in.resize(n);
    sol.out.resize(n);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t k = 0; k < n; ++k) {
            Delta edge;
            if (f.begin + k == f.entry)
                edge = {Delta::VAL, 0};
            for (size_t p : e.preds[k])
                edge = meetDelta(edge, sol.out[p - f.begin]);
            if (e.resume_from[k] != kNoItem &&
                fix[k].kind != ResumeFix::SKIP) {
                Delta via = sol.out[e.resume_from[k] - f.begin];
                if (via.kind != Delta::TOP) {
                    if (fix[k].kind == ResumeFix::GIVEUP)
                        via = {Delta::GIVEUP, 0};
                    else if (via.kind == Delta::VAL)
                        via.d += fix[k].d;
                }
                edge = meetDelta(edge, via);
            }
            Delta after = transferDelta(cfg, f.begin + k, edge);
            if (!(sol.in[k] == edge) || !(sol.out[k] == after)) {
                sol.in[k] = edge;
                sol.out[k] = after;
                changed = true;
            }
        }
    }
    return sol;
}

// ---------------------------------------- must-write masks (CC004)

/** Forward must-analysis: registers definitely written on every path
 *  from the entry point `entered` (seeded with the environment
 *  assumption). One invocation enters at exactly one entry, so the
 *  solve is per entry point: items unreachable from `entered` keep
 *  the 0xffff identity and contribute no entry-read demand.
 *  Call resume points meet in 0xffff — the caller-save convention
 *  means a callee may leave any register defined, so a call never
 *  *removes* definedness; CC004 stays a zero-false-positive check. */
MaskSolution
solveMustWrite(const CallGraph &g, const FunctionInfo &f,
               const FuncEdges &e, uint16_t seed, size_t entered)
{
    const Cfg &cfg = *g.cfg;
    size_t n = f.end - f.begin;
    MaskSolution sol;
    sol.in.assign(n, 0xffff);
    sol.out.assign(n, 0xffff);
    std::vector<uint16_t> gen(n, 0);
    for (size_t i = f.begin; i < f.end; ++i)
        if (!cfg.unit->items[i].is_data)
            gen[i - f.begin] = isa::regUse(cfg.unit->items[i].inst)
                                   .gpr_writes;
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t k = 0; k < n; ++k) {
            uint16_t edge = 0xffff;
            if (f.begin + k == entered)
                edge &= seed;
            for (size_t p : e.preds[k])
                edge &= sol.out[p - f.begin];
            // resume_from: a call defines everything (identity meet)
            uint16_t after = static_cast<uint16_t>(edge | gen[k]);
            if (sol.in[k] != edge || sol.out[k] != after) {
                sol.in[k] = edge;
                sol.out[k] = after;
                changed = true;
            }
        }
    }
    return sol;
}

} // namespace

// ------------------------------------------------------- construction

CallGraph
buildCallGraph(const Cfg &cfg)
{
    CallGraph g;
    g.cfg = &cfg;
    const Unit &unit = *cfg.unit;
    size_t n = unit.items.size();
    g.function_of.assign(n, kNoFunc);
    if (n == 0)
        return g;

    // Call sites and their provable target items.
    struct RawSite
    {
        size_t item;
        size_t target_item;
        bool indirect;
    };
    std::vector<RawSite> raw;
    std::set<size_t> address_taken;
    std::set<std::string> referenced;
    for (size_t i = 0; i < n; ++i) {
        const Item &item = unit.items[i];
        if (item.is_data) {
            // A relocated `.word LABEL` table entry both references
            // its arm and takes its address.
            if (!item.target.empty()) {
                referenced.insert(item.target);
                auto it = cfg.labels.find(item.target);
                if (it != cfg.labels.end() && it->second != kNoItem)
                    address_taken.insert(it->second);
            }
            continue;
        }
        if (!item.target.empty()) {
            referenced.insert(item.target);
            if (item.inst.mem) {
                auto it = cfg.labels.find(item.target);
                if (it != cfg.labels.end() && it->second != kNoItem)
                    address_taken.insert(it->second);
            }
        }
        if (item.inst.jump && isa::jumpIsCall(item.inst.jump->kind))
            raw.push_back({i, resolveCallTarget(cfg, i),
                           isa::jumpIsIndirect(item.inst.jump->kind)});
    }

    // Function entries: the unit entry, every provable call target
    // nothing falls into, every address-taken code label that cannot
    // be fallen into, and every unreferenced code label that cannot
    // be fallen into (a dead-function candidate: nothing reaches it
    // at all). Call targets *with* local predecessors — notably the
    // reorganizer's retargeted-call labels one word past a real
    // entry — stay inside the containing region as secondary entries;
    // splitting there would sever prologues from their bodies.
    std::set<size_t> entries;
    entries.insert(0);
    for (const RawSite &r : raw)
        if (r.target_item != kNoItem &&
            !unit.items[r.target_item].is_data &&
            cfg.nodes[r.target_item].preds.empty())
            entries.insert(r.target_item);
    for (size_t i : address_taken)
        if (i != 0 && !unit.items[i].is_data &&
            cfg.nodes[i].preds.empty())
            entries.insert(i);
    for (size_t i = 1; i < n; ++i) {
        const Item &item = unit.items[i];
        if (item.is_data || item.labels.empty() ||
            !cfg.nodes[i].preds.empty())
            continue;
        bool unreferenced = true;
        for (const std::string &label : item.labels)
            if (referenced.count(label))
                unreferenced = false;
        if (unreferenced)
            entries.insert(i);
    }

    // Contiguous regions between entries.
    std::vector<size_t> sorted(entries.begin(), entries.end());
    g.functions.resize(sorted.size());
    for (size_t k = 0; k < sorted.size(); ++k) {
        FunctionInfo &f = g.functions[k];
        f.entry = f.begin = sorted[k];
        f.end = k + 1 < sorted.size() ? sorted[k + 1] : n;
        f.is_root = f.entry == 0;
        f.address_taken = address_taken.count(f.entry) > 0;
        f.entries.push_back(f.entry);
        const auto &labels = unit.items[f.entry].labels;
        f.name = labels.empty() ? std::string("<entry>") : labels[0];
        for (size_t i = f.begin; i < f.end; ++i)
            g.function_of[i] = k;
    }

    // Finalize sites; match return sites (indirect jumps through the
    // link register).
    for (const RawSite &r : raw) {
        CallSite s;
        s.item = r.item;
        int delay = isa::jumpDelay(unit.items[r.item].inst.jump->kind);
        s.last_slot = std::min(r.item + static_cast<size_t>(delay),
                               n - 1);
        size_t resume = r.item + static_cast<size_t>(delay) + 1;
        s.resume = resume < n ? resume : kNoItem;
        s.caller = g.function_of[r.item];
        s.indirect = r.indirect;
        if (r.target_item != kNoItem &&
            !unit.items[r.target_item].is_data) {
            s.callee = g.function_of[r.target_item];
            s.entered = r.target_item;
        }
        size_t si = g.sites.size();
        g.sites.push_back(s);
        g.functions[s.caller].sites.push_back(si);
        if (s.resolved()) {
            g.functions[s.caller].callees.push_back(s.callee);
            g.functions[s.callee].callers.push_back(s.caller);
            FunctionInfo &callee = g.functions[s.callee];
            if (std::find(callee.entries.begin(), callee.entries.end(),
                          s.entered) == callee.entries.end())
                callee.entries.push_back(s.entered);
        }
    }
    for (FunctionInfo &f : g.functions) {
        auto dedup = [](std::vector<size_t> &v) {
            std::sort(v.begin(), v.end());
            v.erase(std::unique(v.begin(), v.end()), v.end());
        };
        dedup(f.callees);
        dedup(f.callers);
        std::sort(f.entries.begin() + 1, f.entries.end());
        for (size_t i = f.begin; i < f.end; ++i) {
            const Item &item = unit.items[i];
            if (!item.is_data && item.inst.jump &&
                item.inst.jump->kind == JumpKind::INDIRECT &&
                item.inst.jump->target_reg == isa::kLinkReg)
                f.returns.push_back(i);
        }
    }

    // Tarjan SCCs over resolved call edges (iterative; SCCs pop in
    // callee-first order, which is what the cost rollup wants).
    size_t fcount = g.functions.size();
    std::vector<int> index(fcount, -1), low(fcount, 0);
    std::vector<bool> on_stack(fcount, false);
    std::vector<size_t> stack;
    int next_index = 0;
    struct Frame
    {
        size_t f;
        size_t ci;
    };
    for (size_t f0 = 0; f0 < fcount; ++f0) {
        if (index[f0] != -1)
            continue;
        std::vector<Frame> frames{{f0, 0}};
        index[f0] = low[f0] = next_index++;
        stack.push_back(f0);
        on_stack[f0] = true;
        while (!frames.empty()) {
            size_t f = frames.back().f;
            size_t ci = frames.back().ci;
            if (ci < g.functions[f].callees.size()) {
                ++frames.back().ci;
                size_t c = g.functions[f].callees[ci];
                if (index[c] == -1) {
                    index[c] = low[c] = next_index++;
                    stack.push_back(c);
                    on_stack[c] = true;
                    frames.push_back({c, 0});
                } else if (on_stack[c]) {
                    low[f] = std::min(low[f], index[c]);
                }
            } else {
                if (low[f] == index[f]) {
                    size_t members = 0;
                    size_t m;
                    do {
                        m = stack.back();
                        stack.pop_back();
                        on_stack[m] = false;
                        g.functions[m].scc =
                            static_cast<int>(g.scc_count);
                        ++members;
                    } while (m != f);
                    ++g.scc_count;
                    if (members > 1) {
                        for (FunctionInfo &fn : g.functions)
                            if (fn.scc == static_cast<int>(
                                              g.scc_count - 1))
                                fn.recursive = true;
                    }
                }
                frames.pop_back();
                if (!frames.empty()) {
                    size_t parent = frames.back().f;
                    low[parent] = std::min(low[parent], low[f]);
                }
            }
        }
    }
    for (FunctionInfo &f : g.functions) {
        size_t self = static_cast<size_t>(&f - g.functions.data());
        if (std::find(f.callees.begin(), f.callees.end(), self) !=
            f.callees.end())
            f.recursive = true;
    }

    // Reachability from the roots (the unit entry and every
    // address-taken function) over resolved call edges, cross-region
    // branch edges, and call resume points that land past the region.
    std::vector<size_t> work;
    auto mark = [&](size_t f) {
        if (!g.functions[f].reachable) {
            g.functions[f].reachable = true;
            work.push_back(f);
        }
    };
    for (size_t f = 0; f < fcount; ++f)
        if (g.functions[f].is_root || g.functions[f].address_taken)
            mark(f);
    while (!work.empty()) {
        size_t f = work.back();
        work.pop_back();
        const FunctionInfo &fn = g.functions[f];
        for (size_t c : fn.callees)
            mark(c);
        for (size_t si : fn.sites) {
            const CallSite &s = g.sites[si];
            if (s.resume != kNoItem && g.function_of[s.resume] != f)
                mark(g.function_of[s.resume]);
        }
        for (size_t i = fn.begin; i < fn.end; ++i)
            for (size_t succ : cfg.nodes[i].succs)
                if (g.function_of[succ] != f)
                    mark(g.function_of[succ]);
    }
    return g;
}

std::string
callGraphDot(const CallGraph &g, const std::string &name)
{
    std::string out =
        support::strprintf("digraph \"%s\" {\n", dotEscape(name).c_str());
    out += "  rankdir=LR;\n";
    out += "  node [shape=box, fontname=\"monospace\"];\n";
    for (const FunctionInfo &f : g.functions) {
        std::string attrs;
        if (f.recursive)
            attrs += ", peripheries=2";
        if (!f.reachable)
            attrs += ", style=dashed";
        out += support::strprintf(
            "  \"%s\" [label=\"%s\\n[%zu, %zu)\"%s];\n",
            dotEscape(f.name).c_str(), dotEscape(f.name).c_str(),
            f.begin, f.end, attrs.c_str());
    }
    // Table-dispatch edges: one per dispatch per distinct target
    // region, dashed and labeled to distinguish them from call edges.
    // A dispatch whose table could not be recovered goes to "?".
    const Cfg &cfg = *g.cfg;
    bool unresolved = false;
    for (const CallSite &s : g.sites)
        unresolved = unresolved || !s.resolved();
    for (size_t i = 0; i < cfg.size(); ++i) {
        const assembler::Item &item = cfg.unit->items[i];
        if (!item.is_data && item.inst.jump &&
            isa::jumpIsTable(item.inst.jump->kind) &&
            !cfg.tables.count(i))
            unresolved = true;
    }
    if (unresolved)
        out += "  \"?\" [shape=ellipse, style=dotted];\n";
    for (const CallSite &s : g.sites) {
        const std::string &from = g.functions[s.caller].name;
        std::string to =
            s.resolved() ? g.functions[s.callee].name : std::string("?");
        out += support::strprintf(
            "  \"%s\" -> \"%s\"%s;\n", dotEscape(from).c_str(),
            dotEscape(to).c_str(), s.indirect ? " [style=dotted]" : "");
    }
    for (size_t i = 0; i < cfg.size(); ++i) {
        const assembler::Item &item = cfg.unit->items[i];
        if (item.is_data || !item.inst.jump ||
            !isa::jumpIsTable(item.inst.jump->kind))
            continue;
        const std::string &from =
            g.functions[g.function_of[i]].name;
        auto it = cfg.tables.find(i);
        if (it == cfg.tables.end()) {
            out += support::strprintf(
                "  \"%s\" -> \"?\" [style=dashed, label=\"table\"];\n",
                dotEscape(from).c_str());
            continue;
        }
        std::set<size_t> target_funcs;
        for (size_t arm : it->second.targets)
            target_funcs.insert(g.function_of[arm]);
        for (size_t tf : target_funcs) {
            out += support::strprintf(
                "  \"%s\" -> \"%s\" [style=dashed, "
                "label=\"table\"];\n",
                dotEscape(from).c_str(),
                dotEscape(g.functions[tf].name).c_str());
        }
    }
    out += "}\n";
    return out;
}

// ------------------------------------------------------------ checks

void
checkCallingConventions(const CallGraph &g,
                        const InterprocOptions &options,
                        DiagnosticEngine *diags)
{
    const Cfg &cfg = *g.cfg;
    uint16_t seed =
        static_cast<uint16_t>(options.assume_initialized | 1u);
    size_t fcount = g.functions.size();

    std::vector<FuncEdges> edges;
    std::vector<MaskSolution> dirty;
    edges.reserve(fcount);
    dirty.reserve(fcount);
    for (const FunctionInfo &f : g.functions) {
        edges.push_back(makeFuncEdges(g, f));
        dirty.push_back(solveMayDirty(g, f, edges.back()));
    }
    // Must-write solutions are per entry point (an invocation enters
    // at exactly one of FunctionInfo::entries), indexed in parallel.
    std::vector<std::vector<MaskSolution>> must(fcount);
    for (size_t fi = 0; fi < fcount; ++fi)
        for (size_t entered : g.functions[fi].entries)
            must[fi].push_back(solveMustWrite(
                g, g.functions[fi], edges[fi], seed, entered));
    auto entryIndex = [&](size_t fi, size_t entered) {
        const auto &es = g.functions[fi].entries;
        return static_cast<size_t>(
            std::find(es.begin(), es.end(), entered) - es.begin());
    };

    // CC001 / CC002: callee-saved and return-address discipline at
    // every return site. The unit entry is nobody's callee, so it
    // owes no convention at its (pseudo-)returns.
    for (size_t fi = 0; fi < fcount; ++fi) {
        const FunctionInfo &f = g.functions[fi];
        if (f.is_root)
            continue;
        for (size_t r : f.returns) {
            size_t last = std::min(
                r + static_cast<size_t>(isa::kIndirectJumpDelay),
                f.end - 1);
            uint16_t clobbered =
                dirty[fi].out[last - f.begin] &
                static_cast<uint16_t>(options.callee_saved & ~1u);
            if (clobbered && diags) {
                diags->report(
                    Code::CC001, Severity::ERROR, r,
                    support::strprintf(
                        "'%s' returns with callee-saved register(s) "
                        "%s possibly clobbered (written after entry "
                        "with no restoring load on some path)",
                        f.name.c_str(),
                        maskNames(clobbered).c_str()));
            }
            isa::Reg link =
                cfg.unit->items[r].inst.jump->target_reg;
            if ((dirty[fi].in[r - f.begin] >> link) & 1) {
                if (diags) {
                    diags->report(
                        Code::CC002, Severity::ERROR, r,
                        support::strprintf(
                            "'%s' returns through %s, but the return "
                            "address in it may have been overwritten "
                            "(nested call or explicit write) without "
                            "a restoring load",
                            f.name.c_str(),
                            isa::regName(link).c_str()));
                }
            }
        }
    }

    // CC003: stack discipline. Returns must balance the frame;
    // provably different adjustments must never join at a call or a
    // return. Untracked stack writes make the analysis stay silent.
    //
    // Functions solve callee-first (ascending SCC id — Tarjan pops
    // callees before callers) so every call's resume edge can apply
    // the callee's provable net effect: a balanced callee entered at
    // its primary entry shifts the caller's delta by zero, and a
    // retargeted call into a secondary entry shifts it by exactly the
    // skipped prologue's adjustment (which the caller performed in
    // the call's delay slot). Recursion and unprovable callees poison
    // the resume edge instead of guessing.
    std::vector<size_t> topo(fcount);
    for (size_t i = 0; i < fcount; ++i)
        topo[i] = i;
    std::sort(topo.begin(), topo.end(), [&](size_t a, size_t b) {
        return g.functions[a].scc < g.functions[b].scc;
    });
    std::vector<DeltaSolution> delta(fcount);
    std::vector<Delta> ret(fcount); ///< meet over returns at exit
    for (size_t fi : topo) {
        const FunctionInfo &f = g.functions[fi];
        std::vector<ResumeFix> fix(f.end - f.begin);
        for (size_t si : f.sites) {
            const CallSite &s = g.sites[si];
            if (s.resume == kNoItem || s.resume >= f.end)
                continue;
            ResumeFix rf; // GIVEUP
            if (s.resolved() &&
                g.functions[s.callee].scc != f.scc) {
                const FunctionInfo &c = g.functions[s.callee];
                const Delta &r = ret[s.callee];
                const Delta &e = delta[s.callee].in[s.entered - c.begin];
                if (r.kind == Delta::TOP)
                    rf = {ResumeFix::SKIP, 0}; // provably never returns
                else if (r.kind == Delta::VAL && e.kind == Delta::VAL)
                    rf = {ResumeFix::SHIFT, r.d - e.d};
            }
            fix[s.resume - f.begin] = rf;
        }
        delta[fi] = solveStackDelta(g, f, edges[fi], fix);
        Delta r;
        for (size_t ri : f.returns) {
            size_t last = std::min(
                ri + static_cast<size_t>(isa::kIndirectJumpDelay),
                f.end - 1);
            r = meetDelta(r, delta[fi].out[last - f.begin]);
        }
        ret[fi] = r;
    }
    for (size_t fi = 0; fi < fcount; ++fi) {
        const FunctionInfo &f = g.functions[fi];
        const std::vector<Delta> &out = delta[fi].out;
        if (!f.is_root) {
            for (size_t r : f.returns) {
                size_t last = std::min(
                    r + static_cast<size_t>(isa::kIndirectJumpDelay),
                    f.end - 1);
                const Delta &d = out[last - f.begin];
                if (d.kind == Delta::VAL && d.d != 0 && diags) {
                    diags->report(
                        Code::CC003, Severity::ERROR, r,
                        support::strprintf(
                            "'%s' returns with a net stack-pointer "
                            "adjustment of %+d word(s); frames must "
                            "balance across every call edge",
                            f.name.c_str(), d.d));
                } else if (d.kind == Delta::MISMATCH && diags) {
                    diags->report(
                        Code::CC003, Severity::ERROR, r,
                        support::strprintf(
                            "paths with mismatched stack-pointer "
                            "adjustments reach this return of '%s'",
                            f.name.c_str()));
                }
            }
        }
        for (size_t si : f.sites) {
            const CallSite &s = g.sites[si];
            const Delta &d =
                out[std::min(s.last_slot, f.end - 1) - f.begin];
            if (d.kind == Delta::MISMATCH && diags) {
                diags->report(
                    Code::CC003, Severity::ERROR, s.item,
                    "paths with mismatched stack-pointer adjustments "
                    "reach this call");
            }
        }
    }

    // CC004: propagate entry-read demands callee-first through the
    // call graph (a register a callee reads before writing is
    // demanded at every call site; a caller that cannot supply it
    // locally forwards the demand to its own entry), then blame the
    // sites where the demand provably cannot be met. Demands are per
    // entry point: a retargeted call entering past the prologue does
    // not inherit reads only the skipped prologue performs.
    std::vector<std::vector<uint16_t>> entry_reads(fcount);
    for (size_t fi = 0; fi < fcount; ++fi)
        entry_reads[fi].assign(g.functions[fi].entries.size(), 0);
    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t fi = 0; fi < fcount; ++fi) {
            const FunctionInfo &f = g.functions[fi];
            for (size_t ei = 0; ei < f.entries.size(); ++ei) {
                const MaskSolution &m = must[fi][ei];
                uint16_t er = 0;
                for (size_t i = f.begin; i < f.end; ++i) {
                    const Item &item = cfg.unit->items[i];
                    if (item.is_data)
                        continue;
                    er |= isa::regUse(item.inst).gpr_reads &
                          ~m.in[i - f.begin];
                }
                for (size_t si : f.sites) {
                    const CallSite &s = g.sites[si];
                    if (s.resolved())
                        er |= entry_reads[s.callee][entryIndex(
                                  s.callee, s.entered)] &
                              ~m.out[std::min(s.last_slot, f.end - 1) -
                                     f.begin];
                }
                er &= static_cast<uint16_t>(~1u);
                if (er != entry_reads[fi][ei]) {
                    entry_reads[fi][ei] = er;
                    changed = true;
                }
            }
        }
    }
    for (const CallSite &s : g.sites) {
        if (!s.resolved())
            continue;
        const FunctionInfo &caller = g.functions[s.caller];
        uint16_t excuse = seed;
        if (!caller.is_root)
            for (uint16_t er : entry_reads[s.caller])
                excuse |= er;
        // Supplied if written on the path from *any* entry: reporting
        // requires the definition to be provably absent however the
        // caller itself was entered.
        uint16_t supplied = 0;
        size_t k = std::min(s.last_slot, caller.end - 1) - caller.begin;
        for (const MaskSolution &m : must[s.caller])
            supplied |= m.out[k];
        uint16_t missing =
            entry_reads[s.callee][entryIndex(s.callee, s.entered)] &
            ~supplied & ~excuse;
        if (missing && diags) {
            diags->report(
                Code::CC004, Severity::WARNING, s.item,
                support::strprintf(
                    "call to '%s' reads argument register(s) %s on "
                    "entry, but no definition reaches this site",
                    g.functions[s.callee].name.c_str(),
                    maskNames(missing).c_str()));
        }
    }

    // LT004: functions the whole-program call graph never reaches.
    for (const FunctionInfo &f : g.functions) {
        if (f.reachable || f.is_root || !diags)
            continue;
        diags->report(
            Code::LT004, Severity::WARNING, f.entry,
            support::strprintf(
                "'%s' is interprocedurally dead: never called, never "
                "branched to, and its address is never taken",
                f.name.c_str()));
    }
}

} // namespace mips::verify
