/**
 * @file
 * Whole-program interprocedural analysis over the execution CFG.
 *
 * The intraprocedural CFG (verify/cfg.h) treats every call and
 * indirect jump as "statically unknown". This layer upgrades those
 * edges where they are provable: it partitions a unit into functions
 * (the unit entry plus every resolved call target and labeled region
 * that local control flow cannot fall into; fallen-into call targets
 * become secondary entries of the containing function rather than
 * splitting it), matches call sites to callees (direct calls by
 * label/address, indirect calls by a local
 * constant-address definition of the target register), matches
 * return sites (indirect jumps through the link register), detects
 * recursion via strongly connected components, and records the
 * resolved interprocedural edges.
 *
 * On top of the call graph, checkCallingConventions() verifies the
 * stack/register discipline every call edge relies on:
 *
 *   CC001 (error)   a function returns while a configured
 *                   callee-saved register may still be clobbered
 *   CC002 (error)   the return address is overwritten (nested call
 *                   or explicit write) and reaches a return without
 *                   a restoring load
 *   CC003 (error)   a provably non-zero net stack adjustment at a
 *                   return, or provably mismatched adjustments
 *                   joining at a call or return
 *   CC004 (warning) a call target reads an argument register no
 *                   definition of which reaches the call site
 *   LT004 (warning) a function unreachable through the call graph
 *
 * All CC analyses are *may/must* analyses tuned for zero false
 * positives: whenever a fact is not provable (untracked stack writes,
 * unresolved indirect calls, address-taken functions) they stay
 * silent rather than guess.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/cfg.h"

namespace mips::verify {

/** Sentinel for "no function". */
constexpr size_t kNoFunc = static_cast<size_t>(-1);

/** One call instruction and its (possibly resolved) callee. */
struct CallSite
{
    size_t item = kNoItem;      ///< the call jump word
    size_t last_slot = kNoItem; ///< last delay slot inside the unit
    size_t resume = kNoItem;    ///< return resume point (kNoItem at end)
    size_t caller = kNoFunc;
    size_t callee = kNoFunc;    ///< kNoFunc when unresolved
    /** Item the call actually enters: the callee's entry, or one of
     *  its secondary entries (see FunctionInfo::entries). */
    size_t entered = kNoItem;
    bool indirect = false;      ///< CALL_INDIRECT (callee resolved via
                                ///< a local constant-address definition)

    bool resolved() const { return callee != kNoFunc; }
};

/**
 * One discovered function: a contiguous item region.
 *
 * A function may expose *secondary entries*: call targets inside the
 * region that local control flow also reaches. The reorganizer's
 * call-retargeting scheme creates these on purpose — it duplicates a
 * callee's first word into the call's delay slot and retargets the
 * call one word past the entry — so a region is only split at call
 * targets nothing falls into. `entries` lists every entry point
 * (primary first); `CallSite::entered` records which one a call uses.
 */
struct FunctionInfo
{
    std::string name;  ///< entry label, or "<entry>" for the unit entry
    size_t entry = 0;  ///< primary entry item (== begin)
    size_t begin = 0;  ///< first item of the region
    size_t end = 0;    ///< one past the last item of the region
    std::vector<size_t> entries; ///< all entry items, primary first
    std::vector<size_t> sites;   ///< indices into CallGraph::sites
    std::vector<size_t> callees; ///< resolved callee ids, deduplicated
    std::vector<size_t> callers; ///< resolved caller ids, deduplicated
    std::vector<size_t> returns; ///< items: indirect jumps via the link
    bool is_root = false;        ///< the unit entry (item 0)
    bool address_taken = false;  ///< entry label used as a data operand
    bool reachable = false;      ///< from the roots via resolved edges
    bool recursive = false;      ///< in a call-graph cycle (incl. self)
    int scc = -1;                ///< SCC id (callee-first order)
};

/** The whole-program call graph for one unit. */
struct CallGraph
{
    const Cfg *cfg = nullptr;
    std::vector<FunctionInfo> functions;
    std::vector<CallSite> sites;
    /** Item index -> owning function id (every item is owned). */
    std::vector<size_t> function_of;
    size_t scc_count = 0;

    size_t size() const { return functions.size(); }
};

/**
 * Build the call graph. Requires a CFG built over the same unit; the
 * base CFG is not modified (resolved interprocedural edges live in
 * the returned graph's sites/callees).
 */
CallGraph buildCallGraph(const Cfg &cfg);

/** Graphviz dot rendering: one digraph, functions as nodes, resolved
 *  call edges as arrows (dotted for indirect calls, a "?" node for
 *  unresolved ones), doubled outline for recursive functions, dashed
 *  for interprocedurally-dead ones. */
std::string callGraphDot(const CallGraph &graph, const std::string &name);

/** Calling-convention checker knobs. */
struct InterprocOptions
{
    /**
     * Registers the convention declares callee-saved (CC001). The
     * repo's own compiler uses a caller-save convention, so the
     * default checks nothing; set bits to opt registers in.
     */
    uint16_t callee_saved = 0;
    /** Registers assumed live-in at the unit entry (mirrors
     *  VerifyOptions::assume_initialized; CC004 never blames them). */
    uint16_t assume_initialized = 0;
};

/** Run the CC001-CC004 / LT004 checks over a built call graph. */
void checkCallingConventions(const CallGraph &graph,
                             const InterprocOptions &options,
                             DiagnosticEngine *diags);

} // namespace mips::verify
