/**
 * @file
 * Dataflow lints: findings that do not break the pipeline contract but
 * usually indicate a bug in the code or in the tool that emitted it.
 */
#include "isa/registers.h"
#include "support/strings.h"
#include "verify/passes.h"

namespace mips::verify {

namespace {

std::string
maskNames(uint16_t mask)
{
    std::string out;
    for (int r = 0; r < isa::kNumRegs; ++r) {
        if ((mask >> r) & 1) {
            if (!out.empty())
                out += ", ";
            out += isa::regName(static_cast<isa::Reg>(r));
        }
    }
    return out;
}

/** LT001: a read of a register not definitely written on every path
 *  from the unit entry. */
void
checkUninitializedReads(const Cfg &cfg, const VerifyOptions &options,
                        DiagnosticEngine *diags)
{
    DataflowSolution da =
        definiteAssignment(cfg, options.assume_initialized);
    const auto &items = cfg.unit->items;
    for (size_t i = 0; i < cfg.size(); ++i) {
        if (items[i].is_data)
            continue;
        uint16_t reads = isa::regUse(items[i].inst).gpr_reads;
        uint16_t undef = static_cast<uint16_t>(reads & ~da.in[i]);
        if (!undef)
            continue;
        diags->report(
            Code::LT001, Severity::WARNING, i,
            support::strprintf(
                "%s may be read before any write reaches it",
                maskNames(undef).c_str()));
    }
}

/** LT002: an ALU result that no path can ever read. Restricted to ALU
 *  pieces: dead loads may be deliberate (touching a volatile page) and
 *  link writes of calls are often unused by design. */
void
checkDeadStores(const Cfg &cfg, DiagnosticEngine *diags)
{
    DataflowSolution live = liveness(cfg);
    const auto &items = cfg.unit->items;
    for (size_t i = 0; i < cfg.size(); ++i) {
        if (items[i].is_data || !items[i].inst.alu)
            continue;
        uint16_t writes = isa::regUseAlu(*items[i].inst.alu).gpr_writes;
        if (!writes || (writes & live.out[i]) != 0)
            continue;
        diags->report(
            Code::LT002, Severity::WARNING, i,
            support::strprintf(
                "result in %s is never read on any path (dead store)",
                maskNames(writes).c_str()));
    }
}

/** LT003: instruction words no execution path can reach. Reported once
 *  per contiguous run. Data items are exempt — they are operands, not
 *  code. */
void
checkUnreachable(const Cfg &cfg, DiagnosticEngine *diags)
{
    size_t n = cfg.size();
    std::vector<char> reached(n, 0);
    std::vector<size_t> work;
    auto push = [&](size_t i) {
        if (!reached[i]) {
            reached[i] = 1;
            work.push_back(i);
        }
    };
    for (size_t i = 0; i < n; ++i) {
        if (i == 0 || cfg.nodes[i].unknown_pred)
            push(i);
    }
    while (!work.empty()) {
        size_t i = work.back();
        work.pop_back();
        for (size_t s : cfg.nodes[i].succs)
            push(s);
    }
    const auto &items = cfg.unit->items;
    for (size_t i = 0; i < n;) {
        if (reached[i] || items[i].is_data) {
            ++i;
            continue;
        }
        size_t start = i;
        while (i < n && !reached[i] && !items[i].is_data)
            ++i;
        diags->report(
            Code::LT003, Severity::WARNING, start,
            support::strprintf(
                "%zu unreachable instruction word(s)", i - start));
    }
}

} // namespace

void
checkLints(const Cfg &cfg, const VerifyOptions &options,
           DiagnosticEngine *diags)
{
    checkUninitializedReads(cfg, options, diags);
    checkDeadStores(cfg, diags);
    checkUnreachable(cfg, diags);
}

} // namespace mips::verify
