#include "verify/memsafety.h"

#include <algorithm>
#include <set>

#include "isa/branch.h"
#include "isa/instruction.h"
#include "obs/catalog.h"
#include "support/strings.h"

namespace mips::verify {

using assembler::Item;
using isa::AluOp;
using isa::MemMode;
using support::strprintf;

namespace {

constexpr int64_t kWordSpan = kWordMax + 1; // 2^32
constexpr int64_t kInt32Max = 0x7fffffffll;
constexpr int64_t kInt32Min = -0x80000000ll;

uint32_t
maskBits(unsigned k)
{
    return k >= 32 ? 0xffffffffu : ((1u << k) - 1);
}

/** How an abstract value relates to an illegal region [bad_lo, bad_hi]
 *  of the unsigned word space. */
enum class Verdict : uint8_t
{
    SILENT,
    MAY,
    MUST,
};

Verdict
classifyOverlap(const AbsVal &v, int64_t bad_lo, int64_t bad_hi)
{
    if (v.lo >= bad_lo && v.hi <= bad_hi)
        return Verdict::MUST; // superset entirely illegal => value is
    if (v.hi < bad_lo || v.lo > bad_hi)
        return Verdict::SILENT;
    if (v.isTop() || v.widened)
        return Verdict::SILENT; // no evidence, or widening artifact
    return Verdict::MAY;
}

std::string
intervalText(const AbsVal &v)
{
    if (auto c = v.asConst())
        return strprintf("0x%x", *c);
    return strprintf("[0x%llx, 0x%llx]",
                     static_cast<unsigned long long>(v.lo),
                     static_cast<unsigned long long>(v.hi));
}

AbsVal
src2Val(const RegState &s, const isa::Src2 &src2)
{
    return src2.is_imm ? AbsVal::constant(src2.imm4) : s.regs[src2.reg];
}

// ------------------------------------------------ stack-depth rollup

/** Net stack-pointer delta (words) since function entry, or the
 *  failure states of the tiny lattice the rollup runs on. */
struct SpDelta
{
    enum Kind : uint8_t
    {
        NONE, ///< no path reaches here yet
        VAL,  ///< provably `d` words
        BAD,  ///< untracked write or mismatched join: unknown
    };
    Kind kind = NONE;
    int64_t d = 0;

    bool
    operator==(const SpDelta &o) const
    {
        return kind == o.kind && (kind != VAL || d == o.d);
    }
};

SpDelta
meetDelta(const SpDelta &a, const SpDelta &b)
{
    if (a.kind == SpDelta::NONE)
        return b;
    if (b.kind == SpDelta::NONE)
        return a;
    if (a.kind == SpDelta::BAD || b.kind == SpDelta::BAD ||
        a.d != b.d)
        return {SpDelta::BAD, 0};
    return a;
}

/** Per-function result of the delta pass. */
struct OwnDepth
{
    bool known = true;       ///< no reachable untracked SP state
    uint64_t words = 0;      ///< deepest point inside the body
    /** Depth (words below entry SP) at each call site, indexed like
     *  CallGraph::sites; negative = site unreached. */
    std::vector<int64_t> site_depth;
};

/**
 * Forward delta pass over one function region. Call resume edges
 * carry the delta across the callee unchanged — the balanced-callee
 * assumption CC003 independently verifies. Statically unknown edges
 * contribute nothing (optimistic, matching the CC checks' zero-
 * false-positive stance: MS005 may understate, never overstate).
 */
OwnDepth
solveOwnDepth(const CallGraph &g, const FunctionInfo &f,
              const RangeAnalysis &ranges)
{
    const Cfg &cfg = *g.cfg;
    size_t n = f.end - f.begin;
    std::vector<SpDelta> in(n), out(n);
    std::vector<size_t> resume_from(n, kNoItem);
    for (size_t si : f.sites) {
        const CallSite &s = g.sites[si];
        if (s.resume != kNoItem && s.resume >= f.begin &&
            s.resume < f.end && s.last_slot != kNoItem &&
            s.last_slot >= f.begin && s.last_slot < f.end)
            resume_from[s.resume - f.begin] = s.last_slot;
    }

    auto transfer = [&](size_t item_index, SpDelta d) -> SpDelta {
        const Item &item = cfg.unit->items[item_index];
        if (item.is_data || d.kind != SpDelta::VAL)
            return d;
        if (!isa::regUse(item.inst).writesGpr(isa::kStackReg))
            return d;
        const auto &alu = item.inst.alu;
        bool tracked = alu && alu->rd == isa::kStackReg &&
                       alu->rs == isa::kStackReg &&
                       (alu->op == AluOp::ADD ||
                        alu->op == AluOp::SUB) &&
                       !(item.inst.mem && !item.inst.mem->is_store &&
                         item.inst.mem->rd == isa::kStackReg);
        if (!tracked)
            return {SpDelta::BAD, 0};
        std::optional<uint32_t> k;
        if (alu->src2.is_imm)
            k = alu->src2.imm4;
        else if (ranges.in[item_index].reachable)
            k = ranges.in[item_index].regs[alu->src2.reg].asConst();
        if (!k)
            return {SpDelta::BAD, 0};
        int64_t step = alu->op == AluOp::ADD
                           ? static_cast<int64_t>(*k)
                           : -static_cast<int64_t>(*k);
        return {SpDelta::VAL, d.d + step};
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t k = 0; k < n; ++k) {
            size_t i = f.begin + k;
            SpDelta edge;
            if (std::find(f.entries.begin(), f.entries.end(), i) !=
                f.entries.end())
                edge = {SpDelta::VAL, 0};
            for (size_t p : cfg.nodes[i].preds)
                if (p >= f.begin && p < f.end)
                    edge = meetDelta(edge, out[p - f.begin]);
            if (resume_from[k] != kNoItem)
                edge = meetDelta(edge, out[resume_from[k] - f.begin]);
            SpDelta after = transfer(i, edge);
            if (!(in[k] == edge) || !(out[k] == after)) {
                in[k] = edge;
                out[k] = after;
                changed = true;
            }
        }
    }

    OwnDepth own;
    own.site_depth.assign(g.sites.size(), -1);
    for (size_t k = 0; k < n; ++k) {
        if (out[k].kind == SpDelta::BAD)
            own.known = false;
        else if (out[k].kind == SpDelta::VAL && out[k].d < 0)
            own.words = std::max(own.words,
                                 static_cast<uint64_t>(-out[k].d));
    }
    for (size_t si : f.sites) {
        const CallSite &s = g.sites[si];
        if (s.item < f.begin || s.item >= f.end)
            continue;
        const SpDelta &d = out[s.item - f.begin];
        if (d.kind == SpDelta::VAL)
            own.site_depth[si] = std::max<int64_t>(0, -d.d);
        else if (d.kind == SpDelta::BAD)
            own.known = false;
    }
    return own;
}

/** Minimal JSON string escaping (matches diagnostics.cc). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                out += strprintf("\\u%04x", c);
            } else {
                out += c;
            }
            break;
        }
    }
    return out;
}

} // namespace

RangeReport
checkMemorySafety(const Cfg &cfg, const CallGraph &graph,
                  const RangeCheckOptions &options,
                  const std::string &unit_name, DiagnosticEngine *diags)
{
    RangeAnalysis ranges = analyzeValueRanges(cfg, options.range);

    RangeReport report;
    report.unit = unit_name;
    report.items = cfg.size();
    report.reachable_items = ranges.reachable_items;
    report.functions = graph.size();
    report.widenings = ranges.widenings;
    report.iterations = ranges.iterations;
    report.stack_budget = options.stack_budget;

    auto emit = [&](Code code, Severity severity, size_t item,
                    std::string message) {
        if (severity == Severity::ERROR)
            ++report.must_findings;
        else
            ++report.may_findings;
        if (diags)
            diags->report(code, severity, item, std::move(message));
    };

    size_t n = cfg.size();
    std::vector<char> must_fault(n, 0);

    // ------------------------------------------- per-item MS checks
    for (size_t i = 0; i < n; ++i) {
        const RegState &s = ranges.in[i];
        const Item &item = cfg.unit->items[i];
        if (!s.reachable || item.is_data)
            continue;
        const isa::Instruction &inst = item.inst;

        if (inst.mem && isa::memReferencesMemory(*inst.mem)) {
            const isa::MemPiece &m = *inst.mem;
            ++report.checked_refs;
            AbsVal addr = memAddressRange(m, item.target, cfg, s);
            const char *what = m.is_store ? "store" : "load";

            if (s.map_enable == Flag::NO) {
                // Physical addressing: valid words are [0, mem_words).
                Verdict v = classifyOverlap(addr, options.mem_words,
                                            kWordMax);
                if (v == Verdict::MUST) {
                    must_fault[i] = 1;
                    emit(Code::MS001, Severity::ERROR, i,
                         strprintf("%s address %s is outside physical "
                                   "memory [0, 0x%x)",
                                   what, intervalText(addr).c_str(),
                                   options.mem_words));
                } else if (v == Verdict::MAY) {
                    emit(Code::MS001, Severity::WARNING, i,
                         strprintf("%s address %s may lie outside "
                                   "physical memory [0, 0x%x)",
                                   what, intervalText(addr).c_str(),
                                   options.mem_words));
                }
            } else if (s.map_enable == Flag::YES) {
                // Mapped addressing: the program space is two halves
                // of 2^(23-n) words each (sim/mapping.h geometry);
                // everything between them is an address error.
                auto sb = s.seg_bits.asConst();
                if (sb && *sb <= 8) {
                    int64_t half = 1ll << (23 - *sb);
                    Verdict v = classifyOverlap(addr, half,
                                                kWordSpan - half - 1);
                    if (v == Verdict::MUST) {
                        must_fault[i] = 1;
                        emit(Code::MS003, Severity::ERROR, i,
                             strprintf(
                                 "%s address %s falls in the unmapped "
                                 "gap [0x%llx, 0x%llx) between the two "
                                 "segments (seg_bits %u)",
                                 what, intervalText(addr).c_str(),
                                 static_cast<unsigned long long>(half),
                                 static_cast<unsigned long long>(
                                     kWordSpan - half),
                                 *sb));
                    } else if (v == Verdict::MAY) {
                        emit(Code::MS003, Severity::WARNING, i,
                             strprintf(
                                 "%s address %s may fall in the "
                                 "unmapped gap [0x%llx, 0x%llx) between "
                                 "the two segments (seg_bits %u)",
                                 what, intervalText(addr).c_str(),
                                 static_cast<unsigned long long>(half),
                                 static_cast<unsigned long long>(
                                     kWordSpan - half),
                                 *sb));
                    }
                }
            }

            // MS002: a word-sized object accessed through BASE_SHIFT
            // whose byte/element index provably has non-zero low bits:
            // the shift discards them and the hardware silently reads
            // the containing word.
            if (m.mode == MemMode::BASE_SHIFT && m.shift > 0 &&
                item.ref_size == 32) {
                const AbsVal &idx = s.regs[m.index];
                unsigned kb = std::min<unsigned>(idx.low_bits, m.shift);
                uint32_t low = idx.low_val & maskBits(kb);
                if (kb > 0 && low != 0) {
                    emit(Code::MS002, Severity::ERROR, i,
                         strprintf("word-sized %s discards non-zero "
                                   "low index bits (index %s, low %u "
                                   "bit%s = %u): the access truncates "
                                   "to the containing word",
                                   what, intervalText(idx).c_str(), kb,
                                   kb == 1 ? "" : "s", low));
                }
            }
        }

        // MS007: the table-dispatch fetch is a data-port read like any
        // other; its address must stay inside the declared table. The
        // table is the *legal* region here, so the verdict logic is
        // classifyOverlap's mirror image.
        if (inst.jump && isa::jumpIsTable(inst.jump->kind)) {
            auto ti = cfg.tables.find(i);
            if (ti != cfg.tables.end() && !ti->second.entries.empty()) {
                ++report.checked_refs;
                isa::MemPiece fetch;
                fetch.mode = MemMode::BASE_INDEX;
                fetch.base = inst.jump->target_reg;
                fetch.index = inst.jump->index;
                AbsVal addr = memAddressRange(fetch, "", cfg, s);
                int64_t t_lo =
                    static_cast<int64_t>(cfg.unit->origin) +
                    static_cast<int64_t>(ti->second.first_entry);
                int64_t t_hi =
                    t_lo +
                    static_cast<int64_t>(ti->second.entries.size()) - 1;
                if (addr.hi < t_lo || addr.lo > t_hi) {
                    emit(Code::MS007, Severity::ERROR, i,
                         strprintf("table fetch address %s lies outside "
                                   "the %zu-entry jump table at "
                                   "[0x%llx, 0x%llx]",
                                   intervalText(addr).c_str(),
                                   ti->second.entries.size(),
                                   static_cast<unsigned long long>(t_lo),
                                   static_cast<unsigned long long>(
                                       t_hi)));
                } else if (!(addr.lo >= t_lo && addr.hi <= t_hi) &&
                           !addr.isTop() && !addr.widened) {
                    emit(Code::MS007, Severity::WARNING, i,
                         strprintf("table fetch address %s may read "
                                   "outside the %zu-entry jump table at "
                                   "[0x%llx, 0x%llx]",
                                   intervalText(addr).c_str(),
                                   ti->second.entries.size(),
                                   static_cast<unsigned long long>(t_lo),
                                   static_cast<unsigned long long>(
                                       t_hi)));
                }
            }
        }

        if (inst.alu && isa::aluCanOverflow(inst.alu->op) &&
            s.ovf_enable == Flag::YES) {
            ++report.checked_alu;
            const isa::AluPiece &a = *inst.alu;
            AbsVal rsv = s.regs[a.rs];
            AbsVal s2v = src2Val(s, a.src2);
            auto r1 = rsv.signedRange();
            auto r2 = s2v.signedRange();
            if (r1 && r2) {
                int64_t lo = 0, hi = 0;
                switch (a.op) {
                  case AluOp::ADD:
                    lo = r1->first + r2->first;
                    hi = r1->second + r2->second;
                    break;
                  case AluOp::SUB:
                    lo = r1->first - r2->second;
                    hi = r1->second - r2->first;
                    break;
                  default: // RSUB (aluCanOverflow admits no others)
                    lo = r2->first - r1->second;
                    hi = r2->second - r1->first;
                    break;
                }
                if (lo > kInt32Max || hi < kInt32Min) {
                    must_fault[i] = 1;
                    emit(Code::MS004, Severity::ERROR, i,
                         strprintf("signed overflow: result in "
                                   "[%lld, %lld] cannot fit 32 bits "
                                   "and overflow traps are enabled",
                                   static_cast<long long>(lo),
                                   static_cast<long long>(hi)));
                } else if ((hi > kInt32Max || lo < kInt32Min) &&
                           !rsv.widened && !s2v.widened) {
                    emit(Code::MS004, Severity::WARNING, i,
                         strprintf("possible signed overflow: result "
                                   "in [%lld, %lld] may leave 32 bits "
                                   "with overflow traps enabled",
                                   static_cast<long long>(lo),
                                   static_cast<long long>(hi)));
                }
            }
        }
    }

    // ---------------------------------------------- MS006 must-fault
    // Remove every must-fault item; if the entry can no longer reach
    // any exit (HALT, or an edge leaving the unit), the program
    // provably cannot complete without taking an exception.
    if (n > 0) {
        bool exit_found = false;
        std::vector<char> seen(n, 0);
        std::vector<size_t> stack;
        if (!must_fault[0]) {
            seen[0] = 1;
            stack.push_back(0);
        }
        while (!stack.empty() && !exit_found) {
            size_t i = stack.back();
            stack.pop_back();
            const Item &item = cfg.unit->items[i];
            bool halts = !item.is_data && item.inst.special &&
                         item.inst.special->op == isa::SpecialOp::HALT;
            if (halts || cfg.nodes[i].unknown_succ) {
                exit_found = true;
                break;
            }
            for (size_t succ : cfg.nodes[i].succs)
                if (!seen[succ] && !must_fault[succ]) {
                    seen[succ] = 1;
                    stack.push_back(succ);
                }
        }
        if (!exit_found)
            emit(Code::MS006, Severity::ERROR, kNoItem,
                 "every path from the unit entry to an exit passes "
                 "through an instruction that must fault");
    }

    // ------------------------------------------- MS005 stack rollup
    std::vector<OwnDepth> own;
    own.reserve(graph.size());
    for (const FunctionInfo &f : graph.functions)
        own.push_back(solveOwnDepth(graph, f, ranges));

    struct Roll
    {
        bool known = false;
        bool unbounded = false;
        uint64_t words = 0;
    };
    std::vector<Roll> roll(graph.size());
    std::vector<size_t> order(graph.size());
    for (size_t i = 0; i < order.size(); ++i)
        order[i] = i;
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
        if (graph.functions[a].scc != graph.functions[b].scc)
            return graph.functions[a].scc < graph.functions[b].scc;
        return a < b;
    });
    for (size_t fi : order) {
        const FunctionInfo &f = graph.functions[fi];
        Roll r;
        if (f.recursive) {
            r.unbounded = true;
            roll[fi] = r;
            continue;
        }
        r.known = own[fi].known;
        r.words = own[fi].words;
        for (size_t si : f.sites) {
            const CallSite &s = graph.sites[si];
            int64_t at_site = own[fi].site_depth[si];
            if (at_site < 0)
                continue; // site unreached: contributes nothing
            if (!s.resolved()) {
                r.known = false;
                continue;
            }
            const Roll &callee = roll[s.callee];
            if (callee.unbounded)
                r.unbounded = true;
            else if (!callee.known)
                r.known = false;
            else
                r.words = std::max(
                    r.words, static_cast<uint64_t>(at_site) +
                                 callee.words);
        }
        roll[fi] = r;
    }

    for (size_t fi = 0; fi < graph.size(); ++fi) {
        const FunctionInfo &f = graph.functions[fi];
        StackDepthInfo info;
        info.name = f.name;
        info.function = fi;
        info.known = roll[fi].known;
        info.unbounded = roll[fi].unbounded;
        info.own_words = own[fi].known ? own[fi].words : 0;
        info.rollup_words = roll[fi].known ? roll[fi].words : 0;
        report.stack.push_back(info);

        if (options.stack_budget == 0)
            continue;
        if (f.recursive) {
            emit(Code::MS005, Severity::ERROR, f.entry,
                 strprintf("function '%s' is recursive: worst-case "
                           "stack depth is unbounded (budget %u words)",
                           f.name.c_str(), options.stack_budget));
        } else if (roll[fi].known &&
                   roll[fi].words > options.stack_budget) {
            emit(Code::MS005, Severity::ERROR, f.entry,
                 strprintf("worst-case stack depth of '%s' is %llu "
                           "words (own body %llu), exceeding the "
                           "%u-word budget",
                           f.name.c_str(),
                           static_cast<unsigned long long>(
                               roll[fi].words),
                           static_cast<unsigned long long>(
                               own[fi].words),
                           options.stack_budget));
        }
    }

    return report;
}

std::string
rangeText(const RangeReport &report)
{
    std::string out;
    out += strprintf("value-range report for %s\n",
                     report.unit.c_str());
    out += strprintf("  items: %zu of %zu reachable; refs checked: "
                     "%zu; overflow checks: %zu\n",
                     report.reachable_items, report.items,
                     report.checked_refs, report.checked_alu);
    out += strprintf("  findings: %zu must (errors), %zu may "
                     "(warnings)\n",
                     report.must_findings, report.may_findings);
    out += strprintf("  fixpoint: %zu item transfers, %zu widenings\n",
                     report.iterations, report.widenings);
    if (report.stack_budget)
        out += strprintf("  stack budget: %u words\n",
                         report.stack_budget);
    else
        out += "  stack budget: none\n";
    if (!report.stack.empty()) {
        out += strprintf("  %-24s %8s %10s\n", "function", "own",
                         "rollup");
        for (const StackDepthInfo &s : report.stack) {
            std::string rollup = "?";
            if (s.unbounded)
                rollup = "unbounded";
            else if (s.known)
                rollup = strprintf(
                    "%llu",
                    static_cast<unsigned long long>(s.rollup_words));
            out += strprintf(
                "  %-24s %8llu %10s\n", s.name.c_str(),
                static_cast<unsigned long long>(s.own_words),
                rollup.c_str());
        }
    }
    return out;
}

std::string
rangeJson(const RangeReport &report)
{
    std::string out = "{\n";
    out += "  \"schema\": 1,\n";
    out += strprintf("  \"unit\": \"%s\",\n",
                     jsonEscape(report.unit).c_str());
    out += strprintf("  \"items\": %zu,\n", report.items);
    out += strprintf("  \"reachable_items\": %zu,\n",
                     report.reachable_items);
    out += strprintf("  \"functions\": %zu,\n", report.functions);
    out += strprintf("  \"checked_refs\": %zu,\n", report.checked_refs);
    out += strprintf("  \"checked_alu\": %zu,\n", report.checked_alu);
    out += strprintf("  \"must_findings\": %zu,\n",
                     report.must_findings);
    out += strprintf("  \"may_findings\": %zu,\n", report.may_findings);
    out += strprintf("  \"widenings\": %zu,\n", report.widenings);
    out += strprintf("  \"iterations\": %zu,\n", report.iterations);
    if (report.stack_budget)
        out += strprintf("  \"stack_budget\": %u,\n",
                         report.stack_budget);
    else
        out += "  \"stack_budget\": null,\n";
    out += "  \"stack\": [";
    for (size_t i = 0; i < report.stack.size(); ++i) {
        const StackDepthInfo &s = report.stack[i];
        out += (i ? ",\n    " : "\n    ");
        out += strprintf("{\"function\": \"%s\", ",
                         jsonEscape(s.name).c_str());
        out += strprintf("\"own_words\": %llu, ",
                         static_cast<unsigned long long>(s.own_words));
        if (s.known)
            out += strprintf("\"rollup_words\": %llu, ",
                             static_cast<unsigned long long>(
                                 s.rollup_words));
        else
            out += "\"rollup_words\": null, ";
        out += strprintf("\"unbounded\": %s}",
                         s.unbounded ? "true" : "false");
    }
    out += report.stack.empty() ? "]\n" : "\n  ]\n";
    out += "}\n";
    return out;
}

void
publishRangeMetrics(const RangeReport &report)
{
    obs::RangeMetrics &m = obs::rangeMetrics();
    m.reports->add(1);
    m.functions->add(report.functions);
    m.checked_refs->add(report.checked_refs);
    m.must_findings->add(report.must_findings);
    m.may_findings->add(report.may_findings);
    m.widenings->add(report.widenings);
}

FaultCoverage
checkFaultCoverage(const std::vector<Diagnostic> &diags, uint32_t origin,
                   size_t items, const std::vector<ObservedFault> &faults)
{
    FaultCoverage cov;
    cov.events = faults.size();

    std::set<size_t> ovf_items, mem_items;
    bool any_ovf = false, any_mem = false, unit_ms006 = false;
    for (const Diagnostic &d : diags) {
        switch (d.code) {
          case Code::MS004:
            any_ovf = true;
            if (d.item_index != kNoItem)
                ovf_items.insert(d.item_index);
            break;
          case Code::MS001:
          case Code::MS003:
          case Code::MS007:
            any_mem = true;
            if (d.item_index != kNoItem)
                mem_items.insert(d.item_index);
            break;
          case Code::MS006:
            any_mem = true;
            if (d.item_index == kNoItem)
                unit_ms006 = true;
            else
                mem_items.insert(d.item_index);
            break;
          default:
            break;
        }
    }

    for (const ObservedFault &f : faults) {
        if (f.cause == kFaultPageFault) {
            ++cov.exempt; // residency is OS state, not program state
            continue;
        }
        bool overflow = f.cause == kFaultOverflow;
        int64_t idx = static_cast<int64_t>(f.pc) - origin;
        bool in_unit = idx >= 0 && idx < static_cast<int64_t>(items);
        const std::set<size_t> &family = overflow ? ovf_items
                                                  : mem_items;
        bool family_any = overflow ? any_ovf : any_mem;
        bool covered = (!overflow && unit_ms006) ||
                       (in_unit && family.count(
                                       static_cast<size_t>(idx))) ||
                       (!in_unit && family_any);
        if (covered) {
            ++cov.covered;
        } else {
            cov.notes.push_back(strprintf(
                "uncovered %s at pc %u (addr 0x%x): no %s finding",
                overflow ? "overflow" : "fault", f.pc, f.addr,
                overflow ? "MS004" : "MS001/MS003/MS006/MS007"));
        }
    }
    return cov;
}

} // namespace mips::verify
