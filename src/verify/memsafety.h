/**
 * @file
 * Memory-safety checking on top of the value-range analysis.
 *
 * Consumes the fixpoint of verify/valuerange.h plus the call graph of
 * verify/interproc.h and emits the MS-family diagnostics:
 *
 *   MS001 (error/warning) load/store word address outside physical
 *                         memory [0, mem_words)
 *   MS002 (error)         base-shifted word access whose index has
 *                         provably non-zero low bits (the hardware
 *                         silently truncates to the containing word)
 *   MS003 (error/warning) mapped-mode reference folding into the gap
 *                         between the two valid segments
 *   MS004 (error/warning) ADD/SUB/RSUB provably or possibly leaving
 *                         the signed 32-bit range with overflow traps
 *                         enabled
 *   MS005 (error)         worst-case stack depth, rolled up over the
 *                         call graph, exceeds the configured budget
 *                         (recursion makes the depth unbounded)
 *   MS006 (error)         every path from the unit entry to an exit
 *                         passes through a must-fault instruction
 *
 * Severity policy (the zero-false-positive contract every verify
 * check in this repo follows): **MUST** findings — the entire
 * abstract value set misbehaves — are errors and are sound even on
 * widened values (widening only grows the set). **MAY** findings —
 * the value set is genuinely narrowed, not widened, and *overlaps*
 * the illegal region — are warnings. Unknown (TOP) or widened values
 * stay silent rather than alarmist.
 *
 * The analysis is validated against the simulator as an oracle
 * (checkFaultCoverage): every dynamically observed address-error or
 * overflow event must be covered by a MUST or MAY finding at the
 * faulting item. Page faults are exempt — residency is operating-
 * system state no static analysis of the program can know.
 */
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "verify/interproc.h"
#include "verify/valuerange.h"

namespace mips::verify {

/** Knobs for one memory-safety run. */
struct RangeCheckOptions
{
    /** Physical memory size in words (MS001). Matches the simulator
     *  default (sim::PhysMemory). */
    uint32_t mem_words = 1u << 20;
    /** Worst-case stack budget in words; 0 disables MS005. */
    uint32_t stack_budget = 0;
    /** Fixpoint knobs forwarded to analyzeValueRanges. */
    RangeOptions range;

    bool operator==(const RangeCheckOptions &) const = default;
};

/** Per-function worst-case stack usage (words below the entry SP). */
struct StackDepthInfo
{
    std::string name;
    size_t function = kNoFunc;
    bool known = false;       ///< own-body delta was fully tracked
    bool unbounded = false;   ///< in a call-graph cycle
    uint64_t own_words = 0;   ///< deepest point within the body
    uint64_t rollup_words = 0; ///< own + resolved callees (when known)
};

/** Statistics of one memory-safety run (the `--range` report). */
struct RangeReport
{
    std::string unit;
    size_t items = 0;          ///< unit items
    size_t reachable_items = 0;
    size_t functions = 0;
    size_t checked_refs = 0;   ///< memory references range-checked
    size_t checked_alu = 0;    ///< overflow-checked ALU pieces
    size_t must_findings = 0;  ///< error-severity MS findings
    size_t may_findings = 0;   ///< warning-severity MS findings
    size_t widenings = 0;
    size_t iterations = 0;
    uint32_t stack_budget = 0; ///< 0 = MS005 disabled
    std::vector<StackDepthInfo> stack;
};

/**
 * Run the value-range analysis and every MS check over a built CFG +
 * call graph, reporting findings to `diags` (may be null to collect
 * statistics only).
 */
RangeReport checkMemorySafety(const Cfg &cfg, const CallGraph &graph,
                              const RangeCheckOptions &options,
                              const std::string &unit_name,
                              DiagnosticEngine *diags);

/** Human rendering: run statistics plus the per-function stack table. */
std::string rangeText(const RangeReport &report);

/** Machine rendering (`"schema": 1`): statistics, budget, and the
 *  per-function stack array. */
std::string rangeJson(const RangeReport &report);

/** Publish verify.range.* counters for one computed report. */
void publishRangeMetrics(const RangeReport &report);

// ------------------------------------------------- simulator oracle

/** Exception-cause codes mirrored from sim::Cause (mipsverify's main
 *  static-asserts the match) so this layer stays simulator-free. */
constexpr uint8_t kFaultOverflow = 4;
constexpr uint8_t kFaultPageFault = 5;
constexpr uint8_t kFaultAddressError = 6;

/** One dynamically observed fault, from sim::Cpu::faultEvents(). */
struct ObservedFault
{
    uint8_t cause = 0; ///< kFault* code
    uint32_t pc = 0;   ///< restart address of the faulting item
    uint32_t addr = 0; ///< faulting address (memory faults)
};

/** Outcome of matching dynamic faults against static findings. */
struct FaultCoverage
{
    size_t events = 0;  ///< faults observed by the simulator
    size_t covered = 0; ///< matched by a MUST or MAY finding
    size_t exempt = 0;  ///< page faults (residency is OS state)
    std::vector<std::string> notes; ///< one line per uncovered event

    bool ok() const { return covered + exempt == events; }
};

/**
 * Check that every observed fault is predicted by a finding: an
 * overflow event needs MS004 at the faulting item; an address error
 * needs MS001/MS003/MS006 at the item (a unit-level MS006 or, for a
 * fault whose restart address lies outside the unit, any finding of
 * the family covers it). Page faults are exempt.
 */
FaultCoverage checkFaultCoverage(const std::vector<Diagnostic> &diags,
                                 uint32_t origin, size_t items,
                                 const std::vector<ObservedFault> &faults);

} // namespace mips::verify
