/**
 * @file
 * mipsverify — static hazard verifier, lint driver, and translation
 * validator.
 *
 *   mipsverify file.s            verify an assembly unit as-is
 *   mipsverify --reorg file.s    reorganize legal code, then verify the
 *                                output (including .noreorder integrity)
 *   mipsverify --tv file.s       reorganize, verify, and symbolically
 *                                prove the output equivalent (implies
 *                                --reorg)
 *   mipsverify --corpus          compile every embedded workload program
 *                                through the full tool chain and verify
 *                                each reorganized unit (add --tv to also
 *                                prove each one equivalent)
 *
 * Options: --json (machine-readable report with per-unit wall time),
 * --no-lint (hazard checks only), --quiet (status only), --strict
 * (promote notes — e.g. TV090 "not proven" — to errors), --fail-fast
 * (stop --corpus at the first failing unit), --no-reorder / --no-pack /
 * --no-fill-delay (toggle individual reorganizer stages, for the
 * per-stage validation matrix in scripts/check.sh).
 *
 * Exit status: 0 = no error-severity findings, 1 = at least one error,
 * 2 = usage or input failure.
 */
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "plc/driver.h"
#include "reorg/reorganizer.h"
#include "support/logging.h"
#include "verify/tv.h"
#include "verify/verify.h"
#include "workload/corpus.h"

namespace {

struct CliOptions
{
    bool reorg = false;
    bool tv = false;
    bool corpus = false;
    bool json = false;
    bool quiet = false;
    bool strict = false;
    bool fail_fast = false;
    mips::verify::VerifyOptions verify;
    mips::reorg::ReorgOptions reorg_options;
    std::string file;
};

void
usage(FILE *to)
{
    std::fprintf(to,
                 "usage: mipsverify [--reorg] [--tv] [--json] [--no-lint] "
                 "[--strict]\n"
                 "                  [--no-reorder] [--no-pack] "
                 "[--no-fill-delay] [--quiet] file.s\n"
                 "       mipsverify --corpus [--tv] [--fail-fast] "
                 "[--json] [--no-lint]\n"
                 "                  [--strict] [--no-reorder] [--no-pack] "
                 "[--no-fill-delay] [--quiet]\n");
}

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** Fold the translation-validation findings into the hazard report. */
void
mergeReport(mips::verify::VerifyReport *into,
            const mips::verify::VerifyReport &from)
{
    into->diagnostics.insert(into->diagnostics.end(),
                             from.diagnostics.begin(),
                             from.diagnostics.end());
    into->errors += from.errors;
    into->warnings += from.warnings;
    into->notes += from.notes;
}

/** Print (unless quiet) and report whether the unit verified clean. */
bool
emit(const CliOptions &cli, mips::verify::VerifyReport report,
     const mips::assembler::Unit &unit, const std::string &name,
     double elapsed_ms)
{
    if (cli.strict)
        mips::verify::promoteNotesToErrors(&report);
    if (cli.json) {
        std::printf("%s\n",
                    mips::verify::reportJson(report, name, elapsed_ms)
                        .c_str());
    } else if (!cli.quiet) {
        std::string text = mips::verify::reportText(report, unit, name);
        if (!text.empty())
            std::fputs(text.c_str(), stdout);
        std::printf("%s: %zu error(s), %zu warning(s), %zu note(s) "
                    "[%.1f ms]\n",
                    name.c_str(), report.errors, report.warnings,
                    report.notes, elapsed_ms);
    }
    return report.clean();
}

int
runCorpus(const CliOptions &cli)
{
    std::vector<mips::workload::CorpusProgram> programs =
        mips::workload::corpus();
    programs.push_back(mips::workload::fibonacciProgram());
    programs.push_back(mips::workload::puzzle0Program());
    programs.push_back(mips::workload::puzzle1Program());

    size_t failed = 0;
    size_t ran = 0;
    for (const auto &program : programs) {
        Clock::time_point start = Clock::now();
        ++ran;
        auto built = mips::plc::buildExecutable(
            program.source, mips::plc::CompileOptions{}, cli.reorg_options);
        if (!built.ok()) {
            std::fprintf(stderr, "mipsverify: %s: compile failed: %s\n",
                         program.name, built.error().message.c_str());
            ++failed;
            if (cli.fail_fast)
                break;
            continue;
        }
        const mips::plc::Executable &exe = built.value();
        auto report = mips::verify::verifyReorganization(
            exe.legal_unit, exe.final_unit, cli.verify);
        if (cli.tv) {
            mips::verify::TvOptions tvopts;
            tvopts.alias = cli.reorg_options.alias;
            mergeReport(&report, mips::verify::validateTranslation(
                                     exe.legal_unit, exe.final_unit,
                                     exe.tv_hints, tvopts));
        }
        if (!emit(cli, report, exe.final_unit, program.name,
                  msSince(start))) {
            ++failed;
            if (cli.fail_fast)
                break;
        }
    }
    if (!cli.quiet) {
        std::printf("mipsverify: %zu/%zu corpus program(s) verified "
                    "clean%s\n",
                    ran - failed, programs.size(),
                    ran < programs.size() ? " (stopped early)" : "");
    }
    return failed == 0 ? 0 : 1;
}

int
runFile(const CliOptions &cli)
{
    std::string source;
    if (cli.file == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        source = buf.str();
    } else {
        std::ifstream in(cli.file);
        if (!in) {
            std::fprintf(stderr, "mipsverify: cannot open %s\n",
                         cli.file.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        source = buf.str();
    }

    auto parsed = mips::assembler::parse(source);
    if (!parsed.ok()) {
        std::fprintf(stderr, "mipsverify: %s: %s\n", cli.file.c_str(),
                     parsed.error().message.c_str());
        return 2;
    }
    mips::assembler::Unit unit = parsed.take();

    Clock::time_point start = Clock::now();
    mips::verify::VerifyReport report;
    const mips::assembler::Unit *report_unit = &unit;
    mips::assembler::Unit reorganized;
    if (cli.reorg) {
        mips::reorg::ReorgResult result =
            mips::reorg::reorganize(unit, cli.reorg_options);
        reorganized = std::move(result.unit);
        report = mips::verify::verifyReorganization(unit, reorganized,
                                                    cli.verify);
        if (cli.tv) {
            mips::verify::TvOptions tvopts;
            tvopts.alias = cli.reorg_options.alias;
            mergeReport(&report,
                        mips::verify::validateTranslation(
                            unit, reorganized, result.hints, tvopts));
        }
        report_unit = &reorganized;
    } else {
        report = mips::verify::verifyUnit(unit, cli.verify);
    }
    return emit(cli, report, *report_unit, cli.file, msSince(start)) ? 0
                                                                     : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--reorg") {
            cli.reorg = true;
        } else if (arg == "--tv") {
            cli.tv = true;
            cli.reorg = true;
        } else if (arg == "--corpus") {
            cli.corpus = true;
        } else if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--no-lint") {
            cli.verify.lint = false;
        } else if (arg == "--strict") {
            cli.strict = true;
        } else if (arg == "--fail-fast") {
            cli.fail_fast = true;
        } else if (arg == "--no-reorder") {
            cli.reorg_options.reorder = false;
        } else if (arg == "--no-pack") {
            cli.reorg_options.pack = false;
        } else if (arg == "--no-fill-delay") {
            cli.reorg_options.fill_delay = false;
        } else if (arg == "--quiet") {
            cli.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::fprintf(stderr, "mipsverify: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else if (cli.file.empty()) {
            cli.file = arg;
        } else {
            usage(stderr);
            return 2;
        }
    }
    if (cli.corpus) {
        if (!cli.file.empty()) {
            usage(stderr);
            return 2;
        }
        return runCorpus(cli);
    }
    if (cli.file.empty()) {
        usage(stderr);
        return 2;
    }
    return runFile(cli);
}
