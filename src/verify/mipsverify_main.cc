/**
 * @file
 * mipsverify — static hazard verifier and lint driver.
 *
 *   mipsverify file.s            verify an assembly unit as-is
 *   mipsverify --reorg file.s    reorganize legal code, then verify the
 *                                output (including .noreorder integrity)
 *   mipsverify --corpus          compile every embedded workload program
 *                                through the full tool chain and verify
 *                                each reorganized unit
 *
 * Options: --json (machine-readable report), --no-lint (hazard checks
 * only), --quiet (status only, no per-finding output).
 *
 * Exit status: 0 = no error-severity findings, 1 = at least one error,
 * 2 = usage or input failure.
 */
#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "plc/driver.h"
#include "reorg/reorganizer.h"
#include "support/logging.h"
#include "verify/verify.h"
#include "workload/corpus.h"

namespace {

struct CliOptions
{
    bool reorg = false;
    bool corpus = false;
    bool json = false;
    bool quiet = false;
    mips::verify::VerifyOptions verify;
    std::string file;
};

void
usage(FILE *to)
{
    std::fprintf(to,
                 "usage: mipsverify [--reorg] [--json] [--no-lint] "
                 "[--quiet] file.s\n"
                 "       mipsverify --corpus [--json] [--no-lint] "
                 "[--quiet]\n");
}

/** Print (unless quiet) and report whether the unit verified clean. */
bool
emit(const CliOptions &cli, const mips::verify::VerifyReport &report,
     const mips::assembler::Unit &unit, const std::string &name)
{
    if (cli.json) {
        std::printf("%s\n", mips::verify::reportJson(report, name).c_str());
    } else if (!cli.quiet) {
        std::string text = mips::verify::reportText(report, unit, name);
        if (!text.empty())
            std::fputs(text.c_str(), stdout);
        std::printf("%s: %zu error(s), %zu warning(s), %zu note(s)\n",
                    name.c_str(), report.errors, report.warnings,
                    report.notes);
    }
    return report.clean();
}

int
runCorpus(const CliOptions &cli)
{
    std::vector<mips::workload::CorpusProgram> programs =
        mips::workload::corpus();
    programs.push_back(mips::workload::fibonacciProgram());
    programs.push_back(mips::workload::puzzle0Program());
    programs.push_back(mips::workload::puzzle1Program());

    size_t failed = 0;
    for (const auto &program : programs) {
        auto built = mips::plc::buildExecutable(program.source);
        if (!built.ok()) {
            std::fprintf(stderr, "mipsverify: %s: compile failed: %s\n",
                         program.name, built.error().message.c_str());
            ++failed;
            continue;
        }
        const mips::plc::Executable &exe = built.value();
        auto report = mips::verify::verifyReorganization(
            exe.legal_unit, exe.final_unit, cli.verify);
        if (!emit(cli, report, exe.final_unit, program.name))
            ++failed;
    }
    if (!cli.quiet) {
        std::printf("mipsverify: %zu/%zu corpus program(s) verified "
                    "clean\n",
                    programs.size() - failed, programs.size());
    }
    return failed == 0 ? 0 : 1;
}

int
runFile(const CliOptions &cli)
{
    std::string source;
    if (cli.file == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        source = buf.str();
    } else {
        std::ifstream in(cli.file);
        if (!in) {
            std::fprintf(stderr, "mipsverify: cannot open %s\n",
                         cli.file.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        source = buf.str();
    }

    auto parsed = mips::assembler::parse(source);
    if (!parsed.ok()) {
        std::fprintf(stderr, "mipsverify: %s: %s\n", cli.file.c_str(),
                     parsed.error().message.c_str());
        return 2;
    }
    mips::assembler::Unit unit = parsed.take();

    mips::verify::VerifyReport report;
    const mips::assembler::Unit *report_unit = &unit;
    mips::assembler::Unit reorganized;
    if (cli.reorg) {
        reorganized = mips::reorg::reorganize(unit).unit;
        report = mips::verify::verifyReorganization(unit, reorganized,
                                                    cli.verify);
        report_unit = &reorganized;
    } else {
        report = mips::verify::verifyUnit(unit, cli.verify);
    }
    return emit(cli, report, *report_unit, cli.file) ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--reorg") {
            cli.reorg = true;
        } else if (arg == "--corpus") {
            cli.corpus = true;
        } else if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--no-lint") {
            cli.verify.lint = false;
        } else if (arg == "--quiet") {
            cli.quiet = true;
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::fprintf(stderr, "mipsverify: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else if (cli.file.empty()) {
            cli.file = arg;
        } else {
            usage(stderr);
            return 2;
        }
    }
    if (cli.corpus) {
        if (!cli.file.empty()) {
            usage(stderr);
            return 2;
        }
        return runCorpus(cli);
    }
    if (cli.file.empty()) {
        usage(stderr);
        return 2;
    }
    return runFile(cli);
}
