/**
 * @file
 * mipsverify — static hazard verifier, lint driver, and translation
 * validator.
 *
 *   mipsverify file.s            verify an assembly unit as-is
 *   mipsverify --reorg file.s    reorganize legal code, then verify the
 *                                output (including .noreorder integrity)
 *   mipsverify --tv file.s       reorganize, verify, and symbolically
 *                                prove the output equivalent (implies
 *                                --reorg)
 *   mipsverify --corpus          compile every embedded workload program
 *                                through the full tool chain and verify
 *                                each reorganized unit (add --tv to also
 *                                prove each one equivalent)
 *
 * Options: --jobs N (verify corpus units on N threads, 0 = auto: one
 * worker per hardware thread; diagnostics are buffered per unit and
 * emitted in input order, so the output is byte-identical to
 * --jobs 1 — modulo wall-clock fields, which --no-time suppresses
 * for the determinism gate), --json
 * (machine-readable report with per-unit wall time), --no-lint (hazard
 * checks only), --quiet (status only), --strict (promote notes — e.g.
 * TV090 "not proven" — to errors), --fail-fast (stop --corpus at the
 * first failing unit), --no-reorder / --no-pack / --no-fill-delay
 * (toggle individual reorganizer stages, for the per-stage validation
 * matrix in scripts/check.sh).
 *
 * Interprocedural reporting (docs/CLI.md): --cost[=json] emits the
 * static cycle-cost report (per function and per block; in --corpus
 * mode each unit also runs profiled on the simulator and the static
 * model must agree with the dynamic per-word issue counts —
 * --cost-tolerance F bounds the TRAP-block slack), and
 * --callgraph[=FILE] writes the resolved call graph as Graphviz dot
 * (single-file mode only).
 *
 * Value-range / memory-safety reporting (docs/CLI.md): --range[=json]
 * runs the interval/alignment abstract interpreter over the unit and
 * folds the MS001-MS006 findings into the verify report (the stats +
 * per-function stack table print after it), --stack-budget N enables
 * the MS005 worst-case stack-depth gate, and --range-oracle
 * (single-file only) additionally runs the linked unit on the
 * simulator and checks that every observed fault/overflow event was
 * predicted by a MUST or MAY finding — the exit status then reports
 * the coverage verdict alone, which is what the scripts/check.sh
 * simulator-as-oracle gate consumes.
 *
 * Observability (docs/METRICS.md, docs/CLI.md): --stats prints a
 * snapshot of the process-wide metrics registry after the run (as a
 * text table; --stats=json emits the {"schema":1,"metrics":[...]}
 * document instead — combine with --quiet for pure-JSON stdout),
 * --trace-out FILE enables span tracing and writes a Chrome-trace
 * JSON (chrome://tracing / ui.perfetto.dev) on exit, and
 * --list-metrics prints every registered metric name one per line
 * (the scripts/check_metrics_docs.sh drift gate consumes this).
 *
 * Differential fuzzing (docs/FUZZING.md): --fuzz N generates N seeded
 * random programs (mini-Pascal and raw assembly, src/fuzz) and runs
 * each through the full configuration matrix with every trust layer
 * as an oracle; --seed S pins the batch seed (default 1982), and the
 * output is byte-identical across runs with the same seed.
 * --fuzz-minimize shrinks any mismatch chunk-by-chunk and writes a
 * reproducer file; --fuzz-file FILE replays one reproducer (kind
 * chosen by extension: .pas = Pascal, anything else = assembly),
 * which is how the tests/data/fuzz-regressions/ gate re-checks every
 * counterexample ever found.
 *
 * The corpus runs through a pipeline::Session, so repeated stages
 * share cached artifacts, and a pipeline::BatchRunner fans units
 * across the worker threads with deterministic result collection.
 *
 * Exit status: 0 = no error-severity findings, 1 = at least one error,
 * 2 = usage or input failure.
 */
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "asm/assembler.h"
#include "fuzz/differ.h"
#include "fuzz/generator.h"
#include "fuzz/minimize.h"
#include "obs/catalog.h"
#include "obs/trace.h"
#include "pipeline/batch.h"
#include "pipeline/session.h"
#include "reorg/reorganizer.h"
#include "sim/machine.h"
#include "support/logging.h"
#include "verify/costmodel.h"
#include "verify/interproc.h"
#include "verify/memsafety.h"
#include "verify/tv.h"
#include "verify/verify.h"
#include "workload/corpus.h"

// The memsafety layer mirrors sim::Cause so it can stay simulator-
// free; this is where the mirror is checked.
static_assert(mips::verify::kFaultOverflow ==
              static_cast<uint8_t>(mips::sim::Cause::OVERFLOW));
static_assert(mips::verify::kFaultPageFault ==
              static_cast<uint8_t>(mips::sim::Cause::PAGE_FAULT));
static_assert(mips::verify::kFaultAddressError ==
              static_cast<uint8_t>(mips::sim::Cause::ADDRESS_ERROR));

namespace {

struct CliOptions
{
    bool reorg = false;
    bool tv = false;
    bool corpus = false;
    bool json = false;
    bool quiet = false;
    bool strict = false;
    bool fail_fast = false;
    bool no_time = false;
    bool stats = false;
    bool stats_json = false;
    /** 0 = off, 1 = --cost (text), 2 = --cost=json. */
    int cost = 0;
    /** 0 = off, 1 = --range (text), 2 = --range=json. */
    int range = 0;
    bool range_oracle = false;
    uint32_t stack_budget = 0;
    bool callgraph = false;
    std::string callgraph_out; ///< empty = stdout
    double cost_tolerance = 0.02;
    unsigned jobs = 1;
    /** --fuzz N: differential-fuzz N generated programs (0 = off). */
    uint64_t fuzz = 0;
    /** --seed S: batch seed for --fuzz. */
    uint64_t fuzz_seed = 1982;
    /** --fuzz-minimize: shrink mismatches and write reproducers. */
    bool fuzz_minimize = false;
    /** --fuzz-file FILE: replay one generated/minimized program. */
    std::string fuzz_file;
    std::string trace_out;
    mips::verify::VerifyOptions verify;
    mips::reorg::ReorgOptions reorg_options;
    mips::plc::CompileOptions compile_options;
    std::string file;
};

void
usage(FILE *to)
{
    std::fprintf(to,
                 "usage: mipsverify [--reorg] [--tv] [--json] [--no-lint] "
                 "[--strict]\n"
                 "                  [--no-reorder] [--no-pack] "
                 "[--no-fill-delay] [--quiet]\n"
                 "                  [--no-time] [--stats[=json]] "
                 "[--trace-out FILE]\n"
                 "                  [--cost[=json]] [--callgraph[=FILE]] "
                 "[--range[=json]]\n"
                 "                  [--stack-budget N] [--range-oracle] "
                 "file.s\n"
                 "       mipsverify --corpus [--jobs N] [--tv] "
                 "[--fail-fast] [--json]\n"
                 "                  [--no-lint] [--strict] [--no-reorder] "
                 "[--no-pack]\n"
                 "                  [--no-fill-delay] [--no-jump-tables] "
                 "[--quiet] [--no-time]\n"
                 "                  [--stats[=json]] [--trace-out FILE]\n"
                 "                  [--cost[=json]] "
                 "[--cost-tolerance F]\n"
                 "                  [--range[=json]] [--stack-budget N]\n"
                 "       mipsverify --fuzz N [--seed S] "
                 "[--fuzz-minimize] [--jobs N]\n"
                 "                  [--quiet] [--stats[=json]] "
                 "[--trace-out FILE]\n"
                 "       mipsverify --fuzz-file FILE "
                 "[--fuzz-minimize]\n"
                 "       mipsverify --list-metrics\n");
}

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - start)
        .count();
}

/** Fold the translation-validation findings into the hazard report. */
void
mergeReport(mips::verify::VerifyReport *into,
            const mips::verify::VerifyReport &from)
{
    into->diagnostics.insert(into->diagnostics.end(),
                             from.diagnostics.begin(),
                             from.diagnostics.end());
    into->errors += from.errors;
    into->warnings += from.warnings;
    into->notes += from.notes;
}

/**
 * Render one unit's report into `out` (unless quiet) and report
 * whether the unit verified clean. Buffering into a string (instead
 * of printing directly) is what lets --jobs N emit units in input
 * order.
 */
bool
emit(const CliOptions &cli, mips::verify::VerifyReport report,
     const mips::assembler::Unit &unit, const std::string &name,
     double elapsed_ms, std::string *out)
{
    using mips::support::strprintf;
    if (cli.strict)
        mips::verify::promoteNotesToErrors(&report);
    if (cli.json) {
        *out += mips::verify::reportJson(
            report, name, cli.no_time ? -1.0 : elapsed_ms);
        *out += "\n";
    } else if (!cli.quiet) {
        *out += mips::verify::reportText(report, unit, name);
        *out += strprintf("%s: %zu error(s), %zu warning(s), "
                          "%zu note(s)",
                          name.c_str(), report.errors, report.warnings,
                          report.notes);
        if (!cli.no_time)
            *out += strprintf(" [%.1f ms]", elapsed_ms);
        *out += "\n";
    }
    return report.clean();
}

/** Render one unit's cost report (plus the parity sweep when the
 *  simulator ran). Cost output ignores --quiet: it *is* the requested
 *  report, not verification chatter. */
std::string
costOutput(const CliOptions &cli, const mips::verify::CostReport &report,
           const mips::verify::CostParity *parity)
{
    using mips::support::strprintf;
    if (cli.cost == 2)
        return mips::verify::costJson(report, parity) + "\n";
    std::string out = mips::verify::costText(report);
    if (parity) {
        out += strprintf("%s: cost parity: %zu block(s), %zu exact, "
                         "%zu bounded, %zu violation(s)\n",
                         report.unit.c_str(), parity->checked,
                         parity->exact, parity->bounded,
                         parity->violations);
        for (const std::string &note : parity->notes)
            out += "  " + note + "\n";
    }
    return out;
}

/** Fold loose diagnostics (the MS findings of a range run) into the
 *  main report's list and severity counters. */
void
mergeDiagnostics(mips::verify::VerifyReport *into,
                 const std::vector<mips::verify::Diagnostic> &diags)
{
    for (const mips::verify::Diagnostic &d : diags) {
        into->diagnostics.push_back(d);
        switch (d.severity) {
        case mips::verify::Severity::ERROR: ++into->errors; break;
        case mips::verify::Severity::WARNING: ++into->warnings; break;
        case mips::verify::Severity::NOTE: ++into->notes; break;
        }
    }
}

/** Render one unit's range report. Like --cost, this ignores --quiet:
 *  it *is* the requested report. */
std::string
rangeOutput(const CliOptions &cli,
            const mips::verify::RangeReport &report)
{
    if (cli.range == 2)
        return mips::verify::rangeJson(report);
    return mips::verify::rangeText(report);
}

/** Run the linked unit on the simulator and match every observed
 *  fault/overflow event against the static MS findings. Returns the
 *  gate verdict (0 covered, 1 not) and appends the summary to `out`. */
int
runRangeOracle(const mips::assembler::Unit &unit,
               const std::string &name,
               const std::vector<mips::verify::Diagnostic> &diags,
               std::string *out)
{
    using mips::support::strprintf;
    auto program = mips::assembler::link(unit);
    if (!program.ok()) {
        std::fprintf(stderr, "mipsverify: %s: link failed: %s\n",
                     name.c_str(), program.error().message.c_str());
        return 2;
    }
    mips::sim::Machine machine;
    machine.load(program.value());
    machine.cpu().run(10'000'000);
    std::vector<mips::verify::ObservedFault> faults;
    for (const mips::sim::Cpu::FaultEvent &e :
         machine.cpu().faultEvents())
        faults.push_back({static_cast<uint8_t>(e.cause), e.pc, e.addr});
    mips::verify::FaultCoverage cov = mips::verify::checkFaultCoverage(
        diags, program.value().origin, unit.items.size(), faults);
    *out += strprintf("%s: range-oracle: %zu event(s), %zu covered, "
                      "%zu exempt\n",
                      name.c_str(), cov.events, cov.covered,
                      cov.exempt);
    for (const std::string &note : cov.notes)
        *out += "  " + note + "\n";
    return cov.ok() ? 0 : 1;
}

int
runCorpus(const CliOptions &cli)
{
    std::vector<mips::workload::CorpusProgram> programs =
        mips::workload::corpus();
    for (const mips::workload::CorpusProgram &program :
         mips::workload::dispatchCorpus())
        programs.push_back(program);
    programs.push_back(mips::workload::fibonacciProgram());
    programs.push_back(mips::workload::puzzle0Program());
    programs.push_back(mips::workload::puzzle1Program());

    mips::pipeline::Session session;
    mips::pipeline::StageOptions options;
    options.compile = cli.compile_options;
    options.reorg = cli.reorg_options;
    options.verify = cli.verify;
    mips::pipeline::ChainSpec spec;
    spec.hazard_verify = true;
    spec.translation_validate = cli.tv;
    if (cli.cost) {
        // The cost model is validated, not trusted: every unit also
        // runs on the simulator with profiling on, and the static
        // report must agree with the dynamic per-word issue counts.
        spec.cost_model = true;
        spec.simulate = true;
        options.sim.profile = true;
    }
    if (cli.range) {
        spec.value_range = true;
        options.range.stack_budget = cli.stack_budget;
    }

    // Fail-fast still computes in parallel waves of `jobs` units, but
    // emission stops at the first failing unit, so the output matches
    // a serial fail-fast run byte for byte.
    size_t wave = cli.fail_fast
                      ? std::max<size_t>(cli.jobs, 1)
                      : programs.size();

    size_t failed = 0;
    size_t ran = 0;
    bool stopped = false;
    for (size_t base = 0; base < programs.size() && !stopped;
         base += wave) {
        std::vector<mips::workload::CorpusProgram> slice(
            programs.begin() + static_cast<ptrdiff_t>(base),
            programs.begin() +
                static_cast<ptrdiff_t>(
                    std::min(base + wave, programs.size())));
        std::vector<mips::pipeline::ChainResult> results =
            mips::pipeline::runAll(session, slice, spec, options,
                                   cli.jobs);
        for (const mips::pipeline::ChainResult &r : results) {
            ++ran;
            if (!r.ok()) {
                std::fprintf(stderr,
                             "mipsverify: %s: compile failed: %s\n",
                             r.name.c_str(), r.error.c_str());
                ++failed;
                if (cli.fail_fast) {
                    stopped = true;
                    break;
                }
                continue;
            }
            mips::verify::VerifyReport report = r.verify->report;
            if (cli.tv)
                mergeReport(&report, r.tv->report);
            if (cli.range)
                mergeDiagnostics(&report, r.range->diags);
            std::string out;
            bool clean = emit(cli, std::move(report),
                              r.reorg->final_unit, r.name, r.elapsed_ms,
                              &out);
            std::fputs(out.c_str(), stdout);
            if (cli.cost) {
                if (r.sim->stop != mips::sim::StopReason::HALT) {
                    std::fprintf(stderr,
                                 "mipsverify: %s: simulation did not "
                                 "halt; cost parity not checked\n",
                                 r.name.c_str());
                    clean = false;
                } else {
                    mips::verify::CostReport cost = r.cost->report;
                    cost.unit = r.name;
                    mips::verify::CostParity parity =
                        mips::verify::checkCostParity(
                            cost, r.sim->exec_counts,
                            cli.cost_tolerance);
                    std::string cost_out =
                        costOutput(cli, cost, &parity);
                    std::fputs(cost_out.c_str(), stdout);
                    if (parity.violations != 0)
                        clean = false;
                }
            }
            if (cli.range) {
                mips::verify::RangeReport range = r.range->report;
                range.unit = r.name;
                std::string range_out = rangeOutput(cli, range);
                std::fputs(range_out.c_str(), stdout);
            }
            if (!clean) {
                ++failed;
                if (cli.fail_fast) {
                    stopped = true;
                    break;
                }
            }
        }
    }
    if (!cli.quiet) {
        std::printf("mipsverify: %zu/%zu corpus program(s) verified "
                    "clean%s\n",
                    ran - failed, programs.size(),
                    ran < programs.size() ? " (stopped early)" : "");
    }
    return failed == 0 ? 0 : 1;
}

int
runFile(const CliOptions &cli)
{
    std::string source;
    if (cli.file == "-") {
        std::ostringstream buf;
        buf << std::cin.rdbuf();
        source = buf.str();
    } else {
        std::ifstream in(cli.file);
        if (!in) {
            std::fprintf(stderr, "mipsverify: cannot open %s\n",
                         cli.file.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        source = buf.str();
    }

    auto parsed = mips::pipeline::sharedSession().assemble(source);
    if (!parsed.ok()) {
        std::fprintf(stderr, "mipsverify: %s: %s\n", cli.file.c_str(),
                     parsed.error().message.c_str());
        return 2;
    }
    const mips::assembler::Unit &unit = parsed.value()->unit;

    Clock::time_point start = Clock::now();
    mips::verify::VerifyReport report;
    const mips::assembler::Unit *report_unit = &unit;
    mips::assembler::Unit reorganized;
    if (cli.reorg) {
        mips::reorg::ReorgResult result =
            mips::reorg::reorganize(unit, cli.reorg_options);
        reorganized = std::move(result.unit);
        Clock::time_point verify_start = Clock::now();
        report = mips::verify::verifyReorganization(unit, reorganized,
                                                    cli.verify);
        mips::obs::verifyUnitMs().observe(msSince(verify_start));
        if (cli.tv) {
            mips::verify::TvOptions tvopts;
            tvopts.alias = cli.reorg_options.alias;
            mergeReport(&report,
                        mips::verify::validateTranslation(
                            unit, reorganized, result.hints, tvopts));
        }
        report_unit = &reorganized;
    } else {
        Clock::time_point verify_start = Clock::now();
        report = mips::verify::verifyUnit(unit, cli.verify);
        mips::obs::verifyUnitMs().observe(msSince(verify_start));
    }
    // Extra reports print after the verify report; the range findings
    // themselves fold *into* it, so the analysis runs before emit.
    std::string extra_out;
    int oracle_status = -1; // -1 = oracle not requested
    bool range_needed = cli.range || cli.range_oracle;
    if (cli.callgraph || cli.cost || range_needed) {
        // Build over the unit that would run on the machine (the
        // reorganized one under --reorg). Structural diagnostics were
        // already reported above; this engine is scratch.
        mips::verify::DiagnosticEngine scratch(report_unit);
        mips::verify::Cfg cfg =
            mips::verify::buildCfg(*report_unit, &scratch);
        mips::verify::CallGraph graph =
            mips::verify::buildCallGraph(cfg);
        if (cli.callgraph) {
            std::string dot =
                mips::verify::callGraphDot(graph, cli.file);
            if (cli.callgraph_out.empty()) {
                extra_out += dot;
            } else {
                std::ofstream dot_out(cli.callgraph_out);
                if (!dot_out) {
                    std::fprintf(stderr,
                                 "mipsverify: cannot write %s\n",
                                 cli.callgraph_out.c_str());
                    return 2;
                }
                dot_out << dot;
            }
        }
        if (cli.cost) {
            // Static-only in single-file mode: parity needs a whole
            // program to simulate (--corpus --cost).
            mips::verify::CostReport cost =
                mips::verify::computeCostModel(cfg, graph, cli.file);
            mips::verify::publishCostMetrics(cost);
            extra_out += costOutput(cli, cost, nullptr);
        }
        if (range_needed) {
            mips::verify::DiagnosticEngine range_diags(report_unit);
            mips::verify::RangeCheckOptions ropts;
            ropts.stack_budget = cli.stack_budget;
            mips::verify::RangeReport range =
                mips::verify::checkMemorySafety(cfg, graph, ropts,
                                                cli.file, &range_diags);
            mips::verify::publishRangeMetrics(range);
            mergeDiagnostics(&report, range_diags.diagnostics());
            if (cli.range)
                extra_out += rangeOutput(cli, range);
            if (cli.range_oracle) {
                oracle_status =
                    runRangeOracle(*report_unit, cli.file,
                                   range_diags.diagnostics(),
                                   &extra_out);
                if (oracle_status == 2)
                    return 2;
            }
        }
    }

    std::string out;
    bool clean = emit(cli, std::move(report), *report_unit, cli.file,
                      msSince(start), &out);
    std::fputs(out.c_str(), stdout);
    std::fputs(extra_out.c_str(), stdout);

    // Under --range-oracle the exit status is the coverage verdict
    // alone: the fault corpus *intends* to contain MS errors.
    if (oracle_status >= 0)
        return oracle_status;
    return clean ? 0 : 1;
}

// ------------------------------------------------------------- fuzz

/** Reproducer file name for a (possibly minimized) program. */
std::string
reproPath(const mips::fuzz::GeneratedProgram &program)
{
    using mips::support::strprintf;
    return strprintf("fuzz-repro-%s.%s", program.name.c_str(),
                     program.kind == mips::fuzz::ProgramKind::PASCAL
                         ? "pas"
                         : "s");
}

/**
 * Write a reproducer: a comment header (name, seed, failure) in the
 * program's own comment syntax, then the full source. Returns false
 * on I/O failure.
 */
bool
writeRepro(const mips::fuzz::GeneratedProgram &program,
           const std::string &failure, const std::string &path)
{
    using mips::support::strprintf;
    bool pascal = program.kind == mips::fuzz::ProgramKind::PASCAL;
    std::string safe = failure;
    for (char &c : safe)
        if (c == '}' || c == '\n')
            c = ' ';
    std::string header;
    if (pascal)
        header = strprintf("{ fuzz reproducer %s (seed %llu)\n"
                           "  failure: %s }\n",
                           program.name.c_str(),
                           static_cast<unsigned long long>(program.seed),
                           safe.c_str());
    else
        header = strprintf("; fuzz reproducer %s (seed %llu)\n"
                           "; failure: %s\n",
                           program.name.c_str(),
                           static_cast<unsigned long long>(program.seed),
                           safe.c_str());
    std::ofstream out(path);
    if (!out)
        return false;
    out << header << program.render();
    out.close();
    if (!out) // NOLINT(readability-implicit-bool-conversion)
        return false;
    mips::obs::fuzzMetrics().repro_writes->add();
    return true;
}

/**
 * Differential fuzzing: generate (or replay) programs, fan them over
 * the BatchRunner against a shared Session, and report any config or
 * oracle disagreement. Output carries no wall-clock fields, and the
 * runner collects results in input order, so a run is byte-identical
 * for a fixed (seed, N, binary) triple — the determinism contract
 * docs/FUZZING.md documents and scripts/check.sh enforces with cmp.
 */
int
runFuzz(const CliOptions &cli)
{
    using mips::support::strprintf;
    namespace fuzz = mips::fuzz;

    std::vector<fuzz::GeneratedProgram> programs;
    if (!cli.fuzz_file.empty()) {
        std::ifstream in(cli.fuzz_file);
        if (!in) {
            std::fprintf(stderr, "mipsverify: cannot read %s\n",
                         cli.fuzz_file.c_str());
            return 2;
        }
        std::ostringstream buf;
        buf << in.rdbuf();
        fuzz::GeneratedProgram p;
        size_t slash = cli.fuzz_file.find_last_of('/');
        p.name = slash == std::string::npos
                     ? cli.fuzz_file
                     : cli.fuzz_file.substr(slash + 1);
        p.kind = p.name.size() >= 4 &&
                         p.name.compare(p.name.size() - 4, 4, ".pas") ==
                             0
                     ? fuzz::ProgramKind::PASCAL
                     : fuzz::ProgramKind::ASM;
        // The whole file is one chunk: replay never re-minimizes a
        // checked-in reproducer, it just re-runs the matrix.
        p.prologue = buf.str();
        programs.push_back(std::move(p));
    } else {
        programs = fuzz::generateBatch(cli.fuzz_seed, cli.fuzz);
    }

    fuzz::DiffOptions diff;
    mips::pipeline::Session &session = mips::pipeline::sharedSession();
    mips::pipeline::BatchRunner runner(cli.jobs);
    std::vector<fuzz::DiffResult> results = runner.runAll(
        programs,
        [&session, &diff](const fuzz::GeneratedProgram &program,
                          size_t) {
            return fuzz::runDifferential(session, program, diff);
        });

    size_t mismatches = 0;
    size_t front_end = 0;
    std::string out;
    for (const fuzz::DiffResult &r : results) {
        if (r.ok) {
            if (!cli.quiet)
                out += strprintf("fuzz %s: ok (%zu configs)\n",
                                 r.name.c_str(), r.configs);
            continue;
        }
        // Failures always print, --quiet or not: a silent mismatch
        // defeats the point of a fuzzer.
        if (r.front_end_error) {
            ++front_end;
            out += strprintf("fuzz %s: FRONT-END ERROR: %s\n",
                             r.name.c_str(), r.failure.c_str());
        } else {
            ++mismatches;
            out += strprintf("fuzz %s: MISMATCH: %s\n", r.name.c_str(),
                             r.failure.c_str());
        }
    }
    std::fputs(out.c_str(), stdout);

    if (cli.fuzz_minimize) {
        for (size_t i = 0; i < results.size(); ++i) {
            if (!results[i].mismatch())
                continue;
            auto still_fails =
                [&session, &diff](const fuzz::GeneratedProgram &c) {
                    return fuzz::runDifferential(session, c, diff)
                        .mismatch();
                };
            fuzz::MinimizeOutcome min =
                fuzz::minimizeProgram(programs[i], still_fails);
            std::string path = reproPath(min.program);
            if (!writeRepro(min.program, results[i].failure, path)) {
                std::fprintf(stderr,
                             "mipsverify: cannot write reproducer "
                             "%s\n",
                             path.c_str());
                return 2;
            }
            std::printf("fuzz %s: minimized %zu -> %zu chunk(s) "
                        "(%zu step(s)), wrote %s\n",
                        results[i].name.c_str(), programs[i].chunks.size(),
                        min.program.chunks.size(), min.steps,
                        path.c_str());
        }
    }

    if (!cli.quiet)
        std::printf("mipsverify: fuzz: %zu program(s), %zu "
                    "mismatch(es), %zu front-end error(s) (seed %llu)\n",
                    results.size(), mismatches, front_end,
                    static_cast<unsigned long long>(cli.fuzz_seed));
    return mismatches != 0 || front_end != 0 ? 1 : 0;
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions cli;
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--reorg") {
            cli.reorg = true;
        } else if (arg == "--tv") {
            cli.tv = true;
            cli.reorg = true;
        } else if (arg == "--corpus") {
            cli.corpus = true;
        } else if (arg == "--json") {
            cli.json = true;
        } else if (arg == "--no-lint") {
            cli.verify.lint = false;
        } else if (arg == "--strict") {
            cli.strict = true;
        } else if (arg == "--fail-fast") {
            cli.fail_fast = true;
        } else if (arg == "--no-reorder") {
            cli.reorg_options.reorder = false;
        } else if (arg == "--no-pack") {
            cli.reorg_options.pack = false;
        } else if (arg == "--no-fill-delay") {
            cli.reorg_options.fill_delay = false;
        } else if (arg == "--no-jump-tables") {
            cli.compile_options.jump_tables = false;
        } else if (arg == "--quiet") {
            cli.quiet = true;
        } else if (arg == "--no-time") {
            cli.no_time = true;
        } else if (arg == "--cost") {
            cli.cost = 1;
        } else if (arg == "--cost=json") {
            cli.cost = 2;
        } else if (arg == "--range") {
            cli.range = 1;
        } else if (arg == "--range=json") {
            cli.range = 2;
        } else if (arg == "--range-oracle") {
            cli.range_oracle = true;
        } else if (arg == "--stack-budget" ||
                   arg.rfind("--stack-budget=", 0) == 0) {
            const char *value = nullptr;
            if (arg == "--stack-budget") {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "mipsverify: --stack-budget needs a "
                                 "word count\n");
                    return 2;
                }
                value = argv[++i];
            } else {
                value = arg.c_str() + 15;
            }
            char *end = nullptr;
            long n = std::strtol(value, &end, 10);
            if (end == value || *end != '\0' || n <= 0 ||
                n > 0x7fffffff) {
                std::fprintf(stderr,
                             "mipsverify: bad --stack-budget '%s'\n",
                             value);
                return 2;
            }
            cli.stack_budget = static_cast<uint32_t>(n);
        } else if (arg == "--callgraph" ||
                   arg.rfind("--callgraph=", 0) == 0) {
            cli.callgraph = true;
            if (arg != "--callgraph")
                cli.callgraph_out = arg.substr(12);
        } else if (arg == "--cost-tolerance" ||
                   arg.rfind("--cost-tolerance=", 0) == 0) {
            const char *value = nullptr;
            if (arg == "--cost-tolerance") {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "mipsverify: --cost-tolerance needs a "
                                 "value\n");
                    return 2;
                }
                value = argv[++i];
            } else {
                value = arg.c_str() + 17;
            }
            char *end = nullptr;
            double f = std::strtod(value, &end);
            if (end == value || *end != '\0' || f < 0.0) {
                std::fprintf(stderr,
                             "mipsverify: bad --cost-tolerance '%s'\n",
                             value);
                return 2;
            }
            cli.cost_tolerance = f;
        } else if (arg == "--stats") {
            cli.stats = true;
        } else if (arg == "--stats=json") {
            cli.stats = true;
            cli.stats_json = true;
        } else if (arg == "--trace-out" ||
                   arg.rfind("--trace-out=", 0) == 0) {
            if (arg == "--trace-out") {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "mipsverify: --trace-out needs a "
                                 "file\n");
                    return 2;
                }
                cli.trace_out = argv[++i];
            } else {
                cli.trace_out = arg.substr(12);
            }
            if (cli.trace_out.empty()) {
                std::fprintf(stderr,
                             "mipsverify: --trace-out needs a file\n");
                return 2;
            }
        } else if (arg == "--list-metrics") {
            // The docs-drift gate (scripts/check_metrics_docs.sh)
            // diffs this dump against docs/METRICS.md, so force every
            // built-in metric to register before listing.
            mips::obs::registerBuiltinMetrics();
            for (const std::string &name :
                 mips::obs::Registry::instance().names())
                std::printf("%s\n", name.c_str());
            return 0;
        } else if (arg == "--fuzz" || arg.rfind("--fuzz=", 0) == 0) {
            const char *value = nullptr;
            if (arg == "--fuzz") {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "mipsverify: --fuzz needs a program "
                                 "count\n");
                    return 2;
                }
                value = argv[++i];
            } else {
                value = arg.c_str() + 7;
            }
            char *end = nullptr;
            long long n = std::strtoll(value, &end, 10);
            if (end == value || *end != '\0' || n <= 0 ||
                n > 1'000'000) {
                std::fprintf(stderr,
                             "mipsverify: bad --fuzz count '%s'\n",
                             value);
                return 2;
            }
            cli.fuzz = static_cast<uint64_t>(n);
        } else if (arg == "--seed" || arg.rfind("--seed=", 0) == 0) {
            const char *value = nullptr;
            if (arg == "--seed") {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "mipsverify: --seed needs a value\n");
                    return 2;
                }
                value = argv[++i];
            } else {
                value = arg.c_str() + 7;
            }
            char *end = nullptr;
            unsigned long long s = std::strtoull(value, &end, 10);
            if (end == value || *end != '\0') {
                std::fprintf(stderr, "mipsverify: bad --seed '%s'\n",
                             value);
                return 2;
            }
            cli.fuzz_seed = s;
        } else if (arg == "--fuzz-minimize") {
            cli.fuzz_minimize = true;
        } else if (arg == "--fuzz-file" ||
                   arg.rfind("--fuzz-file=", 0) == 0) {
            if (arg == "--fuzz-file") {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "mipsverify: --fuzz-file needs a "
                                 "file\n");
                    return 2;
                }
                cli.fuzz_file = argv[++i];
            } else {
                cli.fuzz_file = arg.substr(12);
            }
            if (cli.fuzz_file.empty()) {
                std::fprintf(stderr,
                             "mipsverify: --fuzz-file needs a file\n");
                return 2;
            }
        } else if (arg == "--jobs" || arg.rfind("--jobs=", 0) == 0) {
            const char *value = nullptr;
            if (arg == "--jobs") {
                if (i + 1 >= argc) {
                    std::fprintf(stderr,
                                 "mipsverify: --jobs needs a count\n");
                    return 2;
                }
                value = argv[++i];
            } else {
                value = arg.c_str() + 7;
            }
            char *end = nullptr;
            long n = std::strtol(value, &end, 10);
            if (end == value || *end != '\0' || n < 0 || n > 1024) {
                std::fprintf(stderr,
                             "mipsverify: bad --jobs count '%s'\n",
                             value);
                return 2;
            }
            // 0 means auto: one worker per hardware thread (resolved
            // here so fail-fast wave sizing sees the real count).
            cli.jobs = n == 0
                           ? mips::pipeline::BatchRunner::defaultJobs()
                           : static_cast<unsigned>(n);
        } else if (arg == "--help" || arg == "-h") {
            usage(stdout);
            return 0;
        } else if (!arg.empty() && arg[0] == '-' && arg != "-") {
            std::fprintf(stderr, "mipsverify: unknown option %s\n",
                         arg.c_str());
            usage(stderr);
            return 2;
        } else if (cli.file.empty()) {
            cli.file = arg;
        } else {
            usage(stderr);
            return 2;
        }
    }
    bool fuzzing = cli.fuzz != 0 || !cli.fuzz_file.empty();
    if (fuzzing && (cli.corpus || !cli.file.empty())) {
        std::fprintf(stderr,
                     "mipsverify: --fuzz/--fuzz-file cannot combine "
                     "with --corpus or a file\n");
        return 2;
    }
    if (cli.fuzz != 0 && !cli.fuzz_file.empty()) {
        std::fprintf(stderr,
                     "mipsverify: --fuzz and --fuzz-file are "
                     "mutually exclusive\n");
        return 2;
    }
    if (cli.fuzz_minimize && !fuzzing) {
        std::fprintf(stderr,
                     "mipsverify: --fuzz-minimize needs --fuzz or "
                     "--fuzz-file\n");
        return 2;
    }
    if (cli.corpus && !cli.file.empty()) {
        usage(stderr);
        return 2;
    }
    if (cli.corpus && cli.callgraph) {
        std::fprintf(stderr,
                     "mipsverify: --callgraph is single-file only\n");
        return 2;
    }
    if (cli.corpus && cli.range_oracle) {
        std::fprintf(stderr,
                     "mipsverify: --range-oracle is single-file only\n");
        return 2;
    }
    if (!cli.corpus && !fuzzing && cli.file.empty()) {
        usage(stderr);
        return 2;
    }

    if (!cli.trace_out.empty())
        mips::obs::Tracer::instance().enable(true);

    int status = fuzzing      ? runFuzz(cli)
                 : cli.corpus ? runCorpus(cli)
                              : runFile(cli);

    if (cli.stats) {
        // Register the full catalog before snapshotting so the output
        // schema is stable: metrics a short run never touched still
        // appear (at zero) instead of coming and going between runs.
        mips::obs::registerBuiltinMetrics();
        mips::obs::Snapshot snap =
            mips::obs::Registry::instance().snapshot();
        std::string doc = cli.stats_json ? snap.json() : snap.table();
        std::fputs(doc.c_str(), stdout);
        if (!doc.empty() && doc.back() != '\n')
            std::fputc('\n', stdout);
    }
    if (!cli.trace_out.empty()) {
        if (!mips::obs::Tracer::instance().writeChromeTrace(
                cli.trace_out)) {
            std::fprintf(stderr,
                         "mipsverify: cannot write trace to %s\n",
                         cli.trace_out.c_str());
            return 2;
        }
    }
    return status;
}
