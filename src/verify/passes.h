/**
 * @file
 * Internal pass entry points shared between verify.cc and the pass
 * implementation files (hazards.cc, lint.cc). Not installed API —
 * use verify.h.
 */
#pragma once

#include "verify/cfg.h"
#include "verify/dataflow.h"
#include "verify/diagnostics.h"
#include "verify/verify.h"

namespace mips::verify {

/** HZ001/HZ002/HZ003/HZ004/HZ006: the hazard contract over the CFG. */
void checkHazards(const Cfg &cfg, DiagnosticEngine *diags);

/** LT001/LT002/LT003: dataflow lints over the CFG. */
void checkLints(const Cfg &cfg, const VerifyOptions &options,
                DiagnosticEngine *diags);

/** HZ005: `.noreorder` regions of `input` must appear verbatim and in
 *  order in `output`. */
void checkNoreorderIntegrity(const assembler::Unit &input,
                             const assembler::Unit &output,
                             DiagnosticEngine *diags);

} // namespace mips::verify
